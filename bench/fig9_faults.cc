// Figure 9 (beyond the paper): the serving stack under deterministic fault
// injection — shard crashes, transient execute errors, slow-shard latency
// spikes, and mid-roll reload failures, replayed from seeded fault scripts
// (serving/faults) against the full Q1-Q5 mix. One engine (the first
// serving config) carries the sweep: the fault machinery is layered above
// the engines, so per-engine repetition would measure the same code paths.
//
//   (a) crash failover: 1 of 4 shards crashes at the first op and stays
//       down. Bounded retries move its traffic to the replicas; cheap-class
//       availability must stay >= 99% and goodput within the
//       lost-capacity band of the no-fault baseline.
//   (b) recovery: a three-phase script (pre-fault / crash / recover) runs
//       one measured workload per phase. Post-restore goodput must be
//       >= 90% of pre-fault.
//   (c) transient errors: every execute attempt fails w.p. 0.2; with 6
//       attempts per op the run must complete with zero op-level failures
//       while the retry counters show the recovery work.
//   (d) brown-out: latency spikes degrade 2 of 4 shards; adaptive admission
//       sheds heavy classes first (capacity-scaled heavy cap) while cheap
//       traffic keeps serving, hedging its slow attempts onto clean shards.
//   (e) reload healing: an armed mid-roll reload failure quarantines shard
//       0; serving continues on the replicas and the next successful reload
//       heals the fleet — with zero stale hits throughout.
//   (f) determinism: the same script + seed replayed twice (single client)
//       must produce byte-identical fault event logs.
//
// Exit gates: zero op errors/mismatches outside the designed-to-fail
// windows, zero stale hits anywhere, the availability/recovery bands above
// (skipped under sanitizers like fig7's overhead gates), and log equality
// for (f).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/sanitizers.h"
#include "core/config.h"
#include "core/reference.h"
#include "engine/engines.h"
#include "obs/trace.h"
#include "serving/faults.h"
#include "serving/serving_stack.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace genbase::bench {
namespace {

workload::WorkloadSpec BaseSpec(const char* name) {
  workload::WorkloadSpec spec;
  spec.name = name;
  spec.mix = {
      {core::QueryId::kRegression, 30},
      {core::QueryId::kCovariance, 20},
      {core::QueryId::kBiclustering, 5},
      {core::QueryId::kSvd, 15},
      {core::QueryId::kStatistics, 30},
  };
  spec.size = core::DatasetSize::kSmall;
  spec.model = workload::ClientModel::kClosedLoop;
  spec.clients = 8;
  spec.warmup_ops = 10;
  spec.measured_ops = 48;
  spec.param_variants = 1;
  spec.timeout_seconds = core::SimConfig::Get().timeout_seconds;
  spec.seed = 47;
  spec.verify = true;
  return spec;
}

/// The cheap (Q1-flavored) classes whose availability the failover gates
/// protect; biclustering and SVD are the heavy tail that may be shed.
bool IsCheapClass(core::QueryId query) {
  return query == core::QueryId::kStatistics ||
         query == core::QueryId::kRegression ||
         query == core::QueryId::kCovariance;
}

double CheapAvailability(const workload::WorkloadReport& r) {
  int64_t scheduled = 0;
  int64_t failed = 0;
  for (const auto& [query, stats] : r.per_query) {
    if (!IsCheapClass(query)) continue;
    scheduled += stats.ops;
    failed += stats.errors + stats.infs + stats.shed();
  }
  return scheduled > 0
             ? static_cast<double>(scheduled - failed) / scheduled
             : 1.0;
}

/// Availability of the one class that is cheap at *every* dataset scale.
/// The brown-out cell's adaptive classifier judges heaviness relative to
/// the cheapest observed class: at smoke scale regression compresses to
/// within a few x of statistics, but at full scale it runs ~40x longer
/// and legitimately classifies heavy — so the brown-out policy itself
/// sheds it, by design, and gating its availability would assert against
/// the mechanism under test. Statistics is the SLO class the policy
/// protects unconditionally.
double StrictCheapAvailability(const workload::WorkloadReport& r) {
  for (const auto& [query, stats] : r.per_query) {
    if (query != core::QueryId::kStatistics || stats.ops <= 0) continue;
    return static_cast<double>(stats.ops - stats.errors - stats.infs -
                               stats.shed()) /
           stats.ops;
  }
  return 1.0;
}

std::map<std::string, workload::WorkloadReport>& Reports() {
  static auto* reports = new std::map<std::string, workload::WorkloadReport>();
  return *reports;
}

/// Cross-cell gate inputs the benchmark lambdas stash for PrintFigure.
/// Injection totals are read off the injector itself, not the report's
/// measured-phase counter delta: a fault applied during warm-up (a crash at
/// op 0, a window opening) is real but invisible to the delta.
struct GateState {
  bool reload_first_failed = false;
  bool reload_second_ok = false;
  int64_t reload_injected = 0;
  int64_t crash_injected = 0;
  int64_t transient_injected = 0;
  int64_t spikes_injected = 0;
  std::string determinism_log_a;
  std::string determinism_log_b;
  int64_t gate_misses = 0;  ///< In-cell structural failures (setup errors).
};
GateState& Gates() {
  static auto* gates = new GateState();
  return *gates;
}

// Ground truth shared across every cell (one dataset, one spec family).
const std::map<workload::WorkloadRunner::TruthKey, core::QueryResult>&
SharedTruths() {
  static const auto* truths = [] {
    auto* map =
        new std::map<workload::WorkloadRunner::TruthKey, core::QueryResult>();
    const core::GenBaseData& data = CachedData(core::DatasetSize::kSmall);
    const workload::WorkloadSpec spec = BaseSpec("truths");
    const auto schedule = workload::BuildSchedule(spec);
    std::set<workload::WorkloadRunner::TruthKey> pairs;
    for (const auto& op : schedule) pairs.insert({op.query, op.variant});
    for (const auto& [query, variant] : pairs) {
      auto truth = core::RunReferenceQuery(
          query, data, workload::VariantParams(spec.params, variant));
      GENBASE_CHECK(truth.ok());
      map->emplace(std::make_pair(query, variant),
                   std::move(truth).ValueOrDie());
    }
    return map;
  }();
  return *truths;
}

std::unique_ptr<serving::FaultInjector> MakeInjector(const char* script_text) {
  auto script = serving::FaultScript::Parse(script_text);
  GENBASE_CHECK(script.ok());
  auto injector = serving::FaultInjector::Create(script.ValueOrDie());
  GENBASE_CHECK(injector.ok());
  return std::move(injector).ValueOrDie();
}

/// Shared stack shape for the fault cells. The execute-path cells (crash,
/// transient, brown-out, recovery) run with the cache off: after one warm-up
/// pass the mix's working set fits the cache, and a cache hit never reaches
/// the shards — the fault machinery under test. The reload cells keep the
/// cache on because the epoch-keyed cache *is* their subject.
serving::ServingOptions FaultOptions(serving::FaultInjector* injector,
                                     bool cache_enabled) {
  serving::ServingOptions options;
  options.shards = 4;
  options.cache_enabled = cache_enabled;
  options.single_flight = cache_enabled;
  options.fault_injector = injector;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_s = 0.0002;
  options.retry.backoff_multiplier = 2.0;
  options.retry.max_backoff_s = 0.002;
  return options;
}

/// Runs one workload through a freshly built stack; a setup failure prints
/// a GATE line and counts as a gate miss.
bool RunCell(const char* key, const workload::WorkloadSpec& spec,
             const serving::ServingOptions& options) {
  const core::GenBaseData& data = CachedData(core::DatasetSize::kSmall);
  auto stack = serving::ServingStack::Create(
      options, ServingEngines().front().factory, data);
  if (!stack.ok()) {
    std::printf("# GATE: %s stack create failed: %s\n", key,
                stack.status().ToString().c_str());
    ++Gates().gate_misses;
    return false;
  }
  workload::WorkloadRunner runner(spec);
  runner.set_ground_truth_variants(SharedTruths());
  auto report = runner.Run(stack.ValueOrDie().get(), data);
  if (!report.ok()) {
    std::printf("# GATE: %s run failed: %s\n", key,
                report.status().ToString().c_str());
    ++Gates().gate_misses;
    return false;
  }
  Reports()[key] = std::move(report).ValueOrDie();
  return true;
}

// --- cells -------------------------------------------------------------------

void RegisterCells() {
  benchmark::RegisterBenchmark("fig9/baseline", [](benchmark::State& state) {
    for (auto _ : state) {
      serving::ServingOptions options =
          FaultOptions(nullptr, /*cache_enabled=*/false);
      RunCell("baseline", BaseSpec("faults-baseline"), options);
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("fig9/crash_failover",
                               [](benchmark::State& state) {
    for (auto _ : state) {
      auto injector = MakeInjector("seed 901\n@0 crash 1\n");
      RunCell("crash_failover", BaseSpec("faults-crash"),
              FaultOptions(injector.get(), /*cache_enabled=*/false));
      Gates().crash_injected =
          injector->injected(serving::FaultKind::kCrash);
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("fig9/recovery", [](benchmark::State& state) {
    for (auto _ : state) {
      // One injector, one stack, three measured runs; AdvancePhase moves the
      // script between them so each phase's op indices start at that run's
      // first Serve.
      auto injector = MakeInjector(
          "seed 902\n"
          "phase pre\n"
          "phase fault\n@0 crash 1\n"
          "phase healed\n@0 recover 1\n");
      const core::GenBaseData& data = CachedData(core::DatasetSize::kSmall);
      auto stack = serving::ServingStack::Create(
          FaultOptions(injector.get(), /*cache_enabled=*/false),
          ServingEngines().front().factory, data);
      if (!stack.ok()) {
        state.SkipWithError(stack.status().ToString().c_str());
        return;
      }
      const char* phases[] = {"recovery_pre", "recovery_fault",
                              "recovery_healed"};
      const char* specs[] = {"faults-recovery-pre", "faults-recovery-fault",
                             "faults-recovery-healed"};
      for (int phase = 0; phase < 3; ++phase) {
        workload::WorkloadRunner runner(BaseSpec(specs[phase]));
        runner.set_ground_truth_variants(SharedTruths());
        auto report = runner.Run(stack.ValueOrDie().get(), data);
        if (!report.ok()) {
          state.SkipWithError(report.status().ToString().c_str());
          return;
        }
        Reports()[phases[phase]] = std::move(report).ValueOrDie();
        if (phase < 2) injector->AdvancePhase();
      }
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("fig9/transient_retry",
                               [](benchmark::State& state) {
    for (auto _ : state) {
      auto injector = MakeInjector("seed 903\n@0..100000 error * 0.2\n");
      RunCell("transient_retry", BaseSpec("faults-transient"),
              FaultOptions(injector.get(), /*cache_enabled=*/false));
      Gates().transient_injected =
          injector->injected(serving::FaultKind::kTransientError);
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("fig9/brownout", [](benchmark::State& state) {
    for (auto _ : state) {
      auto injector = MakeInjector(
          "seed 904\n"
          "@0..100000 latency 1 0.02\n"
          "@0..100000 latency 2 0.02\n");
      serving::ServingOptions options =
          FaultOptions(injector.get(), /*cache_enabled=*/false);
      // Adaptive admission is the brown-out actor: the capacity fraction
      // (2 healthy + 2 degraded of 4 = 0.75) shrinks the heavy-class cap,
      // so biclustering/SVD shed first while the cheap mix keeps its slots.
      options.admission.adaptive = true;
      options.admission.min_inflight = 2;
      options.admission.max_inflight_cap = 16;
      options.admission.adjust_interval = 8;
      // Fixed queue bound deeper than the client count: the default
      // 2x-limit bound can collapse below the closed-loop population when
      // a scheduler stall shrinks the adaptive limit, queue-full-shedding
      // a *cheap* arrival and flaking the >=99% availability gate. With
      // room for every client, the only shed path left is the brown-out
      // heavy cap — the mechanism under test.
      options.admission.max_queue = 16;
      options.retry.hedge_cheap = true;
      options.retry.hedge_threshold_factor = 3.0;
      RunCell("brownout", BaseSpec("faults-brownout"), options);
      Gates().spikes_injected =
          injector->injected(serving::FaultKind::kLatencySpike);
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("fig9/reload_heal",
                               [](benchmark::State& state) {
    for (auto _ : state) {
      auto injector = MakeInjector("seed 905\n@0 reload-fail 0\n");
      const core::GenBaseData& data = CachedData(core::DatasetSize::kSmall);
      auto stack = serving::ServingStack::Create(
          FaultOptions(injector.get(), /*cache_enabled=*/true),
          ServingEngines().front().factory, data);
      if (!stack.ok()) {
        state.SkipWithError(stack.status().ToString().c_str());
        return;
      }
      serving::ServingStack* s = stack.ValueOrDie().get();
      // Quarantine window: the reload fails on shard 0 at measure start, the
      // whole measured run serves from the surviving replicas.
      workload::WorkloadRunner runner(BaseSpec("faults-reload-window"));
      runner.set_ground_truth_variants(SharedTruths());
      runner.set_on_measure_start([s, &data] {
        Gates().reload_first_failed = !s->ReloadDataset(data).ok();
      });
      auto window = runner.Run(s, data);
      if (!window.ok()) {
        state.SkipWithError(window.status().ToString().c_str());
        return;
      }
      Reports()["reload_window"] = std::move(window).ValueOrDie();
      // Heal: the next roll succeeds everywhere (the armed failure was
      // consumed), shard 0 rejoins, and a full run verifies clean serving.
      Gates().reload_second_ok = s->ReloadDataset(data).ok();
      workload::WorkloadRunner healed_runner(BaseSpec("faults-reload-healed"));
      healed_runner.set_ground_truth_variants(SharedTruths());
      auto healed = healed_runner.Run(s, data);
      if (!healed.ok()) {
        state.SkipWithError(healed.status().ToString().c_str());
        return;
      }
      Reports()["reload_healed"] = std::move(healed).ValueOrDie();
      Gates().reload_injected =
          injector->injected(serving::FaultKind::kReloadFailure);
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("fig9/determinism",
                               [](benchmark::State& state) {
    for (auto _ : state) {
      // Single client, cache off: every op executes, the shard sequence is
      // a pure function of the schedule, so the two replays must emit
      // byte-identical event logs.
      constexpr const char* kScript =
          "seed 906\n"
          "@3 crash 1\n"
          "@20 recover 1\n"
          "@0..40 error * 0.4\n";
      std::string logs[2];
      for (int run = 0; run < 2; ++run) {
        auto injector = MakeInjector(kScript);
        workload::WorkloadSpec spec = BaseSpec("faults-determinism");
        spec.clients = 1;
        spec.warmup_ops = 0;
        spec.measured_ops = 32;
        spec.verify = false;
        serving::ServingOptions options =
            FaultOptions(injector.get(), /*cache_enabled=*/false);
        options.shards = 2;
        if (!RunCell(run == 0 ? "determinism_a" : "determinism_b", spec,
                     options)) {
          return;
        }
        logs[run] = injector->EventLog();
      }
      Gates().determinism_log_a = logs[0];
      Gates().determinism_log_b = logs[1];
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);
}

// --- figure output + gates ---------------------------------------------------

bool SkipBandGates() {
  if (genbase::kUnderSanitizer) return true;
  const char* env = std::getenv("GENBASE_SKIP_OVERHEAD_GATES");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string FaultCell(const workload::WorkloadReport& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%sqps avail=%.3f rt=%lld hg=%lld stale=%lld",
                workload::FormatQps(r.achieved_qps()).c_str(),
                CheapAvailability(r),
                static_cast<long long>(r.serving.retry.retries),
                static_cast<long long>(r.serving.retry.hedges),
                static_cast<long long>(r.serving.stale_hits));
  return buf;
}

int64_t PrintFigure() {
  {
    const std::vector<std::string> scenarios = {
        "baseline",       "crash_failover",  "recovery_healed",
        "transient_retry", "brownout",       "reload_healed"};
    std::vector<std::vector<std::string>> cells;
    for (const auto& scenario : scenarios) {
      auto it = Reports().find(scenario);
      cells.push_back(
          {it == Reports().end() ? "?" : FaultCell(it->second)});
    }
    workload::PrintGrid(
        "Figure 9: fault injection + failover (goodput, cheap availability, "
        "retries, hedges, stale hits)",
        "scenario", scenarios, {ServingEngines().front().display}, cells);
  }
  for (const auto& [key, report] : Reports()) report.Print();

  int64_t failures = 0;
  int64_t stale = 0;
  int64_t gate_misses = Gates().gate_misses;
  for (const auto& [key, report] : Reports()) {
    // The determinism replays run a deliberately harsh script (40% error
    // probability over 2 shards, one of them crashed for half the window)
    // whose ops are *expected* to exhaust their retry budget sometimes;
    // their gate is log equality, not op success.
    if (key.rfind("determinism", 0) != 0) {
      failures += report.total.errors + report.total.verify_failures;
    }
    stale += report.serving.stale_hits;
  }

  const auto find = [](const char* key) -> const workload::WorkloadReport* {
    auto it = Reports().find(key);
    return it == Reports().end() ? nullptr : &it->second;
  };
  const auto* baseline = find("baseline");
  const auto* crash = find("crash_failover");
  const auto* pre = find("recovery_pre");
  const auto* healed = find("recovery_healed");
  const auto* transient = find("transient_retry");
  const auto* brownout = find("brownout");

  // Availability: with 1 of 4 shards down, retries must keep cheap-class
  // availability >= 99% (the crashed shard's ops fail fast and move to a
  // replica — no op-level error survives).
  if (crash != nullptr && CheapAvailability(*crash) < 0.99) {
    std::printf("# GATE: crash_failover cheap availability %.4f < 0.99\n",
                CheapAvailability(*crash));
    ++gate_misses;
  }
  if (crash != nullptr && Gates().crash_injected < 1) {
    std::printf("# GATE: crash_failover injected no crash\n");
    ++gate_misses;
  }
  // Throughput bands (modeled-clock goodput, stable at smoke scale; still
  // skipped under sanitizers, which distort the real-seconds share).
  if (!SkipBandGates()) {
    if (baseline != nullptr && crash != nullptr &&
        crash->achieved_qps() < 0.5 * baseline->achieved_qps()) {
      std::printf(
          "# GATE: crash_failover goodput %.2f < 0.5x baseline %.2f — "
          "losing 1 of 4 replicas must not cost more than the capacity\n",
          crash->achieved_qps(), baseline->achieved_qps());
      ++gate_misses;
    }
    // Collapse band only: at smoke scale each phase's measured window is
    // ~10ms of real wall, so one scheduler stall moves the ratio ~20% and
    // a tight band flakes under parallel ctest; at full scale a handful of
    // ~0.7s SVD ops dominate the window and completion-order luck moves
    // the ratio almost as much. A recovery that silently failed is caught
    // structurally below (the recovered shard must carry traffic again);
    // this band catches only a wedged stack, so it is deliberately wide —
    // even a still-missing shard would cost ~25%, well inside it.
    if (pre != nullptr && healed != nullptr &&
        healed->achieved_qps() < 0.4 * pre->achieved_qps()) {
      std::printf(
          "# GATE: post-recovery goodput %.2f < 40%% of pre-fault %.2f\n",
          healed->achieved_qps(), pre->achieved_qps());
      ++gate_misses;
    }
  }
  // Recovery is structural, not just a throughput band: after `recover`,
  // the crashed shard (index 1 in the script) must carry traffic again —
  // if it were stuck down it would show zero ops in the healed window,
  // deterministically. (Idle high-index shards are fine: JSQ breaks ties
  // low, so a lightly loaded smoke run may never spill onto them.)
  if (healed != nullptr && healed->serving.shards.size() > 1 &&
      healed->serving.shards[1].ops < 1) {
    std::printf(
        "# GATE: recovery_healed: recovered shard 1 served no ops\n");
    ++gate_misses;
  }
  // Transient errors: every injected failure must be absorbed by the retry
  // layer (zero op-level errors counted in `failures` above) and the retry
  // counters must show the work actually happened.
  if (transient != nullptr) {
    if (transient->serving.retry.retries < 1 ||
        Gates().transient_injected < 1) {
      std::printf("# GATE: transient_retry injected/retried nothing "
                  "(retries=%lld injected=%lld)\n",
                  static_cast<long long>(transient->serving.retry.retries),
                  static_cast<long long>(Gates().transient_injected));
      ++gate_misses;
    }
  }
  // Brown-out: the spike windows must have engaged, and the cheap mix must
  // have kept its availability while degraded.
  if (brownout != nullptr) {
    if (Gates().spikes_injected < 1) {
      std::printf("# GATE: brownout cell saw no latency spike\n");
      ++gate_misses;
    }
    if (StrictCheapAvailability(*brownout) < 0.99) {
      std::printf("# GATE: brownout cheap availability %.4f < 0.99\n",
                  StrictCheapAvailability(*brownout));
      ++gate_misses;
    }
  }
  // Reload healing: exactly one injected mid-roll failure, observed as a
  // failed ReloadDataset, healed by the next successful one.
  if (Reports().count("reload_window") != 0) {
    if (!Gates().reload_first_failed || !Gates().reload_second_ok ||
        Gates().reload_injected != 1) {
      std::printf("# GATE: reload healing sequence wrong "
                  "(first_failed=%d second_ok=%d injected=%lld)\n",
                  Gates().reload_first_failed ? 1 : 0,
                  Gates().reload_second_ok ? 1 : 0,
                  static_cast<long long>(Gates().reload_injected));
      ++gate_misses;
    }
  }
  // Determinism: identical script + seed => identical fault event log.
  if (Reports().count("determinism_a") != 0) {
    if (Gates().determinism_log_a.empty() ||
        Gates().determinism_log_a != Gates().determinism_log_b) {
      std::printf("# GATE: fault event logs differ across identical replays\n"
                  "--- run A ---\n%s\n--- run B ---\n%s\n",
                  Gates().determinism_log_a.c_str(),
                  Gates().determinism_log_b.c_str());
      ++gate_misses;
    }
  }
  // Span-drop gate, as in fig7/fig8: the fault path exercises every span
  // site; the lock-free rings must never overflow at this scale.
  const int64_t dropped = obs::Tracer::Global().spans_dropped();
  if (dropped != 0) {
    std::printf("# GATE: tracer dropped %lld spans (ring overflow)\n",
                static_cast<long long>(dropped));
    ++gate_misses;
  }

  std::printf(
      "\n# verification: %lld op errors/mismatches, %lld stale hits, "
      "%lld gate misses across %zu runs (injected faults are absorbed by "
      "retries/failover — any surviving op failure is a real one)\n",
      static_cast<long long>(failures), static_cast<long long>(stale),
      static_cast<long long>(gate_misses), Reports().size());
  return failures + stale + gate_misses;
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Figure 9: deterministic fault injection — failover, retries, "
      "brown-out degradation");
  const std::string json_path = genbase::bench::ExtractJsonPath(&argc, argv);
  const genbase::bench::ObsDumpPaths obs_paths =
      genbase::bench::ExtractObsPaths(&argc, argv);
  genbase::bench::RegisterCells();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const int64_t failures = genbase::bench::PrintFigure();
  std::vector<genbase::workload::WorkloadReport> reports;
  for (const auto& [key, report] : genbase::bench::Reports()) {
    reports.push_back(report);
  }
  const genbase::Status obs = genbase::bench::WriteObsDumps(obs_paths);
  if (!obs.ok()) {
    std::fprintf(stderr, "%s\n", obs.ToString().c_str());
    return 1;
  }
  return genbase::bench::FigureExitCode(json_path, "fig9", reports, failures);
}
