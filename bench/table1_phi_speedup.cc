// Table 1: analytics speedup of the Xeon Phi coprocessor-based system versus
// the Xeon-based system on SciDB + ScaLAPACK-style distributed kernels, large
// dataset, 1/2/4 nodes. Reproduces the paper's regime: biggest gains at 1
// node (max data per node), shrinking with node count as communication —
// which the coprocessor cannot accelerate — takes a larger share; and
// biclustering barely accelerating at all.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cluster/cluster_engine.h"
#include "core/driver.h"

namespace genbase::bench {
namespace {

constexpr int kNodeCounts[] = {1, 2, 4};

const std::pair<core::QueryId, const char*> kRows[] = {
    {core::QueryId::kCovariance, "Covariance"},
    {core::QueryId::kSvd, "SVD"},
    {core::QueryId::kStatistics, "Statistics"},
    {core::QueryId::kBiclustering, "Biclustering"},
};

cluster::ClusterEngineOptions HostOptions(int nodes) {
  return cluster::SciDbMnOptions(nodes);
}

cluster::ClusterEngineOptions PhiOptions(int nodes) {
  cluster::ClusterEngineOptions o = cluster::SciDbMnOptions(nodes);
  o.phi_offload = true;
  o.name = "SciDB + Xeon Phi";
  return o;
}

void RegisterCells() {
  for (int nodes : kNodeCounts) {
    for (bool phi : {false, true}) {
      const cluster::ClusterEngineOptions options =
          phi ? PhiOptions(nodes) : HostOptions(nodes);
      for (const auto& [query, label] : kRows) {
        (void)label;
        const std::string name = std::string("table1/") +
                                 (phi ? "phi" : "xeon") + "/n" +
                                 std::to_string(nodes) + "/" +
                                 core::QueryName(query);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [options, query](benchmark::State& state) {
              for (auto _ : state) {
                const core::CellResult cell = RunClusterCell(
                    options, query, core::DatasetSize::kLarge);
                state.SetIterationTime(std::max(cell.total_s, 1e-9));
                state.SetLabel(cell.Display());
              }
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void PrintTable() {
  std::printf("\n=== Table 1: analytics speedup, Xeon Phi vs Xeon "
              "(SciDB + ScaLAPACK, large dataset) ===\n");
  std::printf("%-14s %10s %10s %10s    (paper: cov 2.60/1.55/1.54, svd "
              "2.93/2.30/1.37,\n", "Benchmarks", "1 node", "2 nodes",
              "4 nodes");
  std::printf("%-14s %10s %10s %10s     stats 1.40/1.43/1.21, bicluster "
              "1.18/1.05/1.02)\n", "", "", "", "");
  for (const auto& [query, label] : kRows) {
    std::printf("%-14s", label);
    for (int nodes : kNodeCounts) {
      const auto* host =
          FindCell("SciDB", query, core::DatasetSize::kLarge, nodes);
      const auto* phi = FindCell("SciDB + Xeon Phi", query,
                                 core::DatasetSize::kLarge, nodes);
      if (host == nullptr || phi == nullptr || !host->status.ok() ||
          !phi->status.ok() || phi->analytics_s <= 0) {
        std::printf(" %10s", "n/a");
      } else {
        std::printf(" %9.2fx", host->analytics_s / phi->analytics_s);
      }
    }
    std::printf("\n");
  }

  std::printf("\n=== Overall-time speedup (paper: 'up to 1.5X with an "
              "average of around 1.3X' at 1 node) ===\n");
  for (const auto& [query, label] : kRows) {
    std::printf("%-14s", label);
    for (int nodes : kNodeCounts) {
      const auto* host =
          FindCell("SciDB", query, core::DatasetSize::kLarge, nodes);
      const auto* phi = FindCell("SciDB + Xeon Phi", query,
                                 core::DatasetSize::kLarge, nodes);
      if (host == nullptr || phi == nullptr || !host->status.ok() ||
          !phi->status.ok() || phi->total_s <= 0) {
        std::printf(" %10s", "n/a");
      } else {
        std::printf(" %9.2fx", host->total_s / phi->total_s);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner("Table 1: Phi analytics speedup, multi-node");
  genbase::bench::RegisterCells();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  genbase::bench::PrintTable();
  return 0;
}
