#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>

#include "common/check.h"
#include "common/simd.h"
#include "core/config.h"
#include "core/generator.h"
#include "engine/engines.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "plan/plan_engine.h"
#include "workload/report.h"

namespace genbase::bench {

namespace {

struct LoadedEngine {
  std::unique_ptr<core::Engine> engine;
  genbase::Status load_status;
};

std::map<int, core::GenBaseData>& DataCache() {
  static auto* cache = new std::map<int, core::GenBaseData>();
  return *cache;
}

std::map<std::string, LoadedEngine>& EngineCache() {
  static auto* cache = new std::map<std::string, LoadedEngine>();
  return *cache;
}

std::vector<core::CellResult>& Cells() {
  static auto* cells = new std::vector<core::CellResult>();
  return *cells;
}

core::CellResult RunOnCached(const std::string& cache_key,
                             const std::function<std::unique_ptr<
                                 core::Engine>()>& factory,
                             core::QueryId query, core::DatasetSize size,
                             int nodes) {
  auto& slot = EngineCache()[cache_key];
  if (slot.engine == nullptr) {
    slot.engine = factory();
    slot.load_status = slot.engine->LoadDataset(CachedData(size));
  }
  core::CellResult cell;
  if (!slot.load_status.ok()) {
    cell.engine = slot.engine->name();
    cell.query = query;
    cell.size = size;
    cell.status = slot.load_status;
    cell.infinite = slot.load_status.IsResourceFailure();
    cell.supported = slot.engine->SupportsQuery(query);
  } else {
    cell = core::RunCell(slot.engine.get(), query, size,
                         DefaultDriverOptions());
  }
  cell.nodes = nodes;
  RecordCell(cell);
  return cell;
}

}  // namespace

const core::GenBaseData& CachedData(core::DatasetSize size) {
  auto& cache = DataCache();
  const int key = static_cast<int>(size);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto data =
        core::GenerateDataset(size, core::SimConfig::Get().scale);
    GENBASE_CHECK(data.ok());
    it = cache.emplace(key, std::move(data).ValueOrDie()).first;
  }
  return it->second;
}

core::DriverOptions DefaultDriverOptions() {
  core::DriverOptions options;
  options.timeout_seconds = core::SimConfig::Get().timeout_seconds;
  return options;
}

core::CellResult RunSingleNodeCell(
    const std::string& engine_key,
    const std::function<std::unique_ptr<core::Engine>()>& factory,
    core::QueryId query, core::DatasetSize size) {
  const std::string cache_key =
      engine_key + "@" + core::DatasetSizeName(size);
  return RunOnCached(cache_key, factory, query, size, 1);
}

core::CellResult RunClusterCell(const cluster::ClusterEngineOptions& options,
                                core::QueryId query, core::DatasetSize size) {
  const std::string cache_key =
      options.name + (options.phi_offload ? "+phi" : "") + "/n" +
      std::to_string(options.nodes) + "@" + core::DatasetSizeName(size);
  return RunOnCached(
      cache_key,
      [&options]() -> std::unique_ptr<core::Engine> {
        return std::make_unique<cluster::ClusterEngine>(options);
      },
      query, size, options.nodes);
}

void RecordCell(const core::CellResult& cell) { Cells().push_back(cell); }

const std::vector<core::CellResult>& RecordedCells() { return Cells(); }

const core::CellResult* FindCell(const std::string& engine,
                                 core::QueryId query, core::DatasetSize size,
                                 int nodes) {
  for (const auto& c : Cells()) {
    if (c.engine == engine && c.query == query && c.size == size &&
        c.nodes == nodes) {
      return &c;
    }
  }
  return nullptr;
}

std::string CellDisplay(const std::string& engine, core::QueryId query,
                        core::DatasetSize size, int nodes) {
  const core::CellResult* c = FindCell(engine, query, size, nodes);
  return c == nullptr ? "?" : c->Display();
}

std::string FormatSeconds(double s) { return workload::FormatSeconds(s); }

const std::vector<ServingEngineSpec>& ServingEngines() {
  static const auto* engines = new std::vector<ServingEngineSpec>{
      {"scidb", "SciDB", engine::CreateSciDb},
      {"col_udf", "Column store + UDFs", engine::CreateColumnStoreUdf},
      {"col_r", "Column store + R", engine::CreateColumnStoreR},
      {"plan", "Planned column store", plan::CreatePlanStore},
  };
  return *engines;
}

std::string ExtractFlagValue(int* argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  std::string value;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
      continue;
    }
    if (arg == flag && i + 1 < *argc) {
      value = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;  // Keep the argv null-termination guarantee.
  return value;
}

std::string ExtractJsonPath(int* argc, char** argv) {
  return ExtractFlagValue(argc, argv, "--json");
}

namespace {

std::string DetectGitSha() {
  if (const char* env = std::getenv("GENBASE_GIT_SHA")) {
    if (env[0] != '\0') return env;
  }
  std::string sha;
#if defined(__linux__) || defined(__APPLE__)
  if (std::FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    pclose(p);
  }
#endif
  return sha.empty() ? "unknown" : sha;
}

std::string IsoUtcNow() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

const RunStamp& CurrentRunStamp() {
  static const RunStamp* stamp = [] {
    auto* s = new RunStamp();
    s->git_sha = DetectGitSha();
    s->kernel_backend = simd::BackendName(simd::ActiveBackend());
    s->timestamp = IsoUtcNow();
    return s;
  }();
  return *stamp;
}

std::string StampJson() {
  const RunStamp& s = CurrentRunStamp();
  // All three fields are shell-safe strings (hex sha, backend identifier,
  // ISO timestamp) — no escaping needed.
  return "{\"git_sha\":\"" + s.git_sha + "\",\"kernel_backend\":\"" +
         s.kernel_backend + "\",\"timestamp\":\"" + s.timestamp + "\"}";
}

ObsDumpPaths ExtractObsPaths(int* argc, char** argv) {
  ObsDumpPaths paths;
  paths.trace_path = ExtractFlagValue(argc, argv, "--trace");
  paths.metrics_path = ExtractFlagValue(argc, argv, "--metrics");
  paths.profile_path = ExtractFlagValue(argc, argv, "--profile");
  if (paths.metrics_path.empty()) {
    if (const char* env = std::getenv("GENBASE_METRICS_JSON")) {
      paths.metrics_path = env;
    }
  }
  if (!paths.profile_path.empty()) {
    obs::Profiler::SetEnabled(true);
    // The folded output aggregates spans, so profile runs want them all —
    // unless the caller pinned an explicit sampling rate for an experiment.
    if (std::getenv("GENBASE_TRACE_SAMPLE") == nullptr) {
      obs::Tracer::Global().set_sample_rate(1.0);
    }
  }
  return paths;
}

genbase::Status WriteObsDumps(const ObsDumpPaths& paths) {
  obs::Tracer& tracer = obs::Tracer::Global();
  if (!paths.trace_path.empty() || !paths.profile_path.empty()) {
    // One drain feeds both artifacts: TakeCollected empties the collector,
    // so trace and profile must come from the same snapshot.
    const std::vector<obs::Span> spans = tracer.TakeCollected();
    if (!paths.trace_path.empty()) {
      if (!obs::WriteTextFile(paths.trace_path,
                              obs::ChromeTraceJson(spans, StampJson()))) {
        return genbase::Status::IOError("cannot write trace file: " +
                                        paths.trace_path);
      }
      std::printf("# trace written to %s (%zu spans, %lld dropped)\n",
                  paths.trace_path.c_str(), spans.size(),
                  static_cast<long long>(tracer.spans_dropped()));
      // The slow-query log rides along with the trace: same base name, so
      // the two artifacts travel together through CI uploads.
      std::string slow_path = paths.trace_path;
      const std::string suffix = ".json";
      if (slow_path.size() >= suffix.size() &&
          slow_path.compare(slow_path.size() - suffix.size(), suffix.size(),
                            suffix) == 0) {
        slow_path.resize(slow_path.size() - suffix.size());
      }
      slow_path += ".slow.jsonl";
      const std::vector<obs::SlowQueryRecord> slow = tracer.TakeSlowQueries();
      if (!obs::WriteTextFile(slow_path, obs::SlowQueryJsonl(slow))) {
        return genbase::Status::IOError("cannot write slow-query log: " +
                                        slow_path);
      }
      std::printf("# slow-query log written to %s (%zu records)\n",
                  slow_path.c_str(), slow.size());
    }
    if (!paths.profile_path.empty()) {
      const std::string folded = obs::FoldedStacks(spans);
      if (!obs::WriteTextFile(paths.profile_path, folded)) {
        return genbase::Status::IOError("cannot write profile file: " +
                                        paths.profile_path);
      }
      std::printf("# folded stacks written to %s (%zu spans)\n",
                  paths.profile_path.c_str(), spans.size());
    }
  }
  if (!paths.metrics_path.empty()) {
    const std::string wrapped = "{\"stamp\":" + StampJson() + ",\"metrics\":" +
                                obs::MetricsRegistry::Global().ToJson() + "}";
    if (!obs::WriteTextFile(paths.metrics_path, wrapped)) {
      return genbase::Status::IOError("cannot write metrics file: " +
                                      paths.metrics_path);
    }
    std::printf("# metrics written to %s\n", paths.metrics_path.c_str());
  }
  return genbase::Status::OK();
}

genbase::Status WriteJsonReports(
    const std::string& path, const std::string& figure,
    const std::vector<workload::WorkloadReport>& reports) {
  if (path.empty()) return genbase::Status::OK();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return genbase::Status::IOError("cannot open json report file: " + path);
  }
  const auto& c = core::SimConfig::Get();
  std::fprintf(f,
               "{\"figure\":\"%s\",\"stamp\":%s,"
               "\"config\":{\"scale\":%.17g,"
               "\"timeout_seconds\":%.17g},\"reports\":[",
               figure.c_str(), StampJson().c_str(), c.scale,
               c.timeout_seconds);
  for (size_t i = 0; i < reports.size(); ++i) {
    std::fprintf(f, "%s%s", i == 0 ? "" : ",", reports[i].ToJson().c_str());
  }
  std::fprintf(f, "]}\n");
  // A truncated artifact that CI happily uploads is worse than a failed
  // step: surface short writes (disk full, I/O error) as a failure.
  const bool write_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || write_error) {
    return genbase::Status::IOError("short write to json report file: " +
                                    path);
  }
  std::printf("# json report written to %s (%zu runs)\n", path.c_str(),
              reports.size());
  return genbase::Status::OK();
}

int FigureExitCode(const std::string& json_path, const std::string& figure,
                   const std::vector<workload::WorkloadReport>& reports,
                   int64_t verification_failures) {
  const genbase::Status json =
      WriteJsonReports(json_path, figure, reports);
  if (!json.ok()) {
    std::fprintf(stderr, "%s\n", json.ToString().c_str());
    return 1;
  }
  return verification_failures == 0 ? 0 : 1;
}

void PrintBanner(const char* figure) {
  const auto& c = core::SimConfig::Get();
  std::printf("# GenBase reproduction — %s\n", figure);
  std::printf(
      "# scale=%.3g (paper dims x scale), timeout=%.0fs (paper: 7200s)\n",
      c.scale, c.timeout_seconds);
  for (core::DatasetSize s : kBenchSizes) {
    const core::DatasetDims d = core::DimsFor(s, c.scale);
    std::printf("#   %-6s: %lld genes x %lld patients (paper: %s)\n",
                core::DatasetSizeName(s),
                static_cast<long long>(d.genes),
                static_cast<long long>(d.patients),
                s == core::DatasetSize::kSmall    ? "5k x 5k"
                : s == core::DatasetSize::kMedium ? "15k x 20k"
                                                  : "30k x 40k");
  }
  std::printf(
      "# modeled constants: net=%.0fMB/s lat=%.0fus, MR job=%.2gs, "
      "UDF call=%.1gms, plpython cell=%.3gns, Phi gemm x%.2g bw x%.2g "
      "pcie=%.0fGB/s\n",
      c.net_bandwidth_bytes_per_s / 1e6, c.net_latency_s * 1e6,
      c.mr_job_startup_s, c.udf_invocation_overhead_s * 1e3,
      c.interpreted_cell_overhead_s * 1e9, c.phi_gemm_speedup,
      c.phi_bandwidth_speedup, c.phi_transfer_bytes_per_s / 1e9);
}

}  // namespace genbase::bench
