// Kernel microbenchmark suite: times dot/gemv/gemm/syrk/covariance and the
// Cheng–Church residue engines across GenBase-shaped sizes, for scalar vs
// SIMD vs threaded variants, and emits BENCH_kernels.json so the perf
// trajectory of the hot kernels is a tracked number.
//
//   kernelbench [--json=BENCH_kernels.json] [--baseline=FILE]
//
// The Cheng–Church FLOP gate — incremental engine must spend < 1/5 of the
// reference engine's residue FLOPs — is deterministic and enforced on every
// run. With --baseline the run additionally becomes the CI perf gate and
// exits nonzero when (a) any kernel regressed > 15% against the committed
// baseline ns, or (b) the SIMD Gemm/Syrk variants are < 2x the scalar path
// (AVX2 hosts). Gate (b) is machine-independent by construction; the
// absolute baseline (a) is committed with headroom and refreshed when the
// CI runner generation changes (see bench/baselines/kernels_ci.json).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bicluster/cheng_church.h"
#include "bicluster/synthetic.h"
#include "common/check.h"
#include "common/exec_context.h"
#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/sanitizers.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/generator.h"
#include "engine/engine_util.h"
#include "linalg/blas.h"
#include "linalg/covariance.h"
#include "linalg/matrix.h"
#include "obs/perf_counters.h"
#include "plan/plan_builder.h"
#include "plan/plan_engine.h"

namespace {

using genbase::Rng;
using genbase::ThreadPool;
using genbase::bicluster::ChengChurch;
using genbase::bicluster::ChengChurchCounters;
using genbase::bicluster::ChengChurchImpl;
using genbase::bicluster::ChengChurchOptions;
using genbase::bicluster::MeanSquaredResidue;
using genbase::bicluster::PlantedBiclusterMatrix;
using genbase::linalg::Matrix;
using genbase::linalg::MatrixView;

/// --- GenBase-shaped workloads ------------------------------------------------
/// The microarray matrix is (genes x patients); regression/SVD work on tall
/// panels, covariance/Syrk contract the sample dimension over a gene block.
constexpr int64_t kVecLen = 1 << 16;        // BLAS-1 streams.
constexpr int64_t kGemvRows = 1024, kGemvCols = 512;
constexpr int64_t kGemmM = 384, kGemmK = 384, kGemmN = 384;
constexpr int64_t kSyrkRows = 1024, kSyrkCols = 384;
constexpr int64_t kCcRows = 384, kCcCols = 288;

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

std::vector<double> RandomVector(int64_t n, uint64_t seed) {
  std::vector<double> v(static_cast<size_t>(n));
  Rng rng(seed);
  for (auto& x : v) x = rng.Gaussian();
  return v;
}

/// Captured per-benchmark mean real time (ns/iteration), keyed by name.
std::map<std::string, double>& Results() {
  static std::map<std::string, double> r;
  return r;
}

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Strip the "/min_time:…" decoration so names match registration.
      std::string name = run.benchmark_name();
      const size_t cut = name.find("/min_time");
      if (cut != std::string::npos) name.resize(cut);
      // real_accumulated_time is unit-independent (seconds over all
      // iterations) — GetAdjustedRealTime would be scaled by the display
      // unit.
      if (run.iterations > 0) {
        Results()[name] =
            1e9 * run.real_accumulated_time / static_cast<double>(run.iterations);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

/// Scoped backend override for one benchmark body.
class ScopedBackend {
 public:
  explicit ScopedBackend(genbase::simd::Backend b)
      : previous_(genbase::simd::SetBackend(b)) {}
  ~ScopedBackend() { genbase::simd::SetBackend(previous_); }

 private:
  genbase::simd::Backend previous_;
};

constexpr auto kScalar = genbase::simd::Backend::kScalar;
constexpr auto kSimd = genbase::simd::Backend::kSimd;

/// FLOP counts per invocation, for the GFLOP/s column.
double KernelFlops(const std::string& kernel) {
  if (kernel == "dot") return 2.0 * kVecLen;
  if (kernel == "axpy") return 2.0 * kVecLen;
  if (kernel == "gemv") return 2.0 * kGemvRows * kGemvCols;
  if (kernel == "gemm") return 2.0 * kGemmM * kGemmK * kGemmN;
  // Upper triangle only (mirror is free-ish): m * n * (n + 1) FMAs.
  if (kernel == "syrk" || kernel == "covariance") {
    return static_cast<double>(kSyrkRows) * kSyrkCols * (kSyrkCols + 1);
  }
  return 0.0;
}

std::string KernelOf(const std::string& name) {
  return name.substr(0, name.find('/'));
}

/// Matches queries.cc: delta as a fraction of the full-matrix MSR.
double CcDelta(const Matrix& m) {
  std::vector<int64_t> rows(static_cast<size_t>(m.rows()));
  std::vector<int64_t> cols(static_cast<size_t>(m.cols()));
  for (int64_t i = 0; i < m.rows(); ++i) rows[static_cast<size_t>(i)] = i;
  for (int64_t j = 0; j < m.cols(); ++j) cols[static_cast<size_t>(j)] = j;
  return 0.05 * MeanSquaredResidue(MatrixView(m), rows, cols);
}

void RegisterAll(ThreadPool* pool) {
  // Inputs are leaked intentionally: benchmarks reference them until exit.
  auto* xv = new std::vector<double>(RandomVector(kVecLen, 1));
  auto* yv = new std::vector<double>(RandomVector(kVecLen, 2));
  auto* gemv_a = new Matrix(RandomMatrix(kGemvRows, kGemvCols, 3));
  auto* gemv_x = new std::vector<double>(RandomVector(kGemvCols, 4));
  auto* gemv_y = new std::vector<double>(static_cast<size_t>(kGemvRows));
  auto* gemm_a = new Matrix(RandomMatrix(kGemmM, kGemmK, 5));
  auto* gemm_b = new Matrix(RandomMatrix(kGemmK, kGemmN, 6));
  auto* gemm_c = new Matrix(kGemmM, kGemmN);
  auto* syrk_a = new Matrix(RandomMatrix(kSyrkRows, kSyrkCols, 7));
  auto* syrk_c = new Matrix(kSyrkCols, kSyrkCols);
  auto* cc = new Matrix(PlantedBiclusterMatrix(kCcRows, kCcCols, 8));

  auto reg = [](const std::string& name, auto fn) {
    benchmark::RegisterBenchmark(name.c_str(), fn)
        ->MinTime(0.05)
        ->Unit(benchmark::kMicrosecond);
  };

  for (const auto backend : {kScalar, kSimd}) {
    const std::string v = genbase::simd::BackendName(backend);
    reg("dot/" + v, [=](benchmark::State& state) {
      ScopedBackend sb(backend);
      for (auto _ : state) {
        benchmark::DoNotOptimize(
            genbase::linalg::Dot(xv->data(), yv->data(), kVecLen));
      }
    });
    reg("axpy/" + v, [=](benchmark::State& state) {
      ScopedBackend sb(backend);
      for (auto _ : state) {
        genbase::linalg::Axpy(1e-6, xv->data(), yv->data(), kVecLen);
        benchmark::DoNotOptimize(yv->data());
      }
    });
    reg("gemv/" + v, [=](benchmark::State& state) {
      ScopedBackend sb(backend);
      for (auto _ : state) {
        genbase::linalg::Gemv(MatrixView(*gemv_a), gemv_x->data(),
                              gemv_y->data());
        benchmark::DoNotOptimize(gemv_y->data());
      }
    });
    reg("gemm/" + v, [=](benchmark::State& state) {
      ScopedBackend sb(backend);
      for (auto _ : state) {
        benchmark::DoNotOptimize(genbase::linalg::Gemm(
            MatrixView(*gemm_a), MatrixView(*gemm_b), gemm_c));
      }
    });
    reg("syrk/" + v, [=](benchmark::State& state) {
      ScopedBackend sb(backend);
      for (auto _ : state) {
        benchmark::DoNotOptimize(
            genbase::linalg::Syrk(MatrixView(*syrk_a), syrk_c));
      }
    });
    reg("covariance/" + v, [=](benchmark::State& state) {
      ScopedBackend sb(backend);
      for (auto _ : state) {
        auto cov = genbase::linalg::CovarianceMatrix(
            MatrixView(*syrk_a), genbase::linalg::KernelQuality::kTuned);
        benchmark::DoNotOptimize(cov);
      }
    });
  }

  // Threaded variants (SIMD backend + the default pool).
  reg("gemm/simd_threaded", [=](benchmark::State& state) {
    ScopedBackend sb(kSimd);
    for (auto _ : state) {
      benchmark::DoNotOptimize(genbase::linalg::Gemm(
          MatrixView(*gemm_a), MatrixView(*gemm_b), gemm_c, pool));
    }
  });
  reg("syrk/simd_threaded", [=](benchmark::State& state) {
    ScopedBackend sb(kSimd);
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          genbase::linalg::Syrk(MatrixView(*syrk_a), syrk_c, pool));
    }
  });

  // Cheng–Church residue engines: whole-extraction timing; per-iteration
  // figures come from the counter run in main().
  for (const auto impl : {ChengChurchImpl::kReference,
                          ChengChurchImpl::kIncremental}) {
    const std::string v = impl == ChengChurchImpl::kReference
                              ? "reference" : "incremental";
    reg("residue/" + v, [=](benchmark::State& state) {
      ScopedBackend sb(kSimd);
      ChengChurchOptions opt;
      opt.delta = CcDelta(*cc);
      opt.max_biclusters = 1;
      opt.min_rows = 4;
      opt.min_cols = 4;
      opt.impl = impl;
      for (auto _ : state) {
        benchmark::DoNotOptimize(ChengChurch(MatrixView(*cc), opt));
      }
    });
  }
}

/// --- static-plan query benches ----------------------------------------------
/// plan_compile/qN times one full CompileQuery (filters, joins, mappings,
/// schedule, memory plan); plan_execute/qN times one cached-plan execution;
/// legacy_execute/qN is the per-run PrepareInputsColumnar + analytics path
/// the plan replaces, on the same tables and kernels.

constexpr double kPlanScale = 0.02;

genbase::core::QueryParams PlanParams() {
  genbase::core::QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

struct PlanBench {
  genbase::plan::PlanEngine engine;
  std::shared_ptr<genbase::engine::ColumnarTables> tables;
  genbase::MemoryTracker legacy_tracker{genbase::MemoryTracker::kUnlimited,
                                        "LegacyBench"};

  static PlanBench& Get() {
    static auto* b = [] {
      auto* pb = new PlanBench();
      auto data = genbase::core::GenerateDataset(
          genbase::core::DatasetSize::kSmall, kPlanScale);
      GENBASE_CHECK(data.ok());
      GENBASE_CHECK(pb->engine.LoadDataset(*data).ok());
      pb->tables = std::make_shared<genbase::engine::ColumnarTables>();
      GENBASE_CHECK(genbase::engine::LoadColumnarTables(
                        *data, &pb->legacy_tracker, pb->tables.get())
                        .ok());
      return pb;
    }();
    return *b;
  }
};

genbase::Result<genbase::core::QueryResult> RunLegacyQuery(
    PlanBench& b, genbase::core::QueryId q, genbase::ExecContext* ctx) {
  GENBASE_ASSIGN_OR_RETURN(
      genbase::engine::QueryInputs inputs,
      genbase::engine::PrepareInputsColumnar(*b.tables, q, PlanParams(), ctx));
  return genbase::engine::RunStandardAnalytics(
      q, std::move(inputs), PlanParams(),
      genbase::linalg::KernelQuality::kTuned, ctx);
}

void RegisterPlanBenches() {
  auto reg = [](const std::string& name, auto fn) {
    benchmark::RegisterBenchmark(name.c_str(), fn)
        ->MinTime(0.05)
        ->Unit(benchmark::kMicrosecond);
  };
  for (const auto q : genbase::core::kAllQueries) {
    const std::string qn = genbase::core::QueryName(q);
    reg("plan_compile/" + qn, [q](benchmark::State& state) {
      ScopedBackend sb(kSimd);
      PlanBench& b = PlanBench::Get();
      genbase::ExecContext ctx;
      b.engine.PrepareContext(&ctx);
      for (auto _ : state) {
        auto plan = genbase::plan::CompileQuery(b.tables, q, PlanParams(),
                                                b.engine.tracker(), &ctx);
        GENBASE_CHECK(plan.ok());
        benchmark::DoNotOptimize(plan);
      }
    });
    reg("plan_execute/" + qn, [q](benchmark::State& state) {
      ScopedBackend sb(kSimd);
      PlanBench& b = PlanBench::Get();
      genbase::ExecContext ctx;
      b.engine.PrepareContext(&ctx);
      // Warm the plan cache so the loop times execution, not compilation.
      GENBASE_CHECK(b.engine.RunQuery(q, PlanParams(), &ctx).ok());
      for (auto _ : state) {
        auto r = b.engine.RunQuery(q, PlanParams(), &ctx);
        GENBASE_CHECK(r.ok());
        benchmark::DoNotOptimize(r);
      }
    });
    reg("legacy_execute/" + qn, [q](benchmark::State& state) {
      ScopedBackend sb(kSimd);
      PlanBench& b = PlanBench::Get();
      genbase::ExecContext ctx;
      ctx.set_memory(&b.legacy_tracker);
      for (auto _ : state) {
        auto r = RunLegacyQuery(b, q, &ctx);
        GENBASE_CHECK(r.ok());
        benchmark::DoNotOptimize(r);
      }
    });
  }
}

/// Deterministic plan gates, enforced on every run (no clock involved):
/// every compiled plan's predicted arena peak must equal the observed
/// execute-time high-water mark, at least one of Q1–Q5 must reuse arena
/// bytes, and the planned engine's total tracked peak must stay within a
/// documented factor of the legacy path's.
int RunPlanGates() {
  int failures = 0;
  PlanBench& b = PlanBench::Get();
  genbase::ExecContext ctx;
  b.engine.PrepareContext(&ctx);
  int64_t total_reused = 0;
  for (const auto q : genbase::core::kAllQueries) {
    auto plan = b.engine.CompileForTest(q, PlanParams(), &ctx);
    if (!plan.ok()) {
      std::fprintf(stderr, "GATE FAIL: plan compile %s: %s\n",
                   genbase::core::QueryName(q),
                   plan.status().ToString().c_str());
      ++failures;
      continue;
    }
    auto r = b.engine.RunQuery(q, PlanParams(), &ctx);
    if (!r.ok()) {
      std::fprintf(stderr, "GATE FAIL: plan execute %s: %s\n",
                   genbase::core::QueryName(q),
                   r.status().ToString().c_str());
      ++failures;
      continue;
    }
    total_reused += (*plan)->memory_plan().reused_bytes;
    if ((*plan)->observed_peak_bytes() !=
        (*plan)->memory_plan().arena_bytes) {
      std::fprintf(stderr,
                   "GATE FAIL: %s arena peak mismatch: observed %lld vs "
                   "predicted %lld\n",
                   genbase::core::QueryName(q),
                   static_cast<long long>((*plan)->observed_peak_bytes()),
                   static_cast<long long>((*plan)->memory_plan().arena_bytes));
      ++failures;
    }
  }
  if (total_reused <= 0) {
    std::fprintf(stderr,
                 "GATE FAIL: no arena bytes reused across Q1-Q5 (planner "
                 "reuse regressed)\n");
    ++failures;
  }
  // Memory-peak gate: run the five legacy queries against the legacy
  // tracker (tables + tracked per-run temporaries), then compare engine
  // totals. The planned engine's peak additionally holds five cached
  // plans' statics (join index, mappings — precomputed DM state the legacy
  // path rebuilds per run, largely through untracked std::vectors) plus
  // their pooled arenas, so parity is not the bar; staying within 2.5x is.
  // A planner or statics blow-up trips this long before it hurts RSS.
  {
    genbase::ExecContext legacy_ctx;
    legacy_ctx.set_memory(&b.legacy_tracker);
    for (const auto q : genbase::core::kAllQueries) {
      auto r = RunLegacyQuery(b, q, &legacy_ctx);
      if (!r.ok()) {
        std::fprintf(stderr, "GATE FAIL: legacy execute %s: %s\n",
                     genbase::core::QueryName(q),
                     r.status().ToString().c_str());
        ++failures;
      }
    }
  }
  const int64_t plan_peak = b.engine.tracker()->peak();
  const int64_t legacy_peak = b.legacy_tracker.peak();
  if (2 * plan_peak > 5 * legacy_peak) {
    std::fprintf(stderr,
                 "GATE FAIL: planned engine peak %lldB > 2.5x legacy "
                 "%lldB\n",
                 static_cast<long long>(plan_peak),
                 static_cast<long long>(legacy_peak));
    ++failures;
  }
  if (failures == 0) {
    std::printf("# plan gates passed: reused=%lldB peak planned=%lldB "
                "legacy=%lldB\n",
                static_cast<long long>(total_reused),
                static_cast<long long>(plan_peak),
                static_cast<long long>(legacy_peak));
  }
  return failures;
}

/// Relative planned-vs-legacy throughput gate: cached planned execution
/// must not run slower than the per-run prepare+analytics path it replaces
/// (>10% grace). Clock-dependent, so CI (--baseline) mode only; sanitizer
/// builds skip it — instrumentation taxes the two paths asymmetrically.
bool SkipOverheadGates() {
  if (genbase::kUnderSanitizer) return true;
  const char* env = std::getenv("GENBASE_SKIP_OVERHEAD_GATES");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

int RunPlanSpeedGates() {
  int failures = 0;
  for (const auto q : genbase::core::kAllQueries) {
    const std::string qn = genbase::core::QueryName(q);
    const auto planned = Results().find("plan_execute/" + qn);
    const auto legacy = Results().find("legacy_execute/" + qn);
    if (planned == Results().end() || legacy == Results().end()) continue;
    if (planned->second > legacy->second * 1.10) {
      std::fprintf(stderr,
                   "GATE FAIL: plan_execute/%s %.0fns slower than legacy "
                   "%.0fns (>10%%)\n",
                   qn.c_str(), planned->second, legacy->second);
      ++failures;
    }
  }
  return failures;
}

/// One counted extraction per engine, for the FLOP-reduction gate and the
/// per-iteration timing lines.
struct ResidueAccounting {
  ChengChurchCounters reference;
  ChengChurchCounters incremental;
  double flop_ratio() const {
    return incremental.residue_flops > 0
               ? static_cast<double>(reference.residue_flops) /
                     static_cast<double>(incremental.residue_flops)
               : 0.0;
  }
};

ResidueAccounting CountResidueWork() {
  const Matrix m = PlantedBiclusterMatrix(kCcRows, kCcCols, 8);
  ResidueAccounting acc;
  ChengChurchOptions opt;
  opt.delta = CcDelta(m);
  opt.max_biclusters = 1;
  opt.min_rows = 4;
  opt.min_cols = 4;
  opt.impl = ChengChurchImpl::kReference;
  opt.counters = &acc.reference;
  (void)ChengChurch(MatrixView(m), opt);
  opt.impl = ChengChurchImpl::kIncremental;
  opt.counters = &acc.incremental;
  (void)ChengChurch(MatrixView(m), opt);
  return acc;
}

/// Hardware-counter profile of the SIMD kernel variants: one delta-read of
/// the thread's perf_event group around a fixed batch of invocations per
/// kernel. When the counters cannot open (perf_event_paranoid, no PMU,
/// non-Linux) every reading is invalid and serializes as nulls — the
/// profile degrades, the benchmark never fails because of it.
std::map<std::string, genbase::obs::PerfReading> ProfileKernels() {
  std::map<std::string, genbase::obs::PerfReading> out;
  genbase::obs::PerfCounterSet* counters = genbase::obs::ThreadPerfCounters();
  ScopedBackend sb(kSimd);

  const std::vector<double> xv = RandomVector(kVecLen, 1);
  std::vector<double> yv = RandomVector(kVecLen, 2);
  const Matrix gemv_a = RandomMatrix(kGemvRows, kGemvCols, 3);
  const std::vector<double> gemv_x = RandomVector(kGemvCols, 4);
  std::vector<double> gemv_y(static_cast<size_t>(kGemvRows));
  const Matrix gemm_a = RandomMatrix(kGemmM, kGemmK, 5);
  const Matrix gemm_b = RandomMatrix(kGemmK, kGemmN, 6);
  Matrix gemm_c(kGemmM, kGemmN);
  const Matrix syrk_a = RandomMatrix(kSyrkRows, kSyrkCols, 7);
  Matrix syrk_c(kSyrkCols, kSyrkCols);

  const auto profile = [&](const std::string& name, int reps, auto body) {
    const genbase::obs::PerfReading begin = counters->Read();
    for (int r = 0; r < reps; ++r) body();
    out[name] = counters->Read() - begin;
  };
  profile("dot/simd", 200, [&] {
    benchmark::DoNotOptimize(genbase::linalg::Dot(xv.data(), yv.data(),
                                                  kVecLen));
  });
  profile("gemv/simd", 50, [&] {
    genbase::linalg::Gemv(MatrixView(gemv_a), gemv_x.data(), gemv_y.data());
    benchmark::DoNotOptimize(gemv_y.data());
  });
  profile("gemm/simd", 3, [&] {
    benchmark::DoNotOptimize(
        genbase::linalg::Gemm(MatrixView(gemm_a), MatrixView(gemm_b),
                              &gemm_c));
  });
  profile("syrk/simd", 3, [&] {
    benchmark::DoNotOptimize(genbase::linalg::Syrk(MatrixView(syrk_a),
                                                   &syrk_c));
  });
  profile("covariance/simd", 3, [&] {
    auto cov = genbase::linalg::CovarianceMatrix(
        MatrixView(syrk_a), genbase::linalg::KernelQuality::kTuned);
    benchmark::DoNotOptimize(cov);
  });
  return out;
}

/// Baseline files keep one kernel per line: `"gemm/scalar":{"ns":123.4},`.
std::map<std::string, double> ParseBaseline(const std::string& path,
                                            bool* ok) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  *ok = in.good();
  std::string line;
  while (std::getline(in, line)) {
    const size_t name_start = line.find('"');
    if (name_start == std::string::npos) continue;
    const size_t name_end = line.find('"', name_start + 1);
    if (name_end == std::string::npos) continue;
    const std::string name =
        line.substr(name_start + 1, name_end - name_start - 1);
    if (name.find('/') == std::string::npos) continue;  // Not a kernel row.
    const size_t ns_key = line.find("\"ns\":", name_end);
    if (ns_key == std::string::npos) continue;
    out[name] = std::strtod(line.c_str() + ns_key + 5, nullptr);
  }
  return out;
}

int WriteJson(const std::string& path, const ResidueAccounting& acc,
              const std::map<std::string, genbase::obs::PerfReading>& perf) {
  if (path.empty()) return 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"figure\":\"kernelbench\",\"stamp\":%s,\n",
               genbase::bench::StampJson().c_str());
  std::fprintf(f, "\"cpu\":{\"avx2\":%s},\n",
               genbase::simd::CpuSupportsAvx2() ? "true" : "false");
  std::fprintf(f, "\"kernels\":{\n");
  bool first = true;
  for (const auto& [name, ns] : Results()) {
    const double flops = KernelFlops(KernelOf(name));
    std::fprintf(f, "%s\"%s\":{\"ns\":%.1f,\"gflops\":%.3f}", first ? "" : ",\n",
                 name.c_str(), ns, flops > 0 && ns > 0 ? flops / ns : 0.0);
    first = false;
  }
  std::fprintf(f, "\n},\n\"perf\":{");
  first = true;
  for (const auto& [name, reading] : perf) {
    std::fprintf(f, "%s\"%s\":%s", first ? "" : ",", name.c_str(),
                 reading.ToJson().c_str());
    first = false;
  }
  std::fprintf(f, "},\n\"residue\":{");
  std::fprintf(f,
               "\"reference_flops\":%lld,\"incremental_flops\":%lld,"
               "\"flop_ratio\":%.2f,\"reference_iterations\":%lld,"
               "\"incremental_iterations\":%lld}",
               static_cast<long long>(acc.reference.residue_flops),
               static_cast<long long>(acc.incremental.residue_flops),
               acc.flop_ratio(),
               static_cast<long long>(acc.reference.iterations),
               static_cast<long long>(acc.incremental.iterations));
  std::fprintf(f, "}\n");
  const bool write_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || write_error) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return 1;
  }
  std::printf("# json report written to %s (%zu kernels)\n", path.c_str(),
              Results().size());
  return 0;
}

double SpeedupOf(const char* kernel) {
  const auto scalar = Results().find(std::string(kernel) + "/scalar");
  const auto simd = Results().find(std::string(kernel) + "/simd");
  if (scalar == Results().end() || simd == Results().end() ||
      simd->second <= 0) {
    return 0.0;
  }
  return scalar->second / simd->second;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      genbase::bench::ExtractFlagValue(&argc, argv, "--json");
  const std::string baseline_path =
      genbase::bench::ExtractFlagValue(&argc, argv, "--baseline");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  ThreadPool* pool = genbase::DefaultPool();
  RegisterAll(pool);
  RegisterPlanBenches();
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const ResidueAccounting acc = CountResidueWork();
  const std::map<std::string, genbase::obs::PerfReading> perf =
      ProfileKernels();

  // Summary: scalar vs SIMD speedups plus the residue-engine accounting.
  std::printf("\n--- kernelbench summary (avx2 %s) ---\n",
              genbase::simd::CpuSupportsAvx2() ? "available" : "absent");
  for (const char* k : {"dot", "axpy", "gemv", "gemm", "syrk",
                        "covariance"}) {
    std::printf("  %-10s simd speedup %.2fx\n", k, SpeedupOf(k));
  }
  bool perf_valid = false;
  for (const auto& [name, reading] : perf) {
    if (!reading.valid) continue;
    perf_valid = true;
    std::printf("  %-16s ipc %.2f  cache-miss %.1f%%  (%.2e cycles)\n",
                name.c_str(), reading.ipc(),
                100.0 * reading.cache_miss_rate(),
                static_cast<double>(reading.cycles));
  }
  if (!perf_valid) {
    std::printf("  hardware counters unavailable "
                "(perf_event_open denied or no PMU)\n");
  }
  const auto ref_it = Results().find("residue/reference");
  const auto inc_it = Results().find("residue/incremental");
  if (ref_it != Results().end() && inc_it != Results().end()) {
    std::printf("  residue engines: reference %.0fus/iter (%lld iters), "
                "incremental %.0fus/iter (%lld iters), flop ratio %.1fx\n",
                1e-3 * ref_it->second /
                    std::max<int64_t>(1, acc.reference.iterations),
                static_cast<long long>(acc.reference.iterations),
                1e-3 * inc_it->second /
                    std::max<int64_t>(1, acc.incremental.iterations),
                static_cast<long long>(acc.incremental.iterations),
                acc.flop_ratio());
  }

  int failures = WriteJson(json_path, acc, perf);

  // The FLOP-reduction gate is deterministic: enforce it on every run.
  if (acc.flop_ratio() < 5.0) {
    std::fprintf(stderr,
                 "GATE FAIL: incremental Cheng-Church flop ratio %.2fx < 5x\n",
                 acc.flop_ratio());
    ++failures;
  }

  // Static-plan gates: arena-peak exactness, reuse and memory ceiling are
  // deterministic — every run; the planned-vs-legacy speed ratio is CI-only.
  failures += RunPlanGates();

  if (!baseline_path.empty()) {
    if (SkipOverheadGates()) {
      std::printf("# plan speed gates skipped (sanitizer build or "
                  "GENBASE_SKIP_OVERHEAD_GATES)\n");
    } else {
      failures += RunPlanSpeedGates();
    }
  }

  if (!baseline_path.empty()) {
    // Relative speed gates (machine-independent) — CI mode only, because
    // they need a sane clock, not just sane code.
    if (genbase::simd::CpuSupportsAvx2()) {
      for (const char* k : {"gemm", "syrk"}) {
        const double speedup = SpeedupOf(k);
        if (speedup < 2.0) {
          std::fprintf(stderr,
                       "GATE FAIL: %s simd speedup %.2fx < 2x scalar\n", k,
                       speedup);
          ++failures;
        }
      }
    }
    bool baseline_ok = false;
    const std::map<std::string, double> baseline =
        ParseBaseline(baseline_path, &baseline_ok);
    if (!baseline_ok || baseline.empty()) {
      std::fprintf(stderr, "GATE FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      ++failures;
    }
    for (const auto& [name, base_ns] : baseline) {
      const auto it = Results().find(name);
      if (it == Results().end()) {
        std::fprintf(stderr, "GATE FAIL: baseline kernel %s not measured\n",
                     name.c_str());
        ++failures;
        continue;
      }
      if (it->second > base_ns * 1.15) {
        std::fprintf(stderr,
                     "GATE FAIL: %s regressed: %.0fns vs baseline %.0fns "
                     "(>15%%)\n",
                     name.c_str(), it->second, base_ns);
        ++failures;
      }
    }
    if (failures == 0) {
      std::printf("# baseline gate passed (%zu kernels within 15%%)\n",
                  baseline.size());
    }
  }

  benchmark::Shutdown();
  return failures == 0 ? 0 : 1;
}
