// Figure 7 (beyond the paper): the serving stack — result cache, admission
// control, shard routing — in front of the paper's engines. Three sweeps per
// engine over the small dataset:
//
//   (a) cache hit-ratio x shard count, closed loop: param_variants controls
//       the number of distinct (query, params) keys in the mix, so fewer
//       variants mean a hotter cache; shards {1,2,4} scale the engine tier.
//   (b) offered load vs goodput, open loop: Poisson arrivals at multiples of
//       the engine's measured closed-loop capacity, with a bounded admission
//       queue and deadline-based shedding — goodput, shed counts and the
//       (coordinated-omission-corrected) served-op tail are reported
//       separately, so overload behavior is honest.
//
// Deterministic by construction: schedules (count, mix, variants) are pure
// functions of the spec seed, and every served operation's result — cache
// hit or engine execution — is verified against core/reference ground
// truth. The exit code gates on zero errors/mismatches; shed ops are load
// shedding, not failures.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/sanitizers.h"
#include "core/config.h"
#include "core/reference.h"
#include "engine/engines.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serving/serving_stack.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace genbase::bench {
namespace {

constexpr int kShardCounts[] = {1, 2, 4};
constexpr int kVariantCounts[] = {1, 4, 16};
constexpr double kLoadMultipliers[] = {0.6, 2.0, 4.0};

workload::WorkloadSpec BaseSpec(int param_variants) {
  workload::WorkloadSpec spec;
  spec.name = "serving-mix";
  spec.mix = {
      {core::QueryId::kRegression, 30},
      {core::QueryId::kCovariance, 20},
      {core::QueryId::kBiclustering, 5},
      {core::QueryId::kSvd, 15},
      {core::QueryId::kStatistics, 30},
  };
  spec.size = core::DatasetSize::kSmall;
  spec.model = workload::ClientModel::kClosedLoop;
  spec.clients = 8;
  spec.warmup_ops = 5;
  spec.measured_ops = 40;
  spec.param_variants = param_variants;
  spec.timeout_seconds = core::SimConfig::Get().timeout_seconds;
  spec.seed = 42;
  spec.verify = true;
  return spec;
}

std::map<std::string, workload::WorkloadReport>& Reports() {
  static auto* reports = new std::map<std::string, workload::WorkloadReport>();
  return *reports;
}

std::string RunKey(const char* engine, int shards, int variants,
                   double load_mult) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s/s%d/v%d/x%.1f", engine, shards,
                variants, load_mult);
  return buf;
}

// Ground truth depends only on (query, variant params, data) — compute the
// union over every schedule this figure runs once, share across all cells.
// All specs reuse one (name, seed, op budget), so the (query, variant)
// sequence is identical across sweeps and the union stays small.
const std::map<workload::WorkloadRunner::TruthKey, core::QueryResult>&
SharedTruths() {
  static const auto* truths = [] {
    auto* map =
        new std::map<workload::WorkloadRunner::TruthKey, core::QueryResult>();
    const core::GenBaseData& data = CachedData(core::DatasetSize::kSmall);
    std::set<workload::WorkloadRunner::TruthKey> pairs;
    for (int variants : kVariantCounts) {
      const workload::WorkloadSpec spec = BaseSpec(variants);
      const auto schedule = workload::BuildSchedule(spec);
      for (size_t i = static_cast<size_t>(spec.warmup_ops);
           i < schedule.size(); ++i) {
        pairs.insert({schedule[i].query, schedule[i].variant});
      }
    }
    for (const auto& [query, variant] : pairs) {
      auto truth = core::RunReferenceQuery(
          query, data,
          workload::VariantParams(BaseSpec(1).params, variant));
      GENBASE_CHECK(truth.ok());
      map->emplace(std::make_pair(query, variant),
                   std::move(truth).ValueOrDie());
    }
    return map;
  }();
  return *truths;
}

genbase::Result<workload::WorkloadReport> RunOnce(
    const ServingEngineSpec& engine, const workload::WorkloadSpec& spec,
    const serving::ServingOptions& serving_options) {
  auto stack = serving::ServingStack::Create(
      serving_options, engine.factory,
      CachedData(core::DatasetSize::kSmall));
  GENBASE_RETURN_NOT_OK(stack.status());
  workload::WorkloadRunner runner(spec);
  runner.set_ground_truth_variants(SharedTruths());
  return runner.Run(stack.ValueOrDie().get(),
                    CachedData(core::DatasetSize::kSmall));
}

void RegisterCacheShardSweep() {
  for (const auto& engine : ServingEngines()) {
    for (int variants : kVariantCounts) {
      for (int shards : kShardCounts) {
        const std::string name = std::string("fig7a/") + engine.key +
                                 "/variants:" + std::to_string(variants) +
                                 "/shards:" + std::to_string(shards);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [engine, variants, shards](benchmark::State& state) {
              for (auto _ : state) {
                serving::ServingOptions options;
                options.shards = shards;
                options.cache_enabled = true;
                auto report = RunOnce(engine, BaseSpec(variants), options);
                if (!report.ok()) {
                  state.SkipWithError(report.status().ToString().c_str());
                  return;
                }
                state.counters["qps"] = report->achieved_qps();
                state.counters["hit_pct"] =
                    report->serving.cache.hit_ratio() * 100;
                Reports()[RunKey(engine.key, shards, variants, 0)] =
                    std::move(report).ValueOrDie();
              }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void RegisterOverloadSweep() {
  for (const auto& engine : ServingEngines()) {
    for (double mult : kLoadMultipliers) {
      const std::string name = std::string("fig7b/") + engine.key +
                               "/load:" + std::to_string(mult);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [engine, mult](benchmark::State& state) {
            for (auto _ : state) {
              // Capacity reference: the closed-loop 2-shard/4-variant cell
              // from sweep (a), which benchmark ordering guarantees already
              // ran. Offered load is a multiple of what this engine can
              // actually serve, so "2x" means the same stress for SciDB as
              // for the R config.
              auto it = Reports().find(RunKey(engine.key, 2, 4, 0));
              const bool have_reference =
                  it != Reports().end() && it->second.achieved_qps() > 0;
              if (!have_reference) {
                // Reachable when fig7a was filtered out or its cell failed:
                // the "Nx capacity" labels then reflect this placeholder,
                // not the engine's measured capacity — say so loudly.
                std::printf(
                    "# warning: fig7a reference cell %s missing; fig7b/%s "
                    "offered load uses fallback capacity 20 qps, not "
                    "measured capacity\n",
                    RunKey(engine.key, 2, 4, 0).c_str(), engine.key);
              }
              // Real-clock capacity: arrivals are real-time, so the offered
              // rate must be a multiple of what the server absorbs on the
              // same clock (modeled virtual seconds never occupy a slot).
              const double capacity =
                  have_reference ? it->second.real_goodput_qps() : 20.0;
              const double mean_service =
                  have_reference ? it->second.total.latency.mean() : 0.05;

              workload::WorkloadSpec spec = BaseSpec(4);
              spec.model = workload::ClientModel::kOpenLoopPoisson;
              spec.arrival_rate_qps = capacity * mult;
              spec.clients = 12;

              serving::ServingOptions options;
              options.shards = 2;
              options.cache_enabled = true;
              options.admission.max_inflight = 2;
              options.admission.max_queue = 4;
              // Start budget ~2x the engine's closed-loop mean latency:
              // above the queueing an underloaded Poisson stream produces,
              // well below the runaway backlog of sustained overload — so
              // deadline shedding engages at 2-4x for every engine instead
              // of hiding behind a fixed floor that dwarfs fast services.
              options.admission.max_queue_delay_s =
                  std::clamp(2 * mean_service, 0.001, 5.0);
              auto report = RunOnce(engine, spec, options);
              if (!report.ok()) {
                state.SkipWithError(report.status().ToString().c_str());
                return;
              }
              state.counters["goodput"] = report->real_goodput_qps();
              state.counters["shed"] =
                  static_cast<double>(report->total.shed());
              state.counters["p99_ms"] =
                  report->total.latency.Percentile(99) * 1e3;
              Reports()[RunKey(engine.key, 2, 4, mult)] =
                  std::move(report).ValueOrDie();
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

std::string CacheCell(const workload::WorkloadReport& r) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%sqps %s hit=%.0f%%",
                workload::FormatQps(r.achieved_qps()).c_str(),
                workload::FormatMillis(r.total.latency.Percentile(99)).c_str(),
                r.serving.cache.hit_ratio() * 100);
  return buf;
}

std::string OverloadCell(const workload::WorkloadReport& r) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s/%sqps shed=%lld p99=%s",
                workload::FormatQps(r.real_goodput_qps()).c_str(),
                workload::FormatQps(r.offered_qps).c_str(),
                static_cast<long long>(r.total.shed()),
                workload::FormatMillis(r.total.latency.Percentile(99)).c_str());
  return buf;
}

int64_t PrintFigure() {
  std::vector<std::string> engines;
  for (const auto& engine : ServingEngines()) engines.push_back(engine.display);

  for (int variants : kVariantCounts) {
    std::vector<std::string> x_values;
    std::vector<std::vector<std::string>> cells;
    for (int shards : kShardCounts) {
      x_values.push_back(std::to_string(shards) +
                         (shards == 1 ? " shard" : " shards"));
      std::vector<std::string> row;
      for (const auto& engine : ServingEngines()) {
        auto it = Reports().find(RunKey(engine.key, shards, variants, 0));
        row.push_back(it == Reports().end() ? "?" : CacheCell(it->second));
      }
      cells.push_back(std::move(row));
    }
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Figure 7a: result cache + shard scaling, %d param "
                  "variant%s (goodput, served p99, hit ratio)",
                  variants, variants == 1 ? "" : "s");
    workload::PrintGrid(title, "shards", x_values, engines, cells);
  }

  {
    std::vector<std::string> x_values;
    std::vector<std::vector<std::string>> cells;
    for (double mult : kLoadMultipliers) {
      char label[48];
      std::snprintf(label, sizeof(label), "offered %.1fx capacity", mult);
      x_values.push_back(label);
      std::vector<std::string> row;
      for (const auto& engine : ServingEngines()) {
        auto it = Reports().find(RunKey(engine.key, 2, 4, mult));
        row.push_back(it == Reports().end() ? "?" : OverloadCell(it->second));
      }
      cells.push_back(std::move(row));
    }
    workload::PrintGrid(
        "Figure 7b: open-loop overload, 2 shards + admission control "
        "(goodput/offered, shed ops, served p99)",
        "offered load", x_values, engines, cells);
  }

  for (const auto& [key, report] : Reports()) report.Print();

  int64_t failures = 0;
  for (const auto& [key, report] : Reports()) {
    failures += report.total.errors + report.total.verify_failures;
  }
  std::printf(
      "\n# verification: %lld operation errors/mismatches across %zu runs "
      "(every served op checked against core/reference; shed ops are "
      "load shedding, not failures)\n",
      static_cast<long long>(failures), Reports().size());
  return failures;
}

// --- observability gates -----------------------------------------------------

/// The two overhead gates compare throughput with instrumentation on vs
/// off; a sanitizer multiplies the instrumented side's cost, so under one
/// the ratio measures the sanitizer, not the product. Correctness gates
/// (span drops, cpu<=wall, stale hits, verification) never skip.
/// GENBASE_SKIP_OVERHEAD_GATES covers the UBSan-only preset, which has no
/// detection macro.
bool SkipOverheadGates() {
  if (genbase::kUnderSanitizer) return true;
  const char* env = std::getenv("GENBASE_SKIP_OVERHEAD_GATES");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Overhead gate: with tracing compiled in, 1% head sampling must cost <2%
/// throughput against the same run with sampling off (rate 0 — the
/// per-request cost is then one hash and a branch). The cell is the
/// hit-heavy closed-loop corner (1 variant, 2 shards), whose achieved_qps
/// is dominated by deterministic modeled time, so the comparison is stable;
/// best-of-3 interleaved pairs cancels one-off scheduler noise, and the
/// whole gate retries once before failing. Also checks the span-drop gate:
/// the lock-free rings must not have dropped a single span at this scale.
/// Returns the number of gate failures.
int64_t RunObservabilityGates() {
  obs::Tracer& tracer = obs::Tracer::Global();
  const double saved_rate = tracer.sample_rate();

  const ServingEngineSpec& engine = ServingEngines().front();
  serving::ServingOptions options;
  options.shards = 2;
  options.cache_enabled = true;
  workload::WorkloadSpec spec = BaseSpec(1);  // 1 variant: hit-heavy.
  spec.warmup_ops = 10;
  spec.measured_ops = 240;
  spec.verify = false;  // The gate measures the serving path, not verify.

  const auto cell_qps = [&](double rate) {
    tracer.set_sample_rate(rate);
    const auto report = RunOnce(engine, spec, options);
    return report.ok() ? report->achieved_qps() : -1.0;
  };

  constexpr double kMaxOverhead = 0.02;
  int64_t failures = 0;
  if (SkipOverheadGates()) {
    std::printf(
        "# overhead gate SKIP: sanitizer build distorts the sampling "
        "on/off throughput ratio\n");
    tracer.set_sample_rate(saved_rate);
  } else {
    double overhead = 0.0;
    bool gate_ok = false;
    bool run_failed = false;
    for (int attempt = 0; attempt < 2 && !gate_ok && !run_failed;
         ++attempt) {
      double best_off = 0.0;
      double best_on = 0.0;
      for (int pair = 0; pair < 3 && !run_failed; ++pair) {
        const double qps_off = cell_qps(0.0);
        const double qps_on = cell_qps(0.01);
        run_failed = qps_off < 0 || qps_on < 0;
        best_off = std::max(best_off, qps_off);
        best_on = std::max(best_on, qps_on);
      }
      if (run_failed) break;
      overhead = best_off > 0 ? (best_off - best_on) / best_off : 0.0;
      gate_ok = overhead <= kMaxOverhead;
    }
    tracer.set_sample_rate(saved_rate);
    if (run_failed) {
      std::printf("# overhead gate FAIL: gate cell did not run\n");
      ++failures;
    } else {
      std::printf(
          "# overhead gate %s: 1%% sampling costs %.2f%% throughput "
          "(limit %.0f%%)\n",
          gate_ok ? "PASS" : "FAIL", overhead * 100, kMaxOverhead * 100);
      if (!gate_ok) ++failures;
    }
  }

  const int64_t dropped = tracer.spans_dropped();
  std::printf("# span-drop gate %s: %lld spans dropped (%lld recorded)\n",
              dropped == 0 ? "PASS" : "FAIL",
              static_cast<long long>(dropped),
              static_cast<long long>(tracer.spans_recorded()));
  if (dropped != 0) ++failures;
  return failures;
}

/// Profiler gates. (a) Overhead: enabling resource profiling (per-stage
/// thread-CPU reads, alloc deltas, RSS samples, perf-counter scopes) must
/// cost <3% throughput against the identical unprofiled run — same
/// best-of-3 interleaved-pair + one-retry structure as the tracing gate,
/// with sampling pinned to 0 so only the profiler cost is measured.
/// (b) Attribution sanity, on the figure's own recorded runs when they were
/// profiled: every stage's CPU sum must fit in its wall sum (the clamp
/// guarantees it — this catches the clamp breaking), and the queue stage —
/// a condvar wait — must be <10% on-CPU across the overload sweep, where
/// queue wall time is substantial. Returns the number of gate failures.
int64_t RunProfilerGates() {
  obs::Tracer& tracer = obs::Tracer::Global();
  const double saved_rate = tracer.sample_rate();
  const bool saved_profiling = obs::Profiler::Enabled();
  tracer.set_sample_rate(0.0);

  const ServingEngineSpec& engine = ServingEngines().front();
  serving::ServingOptions options;
  options.shards = 2;
  options.cache_enabled = true;
  workload::WorkloadSpec spec = BaseSpec(1);
  spec.warmup_ops = 10;
  spec.measured_ops = 240;
  spec.verify = false;

  const auto cell_qps = [&](bool profiled) {
    obs::Profiler::SetEnabled(profiled);
    const auto report = RunOnce(engine, spec, options);
    return report.ok() ? report->achieved_qps() : -1.0;
  };

  constexpr double kMaxOverhead = 0.03;
  int64_t failures = 0;
  if (SkipOverheadGates()) {
    std::printf(
        "# profiler overhead gate SKIP: sanitizer build distorts the "
        "profiled/unprofiled throughput ratio\n");
    tracer.set_sample_rate(saved_rate);
    obs::Profiler::SetEnabled(saved_profiling);
  } else {
    double overhead = 0.0;
    bool gate_ok = false;
    bool run_failed = false;
    for (int attempt = 0; attempt < 2 && !gate_ok && !run_failed;
         ++attempt) {
      double best_off = 0.0;
      double best_on = 0.0;
      for (int pair = 0; pair < 3 && !run_failed; ++pair) {
        const double qps_off = cell_qps(false);
        const double qps_on = cell_qps(true);
        run_failed = qps_off < 0 || qps_on < 0;
        best_off = std::max(best_off, qps_off);
        best_on = std::max(best_on, qps_on);
      }
      if (run_failed) break;
      overhead = best_off > 0 ? (best_off - best_on) / best_off : 0.0;
      gate_ok = overhead <= kMaxOverhead;
    }
    tracer.set_sample_rate(saved_rate);
    obs::Profiler::SetEnabled(saved_profiling);
    if (run_failed) {
      std::printf("# profiler overhead gate FAIL: gate cell did not run\n");
      ++failures;
    } else {
      std::printf(
          "# profiler overhead gate %s: profiling costs %.2f%% throughput "
          "(limit %.0f%%)\n",
          gate_ok ? "PASS" : "FAIL", overhead * 100, kMaxOverhead * 100);
      if (!gate_ok) ++failures;
    }
  }

  // (b) cpu/wall attribution sanity over the recorded (profiled) runs.
  bool any_profiled = false;
  int64_t ratio_failures = 0;
  double overload_queue_wall_s = 0.0;
  double overload_queue_cpu_s = 0.0;
  for (const auto& [key, report] : Reports()) {
    if (!report.profiled) continue;
    any_profiled = true;
    for (int s = 0; s < obs::kNumRequestStages; ++s) {
      if (report.total.stage_cpu_s[s] >
          report.total.stage_wall_s[s] * (1.0 + 1e-9) + 1e-9) {
        std::printf("# cpu/wall gate FAIL: %s stage %s cpu %.6fs > wall "
                    "%.6fs\n",
                    key.c_str(),
                    obs::RequestStageName(static_cast<obs::RequestStage>(s)),
                    report.total.stage_cpu_s[s],
                    report.total.stage_wall_s[s]);
        ++ratio_failures;
      }
    }
    if (report.offered_qps > 0) {
      overload_queue_wall_s +=
          report.total.stage_wall_s[static_cast<int>(
              obs::RequestStage::kQueue)];
      overload_queue_cpu_s +=
          report.total.stage_cpu_s[static_cast<int>(
              obs::RequestStage::kQueue)];
    }
  }
  if (any_profiled) {
    // Gate the queue ratio only when the overload sweep actually queued —
    // below the floor a ratio of two near-zeros is noise, not signal.
    if (overload_queue_wall_s > 0.05) {
      const double ratio = overload_queue_cpu_s / overload_queue_wall_s;
      const bool queue_ok = ratio < 0.1;
      std::printf("# queue cpu/wall gate %s: %.3f across overload runs "
                  "(%.3fs wall; limit 0.1)\n",
                  queue_ok ? "PASS" : "FAIL", ratio, overload_queue_wall_s);
      if (!queue_ok) ++ratio_failures;
    }
    std::printf("# cpu<=wall gate %s across profiled runs\n",
                ratio_failures == 0 ? "PASS" : "FAIL");
    failures += ratio_failures;
  }
  return failures;
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Figure 7: serving stack — cache, admission control, shards");
  const std::string json_path = genbase::bench::ExtractJsonPath(&argc, argv);
  const genbase::bench::ObsDumpPaths obs_paths =
      genbase::bench::ExtractObsPaths(&argc, argv);
  genbase::bench::RegisterCacheShardSweep();
  genbase::bench::RegisterOverloadSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const int64_t failures = genbase::bench::PrintFigure();
  const int64_t gate_failures = genbase::bench::RunObservabilityGates() +
                                genbase::bench::RunProfilerGates();
  std::vector<genbase::workload::WorkloadReport> reports;
  for (const auto& [key, report] : genbase::bench::Reports()) {
    reports.push_back(report);
  }
  const genbase::Status obs = genbase::bench::WriteObsDumps(obs_paths);
  if (!obs.ok()) {
    std::fprintf(stderr, "%s\n", obs.ToString().c_str());
    return 1;
  }
  return genbase::bench::FigureExitCode(json_path, "fig7", reports,
                                        failures + gate_failures);
}
