// Figure 5 (a-d): SciDB vs SciDB + Xeon Phi coprocessor, single node, across
// dataset sizes, for the four offloadable tasks. Reproduces the paper's
// pattern: meaningful gains on covariance/SVD at larger sizes (compute
// dominates transfer), modest gains on statistics, and essentially none on
// biclustering.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "accel/phi_engine.h"
#include "bench/bench_util.h"
#include "core/driver.h"
#include "workload/report.h"
#include "engine/engines.h"

namespace genbase::bench {
namespace {

struct EngineSpec {
  const char* key;
  const char* display;
  std::unique_ptr<core::Engine> (*factory)();
};

const EngineSpec kEngines[] = {
    {"scidb", "SciDB", engine::CreateSciDb},
    {"scidb_phi", "SciDB + Xeon Phi", accel::CreatePhiSciDb},
};

const std::pair<core::QueryId, const char*> kPanels[] = {
    {core::QueryId::kBiclustering, "Figure 5a: Biclustering Query"},
    {core::QueryId::kSvd, "Figure 5b: SVD Query"},
    {core::QueryId::kCovariance, "Figure 5c: Covariance Query"},
    {core::QueryId::kStatistics, "Figure 5d: Statistics Query"},
};

void RegisterCells() {
  for (const auto& spec : kEngines) {
    for (core::DatasetSize size : kBenchSizes) {
      for (const auto& [query, title] : kPanels) {
        (void)title;
        const std::string name = std::string("fig5/") + spec.key + "/" +
                                 core::DatasetSizeName(size) + "/" +
                                 core::QueryName(query);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [spec, size, query](benchmark::State& state) {
              for (auto _ : state) {
                const core::CellResult cell = RunSingleNodeCell(
                    spec.key, spec.factory, query, size);
                state.SetIterationTime(std::max(cell.total_s, 1e-9));
                state.SetLabel(cell.Display());
              }
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void PrintFigure() {
  std::vector<std::string> engines = {"SciDB", "SciDB + Xeon Phi"};
  std::vector<std::string> x_values;
  for (core::DatasetSize s : kBenchSizes) {
    x_values.push_back(core::DatasetSizeName(s));
  }
  for (const auto& [query, title] : kPanels) {
    std::vector<std::vector<std::string>> cells;
    for (core::DatasetSize s : kBenchSizes) {
      std::vector<std::string> row;
      for (const auto& e : engines) row.push_back(CellDisplay(e, query, s));
      cells.push_back(std::move(row));
    }
    workload::PrintGrid(title, "dataset", x_values, engines, cells);
  }

  std::printf("\n=== Analytics-phase speedup (paper: '1.4-2.6X better ... in "
              "three of the four operations ... for the medium and large "
              "data sets') ===\n");
  for (const auto& [query, title] : kPanels) {
    (void)title;
    std::printf("%-14s", core::QueryName(query));
    for (core::DatasetSize s : kBenchSizes) {
      const auto* host = FindCell("SciDB", query, s);
      const auto* phi = FindCell("SciDB + Xeon Phi", query, s);
      if (host == nullptr || phi == nullptr || !host->status.ok() ||
          !phi->status.ok() || phi->analytics_s <= 0) {
        std::printf(" %10s", "n/a");
      } else {
        std::printf(" %9.2fx", host->analytics_s / phi->analytics_s);
      }
    }
    std::printf("   (small/medium/large)\n");
  }
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Figure 5: SciDB vs SciDB + Xeon Phi coprocessor (single node)");
  genbase::bench::RegisterCells();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  genbase::bench::PrintFigure();
  return 0;
}
