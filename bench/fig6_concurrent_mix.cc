// Figure 6 (beyond the paper): concurrent mixed-workload serving. The
// paper's figures time one cold query per cell; this figure drives a mixed
// Q1-Q5 stream from N concurrent clients against each engine and reports
// achieved throughput plus tail latency (p50/p95/p99) — the serving-oriented
// view of the same systems (cf. SequenceLab / Khushi's genomic-store
// benchmarking, which both stress repeated query load over one-shot runs).
//
// Deterministic by construction: the operation schedule (count and query
// mix) is a pure function of the spec seed, and every completed operation's
// result is verified against core/reference ground truth.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/config.h"
#include "core/reference.h"
#include "engine/engines.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace genbase::bench {
namespace {

constexpr int kClientCounts[] = {4, 8};

workload::WorkloadSpec MixSpec(int clients) {
  workload::WorkloadSpec spec;
  spec.name = "mixed-q1q5";
  // Interactive-skewed mix: cheap lookups dominate, heavy analytics
  // (biclustering, SVD) arrive as a background trickle.
  spec.mix = {
      {core::QueryId::kRegression, 30},
      {core::QueryId::kCovariance, 20},
      {core::QueryId::kBiclustering, 5},
      {core::QueryId::kSvd, 15},
      {core::QueryId::kStatistics, 30},
  };
  spec.size = core::DatasetSize::kSmall;
  spec.model = workload::ClientModel::kClosedLoop;
  spec.clients = clients;
  spec.warmup_ops = 2 * clients;
  spec.measured_ops = 60;
  spec.timeout_seconds = core::SimConfig::Get().timeout_seconds;
  spec.seed = 42;
  spec.verify = true;
  return spec;
}

std::map<std::pair<std::string, int>, workload::WorkloadReport>& Reports() {
  static auto* reports =
      new std::map<std::pair<std::string, int>, workload::WorkloadReport>();
  return *reports;
}

// Ground truth depends only on (query, data, params) — compute the five
// reference results once and share them across all grid cells.
const std::map<core::QueryId, core::QueryResult>& SharedTruths() {
  static const auto* truths = [] {
    auto* map = new std::map<core::QueryId, core::QueryResult>();
    const core::QueryParams params = MixSpec(1).params;
    for (core::QueryId q : core::kAllQueries) {
      auto truth = core::RunReferenceQuery(
          q, CachedData(core::DatasetSize::kSmall), params);
      GENBASE_CHECK(truth.ok());
      map->emplace(q, std::move(truth).ValueOrDie());
    }
    return map;
  }();
  return *truths;
}

void RegisterRuns() {
  for (const auto& spec : ServingEngines()) {
    for (int clients : kClientCounts) {
      const std::string name = std::string("fig6/") + spec.key + "/clients:" +
                               std::to_string(clients);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [spec, clients](benchmark::State& state) {
            for (auto _ : state) {
              auto engine = spec.factory();
              workload::WorkloadRunner runner(MixSpec(clients));
              runner.set_ground_truth(SharedTruths());
              auto report =
                  runner.Run(engine.get(),
                             CachedData(core::DatasetSize::kSmall));
              if (!report.ok()) {
                state.SkipWithError(report.status().ToString().c_str());
                return;
              }
              state.counters["qps"] = report->achieved_qps();
              state.counters["p99_ms"] =
                  report->total.latency.Percentile(99) * 1e3;
              Reports()[{spec.key, clients}] = std::move(report).ValueOrDie();
            }
          })
          ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

int64_t PrintFigure() {
  std::vector<std::string> engines;
  for (const auto& spec : ServingEngines()) engines.push_back(spec.display);

  std::vector<std::string> x_values;
  std::vector<std::vector<std::string>> cells;
  for (int clients : kClientCounts) {
    x_values.push_back(std::to_string(clients) + " clients");
    std::vector<std::string> row;
    for (const auto& spec : ServingEngines()) {
      auto it = Reports().find({spec.key, clients});
      row.push_back(it == Reports().end() ? "?" : it->second.GridCell());
    }
    cells.push_back(std::move(row));
  }
  workload::PrintGrid(
      "Figure 6: mixed Q1-Q5 workload, throughput + p50/p95/p99 latency",
      "clients", x_values, engines, cells);

  for (const auto& [key, report] : Reports()) report.Print();

  int64_t failures = 0;
  for (const auto& [key, report] : Reports()) {
    failures += report.total.errors + report.total.verify_failures;
  }
  std::printf("\n# verification: %lld operation errors/mismatches across %zu "
              "runs (every completed op checked against core/reference)\n",
              static_cast<long long>(failures), Reports().size());
  return failures;
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Figure 6: concurrent mixed workload (serving view)");
  const std::string json_path = genbase::bench::ExtractJsonPath(&argc, argv);
  const genbase::bench::ObsDumpPaths obs_paths =
      genbase::bench::ExtractObsPaths(&argc, argv);
  genbase::bench::RegisterRuns();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const int64_t failures = genbase::bench::PrintFigure();
  std::vector<genbase::workload::WorkloadReport> reports;
  for (const auto& [key, report] : genbase::bench::Reports()) {
    reports.push_back(report);
  }
  const genbase::Status obs = genbase::bench::WriteObsDumps(obs_paths);
  if (!obs.ok()) {
    std::fprintf(stderr, "%s\n", obs.ToString().c_str());
    return 1;
  }
  return genbase::bench::FigureExitCode(json_path, "fig6", reports, failures);
}
