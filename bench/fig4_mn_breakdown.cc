// Figure 4 (a-b): multi-node regression broken into data management and
// analytics, large dataset, 1/2/4 nodes. The paper: "even when we break out
// data management separately from analytics ... we see suboptimal scaling."

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cluster_engine.h"
#include "core/driver.h"
#include "workload/report.h"

namespace genbase::bench {
namespace {

constexpr int kNodeCounts[] = {1, 2, 4};

using OptionsFactory = cluster::ClusterEngineOptions (*)(int);
const std::pair<const char*, OptionsFactory> kSystems[] = {
    {"Column store + pbdR", cluster::ColumnStorePbdrOptions},
    {"Column store + UDFs", cluster::ColumnStoreUdfMnOptions},
    {"Hadoop", cluster::HadoopMnOptions},
    {"pbdR", cluster::PbdrOptions},
    {"SciDB", cluster::SciDbMnOptions},
};

void RegisterCells() {
  for (const auto& [display, factory] : kSystems) {
    for (int nodes : kNodeCounts) {
      const cluster::ClusterEngineOptions options = factory(nodes);
      const std::string name =
          std::string("fig4/") + display + "/n" + std::to_string(nodes);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [options](benchmark::State& state) {
            for (auto _ : state) {
              const core::CellResult cell =
                  RunClusterCell(options, core::QueryId::kRegression,
                                 core::DatasetSize::kLarge);
              state.SetIterationTime(std::max(cell.total_s, 1e-9));
              state.SetLabel("dm=" + FormatSeconds(cell.dm_s) +
                             " analytics=" +
                             FormatSeconds(cell.analytics_s));
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintFigure() {
  std::vector<std::string> engines;
  for (const auto& [display, factory] : kSystems) {
    (void)factory;
    engines.push_back(display);
  }
  const std::vector<std::string> x_values = {"1 node", "2 nodes", "4 nodes"};
  const struct {
    const char* title;
    double core::CellResult::*field;
  } panels[] = {
      {"Figure 4a: Linear Regression Data Management, large dataset",
       &core::CellResult::dm_s},
      {"Figure 4b: Linear Regression Analytics, large dataset",
       &core::CellResult::analytics_s},
  };
  for (const auto& panel : panels) {
    std::vector<std::vector<std::string>> cells;
    for (int nodes : kNodeCounts) {
      std::vector<std::string> row;
      for (const auto& [display, factory] : kSystems) {
        (void)factory;
        const auto* cell = FindCell(display, core::QueryId::kRegression,
                                    core::DatasetSize::kLarge, nodes);
        if (cell == nullptr || !cell->status.ok()) {
          row.push_back(cell != nullptr && cell->infinite ? "INF" : "n/a");
        } else {
          row.push_back(FormatSeconds(cell->*panel.field));
        }
      }
      cells.push_back(std::move(row));
    }
    workload::PrintGrid(panel.title, "nodes", x_values, engines, cells);
  }
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Figure 4: multi-node regression DM vs analytics, large dataset");
  genbase::bench::RegisterCells();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  genbase::bench::PrintFigure();
  return 0;
}
