// Figure 1 (a-e): overall single-node performance of the seven system
// configurations on the five benchmark queries across three dataset sizes.
// Reproduces the paper's headline chart: SciDB fastest, external-R configs
// paying glue, Madlib's interpreted SVD/statistics blowing up, Hadoop one to
// two orders slower, and Vanilla R failing on the large dataset.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/driver.h"
#include "workload/report.h"
#include "engine/engines.h"

namespace genbase::bench {
namespace {

struct EngineSpec {
  const char* key;
  const char* display;
  std::unique_ptr<core::Engine> (*factory)();
};

// Paper figure-legend order.
const EngineSpec kEngines[] = {
    {"col_r", "Column store + R", engine::CreateColumnStoreR},
    {"col_udf", "Column store + UDFs", engine::CreateColumnStoreUdf},
    {"hadoop", "Hadoop", engine::CreateHadoop},
    {"pg_madlib", "Postgres + Madlib", engine::CreatePostgresMadlib},
    {"pg_r", "Postgres + R", engine::CreatePostgresR},
    {"scidb", "SciDB", engine::CreateSciDb},
    {"r", "Vanilla R", engine::CreateVanillaR},
};

// Paper panel order: (a) regression (b) biclustering (c) SVD (d) covariance
// (e) statistics.
const std::pair<core::QueryId, const char*> kPanels[] = {
    {core::QueryId::kRegression, "Figure 1a: Linear Regression Query"},
    {core::QueryId::kBiclustering, "Figure 1b: Biclustering Query"},
    {core::QueryId::kSvd, "Figure 1c: SVD Query"},
    {core::QueryId::kCovariance, "Figure 1d: Covariance Query"},
    {core::QueryId::kStatistics, "Figure 1e: Statistics Query"},
};

void RegisterCells() {
  for (const auto& spec : kEngines) {
    for (core::DatasetSize size : kBenchSizes) {
      for (const auto& [query, title] : kPanels) {
        (void)title;
        const std::string name = std::string("fig1/") + spec.key + "/" +
                                 core::DatasetSizeName(size) + "/" +
                                 core::QueryName(query);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [spec, size, query](benchmark::State& state) {
              for (auto _ : state) {
                const core::CellResult cell = RunSingleNodeCell(
                    spec.key, spec.factory, query, size);
                state.SetIterationTime(std::max(cell.total_s, 1e-9));
                state.SetLabel(cell.Display());
              }
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void PrintFigure() {
  std::vector<std::string> engines;
  for (const auto& spec : kEngines) engines.push_back(spec.display);
  std::vector<std::string> x_values;
  for (core::DatasetSize s : kBenchSizes) {
    x_values.push_back(core::DatasetSizeName(s));
  }
  for (const auto& [query, title] : kPanels) {
    std::vector<std::vector<std::string>> cells;
    for (core::DatasetSize s : kBenchSizes) {
      std::vector<std::string> row;
      for (const auto& spec : kEngines) {
        row.push_back(CellDisplay(spec.display, query, s));
      }
      cells.push_back(std::move(row));
    }
    workload::PrintGrid(title, "dataset", x_values, engines, cells);
  }

  // Section 4.3's scaling claims: growth factors medium -> large per engine
  // for the regression task (the paper: "plots for all other systems rise
  // sharply ... SciDB appears to be approximately linear"; dataset cells
  // grow 4x from medium to large).
  std::printf("\n=== Section 4.3: medium->large growth factor, regression "
              "(cells grow 4.0x) ===\n");
  for (const auto& spec : kEngines) {
    const auto* medium =
        FindCell(spec.display, core::QueryId::kRegression,
                 core::DatasetSize::kMedium);
    const auto* large = FindCell(spec.display, core::QueryId::kRegression,
                                 core::DatasetSize::kLarge);
    if (medium == nullptr || large == nullptr || !medium->status.ok() ||
        !large->status.ok() || medium->total_s <= 0) {
      std::printf("%-24s growth: n/a\n", spec.display);
      continue;
    }
    std::printf("%-24s growth: %5.2fx  (dm %5.2fx, analytics %5.2fx)\n",
                spec.display, large->total_s / medium->total_s,
                medium->dm_s > 0 ? large->dm_s / medium->dm_s : 0.0,
                medium->analytics_s > 0
                    ? large->analytics_s / medium->analytics_s
                    : 0.0);
  }
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner("Figure 1: single-node overall performance");
  genbase::bench::RegisterCells();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  genbase::bench::PrintFigure();
  return 0;
}
