// Weak scaling (paper Section 5.2 future work): "in reality, the genomics
// data should scale in size with the number of nodes in the cluster ('weak
// scaling'). We intend to run our benchmarks on larger scale clusters using
// weak scaling, and we expect benchmark performance to scale on such runs."
//
// The virtual-time cluster makes that experiment runnable: the per-node
// data volume is held constant while the cluster grows (1, 2, 4, 8, 16
// nodes — covering the paper's planned "48 node configuration" regime at
// reduced scale), for the two distributed-analytics queries. Ideal weak
// scaling is a flat line; the gap from flat is the communication share.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cluster_engine.h"
#include "core/config.h"
#include "core/driver.h"
#include "core/generator.h"

namespace genbase::bench {
namespace {

constexpr int kNodeCounts[] = {1, 2, 4, 8, 16};

/// Weak scaling holds per-node rows constant: scale the patient dimension
/// with the node count (scale factor grows as nodes, gene dimension fixed
/// by using the same DatasetSize at a scaled... — we simply grow the scale
/// linearly in patients by generating per-node-count datasets).
struct WeakCell {
  int nodes;
  core::QueryId query;
  core::CellResult cell;
};

std::vector<WeakCell>& Results() {
  static auto* r = new std::vector<WeakCell>();
  return *r;
}

void RunWeakCell(int nodes, core::QueryId query) {
  // Per-node volume constant: total scale = base * nodes along patients.
  // GenerateDataset scales both dims linearly; to keep genes fixed we
  // generate at the base scale and replicate patients by node count via a
  // larger patient scale. Simplest faithful approach: dims scale by
  // cbrt-like growth is wrong; instead generate a dataset whose *patient*
  // count is nodes x the base by picking the size preset accordingly.
  // Here: base medium at SimConfig scale; nodes multiply patients through
  // the scale factor applied to a custom generation.
  const auto& config = core::SimConfig::Get();
  const double base_scale = config.scale * 0.5;  // Keep 16x tractable.
  // Patients scale with nodes; genes held at the base by generating with
  // the base scale and a patient multiplier.
  auto data = core::GenerateDataset(core::DatasetSize::kSmall, base_scale);
  GENBASE_CHECK(data.ok());
  // Replicate patients nodes-fold (fresh ids), holding genes fixed.
  if (nodes > 1) {
    core::GenBaseData grown;
    grown.dims = data->dims;
    grown.dims.patients *= nodes;
    grown.size = data->size;
    const int64_t base_patients = data->dims.patients;
    // Patients table.
    for (int rep = 0; rep < nodes; ++rep) {
      for (int64_t r = 0; r < data->patients.num_rows(); ++r) {
        std::vector<storage::Value> row;
        for (int c = 0; c < data->patients.schema().num_fields(); ++c) {
          row.push_back(data->patients.Get(r, c));
        }
        row[core::PatientCols::kPatientId] = storage::Value::Int(
            row[core::PatientCols::kPatientId].AsInt() +
            rep * base_patients);
        GENBASE_CHECK_OK(grown.patients.AppendRow(row));
      }
    }
    // Microarray triples.
    GENBASE_CHECK_OK(grown.microarray.Reserve(
        data->microarray.num_rows() * nodes));
    for (int rep = 0; rep < nodes; ++rep) {
      const auto& gid =
          data->microarray.IntColumn(core::MicroarrayCols::kGeneId);
      const auto& pid =
          data->microarray.IntColumn(core::MicroarrayCols::kPatientId);
      const auto& expr =
          data->microarray.DoubleColumn(core::MicroarrayCols::kExpr);
      auto& ogid =
          grown.microarray.MutableIntColumn(core::MicroarrayCols::kGeneId);
      auto& opid = grown.microarray.MutableIntColumn(
          core::MicroarrayCols::kPatientId);
      auto& oexpr = grown.microarray.MutableDoubleColumn(
          core::MicroarrayCols::kExpr);
      for (size_t i = 0; i < gid.size(); ++i) {
        ogid.push_back(gid[i]);
        opid.push_back(pid[i] + rep * base_patients);
        oexpr.push_back(expr[i]);
      }
    }
    GENBASE_CHECK_OK(grown.microarray.FinishBulkLoad());
    // Metadata unchanged.
    for (int64_t r = 0; r < data->genes.num_rows(); ++r) {
      std::vector<storage::Value> row;
      for (int c = 0; c < data->genes.schema().num_fields(); ++c) {
        row.push_back(data->genes.Get(r, c));
      }
      GENBASE_CHECK_OK(grown.genes.AppendRow(row));
    }
    for (int64_t r = 0; r < data->ontology.num_rows(); ++r) {
      std::vector<storage::Value> row;
      for (int c = 0; c < data->ontology.schema().num_fields(); ++c) {
        row.push_back(data->ontology.Get(r, c));
      }
      GENBASE_CHECK_OK(grown.ontology.AppendRow(row));
    }
    *data = std::move(grown);
  }

  cluster::ClusterEngine engine(cluster::SciDbMnOptions(nodes));
  GENBASE_CHECK_OK(engine.LoadDataset(*data));
  core::DriverOptions options = DefaultDriverOptions();
  const core::CellResult cell =
      core::RunCell(&engine, query, core::DatasetSize::kSmall, options);
  Results().push_back({nodes, query, cell});
}

void RegisterCells() {
  for (core::QueryId query :
       {core::QueryId::kRegression, core::QueryId::kCovariance}) {
    for (int nodes : kNodeCounts) {
      const std::string name = std::string("weak_scaling/") +
                               core::QueryName(query) + "/n" +
                               std::to_string(nodes);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [nodes, query](benchmark::State& state) {
            for (auto _ : state) {
              RunWeakCell(nodes, query);
              state.SetIterationTime(
                  std::max(Results().back().cell.total_s, 1e-9));
              state.SetLabel(Results().back().cell.Display());
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintTable() {
  std::printf("\n=== Weak scaling (constant data per node; flat = ideal) "
              "===\n");
  std::printf("%8s %16s %16s\n", "nodes", "regression(s)", "covariance(s)");
  for (int nodes : kNodeCounts) {
    std::printf("%8d", nodes);
    for (core::QueryId query :
         {core::QueryId::kRegression, core::QueryId::kCovariance}) {
      const WeakCell* found = nullptr;
      for (const auto& w : Results()) {
        if (w.nodes == nodes && w.query == query) found = &w;
      }
      if (found == nullptr || !found->cell.status.ok()) {
        std::printf(" %16s", "n/a");
      } else {
        std::printf(" %16.3f", found->cell.total_s);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nRegression stays near-flat (TSQR communicates only k x k factors);"
      "\ncovariance rises with node count (the n x n Gram all-reduce grows "
      "with\nthe ring size) — the communication effects the paper expected "
      "weak\nscaling to expose.\n");
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Weak scaling (paper Section 5.2 planned experiment)");
  genbase::bench::RegisterCells();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  genbase::bench::PrintTable();
  return 0;
}
