// Figure 3 (a-e): overall multi-node performance on the large dataset as the
// cluster grows from 1 to 4 nodes, for the paper's five multi-node systems.
// Reproduces the headline scaling findings: sub-linear speedups everywhere,
// SciDB's covariance hurt by the Gram all-reduce when going 1 -> 2 nodes,
// and pbdR scaling best thanks to ScaLAPACK-style distributed analytics.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cluster_engine.h"
#include "core/driver.h"
#include "workload/report.h"

namespace genbase::bench {
namespace {

constexpr int kNodeCounts[] = {1, 2, 4};

using OptionsFactory = cluster::ClusterEngineOptions (*)(int);
const std::pair<const char*, OptionsFactory> kSystems[] = {
    {"Column store + pbdR", cluster::ColumnStorePbdrOptions},
    {"Column store + UDFs", cluster::ColumnStoreUdfMnOptions},
    {"Hadoop", cluster::HadoopMnOptions},
    {"pbdR", cluster::PbdrOptions},
    {"SciDB", cluster::SciDbMnOptions},
};

const std::pair<core::QueryId, const char*> kPanels[] = {
    {core::QueryId::kRegression,
     "Figure 3a: Linear Regression Query, large dataset"},
    {core::QueryId::kBiclustering,
     "Figure 3b: Biclustering Query, large dataset"},
    {core::QueryId::kSvd, "Figure 3c: SVD Query, large dataset"},
    {core::QueryId::kCovariance,
     "Figure 3d: Covariance Query, large dataset"},
    {core::QueryId::kStatistics,
     "Figure 3e: Statistics Query, large dataset"},
};

void RegisterCells() {
  for (const auto& [display, factory] : kSystems) {
    for (int nodes : kNodeCounts) {
      const cluster::ClusterEngineOptions options = factory(nodes);
      for (const auto& [query, title] : kPanels) {
        (void)title;
        const std::string name = std::string("fig3/") + display + "/n" +
                                 std::to_string(nodes) + "/" +
                                 core::QueryName(query);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [options, query](benchmark::State& state) {
              for (auto _ : state) {
                const core::CellResult cell = RunClusterCell(
                    options, query, core::DatasetSize::kLarge);
                state.SetIterationTime(std::max(cell.total_s, 1e-9));
                state.SetLabel(cell.Display());
              }
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void PrintFigure() {
  std::vector<std::string> engines;
  for (const auto& [display, factory] : kSystems) {
    (void)factory;
    engines.push_back(display);
  }
  std::vector<std::string> x_values = {"1 node", "2 nodes", "4 nodes"};
  for (const auto& [query, title] : kPanels) {
    std::vector<std::vector<std::string>> cells;
    for (int nodes : kNodeCounts) {
      std::vector<std::string> row;
      for (const auto& [display, factory] : kSystems) {
        (void)factory;
        row.push_back(
            CellDisplay(display, query, core::DatasetSize::kLarge, nodes));
      }
      cells.push_back(std::move(row));
    }
    workload::PrintGrid(title, "nodes", x_values, engines, cells);
  }

  std::printf("\n=== Speedup 1 -> 4 nodes (overall; paper: 'no systems "
              "offered linear speedup') ===\n");
  for (const auto& [display, factory] : kSystems) {
    (void)factory;
    for (const auto& [query, title] : kPanels) {
      (void)title;
      const auto* one =
          FindCell(display, query, core::DatasetSize::kLarge, 1);
      const auto* four =
          FindCell(display, query, core::DatasetSize::kLarge, 4);
      if (one == nullptr || four == nullptr || !one->status.ok() ||
          !four->status.ok() || four->total_s <= 0) {
        continue;
      }
      std::printf("%-24s %-14s %5.2fx\n", display, core::QueryName(query),
                  one->total_s / four->total_s);
    }
  }
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Figure 3: multi-node overall performance, large dataset");
  genbase::bench::RegisterCells();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  genbase::bench::PrintFigure();
  return 0;
}
