// Ablations for the design choices DESIGN.md calls out:
//   1. Tuned (blocked, parallel) vs naive GEMM — the quantitative basis for
//      the Mahout-quality kernel model.
//   2. CSV round trip vs in-process UDF transfer — the two glue mechanisms
//      distinguishing the +R and +UDF configurations.
//   3. Lanczos with vs without full reorthogonalization.
//   4. Array-store chunk size vs submatrix gather cost.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/csv.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/engine_util.h"
#include "linalg/blas.h"
#include "linalg/lanczos.h"
#include "linalg/matrix.h"
#include "linalg/randomized_svd.h"
#include "linalg/svd.h"
#include "storage/array_store.h"
#include "storage/encoding.h"

namespace genbase {
namespace {

linalg::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

// --- 1. kernel quality ----------------------------------------------------------

void BM_GemmTuned(benchmark::State& state) {
  const int64_t n = state.range(0);
  linalg::Matrix a = RandomMatrix(n, n, 1);
  linalg::Matrix b = RandomMatrix(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    GENBASE_CHECK_OK(
        linalg::Gemm(linalg::MatrixView(a), linalg::MatrixView(b), &c,
                     DefaultPool()));
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmTuned)->Arg(128)->Arg(256)->Arg(384);

void BM_GemmNaive(benchmark::State& state) {
  const int64_t n = state.range(0);
  linalg::Matrix a = RandomMatrix(n, n, 1);
  linalg::Matrix b = RandomMatrix(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    GENBASE_CHECK_OK(
        linalg::GemmNaive(linalg::MatrixView(a), linalg::MatrixView(b), &c));
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNaive)->Arg(128)->Arg(256)->Arg(384);

// --- 2. glue mechanisms -----------------------------------------------------------

void BM_CsvGlueRoundTrip(benchmark::State& state) {
  const int64_t n = state.range(0);
  linalg::Matrix m = RandomMatrix(n, n, 3);
  for (auto _ : state) {
    auto out = engine::CsvRoundTripMatrix(linalg::MatrixView(m), nullptr);
    GENBASE_CHECK(out.ok());
    benchmark::DoNotOptimize(out->data());
  }
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(n * n * 8) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CsvGlueRoundTrip)->Arg(128)->Arg(256)->Arg(512);

void BM_UdfTransfer(benchmark::State& state) {
  const int64_t n = state.range(0);
  linalg::Matrix m = RandomMatrix(n, n, 4);
  for (auto _ : state) {
    auto out =
        engine::UdfTransferMatrix(linalg::MatrixView(m), nullptr, 512);
    GENBASE_CHECK(out.ok());
    benchmark::DoNotOptimize(out->data());
  }
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(n * n * 8) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UdfTransfer)->Arg(128)->Arg(256)->Arg(512);

// --- 3. Lanczos reorthogonalization --------------------------------------------------

void LanczosBench(benchmark::State& state, bool reorth) {
  const int64_t n = 400;
  linalg::Matrix a = RandomMatrix(n + 20, n, 5);
  linalg::Matrix gram(n, n);
  GENBASE_CHECK_OK(linalg::Syrk(linalg::MatrixView(a), &gram));
  linalg::LinearOperator op;
  op.n = n;
  op.apply = [&gram](const double* x, double* y) {
    linalg::Gemv(linalg::MatrixView(gram), x, y);
    return genbase::Status::OK();
  };
  linalg::LanczosOptions opt;
  opt.num_eigenpairs = 20;
  opt.compute_vectors = false;
  int iterations = 0;
  for (auto _ : state) {
    auto r = reorth ? linalg::LanczosLargestEigenpairs(op, opt)
                    : linalg::LanczosNoReorth(op, opt);
    GENBASE_CHECK(r.ok());
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->eigenvalues.data());
  }
  state.counters["iterations"] = iterations;
}
void BM_LanczosFullReorth(benchmark::State& state) {
  LanczosBench(state, true);
}
void BM_LanczosNoReorth(benchmark::State& state) {
  LanczosBench(state, false);
}
BENCHMARK(BM_LanczosFullReorth);
BENCHMARK(BM_LanczosNoReorth);

// --- 4. exact (Lanczos) vs approximate (randomized) SVD ---------------------------------
// Paper Section 6.3: "approximation algorithms may have allowed us to scale
// to the 60K x 70K dataset that none of the systems we tested could process."

void BM_SvdLanczos(benchmark::State& state) {
  const int64_t n = state.range(0);
  linalg::Matrix a = RandomMatrix(2 * n, n, 7);
  linalg::SvdOptions opt;
  opt.rank = 25;
  double sigma0 = 0;
  for (auto _ : state) {
    auto r = linalg::TruncatedSvd(linalg::MatrixView(a), opt);
    GENBASE_CHECK(r.ok());
    sigma0 = r->singular_values[0];
    benchmark::DoNotOptimize(r->singular_values.data());
  }
  state.counters["sigma0"] = sigma0;
}
BENCHMARK(BM_SvdLanczos)->Arg(200)->Arg(400);

void BM_SvdRandomized(benchmark::State& state) {
  const int64_t n = state.range(0);
  linalg::Matrix a = RandomMatrix(2 * n, n, 7);
  linalg::RandomizedSvdOptions opt;
  opt.rank = 25;
  double sigma0 = 0;
  for (auto _ : state) {
    auto r = linalg::RandomizedSvd(linalg::MatrixView(a), opt);
    GENBASE_CHECK(r.ok());
    sigma0 = r->singular_values[0];
    benchmark::DoNotOptimize(r->singular_values.data());
  }
  state.counters["sigma0"] = sigma0;
}
BENCHMARK(BM_SvdRandomized)->Arg(200)->Arg(400);

// --- 5. chunk size ---------------------------------------------------------------------

void BM_ChunkedGather(benchmark::State& state) {
  const int64_t chunk = state.range(0);
  const int64_t rows = 1024, cols = 1024;
  linalg::Matrix m = RandomMatrix(rows, cols, 6);
  auto array =
      storage::ChunkedArray2D::FromMatrix(linalg::MatrixView(m), nullptr,
                                          chunk);
  GENBASE_CHECK(array.ok());
  // Gather a 50% x 50% submatrix (typical of the filtered queries).
  std::vector<int64_t> row_ids, col_ids;
  for (int64_t i = 0; i < rows; i += 2) row_ids.push_back(i);
  for (int64_t j = 0; j < cols; j += 2) col_ids.push_back(j);
  for (auto _ : state) {
    auto sub = array->GatherSubmatrix(row_ids, col_ids, nullptr);
    GENBASE_CHECK(sub.ok());
    benchmark::DoNotOptimize(sub->data());
  }
}
BENCHMARK(BM_ChunkedGather)->Arg(32)->Arg(128)->Arg(256)->Arg(1024);

// --- 6. storage-format conversion (paper Section 6.2) ------------------------------
// "In all cases, DBMSs employ a custom formatting scheme for storage of
// blocks ... it is an O(N) operation to convert from one representation to
// the other. Since the constant is fairly large, this conversion can
// dominate computation time if the arrays are small to medium size."
// Measures decode (DBMS block -> raw ScaLAPACK-style chunk) throughput for
// each encoding, against plain memcpy as the baseline.

void BM_FormatConversion(benchmark::State& state) {
  const auto encoding =
      static_cast<storage::ColumnEncoding>(state.range(0));
  Rng rng(9);
  std::vector<int64_t> values(256 * 1024);
  // Gene-id-like content: sorted with small gaps (compressible).
  int64_t at = 0;
  for (auto& v : values) {
    at += rng.UniformInt(0, 3);
    v = at;
  }
  auto block = storage::EncodeInt64(
      values.data(), static_cast<int64_t>(values.size()), encoding);
  GENBASE_CHECK(block.ok());
  std::vector<int64_t> out;
  for (auto _ : state) {
    GENBASE_CHECK_OK(storage::DecodeInt64(*block, &out));
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(values.size() * 8) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
  state.counters["ratio"] = storage::CompressionRatio(*block);
}
BENCHMARK(BM_FormatConversion)
    ->Arg(static_cast<int>(storage::ColumnEncoding::kPlain))
    ->Arg(static_cast<int>(storage::ColumnEncoding::kRunLength))
    ->Arg(static_cast<int>(storage::ColumnEncoding::kDelta))
    ->Arg(static_cast<int>(storage::ColumnEncoding::kDictionary));

}  // namespace
}  // namespace genbase

BENCHMARK_MAIN();
