// Figure 8 (beyond the paper): the serving stack under dataset churn and
// stampede load — the two failure modes a result cache invites. Two sweeps
// per serving engine over the small dataset:
//
//   (a) reload under load, closed loop: a churn thread reloads every shard's
//       dataset (rolling drain-and-reload) repeatedly while the full query
//       mix is being served through the cache. Correctness is the point:
//       every served op — cached, coalesced or executed — is verified
//       against core/reference, and the stack's epoch-keyed cache must show
//       zero stale hits while reporting the reloads and the entries each
//       one invalidated.
//
//   (b) stampede, open loop at 4x measured capacity: every client wants the
//       same handful of keys the instant the run starts (cold cache, one
//       parameter variant), which without stampede control multiplies one
//       computation by the client count. Swept with single-flight off and
//       on; the adaptive target-delay admission controller (per-query-class
//       service model) guards the execution tier in both cells.
//
// Exit gates, beyond fig6/fig7's zero errors/mismatches: zero stale hits
// (epoch-mismatched serves) across all runs, at least one dataset reload
// observed inside a measured window, and at least one coalesced miss in the
// single-flight stampede cells.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/config.h"
#include "core/reference.h"
#include "engine/engines.h"
#include "obs/trace.h"
#include "serving/serving_stack.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace genbase::bench {
namespace {

constexpr double kStampedeLoadMultiplier = 4.0;

workload::WorkloadSpec BaseSpec(int param_variants) {
  workload::WorkloadSpec spec;
  spec.name = "churn-mix";
  spec.mix = {
      {core::QueryId::kRegression, 30},
      {core::QueryId::kCovariance, 20},
      {core::QueryId::kBiclustering, 5},
      {core::QueryId::kSvd, 15},
      {core::QueryId::kStatistics, 30},
  };
  spec.size = core::DatasetSize::kSmall;
  spec.model = workload::ClientModel::kClosedLoop;
  spec.clients = 8;
  spec.warmup_ops = 10;
  spec.measured_ops = 48;
  spec.param_variants = param_variants;
  spec.timeout_seconds = core::SimConfig::Get().timeout_seconds;
  spec.seed = 43;
  spec.verify = true;
  return spec;
}

std::map<std::string, workload::WorkloadReport>& Reports() {
  static auto* reports = new std::map<std::string, workload::WorkloadReport>();
  return *reports;
}

std::string RunKey(const char* engine, const char* scenario) {
  return std::string(engine) + "/" + scenario;
}

// Ground truth shared across every cell (one dataset, one spec family).
const std::map<workload::WorkloadRunner::TruthKey, core::QueryResult>&
SharedTruths() {
  static const auto* truths = [] {
    auto* map =
        new std::map<workload::WorkloadRunner::TruthKey, core::QueryResult>();
    const core::GenBaseData& data = CachedData(core::DatasetSize::kSmall);
    std::set<workload::WorkloadRunner::TruthKey> pairs;
    for (int variants : {1, 2}) {
      const workload::WorkloadSpec spec = BaseSpec(variants);
      const auto schedule = workload::BuildSchedule(spec);
      for (size_t i = static_cast<size_t>(spec.warmup_ops);
           i < schedule.size(); ++i) {
        pairs.insert({schedule[i].query, schedule[i].variant});
      }
    }
    for (const auto& [query, variant] : pairs) {
      auto truth = core::RunReferenceQuery(
          query, data,
          workload::VariantParams(BaseSpec(1).params, variant));
      GENBASE_CHECK(truth.ok());
      map->emplace(std::make_pair(query, variant),
                   std::move(truth).ValueOrDie());
    }
    return map;
  }();
  return *truths;
}

// --- (a) reload under load ---------------------------------------------------

void RegisterChurnSweep() {
  for (const auto& engine : ServingEngines()) {
    const std::string name = std::string("fig8a/") + engine.key + "/churn";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [engine](benchmark::State& state) {
          for (auto _ : state) {
            const core::GenBaseData& data =
                CachedData(core::DatasetSize::kSmall);
            serving::ServingOptions options;
            options.shards = 2;
            options.cache_enabled = true;
            options.single_flight = true;
            auto stack = serving::ServingStack::Create(options, engine.factory,
                                                       data);
            if (!stack.ok()) {
              state.SkipWithError(stack.status().ToString().c_str());
              return;
            }
            serving::ServingStack* s = stack.ValueOrDie().get();

            // Churn: one synchronous reload at measure start (after the
            // counter baseline snapshot, so it is inside the measured delta
            // by construction — the warm cache is invalidated under the
            // measurement's nose), then a background thread — spawned from
            // the same hook, so it neither runs nor spins during warm-up —
            // keeps rolling reloads while ops are in flight. Reloads carry
            // the same data — epochs still advance, entries still
            // invalidate — so reference truths stay valid for every op.
            std::atomic<bool> stop{false};
            std::thread churn;

            workload::WorkloadRunner runner(BaseSpec(2));
            runner.set_ground_truth_variants(SharedTruths());
            runner.set_on_measure_start([&churn, &stop, s, &data] {
              GENBASE_CHECK(s->ReloadDataset(data).ok());
              churn = std::thread([&stop, s, &data] {
                while (!stop.load(std::memory_order_acquire)) {
                  GENBASE_CHECK(s->ReloadDataset(data).ok());
                  std::this_thread::sleep_for(std::chrono::milliseconds(20));
                }
              });
            });
            auto report = runner.Run(s, data);
            stop.store(true, std::memory_order_release);
            if (churn.joinable()) churn.join();
            if (!report.ok()) {
              state.SkipWithError(report.status().ToString().c_str());
              return;
            }
            state.counters["reloads"] =
                static_cast<double>(report->serving.reloads);
            state.counters["invalidated"] =
                static_cast<double>(report->serving.cache.invalidated);
            state.counters["stale"] =
                static_cast<double>(report->serving.stale_hits);
            Reports()[RunKey(engine.key, "churn")] =
                std::move(report).ValueOrDie();
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

// --- (b) stampede at 4x capacity --------------------------------------------

void RegisterStampedeSweep() {
  for (const auto& engine : ServingEngines()) {
    for (bool coalesce : {false, true}) {
      const std::string name = std::string("fig8b/") + engine.key +
                               "/single_flight:" + (coalesce ? "on" : "off");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [engine, coalesce](benchmark::State& state) {
            for (auto _ : state) {
              // Capacity reference: the churn cell's closed-loop goodput
              // (benchmark ordering guarantees fig8a already ran). Offered
              // load is a multiple of what this engine actually serves, so
              // 4x means the same stress for every engine.
              auto it = Reports().find(RunKey(engine.key, "churn"));
              const bool have_reference =
                  it != Reports().end() && it->second.real_goodput_qps() > 0;
              if (!have_reference) {
                std::printf(
                    "# warning: fig8a reference cell missing; fig8b/%s "
                    "offered load uses fallback capacity 20 qps, not "
                    "measured capacity\n",
                    engine.key);
              }
              const double capacity =
                  have_reference ? it->second.real_goodput_qps() : 20.0;
              const double mean_service =
                  have_reference ? it->second.total.latency.mean() : 0.05;

              // Cold cache + one parameter variant: the whole fleet wants
              // the same five keys at once. No warm-up — the stampede IS
              // the measurement.
              workload::WorkloadSpec spec = BaseSpec(1);
              spec.model = workload::ClientModel::kOpenLoopPoisson;
              spec.arrival_rate_qps = capacity * kStampedeLoadMultiplier;
              spec.clients = 12;
              spec.warmup_ops = 0;

              serving::ServingOptions options;
              options.shards = 2;
              options.cache_enabled = true;
              options.single_flight = coalesce;
              // Adaptive admission: the controller learns per-query-class
              // service times and derives the inflight limit from the
              // observed queue delay against a target of ~2x the measured
              // closed-loop mean — no hand-tuned max_inflight anywhere.
              options.admission.adaptive = true;
              options.admission.target_queue_delay_s =
                  std::clamp(2 * mean_service, 0.001, 5.0);
              options.admission.min_inflight = 1;
              options.admission.max_inflight_cap = 16;
              options.admission.adjust_interval = 8;
              options.admission.max_queue_delay_s =
                  std::clamp(4 * mean_service, 0.002, 5.0);

              auto stack = serving::ServingStack::Create(
                  options, engine.factory,
                  CachedData(core::DatasetSize::kSmall));
              if (!stack.ok()) {
                state.SkipWithError(stack.status().ToString().c_str());
                return;
              }
              workload::WorkloadRunner runner(spec);
              runner.set_ground_truth_variants(SharedTruths());
              auto report = runner.Run(stack.ValueOrDie().get(),
                                       CachedData(core::DatasetSize::kSmall));
              if (!report.ok()) {
                state.SkipWithError(report.status().ToString().c_str());
                return;
              }
              state.counters["goodput"] = report->real_goodput_qps();
              state.counters["coalesced"] =
                  static_cast<double>(report->serving.flight.coalesced);
              state.counters["limit"] = static_cast<double>(
                  report->serving.admission.current_limit);
              Reports()[RunKey(engine.key,
                               coalesce ? "stampede_sf" : "stampede_raw")] =
                  std::move(report).ValueOrDie();
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// --- figure output + gates ---------------------------------------------------

std::string ChurnCell(const workload::WorkloadReport& r) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%sqps rl=%lld inv=%lld stale=%lld",
                workload::FormatQps(r.achieved_qps()).c_str(),
                static_cast<long long>(r.serving.reloads),
                static_cast<long long>(r.serving.cache.invalidated),
                static_cast<long long>(r.serving.stale_hits));
  return buf;
}

std::string StampedeCell(const workload::WorkloadReport& r) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s/%sqps coal=%lld exec=%lld lim=%lld",
                workload::FormatQps(r.real_goodput_qps()).c_str(),
                workload::FormatQps(r.offered_qps).c_str(),
                static_cast<long long>(r.serving.flight.coalesced),
                static_cast<long long>([&r] {
                  int64_t ops = 0;
                  for (const auto& s : r.serving.shards) ops += s.ops;
                  return ops;
                }()),
                static_cast<long long>(r.serving.admission.current_limit));
  return buf;
}

int64_t PrintFigure() {
  std::vector<std::string> engines;
  for (const auto& engine : ServingEngines()) engines.push_back(engine.display);

  {
    std::vector<std::vector<std::string>> cells;
    std::vector<std::string> row;
    for (const auto& engine : ServingEngines()) {
      auto it = Reports().find(RunKey(engine.key, "churn"));
      row.push_back(it == Reports().end() ? "?" : ChurnCell(it->second));
    }
    cells.push_back(std::move(row));
    workload::PrintGrid(
        "Figure 8a: reload-under-load, 2 shards + epoch-keyed cache "
        "(goodput, reloads, invalidated entries, stale hits)",
        "scenario", {"rolling reloads"}, engines, cells);
  }
  {
    std::vector<std::string> x_values;
    std::vector<std::vector<std::string>> cells;
    for (const char* scenario : {"stampede_raw", "stampede_sf"}) {
      x_values.push_back(scenario == std::string("stampede_raw")
                             ? "4x load, no coalescing"
                             : "4x load, single-flight");
      std::vector<std::string> row;
      for (const auto& engine : ServingEngines()) {
        auto it = Reports().find(RunKey(engine.key, scenario));
        row.push_back(it == Reports().end() ? "?" : StampedeCell(it->second));
      }
      cells.push_back(std::move(row));
    }
    workload::PrintGrid(
        "Figure 8b: cold-cache stampede at 4x capacity, adaptive admission "
        "(goodput/offered, coalesced misses, engine executions, limit)",
        "offered load", x_values, engines, cells);
  }

  for (const auto& [key, report] : Reports()) report.Print();

  // Gates. Correctness: zero op errors/mismatches and zero stale hits
  // anywhere. Machinery: every churn cell observed >= 1 mid-measurement
  // reload (deterministic — the first reload runs synchronously at measure
  // start), and the single-flight stampede cells coalesced >= 1 miss in
  // aggregate (per-cell would be flaky: at smoke scale a fast engine can
  // compute all five hot keys before a second miss lands on any of them).
  int64_t failures = 0;
  int64_t stale = 0;
  int64_t coalesced_sf = 0;
  int64_t gate_misses = 0;
  for (const auto& [key, report] : Reports()) {
    failures += report.total.errors + report.total.verify_failures;
    stale += report.serving.stale_hits;
    if (key.find("/churn") != std::string::npos &&
        report.serving.reloads < 1) {
      std::printf("# GATE: %s saw no reload inside the measured window\n",
                  key.c_str());
      ++gate_misses;
    }
    if (key.find("/stampede_sf") != std::string::npos) {
      coalesced_sf += report.serving.flight.coalesced;
    }
  }
  if (coalesced_sf < 1) {
    std::printf(
        "# GATE: no single-flight cell coalesced a concurrent miss\n");
    ++gate_misses;
  }
  // Span-drop gate: churn + stampede exercise every span site under
  // contention; at this scale the lock-free rings must never overflow.
  const int64_t dropped = obs::Tracer::Global().spans_dropped();
  if (dropped != 0) {
    std::printf("# GATE: tracer dropped %lld spans (ring overflow)\n",
                static_cast<long long>(dropped));
    ++gate_misses;
  }
  std::printf(
      "\n# verification: %lld operation errors/mismatches, %lld stale hits "
      "(epoch-mismatched serves), %lld coalesced misses in single-flight "
      "cells, %lld gate misses across %zu runs\n",
      static_cast<long long>(failures), static_cast<long long>(stale),
      static_cast<long long>(coalesced_sf),
      static_cast<long long>(gate_misses), Reports().size());
  return failures + stale + gate_misses;
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Figure 8: serving under churn — epoch invalidation, single-flight, "
      "adaptive admission");
  const std::string json_path = genbase::bench::ExtractJsonPath(&argc, argv);
  const genbase::bench::ObsDumpPaths obs_paths =
      genbase::bench::ExtractObsPaths(&argc, argv);
  genbase::bench::RegisterChurnSweep();
  genbase::bench::RegisterStampedeSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const int64_t failures = genbase::bench::PrintFigure();
  std::vector<genbase::workload::WorkloadReport> reports;
  for (const auto& [key, report] : genbase::bench::Reports()) {
    reports.push_back(report);
  }
  const genbase::Status obs = genbase::bench::WriteObsDumps(obs_paths);
  if (!obs.ok()) {
    std::fprintf(stderr, "%s\n", obs.ToString().c_str());
    return 1;
  }
  return genbase::bench::FigureExitCode(json_path, "fig8", reports, failures);
}
