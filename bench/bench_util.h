#ifndef GENBASE_BENCH_BENCH_UTIL_H_
#define GENBASE_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_engine.h"
#include "core/datasets.h"
#include "core/driver.h"
#include "core/engine.h"
#include "workload/report.h"

namespace genbase::bench {

/// Benchmark datasets are generated once per size at SimConfig scale.
const core::GenBaseData& CachedData(core::DatasetSize size);

/// Driver options from SimConfig (GENBASE_TIMEOUT).
core::DriverOptions DefaultDriverOptions();

/// Runs one (engine, query, size) cell. The engine instance is cached and
/// loaded once per (key, size); a failed load (e.g. R on the large dataset)
/// is reported as INF for every query — the paper's semantics for systems
/// that cannot hold the data.
core::CellResult RunSingleNodeCell(
    const std::string& engine_key,
    const std::function<std::unique_ptr<core::Engine>()>& factory,
    core::QueryId query, core::DatasetSize size);

/// As above for a multi-node configuration (cached per options + size).
core::CellResult RunClusterCell(const cluster::ClusterEngineOptions& options,
                                core::QueryId query, core::DatasetSize size);

/// Global collector so bench binaries can print paper-shaped grids after
/// google-benchmark has run all registered cells.
void RecordCell(const core::CellResult& cell);
const std::vector<core::CellResult>& RecordedCells();

/// Looks up a recorded cell's display string; "?" if absent.
std::string CellDisplay(const std::string& engine, core::QueryId query,
                        core::DatasetSize size, int nodes = 1);

/// Finds a recorded cell (nullptr if absent).
const core::CellResult* FindCell(const std::string& engine,
                                 core::QueryId query, core::DatasetSize size,
                                 int nodes = 1);

/// Prints the workload banner (scale, dims, timeout, model constants).
void PrintBanner(const char* figure);

/// One serving-scenario engine configuration. The lineup (ServingEngines)
/// is the subset of the paper's single-node configs that implement all five
/// queries natively: the serving scenario assumes full functionality, and a
/// mixed stream against Postgres/Hadoop configs would report errors, not
/// latency. Shared by fig6 and fig7 so the two figures cannot drift apart.
struct ServingEngineSpec {
  const char* key;
  const char* display;
  std::unique_ptr<core::Engine> (*factory)();
};
const std::vector<ServingEngineSpec>& ServingEngines();

/// Strips a `--flag=VALUE` (or `--flag VALUE`) pair out of argv — call
/// before benchmark::Initialize, which rejects flags it does not know — and
/// returns the value ("" when the flag is absent).
std::string ExtractFlagValue(int* argc, char** argv, const std::string& flag);

/// ExtractFlagValue for the shared `--json=PATH` report flag.
std::string ExtractJsonPath(int* argc, char** argv);

/// \brief Provenance stamped into every BENCH_/TRACE_/METRICS_ artifact so
/// the bench-history doctor can order runs and attribute regressions to a
/// commit and kernel variant.
struct RunStamp {
  std::string git_sha;         ///< GENBASE_GIT_SHA, else `git rev-parse`.
  std::string kernel_backend;  ///< simd::BackendName of the active backend.
  std::string timestamp;       ///< ISO-8601 UTC at stamp time.
};

/// The current process's stamp (computed once).
const RunStamp& CurrentRunStamp();

/// The stamp as a JSON object: `{"git_sha":...,"kernel_backend":...,
/// "timestamp":...}`.
std::string StampJson();

/// Observability dump destinations for a figure run (empty = skip).
struct ObsDumpPaths {
  std::string trace_path;    ///< Chrome trace_event JSON (+ .slow.jsonl).
  std::string metrics_path;  ///< MetricsRegistry JSON snapshot.
  std::string profile_path;  ///< Folded flame-graph stacks (PROFILE_*.folded).
};

/// Strips the shared `--trace=PATH` / `--metrics=PATH` / `--profile=PATH`
/// flags (call before benchmark::Initialize, like ExtractJsonPath). When
/// --metrics is absent, falls back to the GENBASE_METRICS_JSON environment
/// variable. `--profile=` additionally enables obs::Profiler for the run
/// and, unless GENBASE_TRACE_SAMPLE pinned a rate, raises trace sampling to
/// 1.0 so the folded output aggregates every request.
ObsDumpPaths ExtractObsPaths(int* argc, char** argv);

/// Writes the requested observability artifacts: drains the global tracer
/// once into `trace_path` (Chrome trace JSON, stamped) plus the slow-query
/// log next to it (trace path with a .slow.jsonl suffix), folds the same
/// spans into `profile_path` flame-graph stacks, and snapshots the global
/// metrics registry into `metrics_path` (wrapped with the stamp). Empty
/// paths skip; short writes are errors.
genbase::Status WriteObsDumps(const ObsDumpPaths& paths);

/// Dumps workload reports as one machine-readable JSON document
/// (`{"figure":…,"config":{scale,timeout},"reports":[…]}`), so perf
/// trajectory can be captured into BENCH_*.json artifacts. No-op ("" path)
/// when the caller ran without --json.
genbase::Status WriteJsonReports(
    const std::string& path, const std::string& figure,
    const std::vector<workload::WorkloadReport>& reports);

/// Shared workload-figure epilogue: dumps `reports` via WriteJsonReports
/// and converts (verification failures, dump status) into the process exit
/// code — nonzero on any failure, so CI smoke steps gate on end-to-end
/// correctness. One definition keeps fig6/fig7 exit policy in lockstep.
int FigureExitCode(const std::string& json_path, const std::string& figure,
                   const std::vector<workload::WorkloadReport>& reports,
                   int64_t verification_failures);

/// Formats seconds with the paper's INF convention.
std::string FormatSeconds(double s);

inline constexpr core::DatasetSize kBenchSizes[] = {
    core::DatasetSize::kSmall, core::DatasetSize::kMedium,
    core::DatasetSize::kLarge};

}  // namespace genbase::bench

#endif  // GENBASE_BENCH_BENCH_UTIL_H_
