#ifndef GENBASE_BENCH_BENCH_UTIL_H_
#define GENBASE_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_engine.h"
#include "core/datasets.h"
#include "core/driver.h"
#include "core/engine.h"

namespace genbase::bench {

/// Benchmark datasets are generated once per size at SimConfig scale.
const core::GenBaseData& CachedData(core::DatasetSize size);

/// Driver options from SimConfig (GENBASE_TIMEOUT).
core::DriverOptions DefaultDriverOptions();

/// Runs one (engine, query, size) cell. The engine instance is cached and
/// loaded once per (key, size); a failed load (e.g. R on the large dataset)
/// is reported as INF for every query — the paper's semantics for systems
/// that cannot hold the data.
core::CellResult RunSingleNodeCell(
    const std::string& engine_key,
    const std::function<std::unique_ptr<core::Engine>()>& factory,
    core::QueryId query, core::DatasetSize size);

/// As above for a multi-node configuration (cached per options + size).
core::CellResult RunClusterCell(const cluster::ClusterEngineOptions& options,
                                core::QueryId query, core::DatasetSize size);

/// Global collector so bench binaries can print paper-shaped grids after
/// google-benchmark has run all registered cells.
void RecordCell(const core::CellResult& cell);
const std::vector<core::CellResult>& RecordedCells();

/// Looks up a recorded cell's display string; "?" if absent.
std::string CellDisplay(const std::string& engine, core::QueryId query,
                        core::DatasetSize size, int nodes = 1);

/// Finds a recorded cell (nullptr if absent).
const core::CellResult* FindCell(const std::string& engine,
                                 core::QueryId query, core::DatasetSize size,
                                 int nodes = 1);

/// Prints the workload banner (scale, dims, timeout, model constants).
void PrintBanner(const char* figure);

/// Formats seconds with the paper's INF convention.
std::string FormatSeconds(double s);

inline constexpr core::DatasetSize kBenchSizes[] = {
    core::DatasetSize::kSmall, core::DatasetSize::kMedium,
    core::DatasetSize::kLarge};

}  // namespace genbase::bench

#endif  // GENBASE_BENCH_BENCH_UTIL_H_
