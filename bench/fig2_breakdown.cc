// Figure 2 (a-b): data management vs analytics breakdown of the regression
// task, single node. The paper omits Postgres from this chart ("this
// breakdown is not available for Postgres"), which we mirror.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/driver.h"
#include "workload/report.h"
#include "engine/engines.h"

namespace genbase::bench {
namespace {

struct EngineSpec {
  const char* key;
  const char* display;
  std::unique_ptr<core::Engine> (*factory)();
};

const EngineSpec kEngines[] = {
    {"col_r", "Column store + R", engine::CreateColumnStoreR},
    {"col_udf", "Column store + UDFs", engine::CreateColumnStoreUdf},
    {"hadoop", "Hadoop", engine::CreateHadoop},
    {"scidb", "SciDB", engine::CreateSciDb},
    {"r", "Vanilla R", engine::CreateVanillaR},
};

void RegisterCells() {
  for (const auto& spec : kEngines) {
    for (core::DatasetSize size : kBenchSizes) {
      const std::string name = std::string("fig2/") + spec.key + "/" +
                               core::DatasetSizeName(size);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [spec, size](benchmark::State& state) {
            for (auto _ : state) {
              const core::CellResult cell = RunSingleNodeCell(
                  spec.key, spec.factory, core::QueryId::kRegression, size);
              state.SetIterationTime(std::max(cell.total_s, 1e-9));
              state.SetLabel("dm=" + FormatSeconds(cell.dm_s) +
                             " analytics=" +
                             FormatSeconds(cell.analytics_s));
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintFigure() {
  std::vector<std::string> engines;
  for (const auto& spec : kEngines) engines.push_back(spec.display);
  std::vector<std::string> x_values;
  for (core::DatasetSize s : kBenchSizes) {
    x_values.push_back(core::DatasetSizeName(s));
  }
  const struct {
    const char* title;
    double core::CellResult::*field;
  } panels[] = {
      {"Figure 2a: Linear Regression Data Management",
       &core::CellResult::dm_s},
      {"Figure 2b: Linear Regression Analytics",
       &core::CellResult::analytics_s},
  };
  for (const auto& panel : panels) {
    std::vector<std::vector<std::string>> cells;
    for (core::DatasetSize s : kBenchSizes) {
      std::vector<std::string> row;
      for (const auto& spec : kEngines) {
        const auto* cell =
            FindCell(spec.display, core::QueryId::kRegression, s);
        if (cell == nullptr || !cell->supported) {
          row.push_back("n/a");
        } else if (cell->infinite) {
          row.push_back("INF");
        } else if (!cell->status.ok()) {
          row.push_back("ERR");
        } else {
          row.push_back(FormatSeconds(cell->*panel.field));
        }
      }
      cells.push_back(std::move(row));
    }
    workload::PrintGrid(panel.title, "dataset", x_values, engines, cells);
  }
  // Glue share (the copy/reformat cost the paper highlights).
  std::printf("\n=== Glue (copy/reformat) share of data management, "
              "large dataset ===\n");
  for (const auto& spec : kEngines) {
    const auto* cell = FindCell(spec.display, core::QueryId::kRegression,
                                core::DatasetSize::kLarge);
    if (cell == nullptr || !cell->status.ok() || cell->dm_s <= 0) continue;
    std::printf("%-24s glue %6.3fs of dm %6.3fs (%4.1f%%)\n", spec.display,
                cell->glue_s, cell->dm_s,
                100.0 * cell->glue_s / cell->dm_s);
  }
}

}  // namespace
}  // namespace genbase::bench

int main(int argc, char** argv) {
  genbase::bench::PrintBanner(
      "Figure 2: regression DM vs analytics breakdown (single node)");
  genbase::bench::RegisterCells();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  genbase::bench::PrintFigure();
  return 0;
}
