#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/driver.h"
#include "core/engine.h"
#include "core/generator.h"
#include "engine/engines.h"

namespace genbase {
namespace {

using core::CellResult;
using core::DatasetSize;
using core::DriverOptions;
using core::QueryId;
using core::QueryResult;

/// Scripted engine for driver-semantics tests.
class FakeEngine : public core::Engine {
 public:
  enum class Behavior { kOk, kOom, kSlow, kVirtualBlowup, kError };

  explicit FakeEngine(Behavior b) : behavior_(b) {}

  std::string name() const override { return "fake"; }
  genbase::Status DoLoadDataset(const core::GenBaseData&) override {
    return genbase::Status::OK();
  }
  void DoUnloadDataset() override {}
  void PrepareContext(ExecContext* ctx) override { ctx->set_pool(nullptr); }

  bool SupportsQuery(QueryId q) const override {
    return q != QueryId::kBiclustering;
  }

  genbase::Result<QueryResult> RunQuery(QueryId query,
                                        const core::QueryParams&,
                                        ExecContext* ctx) override {
    QueryResult out;
    out.query = query;
    switch (behavior_) {
      case Behavior::kOk:
        ctx->clock().AddMeasured(Phase::kDataManagement, 0.25);
        ctx->clock().AddMeasured(Phase::kAnalytics, 0.5);
        return out;
      case Behavior::kOom:
        return genbase::Status::OutOfMemory("synthetic");
      case Behavior::kSlow:
        // Cooperative deadline check after "working" past the budget.
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
        return out;
      case Behavior::kVirtualBlowup:
        // Fast in wall-clock, but the modeled deployment would blow the
        // budget (e.g. per-iteration MapReduce jobs).
        ctx->clock().AddVirtual(Phase::kAnalytics, 1e6);
        return out;
      case Behavior::kError:
        return genbase::Status::Internal("synthetic failure");
    }
    return genbase::Status::Internal("unreachable");
  }

 private:
  Behavior behavior_;
};

DriverOptions FastOptions() {
  DriverOptions o;
  o.timeout_seconds = 0.05;
  return o;
}

TEST(DriverTest, SuccessfulCellReportsPhases) {
  FakeEngine e(FakeEngine::Behavior::kOk);
  DriverOptions o;
  o.timeout_seconds = 10.0;
  const CellResult cell =
      core::RunCell(&e, QueryId::kRegression, DatasetSize::kSmall, o);
  EXPECT_TRUE(cell.status.ok());
  EXPECT_FALSE(cell.infinite);
  EXPECT_DOUBLE_EQ(cell.dm_s, 0.25);
  EXPECT_DOUBLE_EQ(cell.analytics_s, 0.5);
  EXPECT_DOUBLE_EQ(cell.total_s, 0.75);
  EXPECT_EQ(cell.Display(), "0.750");
}

TEST(DriverTest, OomBecomesInf) {
  FakeEngine e(FakeEngine::Behavior::kOom);
  const CellResult cell =
      core::RunCell(&e, QueryId::kRegression, DatasetSize::kSmall,
                    FastOptions());
  EXPECT_TRUE(cell.infinite);
  EXPECT_EQ(cell.Display(), "INF");
}

TEST(DriverTest, DeadlineBecomesInf) {
  FakeEngine e(FakeEngine::Behavior::kSlow);
  const CellResult cell =
      core::RunCell(&e, QueryId::kRegression, DatasetSize::kSmall,
                    FastOptions());
  EXPECT_TRUE(cell.infinite);
  EXPECT_TRUE(cell.status.IsDeadlineExceeded());
}

TEST(DriverTest, ModeledTimeOverBudgetBecomesInf) {
  FakeEngine e(FakeEngine::Behavior::kVirtualBlowup);
  const CellResult cell =
      core::RunCell(&e, QueryId::kRegression, DatasetSize::kSmall,
                    FastOptions());
  EXPECT_TRUE(cell.infinite);
}

TEST(DriverTest, HardErrorIsNotInf) {
  FakeEngine e(FakeEngine::Behavior::kError);
  const CellResult cell =
      core::RunCell(&e, QueryId::kRegression, DatasetSize::kSmall,
                    FastOptions());
  EXPECT_FALSE(cell.infinite);
  EXPECT_FALSE(cell.status.ok());
  EXPECT_EQ(cell.Display(), "ERR");
}

TEST(DriverTest, UnsupportedQueryIsNa) {
  FakeEngine e(FakeEngine::Behavior::kOk);
  const CellResult cell =
      core::RunCell(&e, QueryId::kBiclustering, DatasetSize::kSmall,
                    FastOptions());
  EXPECT_FALSE(cell.supported);
  EXPECT_EQ(cell.Display(), "n/a");
}

// --- real-engine capability matrix (paper Section 4.1/4.3) ---------------------------

TEST(CapabilityTest, MadlibLacksBiclustering) {
  auto e = engine::CreatePostgresMadlib();
  EXPECT_FALSE(e->SupportsQuery(QueryId::kBiclustering));
  EXPECT_TRUE(e->SupportsQuery(QueryId::kSvd));
  EXPECT_TRUE(e->SupportsQuery(QueryId::kStatistics));
}

TEST(CapabilityTest, HadoopRunsOnlyMahoutSubset) {
  auto e = engine::CreateHadoop();
  EXPECT_TRUE(e->SupportsQuery(QueryId::kRegression));
  EXPECT_TRUE(e->SupportsQuery(QueryId::kCovariance));
  EXPECT_TRUE(e->SupportsQuery(QueryId::kSvd));
  EXPECT_FALSE(e->SupportsQuery(QueryId::kBiclustering));
  EXPECT_FALSE(e->SupportsQuery(QueryId::kStatistics));
}

TEST(CapabilityTest, FullSupportEverywhereElse) {
  for (auto factory : {engine::CreateVanillaR, engine::CreatePostgresR,
                       engine::CreateColumnStoreR,
                       engine::CreateColumnStoreUdf, engine::CreateSciDb}) {
    auto e = factory();
    for (QueryId q : core::kAllQueries) {
      EXPECT_TRUE(e->SupportsQuery(q)) << e->name();
    }
  }
}

TEST(CapabilityTest, SevenSingleNodeConfigurations) {
  const auto engines = engine::CreateSingleNodeEngines();
  EXPECT_EQ(engines.size(), 7u);
}

// --- R-specific limits ------------------------------------------------------------

TEST(RLimitsTest, QueryWithoutLoadIsResourceFailure) {
  auto e = engine::CreateVanillaR();
  ExecContext ctx;
  e->PrepareContext(&ctx);
  auto result = e->RunQuery(QueryId::kRegression, core::QueryParams(), &ctx);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceFailure());
}

}  // namespace
}  // namespace genbase
