#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/generator.h"
#include "engine/engines.h"
#include "obs/trace.h"
#include "serving/serving_stack.h"
#include "workload/latency_histogram.h"
#include "workload/report.h"
#include "workload/runner.h"
#include "workload/workload_spec.h"

namespace genbase::workload {
namespace {

constexpr double kTinyScale = 0.008;  // 40 genes x 40 patients for small.

const core::GenBaseData& TinyData() {
  static const core::GenBaseData* data = [] {
    auto r = core::GenerateDataset(core::DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new core::GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

core::QueryParams TinyParams() {
  core::QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

// --- latency histogram ------------------------------------------------------

TEST(LatencyHistogramTest, ExactStatsAndBucketedPercentiles) {
  LatencyHistogram h;
  // 1ms .. 1000ms, uniformly.
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.sum(), 500.5, 1e-9);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-9);
  // Buckets grow by 5%, so percentiles resolve within ~5% relative error.
  EXPECT_NEAR(h.Percentile(50), 0.5, 0.5 * 0.06);
  EXPECT_NEAR(h.Percentile(90), 0.9, 0.9 * 0.06);
  EXPECT_NEAR(h.Percentile(99), 0.99, 0.99 * 0.06);
  // Extremes are exact.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1e-3);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1.0);
}

TEST(LatencyHistogramTest, EmptyAndSingle) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  h.Record(0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.25);
}

TEST(LatencyHistogramTest, ExtremePercentilesAreExact) {
  // p100 must return the tracked max even when the max sits above its
  // bucket's geometric midpoint (0.98 does), and p0 the tracked min.
  LatencyHistogram h;
  h.Record(0.001);
  h.Record(0.98);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.98);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.001);
}

TEST(LatencyHistogramTest, SingleSampleIsExactAtEveryPercentile) {
  LatencyHistogram h;
  h.Record(0.0375);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 0.0375) << p;
  }
}

TEST(LatencyHistogramTest, ValuesAtTheMicrosecondFloorAreExact) {
  // 1us is the bottom of the tracked range; values at (and below) it land
  // in the clamp bucket but min/max/percentile extremes stay exact.
  LatencyHistogram h;
  h.Record(1e-6);
  h.Record(1e-6);
  h.Record(5e-7);  // Below the floor: clamps, never crashes.
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min(), 5e-7);
  EXPECT_DOUBLE_EQ(h.max(), 1e-6);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 5e-7);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1e-6);
  // Mid percentiles resolve within the clamp bucket, bounded by min/max.
  EXPECT_GE(h.Percentile(50), h.min());
  EXPECT_LE(h.Percentile(50), h.max());
}

TEST(LatencyHistogramTest, MergeIntoEmptyMatchesSource) {
  LatencyHistogram empty, filled;
  filled.Record(0.002);
  filled.Record(0.2);
  filled.Record(0.02);
  empty.Merge(filled);
  EXPECT_EQ(empty.count(), filled.count());
  EXPECT_DOUBLE_EQ(empty.sum(), filled.sum());
  EXPECT_DOUBLE_EQ(empty.min(), filled.min());
  EXPECT_DOUBLE_EQ(empty.max(), filled.max());
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_DOUBLE_EQ(empty.Percentile(p), filled.Percentile(p)) << p;
  }
  // Merging an empty histogram in is a no-op.
  LatencyHistogram still_empty;
  empty.Merge(still_empty);
  EXPECT_EQ(empty.count(), 3);
  EXPECT_DOUBLE_EQ(empty.max(), 0.2);
}

TEST(LatencyHistogramTest, MergedHistogramKeepsExactExtremes) {
  // p0/p100 of a merged histogram are the cross-source min/max even when
  // those values sit away from their buckets' midpoints.
  LatencyHistogram a, b;
  a.Record(0.0011);
  a.Record(0.47);
  b.Record(0.98);
  b.Record(0.003);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Percentile(0), 0.0011);
  EXPECT_DOUBLE_EQ(a.Percentile(100), 0.98);
}

TEST(LatencyHistogramTest, QuantileEdgeCases) {
  LatencyHistogram h;
  // Empty: every quantile is a defined 0, not a read of stale min/max.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
  h.Record(0.2);
  h.Record(0.4);
  // Extremes are tracked exactly, outside the bucket resolution.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.2);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.4);
  // Out-of-range q clamps instead of producing nonsense ranks.
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), 0.2);
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), 0.4);
  // Percentile is a thin delegate: p on [0,100] == q on [0,1].
  EXPECT_DOUBLE_EQ(h.Percentile(100), h.Quantile(1.0));
  EXPECT_DOUBLE_EQ(h.Percentile(50), h.Quantile(0.5));
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    const double v = i * 2e-3;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p)) << p;
  }
}

// --- schedule ---------------------------------------------------------------

TEST(WorkloadSpecTest, ValidateRejectsBadSpecs) {
  WorkloadSpec spec;
  EXPECT_TRUE(spec.Validate().ok());
  spec.clients = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = WorkloadSpec();
  spec.measured_ops = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = WorkloadSpec();
  spec.model = ClientModel::kOpenLoopPoisson;
  spec.arrival_rate_qps = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = WorkloadSpec();
  spec.mix = {{core::QueryId::kRegression, -1.0}};
  EXPECT_FALSE(spec.Validate().ok());
  spec = WorkloadSpec();
  spec.param_variants = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, VariantParamsAreDeterministicMildAndDistinct) {
  const core::QueryParams base;
  // Variant 0 is the base itself.
  const core::QueryParams v0 = VariantParams(base, 0);
  EXPECT_EQ(v0.function_threshold, base.function_threshold);
  EXPECT_DOUBLE_EQ(v0.covariance_quantile, base.covariance_quantile);
  // Same variant twice -> same params; adjacent variants differ.
  const core::QueryParams a = VariantParams(base, 3);
  const core::QueryParams b = VariantParams(base, 3);
  EXPECT_EQ(a.function_threshold, b.function_threshold);
  EXPECT_EQ(a.max_age, b.max_age);
  const core::QueryParams c = VariantParams(base, 4);
  EXPECT_TRUE(a.function_threshold != c.function_threshold ||
              a.covariance_quantile != c.covariance_quantile ||
              a.max_age != c.max_age || a.svd_rank != c.svd_rank);
  // Every variant stays in ranges valid at tiny test scales.
  for (int v = 0; v < 64; ++v) {
    const core::QueryParams p = VariantParams(base, v);
    EXPECT_GE(p.function_threshold, 64) << v;
    EXPECT_GE(p.covariance_quantile, 0.5) << v;
    EXPECT_LE(p.covariance_quantile, 0.99) << v;
    EXPECT_GE(p.svd_rank, 2) << v;
    EXPECT_GE(p.max_age, base.max_age) << v;
  }
}

TEST(WorkloadSpecTest, ScheduleDrawsVariantsAcrossTheRange) {
  WorkloadSpec spec;
  spec.param_variants = 4;
  spec.measured_ops = 2000;
  const auto schedule = BuildSchedule(spec);
  std::map<int, int> counts;
  for (const auto& op : schedule) {
    ASSERT_GE(op.variant, 0);
    ASSERT_LT(op.variant, 4);
    ++counts[op.variant];
  }
  EXPECT_EQ(counts.size(), 4u);  // All variants appear.
  // Default of one variant pins everything to variant 0.
  spec.param_variants = 1;
  for (const auto& op : BuildSchedule(spec)) EXPECT_EQ(op.variant, 0);
}

TEST(WorkloadSpecTest, ScheduleIsDeterministic) {
  WorkloadSpec spec;
  spec.measured_ops = 500;
  spec.warmup_ops = 20;
  spec.model = ClientModel::kOpenLoopPoisson;
  spec.arrival_rate_qps = 100;
  spec.seed = 7;
  const auto a = BuildSchedule(spec);
  const auto b = BuildSchedule(spec);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 520u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query, b[i].query) << i;
    EXPECT_DOUBLE_EQ(a[i].arrival_offset_s, b[i].arrival_offset_s) << i;
  }
  // A different seed produces a different sequence.
  spec.seed = 8;
  const auto c = BuildSchedule(spec);
  int diffs = 0;
  for (size_t i = 0; i < a.size(); ++i) diffs += a[i].query != c[i].query;
  EXPECT_GT(diffs, 0);
}

TEST(WorkloadSpecTest, MixProportionsMatchWeights) {
  WorkloadSpec spec;
  spec.mix = {
      {core::QueryId::kRegression, 6},
      {core::QueryId::kCovariance, 3},
      {core::QueryId::kStatistics, 1},
  };
  spec.measured_ops = 20000;
  spec.warmup_ops = 0;
  spec.seed = 123;
  const auto schedule = BuildSchedule(spec);
  std::map<core::QueryId, int> counts;
  for (const auto& op : schedule) ++counts[op.query];
  EXPECT_EQ(counts.size(), 3u);
  EXPECT_NEAR(counts[core::QueryId::kRegression] / 20000.0, 0.6, 0.02);
  EXPECT_NEAR(counts[core::QueryId::kCovariance] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[core::QueryId::kStatistics] / 20000.0, 0.1, 0.02);
}

TEST(WorkloadSpecTest, OpenLoopArrivalsAreMonotoneAtTargetRate) {
  WorkloadSpec spec;
  spec.model = ClientModel::kOpenLoopUniform;
  spec.arrival_rate_qps = 200;
  spec.measured_ops = 400;
  const auto schedule = BuildSchedule(spec);
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GT(schedule[i].arrival_offset_s, schedule[i - 1].arrival_offset_s);
  }
  // 400 ops at 200 qps span ~2 seconds.
  EXPECT_NEAR(schedule.back().arrival_offset_s, 2.0, 1e-9);
}

TEST(WorkloadSpecTest, OpenLoopOffsetsRebaseAtWarmupBoundary) {
  WorkloadSpec spec;
  spec.model = ClientModel::kOpenLoopUniform;
  spec.arrival_rate_qps = 100;
  spec.warmup_ops = 100;
  spec.measured_ops = 100;
  const auto schedule = BuildSchedule(spec);
  ASSERT_EQ(schedule.size(), 200u);
  // Warm-up ops issue immediately; the first measured op arrives one
  // interarrival after the measured phase starts, not warmup_ops/rate later.
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(schedule[i].arrival_offset_s, 0.0) << i;
  }
  EXPECT_NEAR(schedule[100].arrival_offset_s, 0.01, 1e-12);
  EXPECT_NEAR(schedule.back().arrival_offset_s, 1.0, 1e-9);
}

TEST(WorkloadSpecTest, ZeroWeightQueriesAreNeverScheduled) {
  WorkloadSpec spec;
  spec.mix = {
      {core::QueryId::kRegression, 1.0},
      {core::QueryId::kBiclustering, 0.0},
  };
  spec.measured_ops = 5000;
  const auto schedule = BuildSchedule(spec);
  for (const auto& op : schedule) {
    EXPECT_EQ(op.query, core::QueryId::kRegression);
  }
}

TEST(WorkloadSpecTest, AllZeroWeightsFallBackToUniform) {
  // Validate() rejects this spec, but BuildSchedule is a pure function
  // callable directly; it must degrade to the uniform mix, never schedule a
  // run of only the (excluded) last entry.
  WorkloadSpec spec;
  spec.mix = {
      {core::QueryId::kRegression, 0.0},
      {core::QueryId::kBiclustering, 0.0},
  };
  spec.measured_ops = 1000;
  const auto schedule = BuildSchedule(spec);
  std::map<core::QueryId, int> counts;
  for (const auto& op : schedule) ++counts[op.query];
  EXPECT_EQ(counts.size(), 5u);  // Uniform over Q1..Q5.
}

// --- runner smoke run -------------------------------------------------------

WorkloadSpec SmokeSpec() {
  WorkloadSpec spec;
  spec.name = "smoke";
  spec.params = TinyParams();
  spec.size = core::DatasetSize::kSmall;
  spec.clients = 4;
  spec.warmup_ops = 4;
  spec.measured_ops = 32;
  spec.seed = 99;
  spec.verify = true;
  return spec;
}

TEST(WorkloadRunnerTest, SmokeRunFourClientsVerifiesAgainstReference) {
  auto engine = engine::CreateColumnStoreUdf();
  WorkloadRunner runner(SmokeSpec());
  auto report = runner.Run(engine.get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->clients, 4);
  EXPECT_EQ(report->total.ops, 32);
  EXPECT_EQ(report->total.errors, 0);
  EXPECT_EQ(report->total.infs, 0);
  EXPECT_EQ(report->total.verify_failures, 0);
  EXPECT_EQ(report->total.latency.count(), 32);
  EXPECT_GT(report->wall_seconds, 0.0);
  EXPECT_GT(report->achieved_qps(), 0.0);
  int64_t per_query_ops = 0;
  for (const auto& [query, stats] : report->per_query) {
    per_query_ops += stats.ops;
    EXPECT_EQ(stats.errors, 0) << core::QueryName(query);
    EXPECT_EQ(stats.verify_failures, 0) << core::QueryName(query);
  }
  EXPECT_EQ(per_query_ops, 32);
}

TEST(WorkloadRunnerTest, RepeatedRunsHaveIdenticalCountsAndMix) {
  auto spec = SmokeSpec();
  std::map<core::QueryId, int64_t> first;
  for (int run = 0; run < 2; ++run) {
    auto engine = engine::CreateSciDb();
    WorkloadRunner runner(spec);
    auto report = runner.Run(engine.get(), TinyData());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->total.ops, spec.measured_ops);
    std::map<core::QueryId, int64_t> counts;
    for (const auto& [query, stats] : report->per_query) {
      counts[query] = stats.ops;
    }
    if (run == 0) {
      first = counts;
    } else {
      EXPECT_EQ(first, counts);
    }
  }
}

TEST(WorkloadRunnerTest, UnsupportedQueriesCountAsErrors) {
  // Postgres+Madlib lacks biclustering; a bicluster-only mix must complete
  // with every op flagged as an error, not crash or hang.
  auto engine = engine::CreatePostgresMadlib();
  auto spec = SmokeSpec();
  spec.mix = {{core::QueryId::kBiclustering, 1.0}};
  spec.measured_ops = 8;
  spec.warmup_ops = 0;
  spec.verify = false;
  WorkloadRunner runner(spec);
  auto report = runner.Run(engine.get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  if (!engine->SupportsQuery(core::QueryId::kBiclustering)) {
    EXPECT_EQ(report->total.errors, 8);
    // All-failure runs report zero goodput and an empty latency
    // distribution, not ~0ms percentiles at a positive qps.
    EXPECT_EQ(report->total.latency.count(), 0);
    EXPECT_DOUBLE_EQ(report->achieved_qps(), 0.0);
  }
}

TEST(WorkloadRunnerTest, OpenLoopPoissonSmoke) {
  auto engine = engine::CreateSciDb();
  auto spec = SmokeSpec();
  spec.model = ClientModel::kOpenLoopPoisson;
  spec.arrival_rate_qps = 500;  // Fast arrivals; run bounded by ops budget.
  spec.measured_ops = 16;
  WorkloadRunner runner(spec);
  auto report = runner.Run(engine.get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total.ops, 16);
  EXPECT_EQ(report->total.errors, 0);
  EXPECT_EQ(report->total.verify_failures, 0);
  EXPECT_DOUBLE_EQ(report->offered_qps, 500);
}

TEST(WorkloadRunnerTest, OpenLoopLatencyIsCoordinatedOmissionCorrected) {
  // Arrivals far outpace 2 clients: ops issue behind schedule, and the
  // honest latency of a late op runs from its *scheduled* arrival. The
  // queueing share (dispatch lag) is recorded in its own histogram, so
  // latency >= queue delay sample-for-sample (service time is the rest).
  auto engine = engine::CreateSciDb();
  auto spec = SmokeSpec();
  spec.model = ClientModel::kOpenLoopUniform;
  spec.arrival_rate_qps = 4000;
  spec.clients = 2;
  spec.measured_ops = 24;
  spec.warmup_ops = 0;
  WorkloadRunner runner(spec);
  auto report = runner.Run(engine.get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->total.ops, 24);
  ASSERT_EQ(report->total.errors, 0);
  // Every served success has both a latency and a queue-delay sample.
  EXPECT_EQ(report->total.queue_delay.count(),
            report->total.latency.count());
  // With 24 ops scheduled inside 6ms against 2 clients, the backlog is
  // real: queueing delay must have been observed...
  EXPECT_GT(report->total.queue_delay.max(), 0.0);
  // ...and CO-corrected latency dominates both of its components.
  EXPECT_GE(report->total.latency.max(),
            report->total.queue_delay.max());
  EXPECT_GE(report->total.latency.sum(),
            report->total.queue_delay.sum());
}

// --- tracing + per-stage breakdown ------------------------------------------

/// Scoped sample-rate override; restores the global rate on exit so these
/// tests do not leak a 100% rate into unrelated tests.
class ScopedSampleRate {
 public:
  explicit ScopedSampleRate(double rate)
      : saved_(obs::Tracer::Global().sample_rate()) {
    obs::Tracer::Global().set_sample_rate(rate);
  }
  ~ScopedSampleRate() { obs::Tracer::Global().set_sample_rate(saved_); }

 private:
  double saved_;
};

serving::ServingOptions TestServingOptions() {
  serving::ServingOptions options;
  options.shards = 2;
  options.cache_enabled = true;
  return options;
}

TEST(WorkloadRunnerTest, StageBreakdownSumsToEndToEndLatency) {
  auto stack = serving::ServingStack::Create(
      TestServingOptions(), engine::CreateColumnStoreUdf, TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  WorkloadRunner runner(SmokeSpec());
  auto report = runner.Run(stack.ValueOrDie().get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->total.errors, 0);
  ASSERT_EQ(report->total.verify_failures, 0);

  const OpStats& total = report->total;
  // Every successful op contributes one sample to every stage histogram
  // (zero-duration stages record 0) and one end-to-end sample.
  EXPECT_EQ(total.e2e_latency.count(), total.latency.count());
  for (int s = 0; s < obs::kNumRequestStages; ++s) {
    EXPECT_EQ(total.stage[s].count(), total.latency.count())
        << obs::RequestStageName(static_cast<obs::RequestStage>(s));
  }
  // Stage seconds partition the end-to-end seconds: summed over the run,
  // the six stages must reproduce e2e within float accumulation noise.
  double stage_sum = 0.0;
  for (int s = 0; s < obs::kNumRequestStages; ++s) {
    stage_sum += total.stage[s].sum();
  }
  EXPECT_NEAR(stage_sum, total.e2e_latency.sum(),
              1e-9 * std::max<double>(1, total.e2e_latency.count()));
  // e2e = latency + verify, and verification really ran (spec.verify).
  EXPECT_NEAR(total.e2e_latency.sum(),
              total.latency.sum() + total.stage[static_cast<int>(
                                        obs::RequestStage::kVerify)].sum(),
              1e-9 * std::max<double>(1, total.e2e_latency.count()));
  EXPECT_GT(
      total.stage[static_cast<int>(obs::RequestStage::kVerify)].sum(), 0.0);
  // queue + flight == queue_delay, summed.
  EXPECT_NEAR(
      total.stage[static_cast<int>(obs::RequestStage::kQueue)].sum() +
          total.stage[static_cast<int>(obs::RequestStage::kFlight)].sum(),
      total.queue_delay.sum(),
      1e-9 * std::max<double>(1, total.e2e_latency.count()));
}

TEST(WorkloadRunnerTest, SpansNestUnderConcurrentServingRun) {
  ScopedSampleRate rate(1.0);  // Sample everything: structure, not cost.
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.TakeCollected();  // Drain spans left by earlier tests.
  tracer.TakeSlowQueries();
  const int64_t dropped_before = tracer.spans_dropped();

  auto stack = serving::ServingStack::Create(
      TestServingOptions(), engine::CreateColumnStoreUdf, TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  WorkloadRunner runner(SmokeSpec());
  auto report = runner.Run(stack.ValueOrDie().get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::vector<obs::Span> spans = tracer.TakeCollected();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(tracer.spans_dropped(), dropped_before);

  // Index spans by (trace, span id); every parent reference must resolve
  // within its own trace, and every measured-phase trace has exactly one
  // root — the runner's "request" span.
  std::map<std::pair<uint64_t, uint64_t>, const obs::Span*> by_id;
  for (const obs::Span& s : spans) {
    EXPECT_NE(s.trace_id, 0u);
    by_id[{s.trace_id, s.span_id}] = &s;
  }
  std::map<uint64_t, int> roots;
  for (const obs::Span& s : spans) {
    if (s.parent_id == 0) {
      EXPECT_STREQ(s.name, "request");
      ++roots[s.trace_id];
      continue;
    }
    const auto parent = by_id.find({s.trace_id, s.parent_id});
    ASSERT_NE(parent, by_id.end())
        << s.name << " has a dangling parent id " << s.parent_id;
    // A child span never starts before its parent.
    EXPECT_GE(s.start_s, parent->second->start_s - 1e-9) << s.name;
  }
  const int measured_ops = SmokeSpec().measured_ops;
  EXPECT_EQ(static_cast<int>(roots.size()), measured_ops);
  for (const auto& [trace_id, count] : roots) {
    EXPECT_EQ(count, 1) << "trace " << trace_id;
  }

  // The slow-query log kept the slowest-N successful requests.
  const std::vector<obs::SlowQueryRecord> slow = tracer.TakeSlowQueries();
  ASSERT_FALSE(slow.empty());
  for (const obs::SlowQueryRecord& rec : slow) {
    EXPECT_TRUE(rec.slowest);
    EXPECT_GT(rec.latency_s, 0.0);
    EXPECT_EQ(rec.workload, "smoke");
  }
}

TEST(WorkloadRunnerTest, TraceSamplingIsDeterministicAcrossRuns) {
  ScopedSampleRate rate(0.5);
  obs::Tracer& tracer = obs::Tracer::Global();
  std::set<uint64_t> first_ids;
  for (int run = 0; run < 2; ++run) {
    tracer.TakeCollected();
    tracer.TakeSlowQueries();
    auto engine = engine::CreateSciDb();
    WorkloadRunner runner(SmokeSpec());
    auto report = runner.Run(engine.get(), TinyData());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    std::set<uint64_t> ids;
    for (const obs::Span& s : tracer.TakeCollected()) {
      // Skip tail-kept synthetic spans: which requests end up slowest-N is
      // timing-dependent by design; only head sampling is deterministic.
      if (!s.synthetic) ids.insert(s.trace_id);
    }
    ASSERT_FALSE(ids.empty());
    if (run == 0) {
      first_ids = ids;
    } else {
      // Same seed, same schedule, same hash: the sampled set is identical.
      EXPECT_EQ(first_ids, ids);
    }
  }
}

}  // namespace
}  // namespace genbase::workload
