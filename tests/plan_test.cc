#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/datasets.h"
#include "core/generator.h"
#include "core/queries.h"
#include "engine/engine_util.h"
#include "plan/arena.h"
#include "plan/compiled_plan.h"
#include "plan/memory_planner.h"
#include "plan/plan_builder.h"
#include "plan/plan_engine.h"
#include "plan/plan_graph.h"
#include "plan/scheduler.h"

namespace genbase {
namespace {

using core::DatasetSize;
using core::GenBaseData;
using core::QueryId;
using core::QueryParams;
using core::QueryResult;
using plan::BufferAssignment;
using plan::MemoryPlan;
using plan::OpDef;
using plan::OpKind;
using plan::PlanGraph;
using plan::TensorSpec;

constexpr double kTinyScale = 0.008;

const GenBaseData& TinyData() {
  static const GenBaseData* data = [] {
    auto r = core::GenerateDataset(DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

QueryParams TinyParams() {
  QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

/// One columnar copy of the tiny dataset shared by the planned and legacy
/// paths, so bitwise comparisons read the exact same storage.
std::shared_ptr<const engine::ColumnarTables> TinyTables() {
  static const auto* tables = [] {
    static MemoryTracker tracker(MemoryTracker::kUnlimited, "PlanTestTables");
    auto t = std::make_shared<engine::ColumnarTables>();
    GENBASE_CHECK(
        engine::LoadColumnarTables(TinyData(), &tracker, t.get()).ok());
    return new std::shared_ptr<const engine::ColumnarTables>(std::move(t));
  }();
  return *tables;
}

/// --- bitwise result comparison ----------------------------------------------
/// Equality at the bit level, not within tolerance: planned kernels share
/// the exact inner implementations with the legacy path, so every double
/// must match bit for bit.

bool BitEq(double a, double b) {
  uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

bool BitEq(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!BitEq(a[i], b[i])) return false;
  }
  return true;
}

::testing::AssertionResult BitwiseEqual(const QueryResult& a,
                                        const QueryResult& b) {
  const auto fail = [&](const char* what) {
    return ::testing::AssertionFailure()
           << what << " differs:\n  planned: " << a.ToString()
           << "\n  legacy:  " << b.ToString();
  };
  if (a.query != b.query) return fail("query id");
  const auto& ar = a.regression;
  const auto& br = b.regression;
  if (ar.rows != br.rows || ar.predictors != br.predictors ||
      !BitEq(ar.r_squared, br.r_squared) || !BitEq(ar.coef_l2, br.coef_l2) ||
      !BitEq(ar.coef_head, br.coef_head)) {
    return fail("regression summary");
  }
  const auto& ac = a.covariance;
  const auto& bc = b.covariance;
  if (ac.samples != bc.samples || ac.genes != bc.genes ||
      ac.pairs_above != bc.pairs_above ||
      !BitEq(ac.threshold, bc.threshold) ||
      !BitEq(ac.cov_checksum, bc.cov_checksum) ||
      !BitEq(ac.meta_checksum, bc.meta_checksum)) {
    return fail("covariance summary");
  }
  const auto& ab = a.bicluster;
  const auto& bb = b.bicluster;
  if (ab.matrix_rows != bb.matrix_rows || ab.matrix_cols != bb.matrix_cols ||
      !BitEq(ab.delta, bb.delta) ||
      ab.biclusters.size() != bb.biclusters.size()) {
    return fail("bicluster summary");
  }
  for (size_t i = 0; i < ab.biclusters.size(); ++i) {
    if (ab.biclusters[i].rows != bb.biclusters[i].rows ||
        ab.biclusters[i].cols != bb.biclusters[i].cols ||
        !BitEq(ab.biclusters[i].msr, bb.biclusters[i].msr)) {
      return fail("bicluster entry");
    }
  }
  const auto& as = a.svd;
  const auto& bs = b.svd;
  if (as.rows != bs.rows || as.cols != bs.cols || as.rank != bs.rank ||
      !BitEq(as.singular_values, bs.singular_values)) {
    return fail("svd summary");
  }
  const auto& at = a.stats;
  const auto& bt = b.stats;
  if (at.samples != bt.samples || at.genes_ranked != bt.genes_ranked ||
      at.terms_tested != bt.terms_tested ||
      at.significant_terms != bt.significant_terms ||
      !BitEq(at.z_abs_sum, bt.z_abs_sum)) {
    return fail("stats summary");
  }
  return ::testing::AssertionSuccess();
}

/// --- randomized DAGs for planner property tests ------------------------------

uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Builds a random valid DAG: each op reads 1-3 already-produced values and
/// writes one new value (sometimes in place over its first input). Sources
/// are scan ops with no inputs.
PlanGraph RandomGraph(uint64_t seed) {
  PlanGraph g;
  uint64_t s = seed;
  const int num_sources = 1 + static_cast<int>(NextRand(&s) % 3);
  std::vector<int> produced;
  for (int i = 0; i < num_sources; ++i) {
    TensorSpec spec{1 + static_cast<int64_t>(NextRand(&s) % 40),
                    1 + static_cast<int64_t>(NextRand(&s) % 12)};
    const int v = g.AddValue("src" + std::to_string(i), spec);
    OpDef op;
    op.kind = OpKind::kScan;
    op.name = "scan" + std::to_string(i);
    op.outputs = {v};
    g.AddOp(std::move(op));
    produced.push_back(v);
  }
  const int num_ops = 2 + static_cast<int>(NextRand(&s) % 10);
  for (int i = 0; i < num_ops; ++i) {
    OpDef op;
    op.kind = OpKind::kSelect;
    op.name = "op" + std::to_string(i);
    const int num_inputs = 1 + static_cast<int>(NextRand(&s) % 3);
    for (int k = 0; k < num_inputs; ++k) {
      op.inputs.push_back(
          produced[NextRand(&s) % produced.size()]);
    }
    const bool in_place = (NextRand(&s) % 4) == 0;
    TensorSpec spec;
    if (in_place) {
      // In-place ops must write a byte-identical shape over inputs[0].
      spec = g.values()[static_cast<size_t>(op.inputs[0])].spec;
      op.in_place = true;
    } else {
      spec = TensorSpec{1 + static_cast<int64_t>(NextRand(&s) % 40),
                        1 + static_cast<int64_t>(NextRand(&s) % 12)};
    }
    const int v = g.AddValue("v" + std::to_string(i), spec);
    op.outputs = {v};
    g.AddOp(std::move(op));
    produced.push_back(v);
  }
  return g;
}

/// Resolves a value to the root of its alias chain.
int AliasRoot(const MemoryPlan& mem, int v) {
  int root = v;
  while (mem.buffers[static_cast<size_t>(root)].alias_root >= 0) {
    root = mem.buffers[static_cast<size_t>(root)].alias_root;
  }
  return root;
}

/// --- planner property tests --------------------------------------------------

TEST(MemoryPlannerTest, RandomizedDagsNeverOverlapLiveBuffers) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    PlanGraph g = RandomGraph(seed);
    ASSERT_TRUE(g.Validate().ok()) << "seed " << seed;
    auto schedule = plan::TopologicalSchedule(g);
    ASSERT_TRUE(schedule.ok()) << "seed " << seed;
    auto mem = plan::PlanMemory(g, *schedule);
    ASSERT_TRUE(mem.ok()) << "seed " << seed;

    int64_t max_extent = 0;
    int64_t root_total = 0;
    std::set<int> roots;
    for (size_t v = 0; v < g.values().size(); ++v) {
      const BufferAssignment& b = mem->buffers[v];
      EXPECT_EQ(b.offset % mem->alignment, 0) << "seed " << seed;
      EXPECT_EQ(b.size % mem->alignment, 0) << "seed " << seed;
      EXPECT_GE(b.size, g.values()[v].spec.bytes()) << "seed " << seed;
      EXPECT_LE(b.def_step, b.last_use_step) << "seed " << seed;
      max_extent = std::max(max_extent, b.offset + b.size);
      const int root = AliasRoot(*mem, static_cast<int>(v));
      EXPECT_EQ(mem->buffers[static_cast<size_t>(root)].offset, b.offset)
          << "seed " << seed << ": alias offset mismatch";
      if (roots.insert(root).second) {
        root_total += mem->buffers[static_cast<size_t>(root)].size;
      }
    }
    EXPECT_EQ(mem->arena_bytes, max_extent) << "seed " << seed;
    EXPECT_EQ(mem->total_bytes_no_reuse, root_total) << "seed " << seed;
    EXPECT_EQ(mem->reused_bytes, root_total - mem->arena_bytes)
        << "seed " << seed;

    // The core property: two distinct roots whose lifetimes overlap must
    // occupy disjoint byte ranges.
    const std::vector<int> root_list(roots.begin(), roots.end());
    for (size_t i = 0; i < root_list.size(); ++i) {
      for (size_t j = i + 1; j < root_list.size(); ++j) {
        const BufferAssignment& a =
            mem->buffers[static_cast<size_t>(root_list[i])];
        const BufferAssignment& b =
            mem->buffers[static_cast<size_t>(root_list[j])];
        const bool lifetimes_overlap =
            a.def_step <= b.last_use_step && b.def_step <= a.last_use_step;
        const bool bytes_overlap =
            a.offset < b.offset + b.size && b.offset < a.offset + a.size;
        EXPECT_FALSE(lifetimes_overlap && bytes_overlap)
            << "seed " << seed << ": live buffers " << root_list[i] << " and "
            << root_list[j] << " overlap\n"
            << mem->Dump(g);
      }
    }
  }
}

TEST(MemoryPlannerTest, ScheduleIsDeterministic) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    PlanGraph g = RandomGraph(seed);
    auto s1 = plan::TopologicalSchedule(g);
    auto s2 = plan::TopologicalSchedule(g);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(*s1, *s2) << "seed " << seed;
    // Topological: every input's producer runs before the consumer.
    std::map<int, int> producer_step;
    for (size_t step = 0; step < s1->size(); ++step) {
      const OpDef& op = g.ops()[static_cast<size_t>((*s1)[step])];
      for (int out : op.outputs) producer_step[out] = static_cast<int>(step);
    }
    for (size_t step = 0; step < s1->size(); ++step) {
      const OpDef& op = g.ops()[static_cast<size_t>((*s1)[step])];
      for (int in : op.inputs) {
        EXPECT_LE(producer_step[in], static_cast<int>(step))
            << "seed " << seed;
      }
    }
  }
}

TEST(MemoryPlannerTest, CycleIsRejected) {
  PlanGraph g;
  const int a = g.AddValue("a", TensorSpec{4, 4});
  const int b = g.AddValue("b", TensorSpec{4, 4});
  OpDef op1;
  op1.kind = OpKind::kSelect;
  op1.name = "a_to_b";
  op1.inputs = {a};
  op1.outputs = {b};
  g.AddOp(std::move(op1));
  OpDef op2;
  op2.kind = OpKind::kSelect;
  op2.name = "b_to_a";
  op2.inputs = {b};
  op2.outputs = {a};
  g.AddOp(std::move(op2));
  ASSERT_TRUE(g.Validate().ok());
  auto schedule = plan::TopologicalSchedule(g);
  EXPECT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.status().code(), StatusCode::kInvalidArgument);
}

TEST(MemoryPlannerTest, RejectsBadAlignment) {
  PlanGraph g = RandomGraph(1);
  auto schedule = plan::TopologicalSchedule(g);
  ASSERT_TRUE(schedule.ok());
  EXPECT_FALSE(plan::PlanMemory(g, *schedule, 16).ok());   // < 64.
  EXPECT_FALSE(plan::PlanMemory(g, *schedule, 96).ok());   // Not a power of 2.
  EXPECT_TRUE(plan::PlanMemory(g, *schedule, 128).ok());
}

TEST(PlanArenaTest, BaseIsAlignedAndSized) {
  MemoryTracker tracker(MemoryTracker::kUnlimited, "PlanTestArena");
  for (const int64_t alignment : {64, 128, 256}) {
    auto arena = plan::PlanArena::Create(1000, alignment, &tracker);
    ASSERT_TRUE(arena.ok());
    EXPECT_EQ(reinterpret_cast<uintptr_t>((*arena)->base()) %
                  static_cast<uintptr_t>(alignment),
              0u);
    EXPECT_GE((*arena)->size(), 1000);
    EXPECT_EQ((*arena)->size() % alignment, 0);
  }
  EXPECT_FALSE(plan::PlanArena::Create(1000, 32, &tracker).ok());
  EXPECT_FALSE(plan::PlanArena::Create(-1, 64, &tracker).ok());
}

/// --- compiled-plan properties over the five queries ---------------------------

class PlannedQueryTest : public ::testing::TestWithParam<QueryId> {};

TEST_P(PlannedQueryTest, BitwiseIdenticalToLegacyPath) {
  const QueryId q = GetParam();
  MemoryTracker tracker(MemoryTracker::kUnlimited, "PlanTest");
  ExecContext ctx;
  ctx.set_memory(&tracker);

  auto plan = plan::CompileQuery(TinyTables(), q, TinyParams(), &tracker,
                                 &ctx);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto planned = (*plan)->Execute(&ctx);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  auto inputs =
      engine::PrepareInputsColumnar(*TinyTables(), q, TinyParams(), &ctx);
  ASSERT_TRUE(inputs.ok()) << inputs.status().ToString();
  auto legacy = engine::RunStandardAnalytics(
      q, std::move(*inputs), TinyParams(), linalg::KernelQuality::kTuned,
      &ctx);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  EXPECT_TRUE(BitwiseEqual(*planned, *legacy));
}

TEST_P(PlannedQueryTest, ObservedPeakEqualsPredictedPeak) {
  const QueryId q = GetParam();
  MemoryTracker tracker(MemoryTracker::kUnlimited, "PlanTest");
  ExecContext ctx;
  ctx.set_memory(&tracker);
  auto plan = plan::CompileQuery(TinyTables(), q, TinyParams(), &tracker,
                                 &ctx);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Execute twice: pooled-arena reuse must not change the high-water mark.
  ASSERT_TRUE((*plan)->Execute(&ctx).ok());
  ASSERT_TRUE((*plan)->Execute(&ctx).ok());
  EXPECT_EQ((*plan)->observed_peak_bytes(),
            (*plan)->memory_plan().arena_bytes)
      << (*plan)->DumpAllocationPlan();
}

TEST_P(PlannedQueryTest, AllocationPlanIsAlignedAndDumps) {
  const QueryId q = GetParam();
  MemoryTracker tracker(MemoryTracker::kUnlimited, "PlanTest");
  ExecContext ctx;
  ctx.set_memory(&tracker);
  auto plan = plan::CompileQuery(TinyTables(), q, TinyParams(), &tracker,
                                 &ctx);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const MemoryPlan& mem = (*plan)->memory_plan();
  EXPECT_GE(mem.alignment, 64);
  for (const BufferAssignment& b : mem.buffers) {
    EXPECT_EQ(b.offset % 64, 0);
    EXPECT_EQ(b.size % 64, 0);
  }
  const std::string dump = (*plan)->DumpAllocationPlan();
  EXPECT_FALSE(dump.empty());
  for (const auto& v : (*plan)->graph().values()) {
    EXPECT_NE(dump.find(v.name), std::string::npos)
        << "value " << v.name << " missing from dump:\n" << dump;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PlannedQueryTest,
                         ::testing::ValuesIn(core::kAllQueries),
                         [](const auto& info) {
                           return std::string(core::QueryName(info.param));
                         });

TEST(PlannedQueryTest, CovarianceReusesArenaBytes) {
  MemoryTracker tracker(MemoryTracker::kUnlimited, "PlanTest");
  ExecContext ctx;
  ctx.set_memory(&tracker);
  auto plan = plan::CompileQuery(TinyTables(), QueryId::kCovariance,
                                 TinyParams(), &tracker, &ctx);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT((*plan)->memory_plan().reused_bytes, 0)
      << (*plan)->DumpAllocationPlan();
  EXPECT_EQ((*plan)->memory_plan().reused_bytes,
            (*plan)->memory_plan().total_bytes_no_reuse -
                (*plan)->memory_plan().arena_bytes);
}

/// --- engine + cache behavior --------------------------------------------------

TEST(PlanEngineTest, CachesPlansPerQueryAndEpoch) {
  plan::PlanEngine engine;
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine.PrepareContext(&ctx);

  auto p1 = engine.CompileForTest(QueryId::kRegression, TinyParams(), &ctx);
  ASSERT_TRUE(p1.ok());
  auto p2 = engine.CompileForTest(QueryId::kRegression, TinyParams(), &ctx);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->get(), p2->get()) << "same key must return the cached plan";
  EXPECT_EQ(engine.cached_plans(), 1);

  // A different parameter fingerprint compiles a distinct plan.
  QueryParams other = TinyParams();
  other.function_threshold += 10;
  auto p3 = engine.CompileForTest(QueryId::kRegression, other, &ctx);
  ASSERT_TRUE(p3.ok());
  EXPECT_NE(p1->get(), p3->get());
  EXPECT_EQ(engine.cached_plans(), 2);

  // Reload bumps the epoch: old plans evict, results stay correct.
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
  auto r = engine.RunQuery(QueryId::kRegression, TinyParams(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(engine.cached_plans(), 1);

  engine.UnloadDataset();
  EXPECT_EQ(engine.cached_plans(), 0);
  EXPECT_FALSE(engine.RunQuery(QueryId::kRegression, TinyParams(), &ctx).ok());
}

TEST(PlanEngineTest, ServesAllQueriesThroughRunQuery) {
  plan::PlanEngine engine;
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine.PrepareContext(&ctx);
  for (const QueryId q : core::kAllQueries) {
    auto r = engine.RunQuery(q, TinyParams(), &ctx);
    ASSERT_TRUE(r.ok()) << core::QueryName(q) << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->query, q);
  }
  EXPECT_EQ(engine.cached_plans(), 5);
}

}  // namespace
}  // namespace genbase
