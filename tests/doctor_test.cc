#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/doctor.h"

namespace genbase::obs::doctor {
namespace {

/// Builds a minimal but realistic fig7-shaped bench artifact: one stamped
/// run with a single workload report carrying qps + p99 and the shape
/// dimensions the doctor folds into the series identity.
std::string Fig7Run(const std::string& timestamp, double qps, double p99_s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"figure\":\"fig7\","
      "\"stamp\":{\"git_sha\":\"abc1234\",\"kernel_backend\":\"simd\","
      "\"timestamp\":\"%s\"},"
      "\"reports\":[{\"engine\":\"genbase\",\"workload\":\"serving-mix\","
      "\"clients\":8,\"shards\":2,\"param_variants\":1,\"offered_qps\":0,"
      "\"achieved_qps\":%.1f,\"total\":{\"latency\":{\"p99_s\":%.4f}}}]}",
      timestamp.c_str(), qps, p99_s);
  return buf;
}

std::string KernelRun(const std::string& timestamp, double gemm_ns) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"figure\":\"kernelbench\","
                "\"stamp\":{\"git_sha\":\"abc1234\","
                "\"kernel_backend\":\"simd\",\"timestamp\":\"%s\"},"
                "\"kernels\":{\"gemm/simd\":{\"ns\":%.1f,\"gflops\":10.0}}}",
                timestamp.c_str(), gemm_ns);
  return buf;
}

using Docs = std::vector<std::pair<std::string, std::string>>;

const MetricVerdict* FindVerdict(const DoctorReport& report,
                                 const std::string& suffix) {
  for (const MetricVerdict& v : report.verdicts) {
    if (v.series.size() >= suffix.size() &&
        v.series.compare(v.series.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
      return &v;
    }
  }
  return nullptr;
}

TEST(DoctorTest, StableHistoryPasses) {
  Docs docs = {{"r1.json", Fig7Run("2026-08-01T00:00:00Z", 100, 0.010)},
               {"r2.json", Fig7Run("2026-08-02T00:00:00Z", 102, 0.011)},
               {"r3.json", Fig7Run("2026-08-03T00:00:00Z", 98, 0.009)},
               {"r4.json", Fig7Run("2026-08-04T00:00:00Z", 101, 0.010)}};
  auto result = CheckHistory(docs, DoctorOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DoctorReport report = std::move(result).ValueOrDie();
  EXPECT_TRUE(report.ok()) << FormatReport(report);
  ASSERT_EQ(report.runs.size(), 4u);
  // Sorted oldest -> newest; the newest run is the one judged.
  EXPECT_EQ(report.runs.back().name, "r4.json");
  EXPECT_EQ(report.runs.back().git_sha, "abc1234");
  EXPECT_EQ(report.runs.back().kernel_backend, "simd");
  ASSERT_EQ(report.verdicts.size(), 2u);  // qps + p99 for one series.
}

TEST(DoctorTest, DetectsInjectedThroughputRegression) {
  // 20% qps drop on the newest run against a ~100 qps median baseline —
  // past the 15% default slack, so the doctor must flag it.
  Docs docs = {{"r1.json", Fig7Run("2026-08-01T00:00:00Z", 100, 0.010)},
               {"r2.json", Fig7Run("2026-08-02T00:00:00Z", 101, 0.010)},
               {"r3.json", Fig7Run("2026-08-03T00:00:00Z", 99, 0.010)},
               {"r4.json", Fig7Run("2026-08-04T00:00:00Z", 80, 0.010)}};
  auto result = CheckHistory(docs, DoctorOptions{});
  ASSERT_TRUE(result.ok());
  const DoctorReport report = std::move(result).ValueOrDie();
  EXPECT_FALSE(report.ok());
  const MetricVerdict* qps = FindVerdict(report, ":qps");
  ASSERT_NE(qps, nullptr);
  EXPECT_TRUE(qps->regression);
  EXPECT_TRUE(qps->higher_is_better);
  EXPECT_NEAR(qps->baseline, 100.0, 1e-9);  // Median of {100, 101, 99}.
  EXPECT_NEAR(qps->change, -0.20, 1e-9);
  const MetricVerdict* p99 = FindVerdict(report, ":p99_s");
  ASSERT_NE(p99, nullptr);
  EXPECT_FALSE(p99->regression);
}

TEST(DoctorTest, DetectsLatencyRegression) {
  // p99 rises 50% — past the 25% latency slack; qps stays healthy.
  Docs docs = {{"r1.json", Fig7Run("2026-08-01T00:00:00Z", 100, 0.010)},
               {"r2.json", Fig7Run("2026-08-02T00:00:00Z", 100, 0.010)},
               {"r3.json", Fig7Run("2026-08-03T00:00:00Z", 100, 0.015)}};
  auto result = CheckHistory(docs, DoctorOptions{});
  ASSERT_TRUE(result.ok());
  const DoctorReport report = std::move(result).ValueOrDie();
  EXPECT_FALSE(report.ok());
  const MetricVerdict* p99 = FindVerdict(report, ":p99_s");
  ASSERT_NE(p99, nullptr);
  EXPECT_TRUE(p99->regression);
  EXPECT_FALSE(p99->higher_is_better);
}

TEST(DoctorTest, MedianBaselineAbsorbsOneOutlier) {
  // One historically slow run must not drag the baseline down far enough
  // to mask a real regression — and conversely a healthy newest run must
  // pass even though the window contains the outlier.
  Docs docs = {{"r1.json", Fig7Run("2026-08-01T00:00:00Z", 100, 0.010)},
               {"r2.json", Fig7Run("2026-08-02T00:00:00Z", 40, 0.010)},
               {"r3.json", Fig7Run("2026-08-03T00:00:00Z", 101, 0.010)},
               {"r4.json", Fig7Run("2026-08-04T00:00:00Z", 99, 0.010)}};
  auto result = CheckHistory(docs, DoctorOptions{});
  ASSERT_TRUE(result.ok());
  const DoctorReport report = std::move(result).ValueOrDie();
  const MetricVerdict* qps = FindVerdict(report, ":qps");
  ASSERT_NE(qps, nullptr);
  EXPECT_NEAR(qps->baseline, 100.0, 1e-9);  // Median of {100, 40, 101}.
  EXPECT_FALSE(qps->regression);
}

TEST(DoctorTest, NewSeriesPasses) {
  // The newest run introduces a different shape (4 shards): its series has
  // no history, so it's "new" and never a regression.
  std::string four_shards = Fig7Run("2026-08-04T00:00:00Z", 50, 0.020);
  const size_t pos = four_shards.find("\"shards\":2");
  ASSERT_NE(pos, std::string::npos);
  four_shards.replace(pos, 10, "\"shards\":4");
  Docs docs = {{"r1.json", Fig7Run("2026-08-01T00:00:00Z", 100, 0.010)},
               {"r2.json", std::move(four_shards)}};
  auto result = CheckHistory(docs, DoctorOptions{});
  ASSERT_TRUE(result.ok());
  const DoctorReport report = std::move(result).ValueOrDie();
  EXPECT_TRUE(report.ok());
  for (const MetricVerdict& v : report.verdicts) {
    EXPECT_TRUE(v.is_new) << v.series;
  }
}

TEST(DoctorTest, KernelSeriesRegressionDetected) {
  // Kernel ns is lower-is-better: a 2x slowdown must fail, and the series
  // identity keeps kernelbench separate from workload figures.
  Docs docs = {{"k1.json", KernelRun("2026-08-01T00:00:00Z", 1000)},
               {"k2.json", KernelRun("2026-08-02T00:00:00Z", 1010)},
               {"k3.json", KernelRun("2026-08-03T00:00:00Z", 2000)}};
  auto result = CheckHistory(docs, DoctorOptions{});
  ASSERT_TRUE(result.ok());
  const DoctorReport report = std::move(result).ValueOrDie();
  EXPECT_FALSE(report.ok());
  const MetricVerdict* ns = FindVerdict(report, "gemm/simd:ns");
  ASSERT_NE(ns, nullptr);
  EXPECT_TRUE(ns->regression);
}

TEST(DoctorTest, SkipsNonBenchFilesAndRejectsBadJson) {
  Docs docs = {{"r1.json", Fig7Run("2026-08-01T00:00:00Z", 100, 0.010)},
               {"metrics.json", "{\"stamp\":{},\"metrics\":{}}"}};
  auto result = CheckHistory(docs, DoctorOptions{});
  ASSERT_TRUE(result.ok());
  const DoctorReport report = std::move(result).ValueOrDie();
  EXPECT_EQ(report.skipped_files, 1);
  EXPECT_EQ(report.runs.size(), 1u);

  Docs bad = {{"broken.json", "{\"figure\":"}};
  auto bad_result = CheckHistory(bad, DoctorOptions{});
  EXPECT_FALSE(bad_result.ok());
  EXPECT_NE(bad_result.status().ToString().find("broken.json"),
            std::string::npos);

  auto empty_result = CheckHistory({}, DoctorOptions{});
  EXPECT_FALSE(empty_result.ok());
}

TEST(DoctorTest, UnstampedRunsSortOldest) {
  // A legacy artifact without a stamp must never be judged as the newest
  // run when stamped runs exist.
  std::string unstamped =
      "{\"figure\":\"fig7\",\"reports\":[{\"engine\":\"genbase\","
      "\"workload\":\"serving-mix\",\"clients\":8,\"shards\":2,"
      "\"param_variants\":1,\"offered_qps\":0,\"achieved_qps\":10,"
      "\"total\":{\"latency\":{\"p99_s\":0.5}}}]}";
  Docs docs = {{"new.json", Fig7Run("2026-08-02T00:00:00Z", 100, 0.010)},
               {"legacy.json", std::move(unstamped)}};
  auto result = CheckHistory(docs, DoctorOptions{});
  ASSERT_TRUE(result.ok());
  const DoctorReport report = std::move(result).ValueOrDie();
  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs.front().name, "legacy.json");
  EXPECT_EQ(report.runs.back().name, "new.json");
  // 10 -> 100 qps is an improvement over the legacy baseline, not a
  // regression.
  EXPECT_TRUE(report.ok()) << FormatReport(report);
}

TEST(DoctorTest, WiderSlackSuppressesRegression) {
  Docs docs = {{"r1.json", Fig7Run("2026-08-01T00:00:00Z", 100, 0.010)},
               {"r2.json", Fig7Run("2026-08-02T00:00:00Z", 80, 0.010)}};
  DoctorOptions loose;
  loose.throughput_slack = 0.6;
  auto result = CheckHistory(docs, loose);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::move(result).ValueOrDie().ok());
}

}  // namespace
}  // namespace genbase::obs::doctor
