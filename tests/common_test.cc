#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/csv.h"
#include "common/exec_context.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/spill.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace genbase {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::OutOfMemory("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_TRUE(s.IsResourceFailure());
  EXPECT_EQ(s.ToString(), "OutOfMemory: boom");
}

TEST(StatusTest, DeadlineIsResourceFailure) {
  EXPECT_TRUE(Status::DeadlineExceeded("t").IsResourceFailure());
  EXPECT_FALSE(Status::Internal("x").IsResourceFailure());
  EXPECT_FALSE(Status::IOError("x").IsResourceFailure());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> ReturnsEarly(bool fail) {
  GENBASE_ASSIGN_OR_RETURN(int v, [&]() -> Result<int> {
    if (fail) return Status::Internal("inner");
    return 7;
  }());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*ReturnsEarly(false), 8);
  EXPECT_EQ(ReturnsEarly(true).status().code(), StatusCode::kInternal);
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.Next() != b.Next();
  EXPECT_GT(differing, 12);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SeedFromTagIsStableAndSensitive) {
  EXPECT_EQ(SeedFromTag("abc", 1, 2), SeedFromTag("abc", 1, 2));
  EXPECT_NE(SeedFromTag("abc", 1, 2), SeedFromTag("abd", 1, 2));
  EXPECT_NE(SeedFromTag("abc", 1, 2), SeedFromTag("abc", 2, 2));
  EXPECT_NE(SeedFromTag("abc", 1, 2), SeedFromTag("abc", 1, 3));
}

// --- MemoryTracker -------------------------------------------------------------

TEST(MemoryTrackerTest, EnforcesBudget) {
  MemoryTracker t(100, "test");
  EXPECT_TRUE(t.Reserve(60).ok());
  EXPECT_TRUE(t.Reserve(40).ok());
  Status s = t.Reserve(1);
  EXPECT_TRUE(s.IsOutOfMemory());
  t.Release(50);
  EXPECT_TRUE(t.Reserve(50).ok());
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker t(1000);
  ASSERT_TRUE(t.Reserve(700).ok());
  t.Release(500);
  ASSERT_TRUE(t.Reserve(100).ok());
  EXPECT_EQ(t.peak(), 700);
  EXPECT_EQ(t.used(), 300);
}

TEST(MemoryTrackerTest, ScopedReservationReleases) {
  MemoryTracker t(100);
  {
    auto r = ScopedReservation::Acquire(&t, 80);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(t.used(), 80);
  }
  EXPECT_EQ(t.used(), 0);
}

TEST(MemoryTrackerTest, ScopedReservationNullTrackerIsNoop) {
  auto r = ScopedReservation::Acquire(nullptr, 1 << 30);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->bytes(), 0);
}

TEST(MemoryTrackerTest, FailedAcquireLeavesNoCharge) {
  MemoryTracker t(10);
  auto r = ScopedReservation::Acquire(&t, 100);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(t.used(), 0);
}

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int sum = 0;
  pool.ParallelFor(0, 10, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

// --- ExecContext ------------------------------------------------------------

TEST(ExecContextTest, NoDeadlineMeansOk) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.CheckBudgets().ok());
}

TEST(ExecContextTest, ExpiredDeadlineFails) {
  ExecContext ctx;
  ctx.SetDeadlineAfter(-0.001);
  EXPECT_TRUE(ctx.CheckBudgets().IsDeadlineExceeded());
}

TEST(ExecContextTest, CancellationWins) {
  ExecContext ctx;
  ctx.Cancel();
  EXPECT_EQ(ctx.CheckBudgets().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, PhaseClockSeparatesMeasuredAndModeled) {
  ExecContext ctx;
  ctx.clock().AddMeasured(Phase::kDataManagement, 1.0);
  ctx.clock().AddVirtual(Phase::kDataManagement, 2.0);
  ctx.clock().AddMeasured(Phase::kAnalytics, 0.5);
  EXPECT_DOUBLE_EQ(ctx.clock().measured(Phase::kDataManagement), 1.0);
  EXPECT_DOUBLE_EQ(ctx.clock().modeled(Phase::kDataManagement), 2.0);
  EXPECT_DOUBLE_EQ(ctx.clock().total(Phase::kDataManagement), 3.0);
  EXPECT_DOUBLE_EQ(ctx.clock().grand_total(), 3.5);
}

TEST(ExecContextTest, ScopedPhaseAccumulates) {
  ExecContext ctx;
  { ScopedPhase p(&ctx, Phase::kGlue); }
  { ScopedPhase p(&ctx, Phase::kGlue); }
  EXPECT_GE(ctx.clock().measured(Phase::kGlue), 0.0);
}

// --- CSV -----------------------------------------------------------------------

TEST(CsvTest, MatrixRoundTripExact) {
  const std::vector<double> values = {1.0, -2.5, 3.141592653589793,
                                      1e-300, 1e300, 0.1};
  const std::string text = CsvCodec::WriteMatrix(values.data(), 2, 3);
  int64_t rows = 0, cols = 0;
  std::vector<double> parsed;
  ASSERT_TRUE(CsvCodec::ParseMatrix(text, &rows, &cols, &parsed).ok());
  EXPECT_EQ(rows, 2);
  EXPECT_EQ(cols, 3);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(parsed[i], values[i]) << "value " << i << " not exact";
  }
}

TEST(CsvTest, RejectsRaggedRows) {
  int64_t rows, cols;
  std::vector<double> parsed;
  EXPECT_FALSE(CsvCodec::ParseMatrix("1,2\n3\n", &rows, &cols, &parsed).ok());
}

TEST(CsvTest, RejectsGarbage) {
  int64_t rows, cols;
  std::vector<double> parsed;
  EXPECT_FALSE(
      CsvCodec::ParseMatrix("1,abc\n", &rows, &cols, &parsed).ok());
}

TEST(CsvTest, EmptyInputIsEmptyMatrix) {
  int64_t rows, cols;
  std::vector<double> parsed;
  ASSERT_TRUE(CsvCodec::ParseMatrix("", &rows, &cols, &parsed).ok());
  EXPECT_EQ(rows, 0);
}

TEST(CsvTest, WriteColumnsInterleaves) {
  const std::vector<int64_t> ids = {1, 2};
  const std::vector<double> vals = {0.5, 1.5};
  const std::string text = CsvCodec::WriteColumns({vals.data()},
                                                  {ids.data()}, 2);
  EXPECT_EQ(text, "1,0.5\n2,1.5\n");
}

// --- SpillFile -------------------------------------------------------------------

TEST(SpillFileTest, RoundTripDoubles) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  std::vector<double> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = i * 0.25;
  ASSERT_TRUE(file->WriteDoubles(data.data(), 1000).ok());
  ASSERT_TRUE(file->FinishWrite().ok());
  std::vector<double> back(1000);
  ASSERT_TRUE(file->ReadDoubles(back.data(), 1000).ok());
  EXPECT_EQ(back, data);
}

TEST(SpillFileTest, RewindAllowsRereading) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  const int64_t v = 99;
  ASSERT_TRUE(file->WriteInts(&v, 1).ok());
  ASSERT_TRUE(file->FinishWrite().ok());
  int64_t a = 0, b = 0;
  ASSERT_TRUE(file->ReadInts(&a, 1).ok());
  ASSERT_TRUE(file->Rewind().ok());
  ASSERT_TRUE(file->ReadInts(&b, 1).ok());
  EXPECT_EQ(a, 99);
  EXPECT_EQ(b, 99);
}

TEST(SpillFileTest, ReadPastEndFails) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  const int64_t v = 1;
  ASSERT_TRUE(file->WriteInts(&v, 1).ok());
  ASSERT_TRUE(file->FinishWrite().ok());
  int64_t out[2];
  EXPECT_FALSE(file->ReadInts(out, 2).ok());
}

TEST(SpillFileTest, ReadBeforeFinishFails) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  int64_t out;
  EXPECT_FALSE(file->ReadInts(&out, 1).ok());
}

TEST(SpillFileTest, DiscardRemovesBackingFile) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  const std::string path = file->path();
  file->Discard();
  FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

// --- memory tracker gauges ---------------------------------------------------

TEST(MemoryTrackerTest, ReservedTotalIsMonotone) {
  MemoryTracker t(1000);
  ASSERT_TRUE(t.Reserve(400).ok());
  t.Release(400);
  ASSERT_TRUE(t.Reserve(300).ok());
  t.Release(300);
  // used() is back to zero, but the monotone counter saw both reservations —
  // this is what per-request alloc deltas are measured from.
  EXPECT_EQ(t.used(), 0);
  EXPECT_EQ(t.reserved_total(), 700);
  // Failed reservations don't count as activity.
  EXPECT_FALSE(t.Reserve(2000).ok());
  EXPECT_EQ(t.reserved_total(), 700);
}

TEST(MemoryTrackerTest, LabelledTrackerExportsGauges) {
  MemoryTracker t(4096, "gauge_probe");
  ASSERT_TRUE(t.Reserve(1024).ok());
  t.Release(256);
  double used = -1, peak = -1, budget = -1;
  for (const obs::MetricSample& s : obs::MetricsRegistry::Global().Snapshot()) {
    bool ours = false;
    for (const auto& [k, v] : s.labels) {
      if (k == "tracker" && v == "gauge_probe") ours = true;
    }
    if (!ours) continue;
    if (s.name == "memory_tracker_used_bytes") used = s.value;
    if (s.name == "memory_tracker_peak_bytes") peak = s.value;
    if (s.name == "memory_tracker_budget_bytes") budget = s.value;
  }
  EXPECT_EQ(used, 768);
  EXPECT_EQ(peak, 1024);
  EXPECT_EQ(budget, 4096);
}

// --- log rate limiting and log-to-metrics bridge -----------------------------

int64_t LevelCount(const char* name, const char* level) {
  return obs::MetricsRegistry::Global()
      .GetCounter(name, {{"level", level}})
      ->Value();
}

TEST(LoggingTest, WarningsFeedLogMessagesTotal) {
  const LogLevel saved = GlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kWarning);
  const int64_t before = LevelCount("log_messages_total", "warning");
  GENBASE_LOG(Warning) << "bridge probe";
  EXPECT_EQ(LevelCount("log_messages_total", "warning"), before + 1);
  // A message below the threshold is dropped before the bridge.
  const int64_t info_before = LevelCount("log_messages_total", "info");
  GENBASE_LOG(Info) << "dropped";
  EXPECT_EQ(LevelCount("log_messages_total", "info"), info_before);
  SetGlobalLogLevel(saved);
}

TEST(LoggingTest, LogEveryNEmitsFirstAndEveryNth) {
  const LogLevel saved = GlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kWarning);
  const int64_t emitted_before = LevelCount("log_messages_total", "warning");
  const int64_t supp_before =
      LevelCount("log_messages_suppressed_total", "warning");
  for (int i = 0; i < 10; ++i) {
    GENBASE_LOG_EVERY_N(Warning, 4) << "rate-limited probe " << i;
  }
  // Occurrences 0, 4 and 8 emit; the other seven are suppressed-but-counted.
  EXPECT_EQ(LevelCount("log_messages_total", "warning"), emitted_before + 3);
  EXPECT_EQ(LevelCount("log_messages_suppressed_total", "warning"),
            supp_before + 7);
  SetGlobalLogLevel(saved);
}

TEST(LoggingTest, LogEveryNBelowThresholdNeverTicks) {
  const LogLevel saved = GlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kError);
  const int64_t supp_before =
      LevelCount("log_messages_suppressed_total", "warning");
  for (int i = 0; i < 5; ++i) {
    GENBASE_LOG_EVERY_N(Warning, 2) << "should not tick";
  }
  EXPECT_EQ(LevelCount("log_messages_suppressed_total", "warning"),
            supp_before);
  SetGlobalLogLevel(saved);
}

// --- json parser -------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocument) {
  auto result = json::Parse(
      "{\"a\":1.5,\"b\":[1,2,{\"c\":\"x\"}],\"d\":{\"e\":null,"
      "\"f\":true},\"neg\":-2e3}");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value doc = std::move(result).ValueOrDie();
  EXPECT_EQ(doc.NumberOr("a", 0), 1.5);
  EXPECT_EQ(doc.NumberOr("neg", 0), -2000.0);
  const json::Value* b = doc.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_EQ(b->array[2].StringOr("c", ""), "x");
  const json::Value* d = doc.Find("d");
  ASSERT_NE(d, nullptr);
  ASSERT_NE(d->Find("e"), nullptr);
  EXPECT_TRUE(d->Find("e")->is_null());
  EXPECT_TRUE(d->Find("f")->boolean);
}

TEST(JsonTest, DecodesStringEscapes) {
  auto result = json::Parse("{\"s\":\"a\\n\\\"b\\\"\\u0041\"}");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::move(result).ValueOrDie().StringOr("s", ""), "a\n\"b\"A");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(json::Parse("[1,2] trailing").ok());
  EXPECT_FALSE(json::Parse("{'a':1}").ok());
  // Errors carry a byte offset for artifact debugging.
  auto bad = json::Parse("{\"a\":!}");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("offset"), std::string::npos);
}

TEST(JsonTest, LookupFallbacksOnWrongTypes) {
  auto result = json::Parse("{\"n\":\"not-a-number\",\"s\":42}");
  ASSERT_TRUE(result.ok());
  const json::Value doc = std::move(result).ValueOrDie();
  EXPECT_EQ(doc.NumberOr("n", -1), -1);
  EXPECT_EQ(doc.StringOr("s", "fallback"), "fallback");
  EXPECT_EQ(doc.NumberOr("missing", 7), 7);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

}  // namespace
}  // namespace genbase
