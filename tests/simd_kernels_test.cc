// Property tests for the dispatched kernel layer: every optimized kernel is
// compared against a naive reference across ragged shapes (n % 8 != 0,
// single row/col, empty, aliased operands), under BOTH backends — the same
// suite passes whether or not the host has AVX2, and whether or not the
// build used GENBASE_NATIVE_ARCH — and the deterministic reduction paths
// are checked for bitwise-stable results across thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "bicluster/cheng_church.h"
#include "bicluster/synthetic.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/covariance.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"

namespace genbase::linalg {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

std::vector<double> RandomVector(int64_t n, uint64_t seed) {
  std::vector<double> v(static_cast<size_t>(n));
  Rng rng(seed);
  for (auto& x : v) x = rng.Gaussian();
  return v;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  double worst = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

/// Unblocked, unvectorized oracles.
double DotRef(const double* x, const double* y, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

Matrix GemmRef(const MatrixView& a, const MatrixView& b) {
  Matrix c(a.rows, b.cols);
  for (int64_t i = 0; i < a.rows; ++i) {
    for (int64_t j = 0; j < b.cols; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < a.cols; ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

Matrix SyrkRef(const MatrixView& a) {
  Matrix c(a.cols, a.cols);
  for (int64_t i = 0; i < a.cols; ++i) {
    for (int64_t j = 0; j < a.cols; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < a.rows; ++k) s += a(k, i) * a(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

/// Fixture parameterized over the kernel backend; restores the previous
/// backend so suites compose.
class BackendTest : public ::testing::TestWithParam<simd::Backend> {
 protected:
  void SetUp() override { previous_ = simd::SetBackend(GetParam()); }
  void TearDown() override { simd::SetBackend(previous_); }

 private:
  simd::Backend previous_ = simd::Backend::kSimd;
};

/// Ragged lengths: multiples-of-8 boundaries on both sides, plus empty and
/// single-element.
const int64_t kLengths[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 100};

TEST_P(BackendTest, DotMatchesReferenceAcrossRaggedLengths) {
  for (int64_t n : kLengths) {
    const std::vector<double> x = RandomVector(n, 100 + n);
    const std::vector<double> y = RandomVector(n, 200 + n);
    const double got = Dot(x.data(), y.data(), n);
    const double want = DotRef(x.data(), y.data(), n);
    EXPECT_NEAR(got, want, 1e-10 * std::max(1.0, std::fabs(want)))
        << "n=" << n;
  }
}

TEST_P(BackendTest, AxpyMatchesReferenceAcrossRaggedLengths) {
  for (int64_t n : kLengths) {
    const std::vector<double> x = RandomVector(n, 300 + n);
    std::vector<double> y = RandomVector(n, 400 + n);
    std::vector<double> want = y;
    Axpy(0.7, x.data(), y.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] += 0.7 * x[i];
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], want[i], 1e-12) << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(BackendTest, AxpyAliasedYEqualsX) {
  for (int64_t n : kLengths) {
    std::vector<double> y = RandomVector(n, 500 + n);
    std::vector<double> want = y;
    // y += alpha * y must behave elementwise even with exact aliasing.
    Axpy(0.25, y.data(), y.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] *= 1.25;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], want[i], 1e-12) << "n=" << n << " i=" << i;
    }
  }
}

struct Shape {
  int64_t m, k, n;
};
const Shape kShapes[] = {{1, 1, 1},   {1, 9, 1},   {3, 5, 2},  {4, 8, 8},
                         {5, 7, 9},   {8, 16, 8},  {9, 17, 7}, {17, 33, 9},
                         {31, 40, 33}, {64, 64, 64}, {65, 63, 70},
                         {128, 100, 129}, {1, 100, 129}, {129, 100, 1}};

TEST_P(BackendTest, GemvMatchesReferenceAcrossRaggedShapes) {
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, 600 + s.m + s.k);
    const std::vector<double> x = RandomVector(s.k, 700 + s.k);
    std::vector<double> y(static_cast<size_t>(s.m));
    Gemv(MatrixView(a), x.data(), y.data());
    for (int64_t i = 0; i < s.m; ++i) {
      const double want = DotRef(a.Row(i), x.data(), s.k);
      EXPECT_NEAR(y[i], want, 1e-9 * std::max(1.0, std::fabs(want)));
    }
  }
}

TEST_P(BackendTest, GemvTransposeMatchesReferenceAcrossRaggedShapes) {
  ThreadPool pool(3);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, 800 + s.m + s.k);
    const std::vector<double> x = RandomVector(s.m, 900 + s.m);
    std::vector<double> y(static_cast<size_t>(s.k));
    GemvTranspose(MatrixView(a), x.data(), y.data(), &pool);
    for (int64_t j = 0; j < s.k; ++j) {
      double want = 0.0;
      for (int64_t i = 0; i < s.m; ++i) want += a(i, j) * x[i];
      EXPECT_NEAR(y[j], want, 1e-9 * std::max(1.0, std::fabs(want)));
    }
  }
}

TEST_P(BackendTest, GemmMatchesReferenceAcrossRaggedShapes) {
  ThreadPool pool(3);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, 1000 + s.m);
    const Matrix b = RandomMatrix(s.k, s.n, 1100 + s.n);
    Matrix c(s.m, s.n);
    ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &c, &pool).ok());
    const Matrix want = GemmRef(MatrixView(a), MatrixView(b));
    EXPECT_LT(MaxAbsDiff(c, want), 1e-9)
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST_P(BackendTest, GemmTransposeAMatchesReferenceAcrossRaggedShapes) {
  ThreadPool pool(3);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.k, s.m, 1200 + s.m);
    const Matrix b = RandomMatrix(s.k, s.n, 1300 + s.n);
    Matrix c(s.m, s.n);
    ASSERT_TRUE(
        GemmTransposeA(MatrixView(a), MatrixView(b), &c, &pool).ok());
    Matrix at(s.m, s.k);
    for (int64_t i = 0; i < s.k; ++i) {
      for (int64_t j = 0; j < s.m; ++j) at(j, i) = a(i, j);
    }
    const Matrix want = GemmRef(MatrixView(at), MatrixView(b));
    EXPECT_LT(MaxAbsDiff(c, want), 1e-9);
  }
}

TEST_P(BackendTest, SyrkMatchesReferenceAcrossRaggedShapes) {
  ThreadPool pool(3);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.n, 1400 + s.m + s.n);
    Matrix c(s.n, s.n);
    ASSERT_TRUE(Syrk(MatrixView(a), &c, &pool).ok());
    const Matrix want = SyrkRef(MatrixView(a));
    EXPECT_LT(MaxAbsDiff(c, want), 1e-9);
  }
}

TEST_P(BackendTest, SyrkCenteredMatchesMaterializedCentering) {
  ThreadPool pool(3);
  for (const Shape& s : kShapes) {
    if (s.m < 1) continue;
    const Matrix a = RandomMatrix(s.m, s.n, 1500 + s.m + s.n);
    const std::vector<double> means = ColumnMeans(MatrixView(a));
    Matrix centered(s.m, s.n);
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t j = 0; j < s.n; ++j) centered(i, j) = a(i, j) - means[j];
    }
    Matrix fused(s.n, s.n);
    ASSERT_TRUE(
        SyrkCentered(MatrixView(a), means.data(), &fused, &pool).ok());
    const Matrix want = SyrkRef(MatrixView(centered));
    EXPECT_LT(MaxAbsDiff(fused, want), 1e-9);
  }
}

TEST_P(BackendTest, CovarianceTunedMatchesBruteForce) {
  const Matrix x = RandomMatrix(37, 13, 1600);
  auto cov = CovarianceMatrix(MatrixView(x), KernelQuality::kTuned);
  ASSERT_TRUE(cov.ok());
  const std::vector<double> means = ColumnMeans(MatrixView(x));
  for (int64_t i = 0; i < 13; ++i) {
    for (int64_t j = 0; j < 13; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < 37; ++k) {
        s += (x(k, i) - means[i]) * (x(k, j) - means[j]);
      }
      EXPECT_NEAR((*cov)(i, j), s / 36.0, 1e-10);
    }
  }
}

/// The deterministic-reduction guarantee: same bits for any pool width.
TEST_P(BackendTest, GemmBitwiseStableAcrossThreadCounts) {
  const Matrix a = RandomMatrix(200, 150, 1700);
  const Matrix b = RandomMatrix(150, 170, 1800);
  Matrix serial(200, 170);
  ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &serial, nullptr).ok());
  for (int threads : {2, 5}) {
    ThreadPool pool(threads);
    Matrix parallel(200, 170);
    ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &parallel, &pool).ok());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          static_cast<size_t>(serial.size()) *
                              sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

TEST_P(BackendTest, SyrkBitwiseStableAcrossThreadCounts) {
  const Matrix a = RandomMatrix(300, 140, 1900);
  Matrix serial(140, 140);
  ASSERT_TRUE(Syrk(MatrixView(a), &serial, nullptr).ok());
  for (int threads : {2, 5}) {
    ThreadPool pool(threads);
    Matrix parallel(140, 140);
    ASSERT_TRUE(Syrk(MatrixView(a), &parallel, &pool).ok());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          static_cast<size_t>(serial.size()) *
                              sizeof(double)),
              0);
  }
}

TEST_P(BackendTest, GemvFamilyBitwiseStableAcrossThreadCounts) {
  const Matrix a = RandomMatrix(700, 90, 2000);
  const std::vector<double> x = RandomVector(90, 2100);
  const std::vector<double> xt = RandomVector(700, 2200);
  std::vector<double> y0(700), yt0(90);
  Gemv(MatrixView(a), x.data(), y0.data(), nullptr);
  GemvTranspose(MatrixView(a), xt.data(), yt0.data(), nullptr);
  for (int threads : {2, 5}) {
    ThreadPool pool(threads);
    std::vector<double> y(700), yt(90);
    Gemv(MatrixView(a), x.data(), y.data(), &pool);
    GemvTranspose(MatrixView(a), xt.data(), yt.data(), &pool);
    EXPECT_EQ(std::memcmp(y0.data(), y.data(), y.size() * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(yt0.data(), yt.data(), yt.size() * sizeof(double)),
              0);
  }
}

/// --- incremental Cheng–Church vs the from-scratch oracle --------------------

using bicluster::PlantedBiclusterMatrix;

TEST_P(BackendTest, ChengChurchCrossCheckPassesOnRandomData) {
  const linalg::Matrix m = PlantedBiclusterMatrix(150, 110, 42);
  bicluster::ChengChurchOptions opt;
  opt.delta = 0.05;
  opt.max_biclusters = 2;
  opt.min_rows = 4;
  opt.min_cols = 4;
  opt.impl = bicluster::ChengChurchImpl::kIncremental;
  opt.cross_check = true;  // Every iteration re-verified from scratch.
  auto found = bicluster::ChengChurch(linalg::MatrixView(m), opt);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  ASSERT_EQ(found->size(), 2u);
  for (const auto& bc : *found) {
    EXPECT_LE(bc.mean_squared_residue, opt.delta + 1e-9);
  }
}

TEST_P(BackendTest, ChengChurchImplsAgreeOnPlantedBicluster) {
  const linalg::Matrix m = PlantedBiclusterMatrix(90, 60, 7);
  bicluster::ChengChurchOptions opt;
  opt.delta = 0.05;
  opt.max_biclusters = 1;
  opt.min_rows = 4;
  opt.min_cols = 4;
  opt.impl = bicluster::ChengChurchImpl::kIncremental;
  auto inc = bicluster::ChengChurch(linalg::MatrixView(m), opt);
  opt.impl = bicluster::ChengChurchImpl::kReference;
  auto ref = bicluster::ChengChurch(linalg::MatrixView(m), opt);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(ref.ok());
  // On well-separated data the two engines must find the same structure
  // (ties could legitimately differ; the planted block has none).
  ASSERT_EQ((*inc)[0].rows, (*ref)[0].rows);
  ASSERT_EQ((*inc)[0].cols, (*ref)[0].cols);
  EXPECT_NEAR((*inc)[0].mean_squared_residue,
              (*ref)[0].mean_squared_residue, 1e-9);
}

TEST_P(BackendTest, ChengChurchIncrementalCutsResidueFlops) {
  const linalg::Matrix m = PlantedBiclusterMatrix(220, 160, 11);
  bicluster::ChengChurchOptions opt;
  opt.delta = 0.05;
  opt.max_biclusters = 1;
  opt.min_rows = 4;
  opt.min_cols = 4;
  bicluster::ChengChurchCounters inc_counters, ref_counters;
  opt.impl = bicluster::ChengChurchImpl::kIncremental;
  opt.counters = &inc_counters;
  ASSERT_TRUE(bicluster::ChengChurch(linalg::MatrixView(m), opt).ok());
  opt.impl = bicluster::ChengChurchImpl::kReference;
  opt.counters = &ref_counters;
  ASSERT_TRUE(bicluster::ChengChurch(linalg::MatrixView(m), opt).ok());
  ASSERT_GT(inc_counters.residue_flops, 0);
  ASSERT_GT(ref_counters.residue_flops, 0);
  const double ratio = static_cast<double>(ref_counters.residue_flops) /
                       static_cast<double>(inc_counters.residue_flops);
  // The >= 5x acceptance gate runs at kernelbench's fig-scale shapes; at
  // this small unit-test shape the deletion trajectory still has to show a
  // clear win.
  EXPECT_GE(ratio, 3.0) << "incremental flops " << inc_counters.residue_flops
                        << " vs reference " << ref_counters.residue_flops;
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(simd::Backend::kScalar,
                                           simd::Backend::kSimd),
                         [](const auto& info) {
                           return simd::BackendName(info.param);
                         });

TEST(SimdDispatchTest, BackendRoundTrips) {
  const simd::Backend prev = simd::SetBackend(simd::Backend::kScalar);
  EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
  EXPECT_STREQ(simd::BackendName(simd::ActiveBackend()), "scalar");
  simd::SetBackend(simd::Backend::kSimd);
  EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kSimd);
  simd::SetBackend(prev);
}

TEST(SimdDispatchTest, Avx2AvailabilityIsConsistent) {
  // On machines without AVX2 the table must be absent; with it, present.
  if (simd::CpuSupportsAvx2()) {
    ASSERT_NE(Avx2Kernels(), nullptr);
    EXPECT_STREQ(Avx2Kernels()->name, "avx2");
  } else {
    EXPECT_EQ(Avx2Kernels(), nullptr);
  }
}

}  // namespace
}  // namespace genbase::linalg
