// Adversarial-input coverage for the JSON parser: the parser ingests
// artifacts written by past runs (bench history, profiles), which makes
// truncated/corrupt bytes an expected input class, not a programming error.
// Every case here must come back as a clean Status — never a crash, hang,
// or sanitizer report.

#include <cmath>
#include <string>

#include "common/json.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace genbase::json {
namespace {

std::string NestedArrays(int depth) {
  std::string s;
  s.reserve(static_cast<size_t>(depth) * 2 + 1);
  for (int i = 0; i < depth; ++i) s.push_back('[');
  s.push_back('1');
  for (int i = 0; i < depth; ++i) s.push_back(']');
  return s;
}

std::string NestedObjects(int depth) {
  std::string s;
  for (int i = 0; i < depth; ++i) s.append("{\"k\":");
  s.push_back('1');
  for (int i = 0; i < depth; ++i) s.push_back('}');
  return s;
}

TEST(JsonDepthTest, DeepButLegalNestingParses) {
  EXPECT_TRUE(Parse(NestedArrays(60)).ok());
  EXPECT_TRUE(Parse(NestedObjects(60)).ok());
}

TEST(JsonDepthTest, ExcessiveNestingIsRejectedNotStackOverflow) {
  // Way past the limit: a recursion-per-byte parser without a depth guard
  // would blow the stack here (ASan turns that into a hard failure).
  EXPECT_FALSE(Parse(NestedArrays(100000)).ok());
  EXPECT_FALSE(Parse(NestedObjects(100000)).ok());
}

TEST(JsonStringTest, TruncatedEscapesAreErrors) {
  EXPECT_FALSE(Parse("\"abc").ok());
  EXPECT_FALSE(Parse("\"abc\\").ok());
  EXPECT_FALSE(Parse("\"abc\\u").ok());
  EXPECT_FALSE(Parse("\"abc\\u12").ok());
  EXPECT_FALSE(Parse("\"abc\\u12G4\"").ok());
  EXPECT_FALSE(Parse("\"abc\\q\"").ok());
}

TEST(JsonStringTest, UnicodeEscapesDecodeToUtf8) {
  auto r = Parse("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::move(r).ValueOrDie().string, "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonNumberTest, HugeNumbersAreRejectedNotInf) {
  EXPECT_FALSE(Parse("1e999").ok());
  EXPECT_FALSE(Parse("-1e999").ok());
  EXPECT_FALSE(Parse("[1, 2, 1e999]").ok());
}

TEST(JsonNumberTest, ExtremeFiniteNumbersParse) {
  auto r = Parse("1.7976931348623157e308");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isfinite(std::move(r).ValueOrDie().number));
  // Subnormal underflow is finite (rounds toward zero), not an error.
  EXPECT_TRUE(Parse("1e-999").ok());
}

TEST(JsonNumberTest, MalformedNumbersAreErrors) {
  EXPECT_FALSE(Parse("-").ok());
  EXPECT_FALSE(Parse("1.2.3").ok());
  EXPECT_FALSE(Parse("1e").ok());
  EXPECT_FALSE(Parse("+-1").ok());
  EXPECT_FALSE(Parse("nan").ok());
  EXPECT_FALSE(Parse("inf").ok());
}

TEST(JsonFuzzTest, EveryTruncationOfAValidDocumentFailsCleanly) {
  const std::string doc =
      "{\"runs\":[{\"name\":\"fig6\",\"p99_s\":0.0123,\"tags\":[\"a\",\"b\"],"
      "\"note\":\"q\\u0041\\n\",\"ok\":true,\"skip\":null}],\"n\":-42.5e-1}";
  ASSERT_TRUE(Parse(doc).ok());
  for (size_t cut = 0; cut < doc.size(); ++cut) {
    EXPECT_FALSE(Parse(doc.substr(0, cut)).ok()) << "prefix length " << cut;
  }
}

TEST(JsonFuzzTest, SeededRandomMutationsNeverCrash) {
  const std::string doc =
      "{\"a\":[1,2.5,\"s\",{\"b\":null,\"c\":[true,false]}],\"d\":\"\\u00e9\"}";
  uint64_t state = SeedFromTag("json-fuzz", 7);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = doc;
    const int edits = 1 + static_cast<int>(SplitMix64(state++) % 4);
    for (int e = 0; e < edits; ++e) {
      const uint64_t r = SplitMix64(state++);
      const size_t at = r % mutated.size();
      switch ((r >> 32) % 3) {
        case 0:  // flip a byte
          mutated[at] = static_cast<char>(r >> 16);
          break;
        case 1:  // delete a byte
          mutated.erase(at, 1);
          break;
        default:  // insert a structural byte
          mutated.insert(at, 1, "{}[]\",:\\"[(r >> 16) % 8]);
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    // Parse must terminate with either outcome; a crash or sanitizer
    // report is the only failure mode this test polices.
    (void)Parse(mutated).ok();
  }
}

TEST(JsonFuzzTest, SeededRandomGarbageNeverCrashes) {
  uint64_t state = SeedFromTag("json-garbage", 11);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t len = SplitMix64(state++) % 64;
    std::string garbage;
    garbage.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(SplitMix64(state++)));
    }
    (void)Parse(garbage).ok();
  }
}

}  // namespace
}  // namespace genbase::json
