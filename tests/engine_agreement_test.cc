#include <gtest/gtest.h>

#include <memory>

#include "core/datasets.h"
#include "core/driver.h"
#include "core/generator.h"
#include "core/reference.h"
#include "core/verify.h"
#include "engine/engines.h"

namespace genbase {
namespace {

using core::DatasetSize;
using core::GenBaseData;
using core::QueryId;
using core::QueryParams;
using core::QueryResult;

constexpr double kTinyScale = 0.008;

const GenBaseData& TinyData() {
  static const GenBaseData* data = [] {
    auto r = core::GenerateDataset(DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

QueryParams TinyParams() {
  QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

const QueryResult& Expected(QueryId q) {
  static auto* cache = new std::map<QueryId, QueryResult>();
  auto it = cache->find(q);
  if (it == cache->end()) {
    auto r = core::RunReferenceQuery(q, TinyData(), TinyParams());
    GENBASE_CHECK(r.ok());
    it = cache->emplace(q, std::move(r).ValueOrDie()).first;
  }
  return it->second;
}

struct AgreementCase {
  const char* engine_name;
  std::unique_ptr<core::Engine> (*factory)();
  QueryId query;
};

void PrintTo(const AgreementCase& c, std::ostream* os) {
  *os << c.engine_name << "/" << core::QueryName(c.query);
}

class EngineAgreementTest : public ::testing::TestWithParam<AgreementCase> {};

/// Every engine must produce the reference answer: the paper's systems
/// differ in speed and architecture, never in what they compute.
TEST_P(EngineAgreementTest, MatchesReference) {
  const auto& param = GetParam();
  auto engine = param.factory();
  if (!engine->SupportsQuery(param.query)) {
    GTEST_SKIP() << engine->name() << " does not support this query";
  }
  ASSERT_TRUE(engine->LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine->PrepareContext(&ctx);
  auto result = engine->RunQuery(param.query, TinyParams(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const genbase::Status match =
      core::CompareQueryResults(Expected(param.query), *result);
  EXPECT_TRUE(match.ok()) << engine->name() << ": " << match.ToString();
  engine->UnloadDataset();
}

std::vector<AgreementCase> AllCases() {
  struct Factory {
    const char* name;
    std::unique_ptr<core::Engine> (*fn)();
  };
  static const Factory kFactories[] = {
      {"VanillaR", engine::CreateVanillaR},
      {"PostgresMadlib", engine::CreatePostgresMadlib},
      {"PostgresR", engine::CreatePostgresR},
      {"ColumnStoreR", engine::CreateColumnStoreR},
      {"ColumnStoreUdf", engine::CreateColumnStoreUdf},
      {"SciDB", engine::CreateSciDb},
      {"Hadoop", engine::CreateHadoop},
  };
  std::vector<AgreementCase> cases;
  for (const auto& f : kFactories) {
    for (QueryId q : core::kAllQueries) {
      cases.push_back({f.name, f.fn, q});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<AgreementCase>& info) {
  return std::string(info.param.engine_name) + "_" +
         core::QueryName(info.param.query);
}

INSTANTIATE_TEST_SUITE_P(AllEnginesAllQueries, EngineAgreementTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

/// Phase accounting: every successful run must attribute nonzero time and
/// the glue phase must be zero for engines with no external bridge.
TEST(EnginePhasesTest, SciDbHasNoGlue) {
  auto engine = engine::CreateSciDb();
  ASSERT_TRUE(engine->LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine->PrepareContext(&ctx);
  auto result =
      engine->RunQuery(QueryId::kRegression, TinyParams(), &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(ctx.clock().total(Phase::kDataManagement), 0.0);
  EXPECT_GT(ctx.clock().total(Phase::kAnalytics), 0.0);
  EXPECT_DOUBLE_EQ(ctx.clock().total(Phase::kGlue), 0.0);
}

TEST(EnginePhasesTest, PostgresRPaysGlue) {
  auto engine = engine::CreatePostgresR();
  ASSERT_TRUE(engine->LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine->PrepareContext(&ctx);
  auto result =
      engine->RunQuery(QueryId::kRegression, TinyParams(), &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(ctx.clock().total(Phase::kGlue), 0.0);
}

TEST(EnginePhasesTest, ColumnUdfChargesVirtualGlue) {
  auto engine = engine::CreateColumnStoreUdf();
  ASSERT_TRUE(engine->LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine->PrepareContext(&ctx);
  auto result =
      engine->RunQuery(QueryId::kBiclustering, TinyParams(), &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(ctx.clock().modeled(Phase::kGlue), 0.0);
}

TEST(EnginePhasesTest, HadoopChargesJobStartups) {
  auto engine = engine::CreateHadoop();
  ASSERT_TRUE(engine->LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine->PrepareContext(&ctx);
  auto result =
      engine->RunQuery(QueryId::kRegression, TinyParams(), &ctx);
  ASSERT_TRUE(result.ok());
  // At least 3 jobs (filter, join, restructure) + 1 Mahout job.
  EXPECT_GE(ctx.clock().modeled(Phase::kDataManagement) +
                ctx.clock().modeled(Phase::kAnalytics),
            4 * 0.4);
}

}  // namespace
}  // namespace genbase
