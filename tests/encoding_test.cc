#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "storage/encoding.h"

namespace genbase::storage {
namespace {

std::vector<int64_t> Decode(const EncodedBlock& block) {
  std::vector<int64_t> out;
  GENBASE_CHECK_OK(DecodeInt64(block, &out));
  return out;
}

struct EncodingCase {
  ColumnEncoding encoding;
  const char* name;
};

class RoundTripTest : public ::testing::TestWithParam<EncodingCase> {};

TEST_P(RoundTripTest, RandomValues) {
  Rng rng(11);
  std::vector<int64_t> values(5000);
  for (auto& v : values) v = rng.UniformInt(-1'000'000, 1'000'000);
  auto block = EncodeInt64(values.data(),
                           static_cast<int64_t>(values.size()),
                           GetParam().encoding);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(Decode(*block), values);
}

TEST_P(RoundTripTest, RunsAndRepeats) {
  std::vector<int64_t> values;
  for (int run = 0; run < 50; ++run) {
    values.insert(values.end(), static_cast<size_t>(run % 7 + 1),
                  run % 5);
  }
  auto block = EncodeInt64(values.data(),
                           static_cast<int64_t>(values.size()),
                           GetParam().encoding);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(Decode(*block), values);
}

TEST_P(RoundTripTest, SortedIds) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 3000; ++i) values.push_back(i * 3);
  auto block = EncodeInt64(values.data(),
                           static_cast<int64_t>(values.size()),
                           GetParam().encoding);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(Decode(*block), values);
}

TEST_P(RoundTripTest, ExtremesAndNegatives) {
  const std::vector<int64_t> values = {
      0, -1, 1, INT64_MAX, INT64_MIN, INT64_MAX, -123456789012345LL};
  auto block = EncodeInt64(values.data(),
                           static_cast<int64_t>(values.size()),
                           GetParam().encoding);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(Decode(*block), values);
}

TEST_P(RoundTripTest, Empty) {
  auto block = EncodeInt64(nullptr, 0, GetParam().encoding);
  ASSERT_TRUE(block.ok());
  EXPECT_TRUE(Decode(*block).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, RoundTripTest,
    ::testing::Values(EncodingCase{ColumnEncoding::kPlain, "plain"},
                      EncodingCase{ColumnEncoding::kRunLength, "rle"},
                      EncodingCase{ColumnEncoding::kDelta, "delta"},
                      EncodingCase{ColumnEncoding::kDictionary, "dict"}),
    [](const ::testing::TestParamInfo<EncodingCase>& info) {
      return info.param.name;
    });

TEST(EncodingChoiceTest, RleWinsOnConstantColumn) {
  std::vector<int64_t> values(10000, 42);  // e.g. the GO `belongs` column.
  auto block =
      EncodeInt64Auto(values.data(), static_cast<int64_t>(values.size()));
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->encoding, ColumnEncoding::kRunLength);
  EXPECT_GT(CompressionRatio(*block), 1000.0);
}

TEST(EncodingChoiceTest, DeltaWinsOnSortedIds) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 10000; ++i) values.push_back(1'000'000 + i);
  auto block =
      EncodeInt64Auto(values.data(), static_cast<int64_t>(values.size()));
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->encoding, ColumnEncoding::kDelta);
  EXPECT_GT(CompressionRatio(*block), 6.0);
}

TEST(EncodingChoiceTest, DictionaryWinsOnLowCardinalityWideValues) {
  // Few distinct values but far apart in value space: deltas are wide
  // (6-7 varint bytes) while dictionary codes are 1 byte.
  Rng rng(3);
  std::vector<int64_t> distinct(21);
  for (auto& d : distinct) d = static_cast<int64_t>(rng.Next() >> 1);
  std::vector<int64_t> values(10000);
  for (auto& v : values) {
    v = distinct[static_cast<size_t>(rng.UniformInt(0, 20))];
  }
  auto block =
      EncodeInt64Auto(values.data(), static_cast<int64_t>(values.size()));
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->encoding, ColumnEncoding::kDictionary);
  EXPECT_GT(CompressionRatio(*block), 4.0);
}

TEST(EncodingChoiceTest, PlainForHighEntropy) {
  Rng rng(5);
  std::vector<int64_t> values(5000);
  for (auto& v : values) v = static_cast<int64_t>(rng.Next());
  auto block =
      EncodeInt64Auto(values.data(), static_cast<int64_t>(values.size()));
  ASSERT_TRUE(block.ok());
  // Random 64-bit values cannot compress; plain (or equal-size) wins.
  EXPECT_LE(CompressionRatio(*block), 1.05);
}

TEST(EncodingErrorTest, CorruptPayloadRejected) {
  std::vector<int64_t> values = {1, 2, 3};
  auto block = EncodeInt64(values.data(), 3, ColumnEncoding::kDelta);
  ASSERT_TRUE(block.ok());
  block->payload.resize(1);  // Truncate.
  std::vector<int64_t> out;
  EXPECT_FALSE(DecodeInt64(*block, &out).ok());
}

TEST(EncodingErrorTest, DictionaryCodeOutOfRange) {
  std::vector<int64_t> values = {7, 7, 7};
  auto block = EncodeInt64(values.data(), 3, ColumnEncoding::kDictionary);
  ASSERT_TRUE(block.ok());
  block->payload.back() = 0x05;  // Point a code past the dictionary.
  std::vector<int64_t> out;
  EXPECT_FALSE(DecodeInt64(*block, &out).ok());
}

TEST(EncodingErrorTest, PlainSizeMismatch) {
  EncodedBlock block;
  block.encoding = ColumnEncoding::kPlain;
  block.num_values = 2;
  block.payload.resize(9);
  std::vector<int64_t> out;
  EXPECT_FALSE(DecodeInt64(block, &out).ok());
}

}  // namespace
}  // namespace genbase::storage
