#include <gtest/gtest.h>

#include <algorithm>

#include "bicluster/cheng_church.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace genbase::bicluster {
namespace {

using linalg::Matrix;
using linalg::MatrixView;

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

// --- MSR ------------------------------------------------------------------------

TEST(MsrTest, ConstantMatrixHasZeroResidue) {
  Matrix m(6, 8);
  m.Fill(3.5);
  EXPECT_DOUBLE_EQ(MeanSquaredResidue(MatrixView(m), Iota(6), Iota(8)), 0.0);
}

TEST(MsrTest, AdditiveRowColumnPatternHasZeroResidue) {
  // a_ij = r_i + c_j is the canonical perfect bicluster.
  Matrix m(7, 9);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 9; ++j) {
      m(i, j) = 2.0 * i + 0.7 * j;
    }
  }
  EXPECT_NEAR(MeanSquaredResidue(MatrixView(m), Iota(7), Iota(9)), 0.0,
              1e-18);
}

TEST(MsrTest, NoiseHasPositiveResidue) {
  Rng rng(1);
  Matrix m(10, 10);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  EXPECT_GT(MeanSquaredResidue(MatrixView(m), Iota(10), Iota(10)), 0.1);
}

TEST(MsrTest, SubsetSelection) {
  Matrix m(4, 4);
  m.Fill(1.0);
  m(3, 3) = 100.0;  // Outlier outside the selection.
  EXPECT_DOUBLE_EQ(
      MeanSquaredResidue(MatrixView(m), {0, 1, 2}, {0, 1, 2}), 0.0);
}

TEST(MsrTest, EmptySelectionIsZero) {
  Matrix m(3, 3);
  EXPECT_DOUBLE_EQ(MeanSquaredResidue(MatrixView(m), {}, {}), 0.0);
}

// --- ChengChurch -----------------------------------------------------------------

/// Builds noise with a planted additive bicluster on rows [0, pr) and
/// columns [0, pc).
Matrix PlantedMatrix(int64_t rows, int64_t cols, int64_t pr, int64_t pc,
                     uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Gaussian(0.0, 1.0);
  }
  for (int64_t i = 0; i < pr; ++i) {
    for (int64_t j = 0; j < pc; ++j) {
      m(i, j) = 8.0 + 0.5 * static_cast<double>(i) +
                0.3 * static_cast<double>(j) + rng.Gaussian(0.0, 0.05);
    }
  }
  return m;
}

/// Majority-coherent matrix: rows [0, pr) x cols [0, pc) follow an additive
/// pattern a_ij = r_i + c_j + eps; everything else is unit noise.
Matrix MajorityCoherentMatrix(int64_t rows, int64_t cols, int64_t pr,
                              int64_t pc, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (i < pr && j < pc) {
        m(i, j) = 0.5 * static_cast<double>(i) +
                  0.3 * static_cast<double>(j) + rng.Gaussian(0.0, 0.05);
      } else {
        m(i, j) = rng.Gaussian(0.0, 1.0);
      }
    }
  }
  return m;
}

TEST(ChengChurchTest, DeletionPrunesIncoherentMinority) {
  // Cheng-Church deletion keeps the most coherent large submatrix: with a
  // majority additive pattern and a noisy minority of rows/columns, the
  // noise must be pruned and (most of) the coherent block kept. (A *small*
  // deviant block is deleted as an outlier instead — that is the
  // algorithm's documented greedy behavior, not a bug.)
  const Matrix m = MajorityCoherentMatrix(60, 50, 48, 42, 42);
  ChengChurchOptions opt;
  opt.delta = 0.05;
  opt.max_biclusters = 1;
  auto found = ChengChurch(MatrixView(m), opt);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 1u);
  const Bicluster& b = (*found)[0];
  int64_t coherent_rows = 0;
  for (int64_t r : b.rows) coherent_rows += r < 48;
  int64_t coherent_cols = 0;
  for (int64_t c : b.cols) coherent_cols += c < 42;
  // Everything kept must be coherent, and a sizable block must survive.
  EXPECT_EQ(coherent_rows, static_cast<int64_t>(b.rows.size()));
  EXPECT_EQ(coherent_cols, static_cast<int64_t>(b.cols.size()));
  EXPECT_GE(coherent_rows, 20);
  EXPECT_GE(coherent_cols, 15);
  EXPECT_LE(b.mean_squared_residue, 0.05 * 1.05);
}

TEST(ChengChurchTest, ResultRespectsDelta) {
  const Matrix m = PlantedMatrix(40, 40, 8, 8, 7);
  ChengChurchOptions opt;
  opt.delta = 0.2;
  opt.max_biclusters = 2;
  auto found = ChengChurch(MatrixView(m), opt);
  ASSERT_TRUE(found.ok());
  for (const auto& b : *found) {
    EXPECT_GE(static_cast<int64_t>(b.rows.size()), opt.min_rows);
    EXPECT_GE(static_cast<int64_t>(b.cols.size()), opt.min_cols);
  }
}

TEST(ChengChurchTest, DeterministicAcrossRuns) {
  const Matrix m = PlantedMatrix(30, 30, 6, 6, 9);
  ChengChurchOptions opt;
  opt.delta = 0.1;
  opt.max_biclusters = 3;
  auto a = ChengChurch(MatrixView(m), opt);
  auto b = ChengChurch(MatrixView(m), opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].rows, (*b)[i].rows);
    EXPECT_EQ((*a)[i].cols, (*b)[i].cols);
    EXPECT_DOUBLE_EQ((*a)[i].mean_squared_residue,
                     (*b)[i].mean_squared_residue);
  }
}

TEST(ChengChurchTest, FindsRequestedNumberOfBiclusters) {
  const Matrix m = PlantedMatrix(50, 40, 10, 8, 11);
  ChengChurchOptions opt;
  opt.delta = 0.3;
  opt.max_biclusters = 4;
  auto found = ChengChurch(MatrixView(m), opt);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->size(), 4u);
}

TEST(ChengChurchTest, PassHookIsInvoked) {
  const Matrix m = PlantedMatrix(30, 30, 6, 6, 13);
  ChengChurchOptions opt;
  opt.delta = 0.05;
  opt.max_biclusters = 1;
  int calls = 0;
  opt.pass_hook = [&calls]() {
    ++calls;
    return genbase::Status::OK();
  };
  ASSERT_TRUE(ChengChurch(MatrixView(m), opt).ok());
  EXPECT_GT(calls, 1);
}

TEST(ChengChurchTest, PassHookErrorAborts) {
  const Matrix m = PlantedMatrix(30, 30, 6, 6, 13);
  ChengChurchOptions opt;
  opt.delta = 0.05;
  opt.pass_hook = []() {
    return genbase::Status::DeadlineExceeded("stop");
  };
  auto result = ChengChurch(MatrixView(m), opt);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST(ChengChurchTest, DeadlineAborts) {
  const Matrix m = PlantedMatrix(40, 40, 8, 8, 15);
  ChengChurchOptions opt;
  opt.delta = 1e-9;  // Forces many iterations.
  ExecContext ctx;
  ctx.SetDeadlineAfter(-1.0);
  auto result = ChengChurch(MatrixView(m), opt, &ctx);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST(ChengChurchTest, RejectsTooSmallMatrix) {
  Matrix m(1, 1);
  ChengChurchOptions opt;
  EXPECT_FALSE(ChengChurch(MatrixView(m), opt).ok());
}

}  // namespace
}  // namespace genbase::bicluster
