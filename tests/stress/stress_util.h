#ifndef GENBASE_TESTS_STRESS_STRESS_UTIL_H_
#define GENBASE_TESTS_STRESS_STRESS_UTIL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace genbase::stress {

/// \brief Start gate: every hammer thread parks here until the last one
/// arrives, then all release together. Starting the contenders as one wave
/// is what actually produces contention — without it, thread-creation skew
/// serializes short tests and the sanitizer sees no interesting schedules.
class StartGate {
 public:
  explicit StartGate(int parties) : waiting_for_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--waiting_for_ == 0) {
      open_ = true;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_for_;
  bool open_ = false;
};

/// Runs `fn(thread_index)` on `threads` threads released simultaneously
/// through a StartGate, and joins them all. The suite's tests are seeded and
/// fixed-size: the *outcomes* asserted are deterministic even though the
/// interleavings (deliberately) are not.
inline void Hammer(int threads, const std::function<void(int)>& fn) {
  StartGate gate(threads);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      gate.ArriveAndWait();
      fn(t);
    });
  }
  for (auto& w : workers) w.join();
}

/// SplitMix64 step — the suite's only RNG. Deterministic per (seed, call
/// sequence), no shared state between threads.
inline uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace genbase::stress

#endif  // GENBASE_TESTS_STRESS_STRESS_UTIL_H_
