// Plan-cache stress: the single-flight compile path, the pooled-arena
// execute path and epoch eviction all run concurrently in the serving tier,
// so they are hammered here the way serving would — a stampede of clients
// on one key, a mixed workload racing dataset reloads, and a pile-up of
// executions on one cached plan. Outcomes asserted are deterministic even
// though the interleavings are not.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/exec_context.h"
#include "core/datasets.h"
#include "core/generator.h"
#include "core/queries.h"
#include "plan/plan_engine.h"
#include "plan/plan_stats.h"
#include "tests/stress/stress_util.h"

namespace genbase {
namespace {

using core::DatasetSize;
using core::GenBaseData;
using core::QueryId;
using core::QueryParams;

constexpr double kTinyScale = 0.008;

const GenBaseData& TinyData() {
  static const GenBaseData* data = [] {
    auto r = core::GenerateDataset(DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

QueryParams TinyParams() {
  QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

/// A stampede of clients on one cold key must compile exactly once: one
/// leader, everyone else coalesces onto the leader's plan and executes it.
TEST(PlanCacheStressTest, StampedeCompilesOnce) {
  plan::PlanEngine engine;
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
  const plan::PlanStatsSnapshot before = plan::PlanStatsSnapshot::Capture();

  constexpr int kThreads = 8;
  std::atomic<int> successes{0};
  stress::Hammer(kThreads, [&](int) {
    ExecContext ctx;
    engine.PrepareContext(&ctx);
    auto r = engine.RunQuery(QueryId::kCovariance, TinyParams(), &ctx);
    if (r.ok()) successes.fetch_add(1, std::memory_order_relaxed);
  });

  const plan::PlanStatsSnapshot delta =
      plan::PlanStatsSnapshot::Capture() - before;
  EXPECT_EQ(successes.load(std::memory_order_relaxed), kThreads);
  EXPECT_EQ(delta.compiles, 1) << "single-flight leaked extra compiles";
  EXPECT_EQ(delta.cache_hits, kThreads - 1);
  EXPECT_EQ(delta.executes, kThreads);
  EXPECT_EQ(delta.peak_mismatches, 0);
  EXPECT_EQ(engine.cached_plans(), 1);
}

/// Many threads executing one cached plan concurrently: the arena pool
/// hands each execution a private arena, results stay correct and the
/// observed high-water mark never drifts from the planner's prediction.
TEST(PlanCacheStressTest, ConcurrentExecutionsShareOnePlan) {
  plan::PlanEngine engine;
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
  ExecContext warm_ctx;
  engine.PrepareContext(&warm_ctx);
  auto plan =
      engine.CompileForTest(QueryId::kRegression, TinyParams(), &warm_ctx);
  ASSERT_TRUE(plan.ok());
  auto expected = (*plan)->Execute(&warm_ctx);
  ASSERT_TRUE(expected.ok());

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 16;
  std::atomic<int> mismatches{0};
  stress::Hammer(kThreads, [&](int) {
    ExecContext ctx;
    engine.PrepareContext(&ctx);
    for (int round = 0; round < kRoundsPerThread; ++round) {
      auto r = engine.RunQuery(QueryId::kRegression, TinyParams(), &ctx);
      if (!r.ok() ||
          r->regression.r_squared != expected->regression.r_squared ||
          r->regression.coef_l2 != expected->regression.coef_l2) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0);
  EXPECT_EQ((*plan)->observed_peak_bytes(),
            (*plan)->memory_plan().arena_bytes);
  EXPECT_EQ(engine.cached_plans(), 1);
}

/// Mixed query traffic racing dataset reloads: every request either serves
/// from a plan keyed to a consistent {tables, epoch} snapshot or reports
/// the transient not-loaded window — never a crash, a stale mix, or a
/// wrong answer. After the churn settles, the cache holds exactly the
/// current epoch's plans.
TEST(PlanCacheStressTest, QueryTrafficRacesReloads) {
  plan::PlanEngine engine;
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());

  // Reference answers (the dataset is identical across reloads, so every
  // successful answer must match regardless of which epoch served it).
  std::vector<core::QueryResult> expected;
  {
    ExecContext ctx;
    engine.PrepareContext(&ctx);
    for (const QueryId q : core::kAllQueries) {
      auto r = engine.RunQuery(q, TinyParams(), &ctx);
      ASSERT_TRUE(r.ok()) << core::QueryName(q);
      expected.push_back(*r);
    }
  }

  constexpr int kClients = 6;
  constexpr int kRoundsPerClient = 24;
  constexpr int kReloads = 8;
  std::atomic<bool> done{false};
  std::atomic<int> wrong_answers{0};
  std::atomic<int> unexpected_errors{0};
  std::atomic<int> served{0};

  stress::Hammer(kClients + 1, [&](int t) {
    if (t == kClients) {  // Reloader thread.
      for (int i = 0; i < kReloads; ++i) {
        GENBASE_CHECK(engine.LoadDataset(TinyData()).ok());
      }
      done.store(true, std::memory_order_release);
      return;
    }
    uint64_t rng = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(t + 1);
    const auto attempt = [&](QueryId q, bool must_serve) {
      ExecContext ctx;
      engine.PrepareContext(&ctx);
      auto r = engine.RunQuery(q, TinyParams(), &ctx);
      if (r.ok()) {
        served.fetch_add(1, std::memory_order_relaxed);
        const auto& exp = expected[static_cast<size_t>(q) - 1];
        const bool match =
            r->query == exp.query &&
            r->regression.r_squared == exp.regression.r_squared &&
            r->covariance.cov_checksum == exp.covariance.cov_checksum &&
            r->svd.singular_values == exp.svd.singular_values &&
            r->stats.z_abs_sum == exp.stats.z_abs_sum &&
            r->bicluster.biclusters.size() == exp.bicluster.biclusters.size();
        if (!match) wrong_answers.fetch_add(1, std::memory_order_relaxed);
      } else if (must_serve ||
                 r.status().code() != StatusCode::kInternal) {
        // The only acceptable failure is the transient unloaded window
        // inside a reload swap — and only while the reloader is active.
        unexpected_errors.fetch_add(1, std::memory_order_relaxed);
      }
    };
    const auto random_query = [&] {
      return core::kAllQueries[stress::NextRand(&rng) %
                               (sizeof(core::kAllQueries) /
                                sizeof(core::kAllQueries[0]))];
    };
    int round = 0;
    while (round < kRoundsPerClient || !done.load(std::memory_order_acquire)) {
      attempt(random_query(), /*must_serve=*/false);
      ++round;
      if (round > kRoundsPerClient * 50) break;  // Reloader starvation guard.
    }
    // Once the churn has ended the dataset stays loaded, so one more request
    // must serve — guarantees coverage even if every raced round happened to
    // land inside a reload window. The guard above can trip while the
    // reloader is still active (failed rounds are much cheaper than
    // reloads), so wait for it before the guaranteed attempt.
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    attempt(random_query(), /*must_serve=*/true);
  });

  EXPECT_EQ(wrong_answers.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(unexpected_errors.load(std::memory_order_relaxed), 0);
  EXPECT_GE(served.load(std::memory_order_relaxed), kClients);

  // Settle: one pass over all queries on the final epoch, then the cache
  // must hold exactly those five plans (older epochs evicted).
  ExecContext ctx;
  engine.PrepareContext(&ctx);
  for (const QueryId q : core::kAllQueries) {
    auto r = engine.RunQuery(q, TinyParams(), &ctx);
    ASSERT_TRUE(r.ok()) << core::QueryName(q) << ": "
                        << r.status().ToString();
  }
  EXPECT_EQ(engine.cached_plans(), 5);
  EXPECT_EQ(plan::PlanStatsSnapshot::Capture().peak_mismatches, 0);
}

}  // namespace
}  // namespace genbase
