// Race-hunting stress for the fault-tolerance layer: a scripted injector
// (crashes, recovery, transient-error and latency windows, armed reload
// failures) replayed against a live stack while a stampede of clients and a
// rolling-reload churn thread hammer it, plus a direct stress of the
// injector's lock-free tick path.
//
// The correctness claims under test are the ones bench/fig9_faults gates on
// at the macro level, here driven at maximum contention:
//   * no interleaving of crash/failover/retry/reload ever serves a
//     cross-epoch (stale) result — the tripwire must stay silent,
//   * every op is accounted exactly once (served or errored; nothing lost
//     inside the retry/hedge/fallback plumbing),
//   * failed execute attempts reconcile: per-shard errors equal retries
//     plus client-observed errors,
//   * failed reloads reconcile one-to-one with consumed reload-fail arms,
//     and the fleet heals once the script runs dry,
//   * the injector's op tick is lossless under concurrency and each
//     scheduled action applies exactly once.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/exec_context.h"
#include "core/generator.h"
#include "engine/engines.h"
#include "serving/faults.h"
#include "serving/serving_stack.h"
#include "tests/stress/stress_util.h"

namespace genbase::serving {
namespace {

using stress::Hammer;
using stress::NextRand;

constexpr double kTinyScale = 0.008;  // 40 genes x 40 patients for kSmall.

const core::GenBaseData& TinyData() {
  static const core::GenBaseData* data = [] {
    auto r = core::GenerateDataset(core::DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new core::GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

core::DriverOptions TinyOptions(int variant = 0) {
  core::DriverOptions options;
  options.timeout_seconds = 30.0;
  options.params.svd_rank = 6;
  options.params.bicluster_count = 2;
  options.params.sample_fraction = 0.1;
  // Distinct cache keys per variant without changing the workload class.
  options.params.function_threshold += variant;
  return options;
}

TEST(FaultsStressTest, CrashRecoverScriptRacesStampedeAndReloads) {
  // Ops are fleet-wide Serve ticks (6 clients x 60 ops = 360 total): shard 1
  // crashes and recovers, shard 0 crashes later, an any-shard error window
  // and a latency spike overlap them, and two reload-fail arms wait for the
  // churn thread. Everything is healed / expired well before the last op.
  auto script = FaultScript::Parse(
      "seed 77\n"
      "@5 crash 1\n"
      "@20 reload-fail 0\n"
      "@40..200 error * 0.25\n"
      "@60..220 latency 2 0.002\n"
      "@90 reload-fail 2\n"
      "@120 recover 1\n"
      "@150 crash 0\n"
      "@260 recover 0\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());

  ServingOptions options;
  options.shards = 3;
  options.cache_enabled = true;
  options.cache_max_entries = 16;  // Small: eviction churns alongside.
  options.single_flight = true;
  options.model_network = false;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_s = 50e-6;
  options.retry.max_backoff_s = 400e-6;
  options.fault_injector = injector->get();
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 60;
  constexpr int kVariants = 3;  // Few keys -> constant stampedes.
  constexpr int kReloads = 10;

  std::atomic<bool> churn_done{false};
  std::atomic<int64_t> reload_failures{0};
  std::atomic<int64_t> stale_tripwires{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> served{0};

  // Churn thread: rolling reloads racing the fault schedule — some consume
  // an armed reload-fail and abort mid-roll (quarantining a shard), the
  // next one heals it.
  std::thread churn([&] {
    for (int r = 0; r < kReloads; ++r) {
      const genbase::Status st = (*stack)->ReloadDataset(TinyData());
      if (!st.ok()) reload_failures.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    churn_done.store(true, std::memory_order_release);
  });

  Hammer(kClients, [&](int t) {
    ExecContext ctx;
    uint64_t rng = 0xfa1u + static_cast<uint64_t>(t);
    for (int i = 0; i < kOpsPerClient; ++i) {
      // Cheap queries only — the point is fault-path contention, not FLOPs.
      const core::QueryId query = (NextRand(&rng) % 2 == 0)
                                      ? core::QueryId::kRegression
                                      : core::QueryId::kStatistics;
      const int variant = static_cast<int>(NextRand(&rng) % kVariants);
      const ServeResult r = (*stack)->Serve(
          query, core::DatasetSize::kSmall, TinyOptions(variant), &ctx);
      if (r.stale_tripwire) {
        stale_tripwires.fetch_add(1, std::memory_order_relaxed);
      }
      if (r.shed) continue;  // Admission is off, but stay defensive.
      if (!r.cell.status.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
      } else {
        served.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  churn.join();
  EXPECT_TRUE(churn_done.load());

  // The load-bearing gate: however crashes, retries, reload failures and
  // invalidation interleaved, no op ever saw a cross-epoch result.
  EXPECT_EQ(stale_tripwires.load(), 0) << "cross-epoch result served";
  // Every op accounted exactly once.
  EXPECT_EQ(served.load() + errors.load(),
            int64_t{kClients} * kOpsPerClient);

  // Leftover reload-fail arms (the churn may outpace the op clock) are
  // consumed by at most one aborted roll each; then the fleet must heal.
  genbase::Status final_reload = (*stack)->ReloadDataset(TinyData());
  int final_reload_failures = 0;
  for (int i = 0; i < 4 && !final_reload.ok(); ++i) {
    ++final_reload_failures;
    final_reload = (*stack)->ReloadDataset(TinyData());
  }
  EXPECT_TRUE(final_reload.ok()) << final_reload.ToString();

  const ServingCounters counters = (*stack)->counters();
  EXPECT_EQ(counters.stale_hits, 0);
  // A successful full roll heals every quarantined shard.
  for (const ShardStats& shard : counters.shards) {
    EXPECT_EQ(shard.health, ShardHealth::kHealthy);
  }
  // Cache reconciliation survives eviction + epoch invalidation racing
  // retried inserts.
  EXPECT_EQ(counters.cache.entries,
            counters.cache.insertions - counters.cache.evictions -
                counters.cache.invalidated);
  EXPECT_EQ(counters.cache.hits + counters.cache.misses,
            int64_t{kClients} * kOpsPerClient);
  // Single-flight bookkeeping: every follower resolved exactly one way.
  EXPECT_EQ(counters.flight.coalesced,
            counters.flight.coalesced_served +
                counters.flight.follower_fallbacks +
                counters.flight.shed_wait_timeout);
  // Failed-attempt reconciliation: every failed execute attempt (injected
  // transient, crashed-shard fail-fast, quarantined-shard fail-fast) was
  // either retried or surfaced as the op's error — none vanished. Hedging
  // is off, so shard errors have no third consumer.
  int64_t shard_errors = 0;
  for (const ShardStats& shard : counters.shards) {
    shard_errors += shard.errors;
  }
  EXPECT_EQ(shard_errors, counters.retry.retries + errors.load());
  EXPECT_LE(counters.retry.retry_successes, counters.retry.retries);
  // Reload failures reconcile one-to-one with consumed reload-fail arms.
  EXPECT_EQ(counters.faults.reload_failures,
            reload_failures.load() + final_reload_failures);
  EXPECT_EQ(counters.faults.transient_errors,
            (*injector)->injected(FaultKind::kTransientError));
  EXPECT_EQ((*injector)->injected(FaultKind::kCrash), 2);
  EXPECT_EQ((*injector)->injected(FaultKind::kRecover), 2);
}

TEST(FaultsStressTest, ConcurrentTicksApplyEachScheduledActionExactlyOnce) {
  auto script = FaultScript::Parse(
      "seed 13\n"
      "@100 crash 0\n"
      "@150..500 error * 0.3\n"
      "@200..400 latency 1 0.001\n"
      "@250 recover 0\n");
  ASSERT_TRUE(script.ok());
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());
  FaultInjector& faults = **injector;

  constexpr int kThreads = 8;
  constexpr int kTicks = 200;  // 1600 ticks total: far past every event.
  std::atomic<int64_t> draws_fired{0};
  Hammer(kThreads, [&](int t) {
    uint64_t rng = 0xfa17 + static_cast<uint64_t>(t);
    for (int i = 0; i < kTicks; ++i) {
      const uint64_t op = faults.OnServe();
      // Hot-path reads race the scheduled flips on purpose.
      (void)faults.ShardCrashed(0);
      (void)faults.ShardLatencySeconds(1);
      const int shard = static_cast<int>(NextRand(&rng) % 2);
      if (faults.DrawTransientError(shard, op, 1)) {
        draws_fired.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // The tick is lossless: the next op continues right after the stampede.
  EXPECT_EQ(faults.OnServe(), uint64_t{kThreads} * kTicks + 1);
  // Each scheduled action applied (and was counted) exactly once.
  EXPECT_EQ(faults.injected(FaultKind::kCrash), 1);
  EXPECT_EQ(faults.injected(FaultKind::kRecover), 1);
  EXPECT_EQ(faults.injected(FaultKind::kLatencySpike), 1);
  EXPECT_EQ(faults.injected(FaultKind::kTransientError), draws_fired.load());
  EXPECT_FALSE(faults.ShardCrashed(0));  // Recovered by the end.
  EXPECT_DOUBLE_EQ(faults.ShardLatencySeconds(1), 0.0);  // Window expired.

  const std::string log = faults.EventLog();
  const size_t crash_line = log.find("@100 crash shard=0");
  ASSERT_NE(crash_line, std::string::npos);
  EXPECT_EQ(log.find("@100 crash shard=0", crash_line + 1),
            std::string::npos);
  const size_t recover_line = log.find("@250 recover shard=0");
  ASSERT_NE(recover_line, std::string::npos);
  EXPECT_EQ(log.find("@250 recover shard=0", recover_line + 1),
            std::string::npos);
}

}  // namespace
}  // namespace genbase::serving
