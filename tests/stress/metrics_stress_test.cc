// Race-hunting stress for the process-global MetricsRegistry (obs/metrics.h).
//
// The registry's contract: GetCounter/GetGauge/GetHistogram may be called
// from any thread at any time; same (name, labels) always resolves to the
// same stable instrument pointer; updates through those pointers are atomic
// and nothing is ever lost. The races this suite hunts:
//   * concurrent first-registration of one key (two threads both miss the
//     map and try to create),
//   * registration of new instruments racing Snapshot()/exporters iterating
//     the map,
//   * high-rate concurrent updates racing snapshot reads.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "tests/stress/stress_util.h"

namespace genbase::obs {
namespace {

using stress::Hammer;
using stress::NextRand;

TEST(MetricsStressTest, ConcurrentInstrumentCreationIsStableAndExact) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string run = MetricsRegistry::NextInstanceId("stress_create");

  constexpr int kThreads = 8;
  constexpr int kSharedCounters = 16;
  constexpr int kIncsPerCounter = 500;

  // Every thread resolves the same 16 keys (registration race) and hammers
  // each; label order is deliberately permuted per thread so canonicalization
  // is part of what's raced.
  std::vector<std::vector<Counter*>> resolved(kThreads);
  Hammer(kThreads, [&](int t) {
    std::vector<Counter*>& mine = resolved[static_cast<size_t>(t)];
    for (int c = 0; c < kSharedCounters; ++c) {
      Labels labels = {{"run", run}, {"c", std::to_string(c)}};
      if (t % 2 == 1) std::swap(labels[0], labels[1]);
      mine.push_back(reg.GetCounter("stress_shared_total", labels));
    }
    for (int i = 0; i < kIncsPerCounter; ++i) {
      for (Counter* c : mine) c->Inc();
    }
  });

  // Stability: all threads resolved identical pointers per key.
  for (int t = 1; t < kThreads; ++t) {
    for (int c = 0; c < kSharedCounters; ++c) {
      EXPECT_EQ(resolved[static_cast<size_t>(t)][static_cast<size_t>(c)],
                resolved[0][static_cast<size_t>(c)]);
    }
  }
  // Exactness: no increment lost in the registration race.
  for (int c = 0; c < kSharedCounters; ++c) {
    EXPECT_EQ(resolved[0][static_cast<size_t>(c)]->Value(),
              int64_t{kThreads} * kIncsPerCounter);
  }
}

TEST(MetricsStressTest, RegistrationRacesSnapshotAndExporters) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string run = MetricsRegistry::NextInstanceId("stress_snap");

  constexpr int kWriters = 4;
  constexpr int kInstrumentsPerWriter = 200;
  std::atomic<bool> done{false};

  // Reader thread iterates the full registry (Snapshot + both exporters)
  // while writers keep adding fresh instruments of all three kinds.
  std::thread reader([&] {
    size_t last_size = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = reg.Snapshot();
      EXPECT_GE(snap.size(), last_size);  // Instruments are never removed.
      last_size = snap.size();
      EXPECT_FALSE(reg.PrometheusText().empty());
      EXPECT_FALSE(reg.ToJson().empty());
    }
  });

  Hammer(kWriters, [&](int t) {
    for (int i = 0; i < kInstrumentsPerWriter; ++i) {
      const Labels labels = {{"run", run},
                             {"w", std::to_string(t)},
                             {"i", std::to_string(i)}};
      reg.GetCounter("stress_reg_counter_total", labels)->Inc(i);
      reg.GetGauge("stress_reg_gauge", labels)->Set(i);
      reg.GetHistogram("stress_reg_hist", labels)->Observe(1e-4 * (i + 1));
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();

  // Post-race exactness for a sample of instruments.
  for (int t = 0; t < kWriters; ++t) {
    const Labels labels = {{"run", run},
                           {"w", std::to_string(t)},
                           {"i", "7"}};
    EXPECT_EQ(reg.GetCounter("stress_reg_counter_total", labels)->Value(), 7);
    EXPECT_DOUBLE_EQ(reg.GetGauge("stress_reg_gauge", labels)->Value(), 7.0);
    EXPECT_EQ(reg.GetHistogram("stress_reg_hist", labels)->Snapshot().count,
              1);
  }
}

TEST(MetricsStressTest, HotUpdatesVsSnapshotStayExact) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string run = MetricsRegistry::NextInstanceId("stress_hot");
  const Labels labels = {{"run", run}};
  Counter* counter = reg.GetCounter("stress_hot_total", labels);
  Gauge* high_water = reg.GetGauge("stress_hot_max", labels);
  Gauge* accum = reg.GetGauge("stress_hot_sum", labels);
  Histogram* hist = reg.GetHistogram("stress_hot_seconds", labels);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> done{false};

  std::thread snapshotter([&] {
    int64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      // Monotone count is the only mid-race invariant asserted: min/max are
      // published after the bucket add by design (the +/-inf sentinels), so
      // a snapshot can catch the first observation between the two.
      const HistogramSnapshot s = hist->Snapshot();
      EXPECT_GE(s.count, last_count);
      last_count = s.count;
    }
  });

  Hammer(kThreads, [&](int t) {
    uint64_t rng = 0x9e3779b9u + static_cast<uint64_t>(t);
    for (int i = 0; i < kOpsPerThread; ++i) {
      counter->Inc();
      accum->Add(1.0);
      const double v = 1e-6 * static_cast<double>(NextRand(&rng) % 1000000);
      high_water->SetMax(v);
      hist->Observe(v);
    }
  });
  done.store(true, std::memory_order_release);
  snapshotter.join();

  constexpr int64_t kTotal = int64_t{kThreads} * kOpsPerThread;
  EXPECT_EQ(counter->Value(), kTotal);
  EXPECT_DOUBLE_EQ(accum->Value(), static_cast<double>(kTotal));
  const HistogramSnapshot s = hist->Snapshot();
  EXPECT_EQ(s.count, kTotal);
  EXPECT_DOUBLE_EQ(s.max, high_water->Value());
  EXPECT_LT(s.max, 1.0);
  EXPECT_GE(s.min, 0.0);
}

}  // namespace
}  // namespace genbase::obs
