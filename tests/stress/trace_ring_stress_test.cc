// Race-hunting stress for the lock-free trace span rings (obs/trace.h).
//
// The SPSC contract under test: each ring has exactly one writer (the owning
// thread) and one collector at a time, head is writer-owned with a release
// publish, tail is collector-owned. The hazards this suite gives TSan a
// chance to object to:
//   * writer publishing slots vs the collector reading them (Record vs
//     DrainRing),
//   * the TLS-exit handoff: a thread dies, its ring returns to the pool with
//     undrained spans, another thread adopts it while the collector drains,
//   * many writers racing ring acquisition from the reuse pool.
//
// Every test also asserts content integrity: each span's payload is a pure
// function of its ids, so a torn read or double-drain shows up as a wrong
// value even in an unsanitized build, not only as a TSan report.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "tests/stress/stress_util.h"

namespace genbase::obs {
namespace {

using stress::Hammer;

// Payload derived from (trace_id, span_id) — collector-side integrity check.
double ExpectedDur(uint64_t trace_id, uint64_t span_id) {
  return 1e-6 * static_cast<double>((trace_id % 97) + span_id % 89);
}

Span MakeSpan(uint64_t writer, uint64_t seq) {
  Span s;
  s.trace_id = (writer << 32) | 1;  // Writer id in the high bits.
  s.span_id = seq;
  s.name = "stress";
  s.dur_s = ExpectedDur(s.trace_id, s.span_id);
  return s;
}

TEST(TraceRingStressTest, WritersVsConcurrentCollector) {
  Tracer& tracer = Tracer::Global();
  tracer.TakeCollected();  // Drain other tests' leftovers.
  const int64_t recorded_before = tracer.spans_recorded();
  const int64_t dropped_before = tracer.spans_dropped();

  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 20000;
  std::atomic<bool> done{false};
  std::atomic<int64_t> collected{0};
  std::vector<Span> spans;

  // Collector races the writers, then drains the remainder after they stop.
  std::thread collector([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const Span& s : Tracer::Global().TakeCollected()) {
        spans.push_back(s);
        collected.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (const Span& s : Tracer::Global().TakeCollected()) {
      spans.push_back(s);
      collected.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Hammer(kWriters, [&](int w) {
    for (int i = 0; i < kSpansPerWriter; ++i) {
      Tracer::Global().Record(
          MakeSpan(static_cast<uint64_t>(w), static_cast<uint64_t>(i)));
    }
  });
  done.store(true, std::memory_order_release);
  collector.join();

  const int64_t recorded = tracer.spans_recorded() - recorded_before;
  const int64_t dropped = tracer.spans_dropped() - dropped_before;
  // Accounting: every Record either landed (counted recorded, eventually
  // drained) or was counted as a drop. Nothing vanishes, nothing is drained
  // twice.
  EXPECT_EQ(recorded + dropped, int64_t{kWriters} * kSpansPerWriter);
  EXPECT_EQ(collected.load(), recorded);

  // Integrity: every drained span carries the payload its ids imply, and
  // per writer the drained sequence numbers are strictly increasing (SPSC
  // FIFO order survives the concurrent drain).
  std::vector<int64_t> last_seq(kWriters, -1);
  for (const Span& s : spans) {
    ASSERT_DOUBLE_EQ(s.dur_s, ExpectedDur(s.trace_id, s.span_id));
    const auto w = static_cast<int>(s.trace_id >> 32);
    ASSERT_LT(w, kWriters);
    EXPECT_GT(static_cast<int64_t>(s.span_id), last_seq[w]);
    last_seq[w] = static_cast<int64_t>(s.span_id);
  }
}

TEST(TraceRingStressTest, TlsExitHandoffVsCollector) {
  Tracer& tracer = Tracer::Global();
  tracer.TakeCollected();
  const int64_t recorded_before = tracer.spans_recorded();
  const int64_t dropped_before = tracer.spans_dropped();

  // Waves of short-lived writer threads: each records a burst small enough
  // to never fill a ring, then exits — its ring returns to the pool with
  // possibly-undrained spans for the next wave's thread (or the final
  // drain) to inherit. The collector races the handoffs the whole time.
  constexpr int kWaves = 40;
  constexpr int kThreadsPerWave = 3;
  constexpr int kSpansPerThread = 50;
  std::atomic<bool> done{false};
  std::atomic<int64_t> collected{0};

  std::thread collector([&] {
    while (!done.load(std::memory_order_acquire)) {
      collected.fetch_add(
          static_cast<int64_t>(Tracer::Global().TakeCollected().size()),
          std::memory_order_relaxed);
    }
  });

  for (int wave = 0; wave < kWaves; ++wave) {
    Hammer(kThreadsPerWave, [&](int t) {
      const auto writer = static_cast<uint64_t>(wave * kThreadsPerWave + t);
      for (int i = 0; i < kSpansPerThread; ++i) {
        Tracer::Global().Record(MakeSpan(writer, static_cast<uint64_t>(i)));
      }
    });
  }
  done.store(true, std::memory_order_release);
  collector.join();

  // The final drain picks up whatever the racing collector missed,
  // including spans stranded in pooled rings by exited threads.
  std::vector<Span> rest = tracer.TakeCollected();
  const int64_t total =
      collected.load() + static_cast<int64_t>(rest.size());
  const int64_t recorded = tracer.spans_recorded() - recorded_before;
  const int64_t dropped = tracer.spans_dropped() - dropped_before;
  EXPECT_EQ(recorded + dropped,
            int64_t{kWaves} * kThreadsPerWave * kSpansPerThread);
  EXPECT_EQ(total, recorded);
  for (const Span& s : rest) {
    EXPECT_DOUBLE_EQ(s.dur_s, ExpectedDur(s.trace_id, s.span_id));
  }
}

TEST(TraceRingStressTest, ScopedSpansAcrossThreadChurn) {
  Tracer& tracer = Tracer::Global();
  tracer.TakeCollected();
  const int64_t recorded_before = tracer.spans_recorded();
  const int64_t dropped_before = tracer.spans_dropped();

  // The real client path (ScopedTrace + nested ScopedSpan) under thread
  // churn, with a concurrent collector. Parent/child relationships are
  // per-thread TLS state — TSan verifies the rings, the assertions verify
  // nesting survived the churn.
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 300;
  std::atomic<bool> done{false};
  std::vector<Span> spans;
  std::mutex spans_mu;

  std::thread collector([&] {
    for (;;) {
      const bool last = done.load(std::memory_order_acquire);
      std::vector<Span> got = Tracer::Global().TakeCollected();
      {
        std::lock_guard<std::mutex> lock(spans_mu);
        for (const Span& s : got) spans.push_back(s);
      }
      if (last) break;
    }
  });

  Hammer(kThreads, [&](int t) {
    for (int i = 0; i < kRequestsPerThread; ++i) {
      const uint64_t trace_id =
          (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i + 1);
      ScopedTrace trace(trace_id, /*sampled=*/true);
      ScopedSpan root("request");
      {
        ScopedSpan child("execute");
      }
    }
  });
  done.store(true, std::memory_order_release);
  collector.join();

  const int64_t recorded = tracer.spans_recorded() - recorded_before;
  const int64_t dropped = tracer.spans_dropped() - dropped_before;
  EXPECT_EQ(recorded + dropped,
            int64_t{2} * kThreads * kRequestsPerThread);  // Root + child.
  EXPECT_EQ(static_cast<int64_t>(spans.size()), recorded);

  // Within one trace the child must point at the root (ids are per-trace:
  // root=1 opens first, child=2 nests under it).
  for (const Span& s : spans) {
    if (s.span_id == 2) {
      EXPECT_EQ(s.parent_id, 1u) << "child span lost its parent";
    } else {
      EXPECT_EQ(s.parent_id, 0u) << "root span grew a parent";
    }
  }
}

}  // namespace
}  // namespace genbase::obs
