// Race-hunting stress for the threaded SIMD kernel layer (linalg/blas.h).
//
// PR 4's determinism guarantee — Gemm/Syrk produce bitwise-identical
// results for any pool width — is verified sequentially by
// simd_kernels_test. This suite verifies the concurrent half of the
// contract, which is what the serving stack actually exercises: many
// threads running threaded kernels at once, over shared read-only inputs,
// each through its own pool AND all through one shared pool. TSan checks
// the pool's task hand-off and the packing buffers; the bitwise comparison
// checks that no scratch state is shared across concurrent invocations.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/matrix.h"
#include "tests/stress/stress_util.h"

namespace genbase::linalg {
namespace {

using stress::Hammer;
using stress::NextRand;

Matrix SeededMatrix(int rows, int cols, uint64_t seed) {
  Matrix m(rows, cols);
  uint64_t rng = seed;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Uniform in [-1, 1), exactly representable steps.
      m(r, c) = static_cast<double>(NextRand(&rng) % 4096) / 2048.0 - 1.0;
    }
  }
  return m;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<size_t>(a.rows()) *
                         static_cast<size_t>(a.cols())) == 0;
}

// Sized to cross the kernel's packing-block boundaries (kMc=128, kKc=256)
// so the threaded row-block path and the packed panels are really used,
// while staying small enough for TSan's 5-20x slowdown.
constexpr int kM = 160, kK = 96, kN = 64;

TEST(KernelsStressTest, ConcurrentGemmPrivatePoolsBitwiseStable) {
  const Matrix a = SeededMatrix(kM, kK, 0x5eed0001);
  const Matrix b = SeededMatrix(kK, kN, 0x5eed0002);
  Matrix reference(kM, kN);
  {
    ThreadPool single(1);
    ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &reference, &single).ok());
  }

  constexpr int kThreads = 4;
  constexpr int kReps = 6;
  std::atomic<int> mismatches{0};
  Hammer(kThreads, [&](int t) {
    ThreadPool pool(t + 1);  // Widths 1..4 concurrently.
    for (int rep = 0; rep < kReps; ++rep) {
      Matrix c(kM, kN);
      ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &c, &pool).ok());
      if (!BitwiseEqual(c, reference)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KernelsStressTest, ConcurrentSyrkSharedPoolBitwiseStable) {
  const Matrix a = SeededMatrix(kM, kK, 0x5eed0003);
  Matrix reference(kK, kK);
  {
    ThreadPool single(1);
    ASSERT_TRUE(Syrk(MatrixView(a), &reference, &single).ok());
  }

  // One pool shared by every caller: ParallelFor batches from concurrent
  // invocations interleave in the task queue — the shape the sharded
  // serving stack produces when multiple shards execute at once.
  ThreadPool shared(3);
  constexpr int kThreads = 4;
  constexpr int kReps = 6;
  std::atomic<int> mismatches{0};
  Hammer(kThreads, [&](int) {
    for (int rep = 0; rep < kReps; ++rep) {
      Matrix c(kK, kK);
      ASSERT_TRUE(Syrk(MatrixView(a), &c, &shared).ok());
      if (!BitwiseEqual(c, reference)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KernelsStressTest, MixedKernelsOneSharedPoolStayIndependent) {
  // Gemm, SyrkCentered and Gemv callers interleaved on one pool: catches
  // any shared mutable packing scratch between *different* kernels, which
  // per-kernel tests cannot see.
  const Matrix a = SeededMatrix(kM, kK, 0x5eed0004);
  const Matrix b = SeededMatrix(kK, kN, 0x5eed0005);
  std::vector<double> means(static_cast<size_t>(kK));
  for (int c = 0; c < kK; ++c) {
    double s = 0;
    for (int r = 0; r < kM; ++r) s += a(r, c);
    means[static_cast<size_t>(c)] = s / kM;
  }
  std::vector<double> x(static_cast<size_t>(kK), 0.5);

  Matrix gemm_ref(kM, kN);
  Matrix syrk_ref(kK, kK);
  std::vector<double> gemv_ref(static_cast<size_t>(kM));
  {
    ThreadPool single(1);
    ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &gemm_ref, &single).ok());
    ASSERT_TRUE(
        SyrkCentered(MatrixView(a), means.data(), &syrk_ref, &single).ok());
    Gemv(MatrixView(a), x.data(), gemv_ref.data(), &single);
  }

  ThreadPool shared(3);
  constexpr int kThreads = 6;
  constexpr int kReps = 4;
  std::atomic<int> mismatches{0};
  Hammer(kThreads, [&](int t) {
    for (int rep = 0; rep < kReps; ++rep) {
      switch (t % 3) {
        case 0: {
          Matrix c(kM, kN);
          ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &c, &shared).ok());
          if (!BitwiseEqual(c, gemm_ref)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case 1: {
          Matrix c(kK, kK);
          ASSERT_TRUE(
              SyrkCentered(MatrixView(a), means.data(), &c, &shared).ok());
          if (!BitwiseEqual(c, syrk_ref)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        default: {
          std::vector<double> y(static_cast<size_t>(kM));
          Gemv(MatrixView(a), x.data(), y.data(), &shared);
          if (std::memcmp(y.data(), gemv_ref.data(),
                          sizeof(double) * y.size()) != 0) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace genbase::linalg
