// Race-hunting stress for the serving tier: ResultCache + single-flight
// stampedes racing ReloadDataset's epoch bump and invalidation, and the
// AdmissionController's adaptive limit churning under concurrent
// Admit/Release traffic.
//
// The correctness claims under test are the ones fig7/fig8 gate on at the
// macro level, here driven at maximum contention with no workload runner in
// between:
//   * a Serve() racing a reload never observes a cross-epoch (stale) result
//     — the tripwire must stay silent,
//   * cache counter reconciliation (entries == insertions - evictions -
//     invalidated) holds after any interleaving,
//   * a single-flight leader's publish reaches exactly the followers of its
//     own flight; follower counts stay consistent,
//   * the adaptive limit stays inside [min_inflight, max_inflight_cap] at
//     every instant, and slots are never leaked (inflight returns to 0).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/exec_context.h"
#include "core/generator.h"
#include "engine/engines.h"
#include "serving/admission.h"
#include "serving/result_cache.h"
#include "serving/serving_stack.h"
#include "serving/single_flight.h"
#include "tests/stress/stress_util.h"

namespace genbase::serving {
namespace {

using stress::Hammer;
using stress::NextRand;

constexpr double kTinyScale = 0.008;  // 40 genes x 40 patients for kSmall.

const core::GenBaseData& TinyData() {
  static const core::GenBaseData* data = [] {
    auto r = core::GenerateDataset(core::DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new core::GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

core::DriverOptions TinyOptions(int variant = 0) {
  core::DriverOptions options;
  options.timeout_seconds = 30.0;
  options.params.svd_rank = 6;
  options.params.bicluster_count = 2;
  options.params.sample_fraction = 0.1;
  // Distinct cache keys per variant without changing the workload class.
  options.params.function_threshold += variant;
  return options;
}

TEST(ServingStressTest, StampedeRacesReloadWithoutStaleness) {
  ServingOptions options;
  options.shards = 2;
  options.cache_enabled = true;
  options.cache_max_entries = 16;  // Small: eviction churns alongside.
  options.single_flight = true;
  options.model_network = false;
  auto stack =
      ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 40;
  constexpr int kVariants = 3;  // Few keys -> constant stampedes.
  constexpr int kReloads = 8;

  std::atomic<bool> churn_done{false};
  std::atomic<int64_t> stale_tripwires{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> served{0};

  // Churn thread: rolling drain-and-reload back to back while clients fire.
  std::thread churn([&] {
    for (int r = 0; r < kReloads; ++r) {
      const genbase::Status st = (*stack)->ReloadDataset(TinyData());
      if (!st.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    churn_done.store(true, std::memory_order_release);
  });

  Hammer(kClients, [&](int t) {
    ExecContext ctx;
    uint64_t rng = 0xc0ffee + static_cast<uint64_t>(t);
    for (int i = 0; i < kOpsPerClient; ++i) {
      // Cheap queries only — the point is key-level contention, not FLOPs.
      const core::QueryId query = (NextRand(&rng) % 2 == 0)
                                      ? core::QueryId::kRegression
                                      : core::QueryId::kStatistics;
      const int variant = static_cast<int>(NextRand(&rng) % kVariants);
      const ServeResult r =
          (*stack)->Serve(query, core::DatasetSize::kSmall,
                          TinyOptions(variant), &ctx);
      if (r.stale_tripwire) {
        stale_tripwires.fetch_add(1, std::memory_order_relaxed);
      }
      if (r.shed) continue;  // Admission is off, but stay defensive.
      if (!r.cell.status.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
      } else {
        served.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  churn.join();

  EXPECT_EQ(stale_tripwires.load(), 0) << "cross-epoch result served";
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(served.load(), int64_t{kClients} * kOpsPerClient);

  const ServingCounters counters = (*stack)->counters();
  // Reconciliation must survive eviction + epoch invalidation racing
  // inserts from in-flight misses of the previous generation.
  EXPECT_EQ(counters.cache.entries,
            counters.cache.insertions - counters.cache.evictions -
                counters.cache.invalidated);
  EXPECT_EQ(counters.cache.hits + counters.cache.misses,
            int64_t{kClients} * kOpsPerClient);
  EXPECT_GE(counters.reloads, kReloads);
  // Single-flight bookkeeping: every coalesced follower was either served
  // by its leader or fell back / timed out — never more serves than joins.
  EXPECT_LE(counters.flight.coalesced_served, counters.flight.coalesced);
  EXPECT_TRUE(churn_done.load());
}

TEST(ServingStressTest, SingleFlightPublishRacesInvalidation) {
  // Direct table-level stampede: many threads join flights on few keys
  // while epochs advance and the cache invalidates underneath. Each round
  // has exactly one leader per key; the leader publishes a result tagged
  // with the key's epoch, and every served follower must observe exactly
  // that tag (torn or cross-flight hand-off would break it).
  SingleFlightTable flights;
  ResultCache cache(/*max_entries=*/64, /*max_bytes=*/1 << 20);

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  constexpr int kKeys = 2;
  std::atomic<int64_t> leaders{0};
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> mismatches{0};

  for (int round = 0; round < kRounds; ++round) {
    const auto epoch = static_cast<uint64_t>(round);
    Hammer(kThreads, [&](int t) {
      const CacheKey key{core::QueryId::kSvd,
                         static_cast<uint64_t>(t % kKeys),
                         core::DatasetSize::kSmall, epoch};
      std::shared_ptr<SingleFlightTable::Flight> flight;
      if (flights.Join(key, &flight) == SingleFlightTable::Role::kLeader) {
        leaders.fetch_add(1, std::memory_order_relaxed);
        core::QueryResult result;
        result.query = core::QueryId::kSvd;
        // Payload encodes (epoch, key): served followers cross-check it.
        result.svd.singular_values = {
            static_cast<double>(epoch),
            static_cast<double>(key.params_fingerprint)};
        cache.Insert(key, result);
        flights.Publish(key, flight, /*ok=*/true, result);
      } else {
        core::QueryResult out;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        if (SingleFlightTable::Wait(flight.get(), deadline, &out) ==
            SingleFlightTable::WaitResult::kServed) {
          served.fetch_add(1, std::memory_order_relaxed);
          if (out.svd.singular_values.size() != 2 ||
              out.svd.singular_values[0] != static_cast<double>(epoch) ||
              out.svd.singular_values[1] !=
                  static_cast<double>(key.params_fingerprint)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      // Invalidation races the publishes of this very round.
      if (t == 0) cache.InvalidateEpochsBelow(epoch);
    });
    ASSERT_EQ(flights.open_flights(), 0) << "flight leaked in round "
                                         << round;
  }

  EXPECT_EQ(mismatches.load(), 0);
  // Exactly one leader per (round, key) pair that was contended; a thread
  // may also arrive after the publish closed the flight and lead a fresh
  // one, so leaders >= kRounds * kKeys and leaders + served == total joins.
  EXPECT_GE(leaders.load(), int64_t{kRounds} * kKeys);
  EXPECT_EQ(leaders.load() + served.load(), int64_t{kRounds} * kThreads);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries,
            stats.insertions - stats.evictions - stats.invalidated);
}

TEST(ServingStressTest, AdaptiveAdmissionChurnsWithoutLeakingSlots) {
  AdmissionOptions options;
  options.adaptive = true;
  options.min_inflight = 1;
  options.max_inflight_cap = 8;
  options.adjust_interval = 4;  // Adjust constantly, not occasionally.
  options.max_queue = 16;
  options.max_queue_delay_s = 0.25;
  options.target_queue_delay_s = 0.001;
  AdmissionController admission(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 300;
  std::atomic<bool> done{false};
  std::atomic<int64_t> admitted{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> limit_violations{0};

  // Observer: the live limit must stay within bounds at every sample, not
  // just at the end.
  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const int limit = admission.current_limit();
      if (limit < options.min_inflight || limit > options.max_inflight_cap) {
        limit_violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  Hammer(kThreads, [&](int t) {
    uint64_t rng = 0xad315510 + static_cast<uint64_t>(t);
    for (int i = 0; i < kOpsPerThread; ++i) {
      const int class_id = static_cast<int>(NextRand(&rng) % 3);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options.max_queue_delay_s));
      double waited = 0.0;
      bool heavy = false;
      const AdmissionOutcome outcome =
          admission.Admit(deadline, &waited, class_id, &heavy);
      if (outcome != AdmissionOutcome::kAdmitted) {
        shed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      admitted.fetch_add(1, std::memory_order_relaxed);
      // Simulated service: class 2 is the heavy one (longer hold), so the
      // classifier has a real signal to churn on.
      const double service_s = class_id == 2 ? 400e-6 : 20e-6;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(service_s));
      admission.Release(class_id, service_s, heavy);
    }
  });
  done.store(true, std::memory_order_release);
  observer.join();

  EXPECT_EQ(limit_violations.load(), 0);
  EXPECT_EQ(admitted.load() + shed.load(),
            int64_t{kThreads} * kOpsPerThread);

  const AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted, admitted.load());
  EXPECT_EQ(stats.shed_queue_full + stats.shed_timeout, shed.load());
  EXPECT_GE(stats.current_limit, options.min_inflight);
  EXPECT_LE(stats.current_limit, options.max_inflight_cap);

  // No leaked slots: with all ops released, a full batch of min_inflight
  // admissions must go straight through (no waiting on phantom inflight).
  for (int i = 0; i < options.min_inflight; ++i) {
    ASSERT_EQ(admission.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  }
  for (int i = 0; i < options.min_inflight; ++i) admission.Release();
}

}  // namespace
}  // namespace genbase::serving
