#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace genbase::obs {
namespace {

// --- metrics registry --------------------------------------------------------

TEST(MetricKeyTest, CanonicalizesLabelOrder) {
  EXPECT_EQ(MetricKey("m", {}), "m");
  EXPECT_EQ(MetricKey("m", {{"b", "2"}, {"a", "1"}}),
            MetricKey("m", {{"a", "1"}, {"b", "2"}}));
  EXPECT_EQ(MetricKey("m", {{"a", "1"}, {"b", "2"}}),
            "m{a=\"1\",b=\"2\"}");
}

TEST(MetricsRegistryTest, SameKeyReturnsSameInstrument) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("obs_test_same_key", {{"k", "v"}});
  Counter* b = reg.GetCounter("obs_test_same_key", {{"k", "v"}});
  Counter* c = reg.GetCounter("obs_test_same_key", {{"k", "other"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3);
  EXPECT_EQ(c->Value(), 0);
}

TEST(MetricsRegistryTest, SnapshotAndExportersContainInstruments) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_export_counter")->Inc(7);
  reg.GetGauge("obs_test_export_gauge")->Set(2.5);
  reg.GetHistogram("obs_test_export_hist")->Observe(0.010);

  bool saw_counter = false;
  for (const MetricSample& s : reg.Snapshot()) {
    if (s.name == "obs_test_export_counter") {
      saw_counter = true;
      EXPECT_EQ(static_cast<int64_t>(s.value), 7);
    }
  }
  EXPECT_TRUE(saw_counter);

  const std::string prom = reg.PrometheusText();
  EXPECT_NE(prom.find("# TYPE obs_test_export_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("obs_test_export_gauge 2.5"), std::string::npos);
  EXPECT_NE(prom.find("obs_test_export_hist_count"), std::string::npos);

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"obs_test_export_counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_export_hist\""), std::string::npos);
}

// The lock-free hot path: counters and histogram buckets are plain relaxed
// atomics, so under concurrency the *counts* must still be exact (this is
// also the test to run under -fsanitize=thread to validate the claim that
// the instrument hot path has no data races — it passes functionally by
// exactness either way).
TEST(MetricsRegistryTest, ConcurrentUpdatesAreExact) {
  auto& reg = MetricsRegistry::Global();
  Counter* counter = reg.GetCounter("obs_test_concurrent_counter");
  Histogram* hist = reg.GetHistogram("obs_test_concurrent_hist");
  Gauge* peak = reg.GetGauge("obs_test_concurrent_peak");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
        hist->Observe((t + 1) * 1e-3);
        peak->SetMax(t + 1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1e-3);
  EXPECT_DOUBLE_EQ(snap.max, kThreads * 1e-3);
  EXPECT_DOUBLE_EQ(peak->Value(), kThreads);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileExtremesExactMiddleBucketed) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 1e-3);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1.0);
  EXPECT_NEAR(snap.Quantile(0.5), 0.5, 0.5 * 0.06);
  EXPECT_NEAR(snap.Quantile(0.99), 0.99, 0.99 * 0.06);
}

// --- trace ids + sampling ----------------------------------------------------

TEST(TraceSamplingTest, TraceIdsAreDeterministic) {
  const uint64_t a = RequestTraceId(42, "serving-mix", 7);
  EXPECT_EQ(a, RequestTraceId(42, "serving-mix", 7));
  EXPECT_NE(a, RequestTraceId(42, "serving-mix", 8));
  EXPECT_NE(a, RequestTraceId(43, "serving-mix", 7));
  EXPECT_NE(a, RequestTraceId(42, "churn-mix", 7));
  EXPECT_NE(a, 0u);  // 0 is reserved for "no trace installed".
}

TEST(TraceSamplingTest, SamplingIsDeterministicAndRateBounded) {
  const uint64_t id = RequestTraceId(1, "w", 1);
  EXPECT_FALSE(TraceSampled(id, 0.0));
  EXPECT_TRUE(TraceSampled(id, 1.0));
  EXPECT_EQ(TraceSampled(id, 0.01), TraceSampled(id, 0.01));

  int sampled = 0;
  constexpr int kIds = 20000;
  for (int i = 0; i < kIds; ++i) {
    if (TraceSampled(RequestTraceId(42, "w", i), 0.01)) ++sampled;
  }
  // E[sampled] = 200, sd ~14; a 6-sigma band will not flake.
  EXPECT_GT(sampled, 100);
  EXPECT_LT(sampled, 300);
}

// --- spans -------------------------------------------------------------------

TEST(ScopedSpanTest, NestingSetsParentIds) {
  Tracer& tracer = Tracer::Global();
  tracer.TakeCollected();  // Start from a drained ring.
  constexpr uint64_t kTrace = 0xabcdefULL;
  {
    ScopedTrace trace(kTrace, /*sampled=*/true);
    ScopedSpan request("request");
    ASSERT_TRUE(request.active());
    {
      ScopedSpan execute("execute");
      ASSERT_TRUE(execute.active());
      EmitChildSpan("analytics", 0.0, 0.1, "phase");
    }
  }
  std::vector<Span> spans;
  for (const Span& s : tracer.TakeCollected()) {
    if (s.trace_id == kTrace) spans.push_back(s);
  }
  ASSERT_EQ(spans.size(), 3u);
  // Recorded innermost-first: the emitted child, then execute, then request.
  const Span& analytics = spans[0];
  const Span& execute = spans[1];
  const Span& request = spans[2];
  EXPECT_STREQ(analytics.name, "analytics");
  EXPECT_STREQ(execute.name, "execute");
  EXPECT_STREQ(request.name, "request");
  EXPECT_EQ(request.parent_id, 0u);
  EXPECT_EQ(execute.parent_id, request.span_id);
  EXPECT_EQ(analytics.parent_id, execute.span_id);
  EXPECT_STREQ(analytics.detail, "phase");
  EXPECT_GE(execute.start_s, request.start_s);
}

TEST(ScopedSpanTest, UnsampledTraceRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.TakeCollected();
  constexpr uint64_t kTrace = 0xdeadULL;
  {
    ScopedTrace trace(kTrace, /*sampled=*/false);
    ScopedSpan request("request");
    EXPECT_FALSE(request.active());
    EmitChildSpan("execute", 0.0, 0.1);
  }
  for (const Span& s : tracer.TakeCollected()) {
    EXPECT_NE(s.trace_id, kTrace);
  }
}

TEST(TracerTest, FullRingDropsAndCountsInsteadOfBlocking) {
  Tracer& tracer = Tracer::Global();
  tracer.TakeCollected();  // Ring starts empty.
  const int64_t dropped_before = tracer.spans_dropped();
  constexpr uint64_t kTrace = 0xf100dULL;
  constexpr size_t kOverflow = 100;
  {
    ScopedTrace trace(kTrace, /*sampled=*/true);
    for (size_t i = 0; i < Tracer::kRingCapacity + kOverflow; ++i) {
      EmitChildSpan("spam", 0.0, 0.0);
    }
  }
  EXPECT_EQ(tracer.spans_dropped() - dropped_before,
            static_cast<int64_t>(kOverflow));
  size_t kept = 0;
  for (const Span& s : tracer.TakeCollected()) {
    if (s.trace_id == kTrace) ++kept;
  }
  EXPECT_EQ(kept, Tracer::kRingCapacity);
}

TEST(TracerTest, CollectDrainsSpansFromOtherThreads) {
  Tracer& tracer = Tracer::Global();
  tracer.TakeCollected();
  constexpr uint64_t kTrace = 0x7417ULL;
  std::thread worker([&] {
    ScopedTrace trace(kTrace, /*sampled=*/true);
    ScopedSpan span("request");
  });
  worker.join();
  size_t found = 0;
  for (const Span& s : tracer.TakeCollected()) {
    if (s.trace_id == kTrace) ++found;
  }
  EXPECT_EQ(found, 1u);
}

// --- exporters ---------------------------------------------------------------

TEST(TraceExportTest, ChromeTraceJsonShape) {
  Span span;
  span.trace_id = 0x1234;
  span.span_id = 1;
  span.name = "request";
  span.start_s = 0.5;
  span.dur_s = 0.25;
  span.tid = 3;
  span.synthetic = true;
  span.SetDetail("regression/v0");
  const std::string json = ChromeTraceJson({span});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500000.000000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250000.000000"), std::string::npos);
  EXPECT_NE(json.find("\"synthetic\":true"), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"regression/v0\""), std::string::npos);
  // Trace ids are hex strings: 64-bit values exceed JSON exact integers.
  EXPECT_NE(json.find("\"trace_id\":\"0000000000001234\""),
            std::string::npos);
}

TEST(TraceExportTest, SlowQueryJsonlOneLinePerRecord) {
  SlowQueryRecord rec;
  rec.trace_id = 5;
  rec.workload = "serving-mix";
  rec.query = "svd";
  rec.stages[RequestStage::kQueue] = 0.001;
  rec.stages[RequestStage::kExecute] = 0.040;
  rec.shed = true;
  const std::string jsonl = SlowQueryJsonl({rec, rec});
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"workload\":\"serving-mix\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"queue\":0.001000"), std::string::npos);
  EXPECT_NE(jsonl.find("\"execute\":0.040000"), std::string::npos);
  EXPECT_NE(jsonl.find("\"shed\":true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"slowest\":false"), std::string::npos);
}

// --- exporter round-trips ----------------------------------------------------
// The emitted artifacts are parsed back with the in-repo JSON parser: shape
// regressions (a missing comma, an unquoted value) fail here instead of in
// a downstream trace viewer.

TEST(TraceExportRoundTripTest, ChromeTraceParsesWithContainment) {
  Tracer& tracer = Tracer::Global();
  tracer.TakeCollected();
  constexpr uint64_t kTrace = 0x0cabULL;
  {
    ScopedTrace trace(kTrace, /*sampled=*/true);
    ScopedSpan request("request");
    {
      ScopedSpan execute("execute");
      volatile double sink = 0;
      for (int i = 0; i < 10000; ++i) sink += i;
    }
  }
  std::vector<Span> spans;
  for (const Span& s : tracer.TakeCollected()) {
    if (s.trace_id == kTrace) spans.push_back(s);
  }
  ASSERT_EQ(spans.size(), 2u);

  const std::string stamp =
      "{\"git_sha\":\"abc\",\"kernel_backend\":\"simd\","
      "\"timestamp\":\"2026-08-08T00:00:00Z\"}";
  auto parsed = json::Parse(ChromeTraceJson(spans, stamp));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value doc = std::move(parsed).ValueOrDie();
  const json::Value* metadata = doc.Find("metadata");
  ASSERT_NE(metadata, nullptr);
  EXPECT_EQ(metadata->StringOr("git_sha", ""), "abc");
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);

  // Locate request/execute by name; check ts monotonicity and containment:
  // the child must start at or after its parent and end within it.
  const json::Value* request = nullptr;
  const json::Value* execute = nullptr;
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    EXPECT_EQ(e.StringOr("ph", ""), "X");
    EXPECT_GE(e.NumberOr("ts", -1), 0.0);
    EXPECT_GE(e.NumberOr("dur", -1), 0.0);
    const std::string name = e.StringOr("name", "");
    if (name == "request") request = &e;
    if (name == "execute") execute = &e;
  }
  ASSERT_NE(request, nullptr);
  ASSERT_NE(execute, nullptr);
  const double req_ts = request->NumberOr("ts", 0);
  const double req_end = req_ts + request->NumberOr("dur", 0);
  const double exec_ts = execute->NumberOr("ts", 0);
  const double exec_end = exec_ts + execute->NumberOr("dur", 0);
  constexpr double kSlackUs = 1.0;  // Double round-trip through the text.
  EXPECT_GE(exec_ts, req_ts - kSlackUs);
  EXPECT_LE(exec_end, req_end + kSlackUs);
}

TEST(TraceExportRoundTripTest, SlowQueryJsonlParsesPerLine) {
  SlowQueryRecord with_cpu;
  with_cpu.trace_id = 7;
  with_cpu.workload = "serving-mix";
  with_cpu.query = "regression";
  with_cpu.latency_s = 0.050;
  with_cpu.stages[RequestStage::kQueue] = 0.010;
  with_cpu.stages[RequestStage::kExecute] = 0.030;
  with_cpu.stages.Cpu(RequestStage::kExecute) = 0.025;
  with_cpu.alloc_delta_bytes = 4096;
  with_cpu.deadline_missed = true;

  SlowQueryRecord without_cpu;
  without_cpu.trace_id = 8;
  without_cpu.workload = "serving-mix";
  without_cpu.query = "svd";
  without_cpu.stages[RequestStage::kExecute] = 0.020;
  without_cpu.slowest = true;  // alloc_delta_bytes stays -1 (unknown).

  const std::string jsonl = SlowQueryJsonl({with_cpu, without_cpu});
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i < jsonl.size(); ++i) {
    if (jsonl[i] == '\n') {
      lines.push_back(jsonl.substr(start, i - start));
      start = i + 1;
    }
  }
  ASSERT_EQ(lines.size(), 2u);

  auto first = json::Parse(lines[0]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const json::Value rec = std::move(first).ValueOrDie();
  const json::Value* stages = rec.Find("stages_s");
  ASSERT_NE(stages, nullptr);
  EXPECT_NEAR(stages->NumberOr("execute", 0), 0.030, 1e-9);
  const json::Value* cpu = rec.Find("stages_cpu_s");
  ASSERT_NE(cpu, nullptr);
  EXPECT_NEAR(cpu->NumberOr("execute", 0), 0.025, 1e-9);
  const json::Value* alloc = rec.Find("alloc_delta_bytes");
  ASSERT_NE(alloc, nullptr);
  EXPECT_TRUE(alloc->is_number());
  EXPECT_EQ(alloc->number, 4096.0);

  auto second = json::Parse(lines[1]);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const json::Value rec2 = std::move(second).ValueOrDie();
  // No CPU attribution recorded -> the object is absent entirely, and the
  // unknown alloc delta round-trips as null, not -1.
  EXPECT_EQ(rec2.Find("stages_cpu_s"), nullptr);
  const json::Value* alloc2 = rec2.Find("alloc_delta_bytes");
  ASSERT_NE(alloc2, nullptr);
  EXPECT_TRUE(alloc2->is_null());
}

// --- folded stacks -----------------------------------------------------------

Span MakeSpan(uint64_t span_id, uint64_t parent_id, const char* name,
              double start_s, double dur_s) {
  Span s;
  s.trace_id = 0x1;
  s.span_id = span_id;
  s.parent_id = parent_id;
  s.name = name;
  s.start_s = start_s;
  s.dur_s = dur_s;
  return s;
}

TEST(FoldedStacksTest, SelfTimeExcludesChildren) {
  const std::vector<Span> spans = {
      MakeSpan(1, 0, "request", 0.0, 0.001000),
      MakeSpan(2, 1, "execute", 0.0002, 0.000600),
      MakeSpan(3, 2, "analytics", 0.0003, 0.000400),
  };
  const std::string folded = FoldedStacks(spans);
  EXPECT_NE(folded.find("request 400\n"), std::string::npos);
  EXPECT_NE(folded.find("request;execute 200\n"), std::string::npos);
  EXPECT_NE(folded.find("request;execute;analytics 400\n"),
            std::string::npos);
  // Self times reconstruct the root total exactly: 400+200+400 = 1000us.
}

TEST(FoldedStacksTest, MissingParentStartsNewRoot) {
  const std::vector<Span> spans = {
      MakeSpan(9, 77, "orphan", 0.0, 0.000100),
  };
  const std::string folded = FoldedStacks(spans);
  EXPECT_EQ(folded, "orphan 100\n");
}

TEST(FoldedStacksTest, ZeroSelfTimeOmitted) {
  // The parent is fully covered by its child: zero self time, no line.
  const std::vector<Span> spans = {
      MakeSpan(1, 0, "wrapper", 0.0, 0.000500),
      MakeSpan(2, 1, "work", 0.0, 0.000500),
  };
  const std::string folded = FoldedStacks(spans);
  EXPECT_EQ(folded.find("wrapper "), std::string::npos);
  EXPECT_NE(folded.find("wrapper;work 500\n"), std::string::npos);
}

TEST(FoldedStacksTest, EmptyInputEmptyOutput) {
  EXPECT_EQ(FoldedStacks({}), "");
}

}  // namespace
}  // namespace genbase::obs
