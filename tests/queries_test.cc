#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/generator.h"
#include "core/queries.h"
#include "core/reference.h"
#include "engine/engine_util.h"
#include "linalg/blas.h"

namespace genbase::core {
namespace {

// --- RegressionAnalytics ---------------------------------------------------------

TEST(RegressionAnalyticsTest, PerfectFit) {
  const int64_t m = 40;
  linalg::Matrix design(m, 3);  // [1 | x1 | x2].
  std::vector<double> y(m);
  Rng rng(1);
  for (int64_t i = 0; i < m; ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = rng.Gaussian();
    design(i, 2) = rng.Gaussian();
    y[i] = 2.0 + 3.0 * design(i, 1) - design(i, 2);
  }
  auto s = RegressionAnalytics(std::move(design), y, nullptr);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->predictors, 2);
  EXPECT_EQ(s->rows, m);
  EXPECT_NEAR(s->r_squared, 1.0, 1e-10);
  ASSERT_EQ(s->coef_head.size(), 3u);
  EXPECT_NEAR(s->coef_head[0], 2.0, 1e-9);
  EXPECT_NEAR(s->coef_head[1], 3.0, 1e-9);
  EXPECT_NEAR(s->coef_head[2], -1.0, 1e-9);
}

TEST(RegressionAnalyticsTest, PureNoiseHasLowR2) {
  const int64_t m = 200;
  linalg::Matrix design(m, 4);
  std::vector<double> y(m);
  Rng rng(2);
  for (int64_t i = 0; i < m; ++i) {
    design(i, 0) = 1.0;
    for (int j = 1; j < 4; ++j) design(i, j) = rng.Gaussian();
    y[i] = rng.Gaussian();
  }
  auto s = RegressionAnalytics(std::move(design), y, nullptr);
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s->r_squared, 0.15);
  EXPECT_GE(s->r_squared, 0.0);
}

TEST(RegressionAnalyticsTest, MismatchedRhsRejected) {
  auto s = RegressionAnalytics(linalg::Matrix(5, 2), {1.0, 2.0}, nullptr);
  EXPECT_FALSE(s.ok());
}

// --- CovarianceThresholdJoin -------------------------------------------------------

GeneMetaLookup ConstantMeta(int64_t function, int64_t length) {
  return [function, length](int64_t, int64_t* f, int64_t* l) {
    *f = function;
    *l = length;
    return genbase::Status::OK();
  };
}

TEST(CovarianceThresholdJoinTest, KnownTinyMatrix) {
  // 3x3 covariance with distinct off-diagonal values 1, 2, 3.
  linalg::Matrix cov(3, 3);
  cov(0, 1) = cov(1, 0) = 1.0;
  cov(0, 2) = cov(2, 0) = 2.0;
  cov(1, 2) = cov(2, 1) = 3.0;
  const std::vector<int64_t> ids = {10, 20, 30};
  // Quantile 0.5 over {1,2,3} -> threshold 2; one pair strictly above.
  auto s = CovarianceThresholdJoin(cov, 7, ids, ConstantMeta(5, 100), 0.5,
                                   nullptr);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->samples, 7);
  EXPECT_EQ(s->genes, 3);
  EXPECT_DOUBLE_EQ(s->threshold, 2.0);
  EXPECT_EQ(s->pairs_above, 1);
  EXPECT_DOUBLE_EQ(s->cov_checksum, 3.0);
  // meta checksum: (5 + 5) + 1e-3 * (100 + 100).
  EXPECT_NEAR(s->meta_checksum, 10.0 + 0.2, 1e-12);
}

TEST(CovarianceThresholdJoinTest, MetaLookupFailurePropagates) {
  // Threshold (q=0) lands on the smallest pair value; the larger pair
  // qualifies and triggers the (failing) metadata lookup.
  linalg::Matrix cov(3, 3);
  cov(0, 1) = cov(1, 0) = 1.0;
  cov(0, 2) = cov(2, 0) = 1.0;
  cov(1, 2) = cov(2, 1) = 5.0;
  auto meta = [](int64_t, int64_t*, int64_t*) {
    return genbase::Status::NotFound("gone");
  };
  auto s = CovarianceThresholdJoin(cov, 3, {1, 2, 3}, meta, 0.0, nullptr);
  EXPECT_FALSE(s.ok());
}

TEST(CovarianceThresholdJoinTest, GeneIdMismatchInAnalytics) {
  linalg::Matrix x(5, 3);
  auto s = CovarianceAnalytics(linalg::MatrixView(x), {1, 2},  // Wrong size.
                               ConstantMeta(0, 0), 0.9,
                               linalg::KernelQuality::kTuned, nullptr);
  EXPECT_FALSE(s.ok());
}

// --- SvdAnalytics --------------------------------------------------------------------

TEST(SvdAnalyticsTest, RankClampedToColumns) {
  Rng rng(3);
  linalg::Matrix x(20, 6);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  auto s = SvdAnalytics(linalg::MatrixView(x), 50,
                        linalg::KernelQuality::kTuned, nullptr);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->rank, 6);
  EXPECT_EQ(s->singular_values.size(), 6u);
  EXPECT_GT(s->iterations, 0);
}

// --- StatsAnalytics ------------------------------------------------------------------

TEST(StatsAnalyticsTest, SkipsDegenerateTerms) {
  const std::vector<double> scores = {1, 2, 3, 4, 5};
  std::vector<std::vector<int64_t>> memberships = {
      {},                 // Empty: skipped.
      {0, 1, 2, 3, 4},    // Everything: skipped.
      {3, 4},             // Valid.
  };
  auto s = StatsAnalytics(scores, memberships, 0.05, nullptr);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->terms_tested, 1);
  EXPECT_EQ(s->genes_ranked, 5);
}

TEST(StatsAnalyticsTest, PlantedEnrichmentDetected) {
  // 200 genes; term members are exactly the top-20 scorers.
  std::vector<double> scores(200);
  Rng rng(4);
  for (auto& s : scores) s = rng.Gaussian();
  std::vector<int64_t> order(200);
  for (int i = 0; i < 200; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) { return scores[a] > scores[b]; });
  std::vector<std::vector<int64_t>> memberships(1);
  for (int i = 0; i < 20; ++i) memberships[0].push_back(order[i]);
  auto s = StatsAnalytics(scores, memberships, 0.01, nullptr);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->significant_terms, 1);
}

// --- resource-failure injection through the real query pipelines -----------------------

TEST(ResourceInjectionTest, TinyMemoryBudgetFailsReferenceQuery) {
  auto data = GenerateDataset(DatasetSize::kSmall, 0.01);
  ASSERT_TRUE(data.ok());
  MemoryTracker tiny(4096, "tiny");
  ExecContext ctx;
  ctx.set_memory(&tiny);
  QueryParams params;
  auto result = RunReferenceQuery(QueryId::kRegression, *data, params, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

TEST(ResourceInjectionTest, ExpiredDeadlineFailsReferenceQuery) {
  auto data = GenerateDataset(DatasetSize::kSmall, 0.01);
  ASSERT_TRUE(data.ok());
  ExecContext ctx;
  ctx.SetDeadlineAfter(-1.0);
  QueryParams params;
  params.svd_rank = 4;
  auto result = RunReferenceQuery(QueryId::kSvd, *data, params, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST(ResourceInjectionTest, CsvGlueChargesTransientMemory) {
  // The CSV text reservation (~20 bytes/cell) must be charged and released.
  linalg::Matrix m(50, 50);
  MemoryTracker tracker(MemoryTracker::kUnlimited);
  ExecContext ctx;
  ctx.set_memory(&tracker);
  auto out = engine::CsvRoundTripMatrix(linalg::MatrixView(m), &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(tracker.peak(), 50 * 50 * 20);
  EXPECT_EQ(tracker.used(), out->bytes());
}

TEST(ResourceInjectionTest, CsvGlueRespectsBudget) {
  linalg::Matrix m(100, 100);
  MemoryTracker tracker(10'000);  // Too small for the CSV text.
  ExecContext ctx;
  ctx.set_memory(&tracker);
  auto out = engine::CsvRoundTripMatrix(linalg::MatrixView(m), &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsOutOfMemory());
}

// --- QueryResult::ToString ---------------------------------------------------------------

TEST(QueryResultTest, ToStringCoversAllKinds) {
  for (QueryId q : kAllQueries) {
    QueryResult r;
    r.query = q;
    EXPECT_FALSE(r.ToString().empty());
    EXPECT_NE(r.ToString().find('{'), std::string::npos);
  }
}

}  // namespace
}  // namespace genbase::core
