#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "common/check.h"
#include "core/generator.h"
#include "core/verify.h"
#include "engine/engines.h"
#include "serving/admission.h"
#include "serving/result_cache.h"
#include "serving/serving_stack.h"
#include "workload/runner.h"

namespace genbase::serving {
namespace {

constexpr double kTinyScale = 0.008;  // 40 genes x 40 patients for small.

const core::GenBaseData& TinyData() {
  static const core::GenBaseData* data = [] {
    auto r = core::GenerateDataset(core::DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new core::GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

core::QueryParams TinyParams() {
  core::QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

core::DriverOptions TinyOptions() {
  core::DriverOptions options;
  options.timeout_seconds = 30.0;
  options.params = TinyParams();
  return options;
}

// --- params fingerprint -----------------------------------------------------

TEST(FingerprintTest, EqualParamsShareAFingerprint) {
  core::QueryParams a, b;
  EXPECT_EQ(FingerprintParams(a), FingerprintParams(b));
}

TEST(FingerprintTest, EveryFieldChangesTheFingerprint) {
  const core::QueryParams base;
  const uint64_t h = FingerprintParams(base);
  core::QueryParams p = base;
  p.function_threshold += 1;
  EXPECT_NE(FingerprintParams(p), h);
  p = base;
  p.disease_id += 1;
  EXPECT_NE(FingerprintParams(p), h);
  p = base;
  p.covariance_quantile += 1e-9;
  EXPECT_NE(FingerprintParams(p), h);
  p = base;
  p.svd_rank += 1;
  EXPECT_NE(FingerprintParams(p), h);
  p = base;
  p.sample_fraction *= 2;
  EXPECT_NE(FingerprintParams(p), h);
}

TEST(FingerprintTest, EveryWorkloadVariantIsADistinctCacheKey) {
  // The contract behind hit-ratio sweeps: V variants => V distinct keys per
  // query, even past the period of the visible perturbations.
  const core::QueryParams base;
  std::set<uint64_t> fingerprints;
  for (int v = 0; v < 64; ++v) {
    fingerprints.insert(FingerprintParams(workload::VariantParams(base, v)));
  }
  EXPECT_EQ(fingerprints.size(), 64u);
}

// --- result cache -----------------------------------------------------------

core::QueryResult SvdResultWithValues(int n, double scale) {
  core::QueryResult r;
  r.query = core::QueryId::kSvd;
  for (int i = 0; i < n; ++i) {
    r.svd.singular_values.push_back(scale * (n - i));
  }
  return r;
}

CacheKey KeyWithFingerprint(uint64_t fp) {
  return CacheKey{core::QueryId::kSvd, fp, core::DatasetSize::kSmall};
}

TEST(ResultCacheTest, HitRefreshesRecencyAndEvictionIsLru) {
  ResultCache cache(/*max_entries=*/2, /*max_bytes=*/1 << 20);
  core::QueryResult out;
  EXPECT_FALSE(cache.Lookup(KeyWithFingerprint(1), &out));  // Miss.
  cache.Insert(KeyWithFingerprint(1), SvdResultWithValues(3, 1.0));
  cache.Insert(KeyWithFingerprint(2), SvdResultWithValues(3, 2.0));
  // Touch key 1 so key 2 is now the LRU entry.
  EXPECT_TRUE(cache.Lookup(KeyWithFingerprint(1), &out));
  EXPECT_DOUBLE_EQ(out.svd.singular_values[0], 3.0);
  cache.Insert(KeyWithFingerprint(3), SvdResultWithValues(3, 3.0));
  EXPECT_FALSE(cache.Lookup(KeyWithFingerprint(2), &out));  // Evicted.
  EXPECT_TRUE(cache.Lookup(KeyWithFingerprint(1), &out));
  EXPECT_TRUE(cache.Lookup(KeyWithFingerprint(3), &out));
  EXPECT_DOUBLE_EQ(out.svd.singular_values[0], 9.0);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_NEAR(stats.hit_ratio(), 3.0 / 5.0, 1e-12);
}

TEST(ResultCacheTest, ByteBoundEvictsAndTracksBytes) {
  const int64_t one = ApproxResultBytes(SvdResultWithValues(64, 1.0));
  ResultCache cache(/*max_entries=*/16, /*max_bytes=*/one + one / 2);
  cache.Insert(KeyWithFingerprint(1), SvdResultWithValues(64, 1.0));
  EXPECT_EQ(cache.stats().bytes, one);
  cache.Insert(KeyWithFingerprint(2), SvdResultWithValues(64, 2.0));
  // Both do not fit; the older entry is evicted.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.bytes, one);
  core::QueryResult out;
  EXPECT_FALSE(cache.Lookup(KeyWithFingerprint(1), &out));
  EXPECT_TRUE(cache.Lookup(KeyWithFingerprint(2), &out));
}

TEST(ResultCacheTest, OversizedValueIsNotCached) {
  ResultCache cache(/*max_entries=*/4, /*max_bytes=*/64);
  cache.Insert(KeyWithFingerprint(1), SvdResultWithValues(64, 1.0));
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().insertions, 0);
}

// --- admission controller ---------------------------------------------------

TEST(AdmissionTest, DisabledControllerAdmitsEverything) {
  AdmissionController ac(AdmissionOptions{});
  EXPECT_FALSE(ac.enabled());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  }
}

TEST(AdmissionTest, FullQueueShedsOnArrival) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;
  AdmissionController ac(options);
  EXPECT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  // Slot busy and no queue slots: immediate shed, no blocking.
  EXPECT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kShedQueueFull);
  ac.Release();
  EXPECT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  ac.Release();
  const AdmissionStats stats = ac.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.shed_queue_full, 1);
  EXPECT_EQ(stats.shed_timeout, 0);
}

TEST(AdmissionTest, QueuedOpShedsAtItsStartDeadline) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  options.max_queue_delay_s = 1.0;  // Policy enabled; deadline passed in.
  AdmissionController ac(options);
  ASSERT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  double waited = 0;
  const auto outcome = ac.Admit(
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30),
      &waited);
  EXPECT_EQ(outcome, AdmissionOutcome::kShedTimeout);
  EXPECT_GE(waited, 0.02);
  ac.Release();
  EXPECT_EQ(ac.stats().shed_timeout, 1);
}

TEST(AdmissionTest, WaiterIsAdmittedWhenSlotFrees) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  AdmissionController ac(options);
  ASSERT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  AdmissionOutcome waiter_outcome = AdmissionOutcome::kShedTimeout;
  double waited = 0;
  std::thread waiter([&] {
    waiter_outcome = ac.Admit(std::nullopt, &waited);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ac.Release();
  waiter.join();
  EXPECT_EQ(waiter_outcome, AdmissionOutcome::kAdmitted);
  EXPECT_GE(waited, 0.01);
  ac.Release();
  const AdmissionStats stats = ac.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.shed(), 0);
  EXPECT_GE(stats.peak_queue, 1);
}

TEST(AdmissionTest, StaleArrivalShedsWithoutQueueing) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  options.max_queue_delay_s = 0.01;
  AdmissionController ac(options);
  ASSERT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  // Deadline already in the past (client dispatched the op late): shed
  // immediately rather than occupying a queue slot.
  EXPECT_EQ(ac.Admit(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(5)),
            AdmissionOutcome::kShedTimeout);
  ac.Release();
}

// --- serving stack ----------------------------------------------------------

ServingOptions CacheOnlyOptions(int shards) {
  ServingOptions options;
  options.shards = shards;
  options.cache_enabled = true;
  return options;
}

TEST(ServingStackTest, CacheHitReturnsTheIdenticalResult) {
  auto stack = ServingStack::Create(CacheOnlyOptions(1),
                                    engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  ExecContext ctx;
  const auto first = (*stack)->Serve(core::QueryId::kRegression,
                                     core::DatasetSize::kSmall, TinyOptions(),
                                     &ctx);
  ASSERT_FALSE(first.shed);
  ASSERT_TRUE(first.cell.status.ok()) << first.cell.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.shard, 0);

  const auto second = (*stack)->Serve(core::QueryId::kRegression,
                                      core::DatasetSize::kSmall,
                                      TinyOptions(), &ctx);
  ASSERT_FALSE(second.shed);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.shard, -1);
  EXPECT_TRUE(core::CompareQueryResults(first.cell.result,
                                        second.cell.result).ok());
  // A hit is not free: it pays the modeled network round trip.
  EXPECT_GT(second.cell.total_s, 0.0);
  EXPECT_GT(second.cell.modeled_s, 0.0);

  const ServingCounters counters = (*stack)->counters();
  EXPECT_EQ(counters.cache.hits, 1);
  EXPECT_EQ(counters.cache.misses, 1);
  ASSERT_EQ(counters.shards.size(), 1u);
  EXPECT_EQ(counters.shards[0].ops, 1);
}

TEST(ServingStackTest, DistinctParamsAreDistinctCacheKeys) {
  auto stack = ServingStack::Create(CacheOnlyOptions(1),
                                    engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());
  ExecContext ctx;
  core::DriverOptions a = TinyOptions();
  core::DriverOptions b = TinyOptions();
  b.params.function_threshold -= 16;
  (void)(*stack)->Serve(core::QueryId::kRegression,
                        core::DatasetSize::kSmall, a, &ctx);
  const auto r = (*stack)->Serve(core::QueryId::kRegression,
                                 core::DatasetSize::kSmall, b, &ctx);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ((*stack)->counters().cache.misses, 2);
}

workload::WorkloadSpec SmokeSpec() {
  workload::WorkloadSpec spec;
  spec.name = "serving-smoke";
  spec.params = TinyParams();
  spec.size = core::DatasetSize::kSmall;
  spec.clients = 4;
  spec.warmup_ops = 4;
  spec.measured_ops = 24;
  spec.seed = 99;
  spec.verify = true;
  return spec;
}

TEST(ServingStackTest, ShardedRunMatchesSingleInstanceResults) {
  // The merge step combines per-shard statistics, never partial results:
  // a 4-shard run must serve the identical deterministic schedule with the
  // identical per-op results (every op reference-verified) as 1 shard.
  std::map<int, workload::WorkloadReport> reports;
  for (int shards : {1, 4}) {
    ServingOptions options;
    options.shards = shards;
    options.cache_enabled = false;  // Force every op through a shard.
    auto stack = ServingStack::Create(options, engine::CreateColumnStoreUdf,
                                      TinyData());
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    workload::WorkloadRunner runner(SmokeSpec());
    auto report = runner.Run(stack->get(), TinyData());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    reports[shards] = std::move(report).ValueOrDie();
  }
  for (auto& [shards, report] : reports) {
    EXPECT_EQ(report.total.ops, 24) << shards;
    EXPECT_EQ(report.total.errors, 0) << shards;
    EXPECT_EQ(report.total.verify_failures, 0) << shards;
    EXPECT_EQ(report.total.shed(), 0) << shards;
    EXPECT_EQ(report.shards, shards);
    EXPECT_TRUE(report.has_serving);
  }
  // Identical schedule => identical per-query op counts.
  ASSERT_EQ(reports[1].per_query.size(), reports[4].per_query.size());
  for (const auto& [query, stats] : reports[1].per_query) {
    ASSERT_TRUE(reports[4].per_query.count(query));
    EXPECT_EQ(stats.ops, reports[4].per_query.at(query).ops);
  }
  // The 4-shard run spread ops over shards, and the merge accounts for all.
  int64_t shard_ops = 0;
  for (const auto& s : reports[4].serving.shards) shard_ops += s.ops;
  EXPECT_EQ(shard_ops, 24);
  EXPECT_GT(reports[4].serving.shards.size(), 1u);
}

TEST(ServingStackTest, CachedWorkloadRunVerifiesAndCountsHits) {
  ServingOptions options = CacheOnlyOptions(2);
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());
  workload::WorkloadSpec spec = SmokeSpec();
  spec.param_variants = 3;
  workload::WorkloadRunner runner(spec);
  auto report = runner.Run(stack->get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Cached results pass the same reference verification as executed ones.
  EXPECT_EQ(report->total.verify_failures, 0);
  EXPECT_EQ(report->total.errors, 0);
  EXPECT_EQ(report->total.ops, 24);
  // Every measured op probed the cache; repeats beyond the <= 5*3 distinct
  // keys must hit.
  EXPECT_EQ(report->serving.cache.hits + report->serving.cache.misses, 24);
  EXPECT_GT(report->serving.cache.hits, 0);
}

TEST(ServingStackTest, OverloadShedsAndAccountsSeparately) {
  ServingOptions options;
  options.shards = 1;
  options.cache_enabled = false;  // Hits would bypass admission.
  options.admission.max_inflight = 1;
  // Zero queue slots plus a 0.1ms start budget: any op arriving while the
  // slot is busy sheds queue-full, and any op dispatched behind its
  // scheduled arrival by more than the budget is stale and sheds outright.
  // The whole schedule arrives within ~32us while each biclustering op
  // takes hundreds of microseconds, so ops past the first dispatch wave
  // are guaranteed stale — shedding does not depend on thread timing.
  options.admission.max_queue = 0;
  options.admission.max_queue_delay_s = 1e-4;
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());

  workload::WorkloadSpec spec = SmokeSpec();
  spec.mix = {{core::QueryId::kBiclustering, 1.0}};
  spec.model = workload::ClientModel::kOpenLoopUniform;
  spec.arrival_rate_qps = 1e6;  // Entire schedule arrives within ~32us.
  spec.clients = 8;
  spec.measured_ops = 32;
  spec.warmup_ops = 0;
  spec.verify = false;
  workload::WorkloadRunner runner(spec);
  auto report = runner.Run(stack->get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Every scheduled op is accounted exactly once: served or shed.
  EXPECT_EQ(report->total.ops, 32);
  EXPECT_GT(report->total.shed(), 0);
  const int64_t served = report->served_ops();
  EXPECT_EQ(served + report->total.shed(), 32);
  // Latency histograms hold served successes only.
  EXPECT_EQ(report->total.latency.count(),
            served - report->total.errors - report->total.infs);
  EXPECT_EQ(report->total.queue_delay.count(),
            report->total.latency.count());
  // Stack-level and runner-level shed accounting agree.
  EXPECT_EQ(report->serving.admission.shed(), report->total.shed());
  EXPECT_EQ(report->has_serving, true);
}

}  // namespace
}  // namespace genbase::serving
