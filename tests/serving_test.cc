#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/generator.h"
#include "core/verify.h"
#include "engine/engines.h"
#include "serving/admission.h"
#include "serving/faults.h"
#include "serving/result_cache.h"
#include "serving/shard_router.h"
#include "serving/serving_stack.h"
#include "workload/runner.h"

namespace genbase::serving {
namespace {

constexpr double kTinyScale = 0.008;  // 40 genes x 40 patients for small.

const core::GenBaseData& TinyData() {
  static const core::GenBaseData* data = [] {
    auto r = core::GenerateDataset(core::DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new core::GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

core::QueryParams TinyParams() {
  core::QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

core::DriverOptions TinyOptions() {
  core::DriverOptions options;
  options.timeout_seconds = 30.0;
  options.params = TinyParams();
  return options;
}

// --- params fingerprint -----------------------------------------------------

TEST(FingerprintTest, EqualParamsShareAFingerprint) {
  core::QueryParams a, b;
  EXPECT_EQ(FingerprintParams(a), FingerprintParams(b));
}

TEST(FingerprintTest, EveryFieldChangesTheFingerprint) {
  const core::QueryParams base;
  const uint64_t h = FingerprintParams(base);
  core::QueryParams p = base;
  p.function_threshold += 1;
  EXPECT_NE(FingerprintParams(p), h);
  p = base;
  p.disease_id += 1;
  EXPECT_NE(FingerprintParams(p), h);
  p = base;
  p.covariance_quantile += 1e-9;
  EXPECT_NE(FingerprintParams(p), h);
  p = base;
  p.svd_rank += 1;
  EXPECT_NE(FingerprintParams(p), h);
  p = base;
  p.sample_fraction *= 2;
  EXPECT_NE(FingerprintParams(p), h);
}

TEST(FingerprintTest, EveryWorkloadVariantIsADistinctCacheKey) {
  // The contract behind hit-ratio sweeps: V variants => V distinct keys per
  // query, even past the period of the visible perturbations.
  const core::QueryParams base;
  std::set<uint64_t> fingerprints;
  for (int v = 0; v < 64; ++v) {
    fingerprints.insert(FingerprintParams(workload::VariantParams(base, v)));
  }
  EXPECT_EQ(fingerprints.size(), 64u);
}

// --- result cache -----------------------------------------------------------

core::QueryResult SvdResultWithValues(int n, double scale) {
  core::QueryResult r;
  r.query = core::QueryId::kSvd;
  for (int i = 0; i < n; ++i) {
    r.svd.singular_values.push_back(scale * (n - i));
  }
  return r;
}

CacheKey KeyWithFingerprint(uint64_t fp) {
  return CacheKey{core::QueryId::kSvd, fp, core::DatasetSize::kSmall};
}

TEST(ResultCacheTest, HitRefreshesRecencyAndEvictionIsLru) {
  ResultCache cache(/*max_entries=*/2, /*max_bytes=*/1 << 20);
  core::QueryResult out;
  EXPECT_FALSE(cache.Lookup(KeyWithFingerprint(1), &out));  // Miss.
  cache.Insert(KeyWithFingerprint(1), SvdResultWithValues(3, 1.0));
  cache.Insert(KeyWithFingerprint(2), SvdResultWithValues(3, 2.0));
  // Touch key 1 so key 2 is now the LRU entry.
  EXPECT_TRUE(cache.Lookup(KeyWithFingerprint(1), &out));
  EXPECT_DOUBLE_EQ(out.svd.singular_values[0], 3.0);
  cache.Insert(KeyWithFingerprint(3), SvdResultWithValues(3, 3.0));
  EXPECT_FALSE(cache.Lookup(KeyWithFingerprint(2), &out));  // Evicted.
  EXPECT_TRUE(cache.Lookup(KeyWithFingerprint(1), &out));
  EXPECT_TRUE(cache.Lookup(KeyWithFingerprint(3), &out));
  EXPECT_DOUBLE_EQ(out.svd.singular_values[0], 9.0);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_NEAR(stats.hit_ratio(), 3.0 / 5.0, 1e-12);
}

TEST(ResultCacheTest, ByteBoundEvictsAndTracksBytes) {
  const int64_t one = ApproxResultBytes(SvdResultWithValues(64, 1.0));
  ResultCache cache(/*max_entries=*/16, /*max_bytes=*/one + one / 2);
  cache.Insert(KeyWithFingerprint(1), SvdResultWithValues(64, 1.0));
  EXPECT_EQ(cache.stats().bytes, one);
  cache.Insert(KeyWithFingerprint(2), SvdResultWithValues(64, 2.0));
  // Both do not fit; the older entry is evicted.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.bytes, one);
  core::QueryResult out;
  EXPECT_FALSE(cache.Lookup(KeyWithFingerprint(1), &out));
  EXPECT_TRUE(cache.Lookup(KeyWithFingerprint(2), &out));
}

TEST(ResultCacheTest, OversizedValueIsCountedAsRejected) {
  ResultCache cache(/*max_entries=*/4, /*max_bytes=*/64);
  cache.Insert(KeyWithFingerprint(1), SvdResultWithValues(64, 1.0));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.rejected_oversize, 1);
}

CacheKey KeyWithEpoch(uint64_t fp, uint64_t epoch) {
  CacheKey key = KeyWithFingerprint(fp);
  key.epoch = epoch;
  return key;
}

TEST(ResultCacheTest, EpochIsPartOfTheKey) {
  ResultCache cache(/*max_entries=*/8, /*max_bytes=*/1 << 20);
  cache.Insert(KeyWithEpoch(1, 1), SvdResultWithValues(3, 1.0));
  core::QueryResult out;
  // Same (query, fingerprint, size), later epoch: a distinct key — the
  // post-reload lookup cannot resolve pre-reload entries.
  EXPECT_FALSE(cache.Lookup(KeyWithEpoch(1, 2), &out));
  uint64_t entry_epoch = 0;
  EXPECT_TRUE(cache.Lookup(KeyWithEpoch(1, 1), &out, &entry_epoch));
  EXPECT_EQ(entry_epoch, 1u);
}

TEST(ResultCacheTest, InvalidateEpochsBelowRemovesExactlyOldEpochs) {
  ResultCache cache(/*max_entries=*/16, /*max_bytes=*/1 << 20);
  cache.Insert(KeyWithEpoch(1, 1), SvdResultWithValues(3, 1.0));
  cache.Insert(KeyWithEpoch(2, 1), SvdResultWithValues(3, 2.0));
  cache.Insert(KeyWithEpoch(3, 2), SvdResultWithValues(3, 3.0));
  EXPECT_EQ(cache.InvalidateEpochsBelow(2), 2);
  core::QueryResult out;
  EXPECT_FALSE(cache.Lookup(KeyWithEpoch(1, 1), &out));
  EXPECT_FALSE(cache.Lookup(KeyWithEpoch(2, 1), &out));
  EXPECT_TRUE(cache.Lookup(KeyWithEpoch(3, 2), &out));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidated, 2);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.entries, 1);
  // The removal accounting reconciles.
  EXPECT_EQ(stats.entries,
            stats.insertions - stats.evictions - stats.invalidated);
}

TEST(ResultCacheTest, ClearCountsRemovedEntriesAsInvalidated) {
  ResultCache cache(/*max_entries=*/16, /*max_bytes=*/1 << 20);
  cache.Insert(KeyWithFingerprint(1), SvdResultWithValues(3, 1.0));
  cache.Insert(KeyWithFingerprint(2), SvdResultWithValues(3, 2.0));
  cache.Clear();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.invalidated, 2);
  EXPECT_EQ(stats.entries,
            stats.insertions - stats.evictions - stats.invalidated);
}

// --- admission controller ---------------------------------------------------

TEST(AdmissionTest, DisabledControllerAdmitsEverything) {
  AdmissionController ac(AdmissionOptions{});
  EXPECT_FALSE(ac.enabled());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  }
}

TEST(AdmissionTest, FullQueueShedsOnArrival) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;
  AdmissionController ac(options);
  EXPECT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  // Slot busy and no queue slots: immediate shed, no blocking.
  EXPECT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kShedQueueFull);
  ac.Release();
  EXPECT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  ac.Release();
  const AdmissionStats stats = ac.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.shed_queue_full, 1);
  EXPECT_EQ(stats.shed_timeout, 0);
}

TEST(AdmissionTest, QueuedOpShedsAtItsStartDeadline) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  options.max_queue_delay_s = 1.0;  // Policy enabled; deadline passed in.
  AdmissionController ac(options);
  ASSERT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  double waited = 0;
  const auto outcome = ac.Admit(
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30),
      &waited);
  EXPECT_EQ(outcome, AdmissionOutcome::kShedTimeout);
  EXPECT_GE(waited, 0.02);
  ac.Release();
  EXPECT_EQ(ac.stats().shed_timeout, 1);
}

TEST(AdmissionTest, WaiterIsAdmittedWhenSlotFrees) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  AdmissionController ac(options);
  ASSERT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  AdmissionOutcome waiter_outcome = AdmissionOutcome::kShedTimeout;
  double waited = 0;
  std::thread waiter([&] {
    waiter_outcome = ac.Admit(std::nullopt, &waited);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ac.Release();
  waiter.join();
  EXPECT_EQ(waiter_outcome, AdmissionOutcome::kAdmitted);
  EXPECT_GE(waited, 0.01);
  ac.Release();
  const AdmissionStats stats = ac.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.shed(), 0);
  EXPECT_GE(stats.peak_queue, 1);
}

TEST(AdmissionTest, StaleArrivalShedsWithoutQueueing) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  options.max_queue_delay_s = 0.01;
  AdmissionController ac(options);
  ASSERT_EQ(ac.Admit(std::nullopt), AdmissionOutcome::kAdmitted);
  // Deadline already in the past (client dispatched the op late): shed
  // immediately rather than occupying a queue slot.
  EXPECT_EQ(ac.Admit(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(5)),
            AdmissionOutcome::kShedTimeout);
  ac.Release();
}

// --- serving stack ----------------------------------------------------------

ServingOptions CacheOnlyOptions(int shards) {
  ServingOptions options;
  options.shards = shards;
  options.cache_enabled = true;
  return options;
}

TEST(ServingStackTest, CacheHitReturnsTheIdenticalResult) {
  auto stack = ServingStack::Create(CacheOnlyOptions(1),
                                    engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  ExecContext ctx;
  const auto first = (*stack)->Serve(core::QueryId::kRegression,
                                     core::DatasetSize::kSmall, TinyOptions(),
                                     &ctx);
  ASSERT_FALSE(first.shed);
  ASSERT_TRUE(first.cell.status.ok()) << first.cell.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.shard, 0);

  const auto second = (*stack)->Serve(core::QueryId::kRegression,
                                      core::DatasetSize::kSmall,
                                      TinyOptions(), &ctx);
  ASSERT_FALSE(second.shed);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.shard, -1);
  EXPECT_TRUE(core::CompareQueryResults(first.cell.result,
                                        second.cell.result).ok());
  // A hit is not free: it pays the modeled network round trip.
  EXPECT_GT(second.cell.total_s, 0.0);
  EXPECT_GT(second.cell.modeled_s, 0.0);

  const ServingCounters counters = (*stack)->counters();
  EXPECT_EQ(counters.cache.hits, 1);
  EXPECT_EQ(counters.cache.misses, 1);
  ASSERT_EQ(counters.shards.size(), 1u);
  EXPECT_EQ(counters.shards[0].ops, 1);
}

TEST(ServingStackTest, DistinctParamsAreDistinctCacheKeys) {
  auto stack = ServingStack::Create(CacheOnlyOptions(1),
                                    engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());
  ExecContext ctx;
  core::DriverOptions a = TinyOptions();
  core::DriverOptions b = TinyOptions();
  b.params.function_threshold -= 16;
  (void)(*stack)->Serve(core::QueryId::kRegression,
                        core::DatasetSize::kSmall, a, &ctx);
  const auto r = (*stack)->Serve(core::QueryId::kRegression,
                                 core::DatasetSize::kSmall, b, &ctx);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ((*stack)->counters().cache.misses, 2);
}

workload::WorkloadSpec SmokeSpec() {
  workload::WorkloadSpec spec;
  spec.name = "serving-smoke";
  spec.params = TinyParams();
  spec.size = core::DatasetSize::kSmall;
  spec.clients = 4;
  spec.warmup_ops = 4;
  spec.measured_ops = 24;
  spec.seed = 99;
  spec.verify = true;
  return spec;
}

TEST(ServingStackTest, ShardedRunMatchesSingleInstanceResults) {
  // The merge step combines per-shard statistics, never partial results:
  // a 4-shard run must serve the identical deterministic schedule with the
  // identical per-op results (every op reference-verified) as 1 shard.
  std::map<int, workload::WorkloadReport> reports;
  for (int shards : {1, 4}) {
    ServingOptions options;
    options.shards = shards;
    options.cache_enabled = false;  // Force every op through a shard.
    auto stack = ServingStack::Create(options, engine::CreateColumnStoreUdf,
                                      TinyData());
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    workload::WorkloadRunner runner(SmokeSpec());
    auto report = runner.Run(stack->get(), TinyData());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    reports[shards] = std::move(report).ValueOrDie();
  }
  for (auto& [shards, report] : reports) {
    EXPECT_EQ(report.total.ops, 24) << shards;
    EXPECT_EQ(report.total.errors, 0) << shards;
    EXPECT_EQ(report.total.verify_failures, 0) << shards;
    EXPECT_EQ(report.total.shed(), 0) << shards;
    EXPECT_EQ(report.shards, shards);
    EXPECT_TRUE(report.has_serving);
  }
  // Identical schedule => identical per-query op counts.
  ASSERT_EQ(reports[1].per_query.size(), reports[4].per_query.size());
  for (const auto& [query, stats] : reports[1].per_query) {
    ASSERT_TRUE(reports[4].per_query.count(query));
    EXPECT_EQ(stats.ops, reports[4].per_query.at(query).ops);
  }
  // The 4-shard run spread ops over shards, and the merge accounts for all.
  int64_t shard_ops = 0;
  for (const auto& s : reports[4].serving.shards) shard_ops += s.ops;
  EXPECT_EQ(shard_ops, 24);
  EXPECT_GT(reports[4].serving.shards.size(), 1u);
}

TEST(ServingStackTest, CachedWorkloadRunVerifiesAndCountsHits) {
  ServingOptions options = CacheOnlyOptions(2);
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());
  workload::WorkloadSpec spec = SmokeSpec();
  spec.param_variants = 3;
  workload::WorkloadRunner runner(spec);
  auto report = runner.Run(stack->get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Cached results pass the same reference verification as executed ones.
  EXPECT_EQ(report->total.verify_failures, 0);
  EXPECT_EQ(report->total.errors, 0);
  EXPECT_EQ(report->total.ops, 24);
  // Every measured op probed the cache; repeats beyond the <= 5*3 distinct
  // keys must hit.
  EXPECT_EQ(report->serving.cache.hits + report->serving.cache.misses, 24);
  EXPECT_GT(report->serving.cache.hits, 0);
}

TEST(ServingStackTest, OverloadShedsAndAccountsSeparately) {
  ServingOptions options;
  options.shards = 1;
  options.cache_enabled = false;  // Hits would bypass admission.
  options.admission.max_inflight = 1;
  // Zero queue slots plus a 0.1ms start budget: any op arriving while the
  // slot is busy sheds queue-full, and any op dispatched behind its
  // scheduled arrival by more than the budget is stale and sheds outright.
  // The whole schedule arrives within ~32us while each biclustering op
  // takes hundreds of microseconds, so ops past the first dispatch wave
  // are guaranteed stale — shedding does not depend on thread timing.
  options.admission.max_queue = 0;
  options.admission.max_queue_delay_s = 1e-4;
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());

  workload::WorkloadSpec spec = SmokeSpec();
  spec.mix = {{core::QueryId::kBiclustering, 1.0}};
  spec.model = workload::ClientModel::kOpenLoopUniform;
  spec.arrival_rate_qps = 1e6;  // Entire schedule arrives within ~32us.
  spec.clients = 8;
  spec.measured_ops = 32;
  spec.warmup_ops = 0;
  spec.verify = false;
  workload::WorkloadRunner runner(spec);
  auto report = runner.Run(stack->get(), TinyData());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Every scheduled op is accounted exactly once: served or shed.
  EXPECT_EQ(report->total.ops, 32);
  EXPECT_GT(report->total.shed(), 0);
  const int64_t served = report->served_ops();
  EXPECT_EQ(served + report->total.shed(), 32);
  // Latency histograms hold served successes only.
  EXPECT_EQ(report->total.latency.count(),
            served - report->total.errors - report->total.infs);
  EXPECT_EQ(report->total.queue_delay.count(),
            report->total.latency.count());
  // Stack-level and runner-level shed accounting agree.
  EXPECT_EQ(report->serving.admission.shed(), report->total.shed());
  EXPECT_EQ(report->has_serving, true);
}

// --- single flight ----------------------------------------------------------

TEST(SingleFlightTest, FirstJoinLeadsFollowersAreServed) {
  SingleFlightTable table;
  const CacheKey key = KeyWithFingerprint(7);
  std::shared_ptr<SingleFlightTable::Flight> leader_flight;
  ASSERT_EQ(table.Join(key, &leader_flight),
            SingleFlightTable::Role::kLeader);
  std::shared_ptr<SingleFlightTable::Flight> follower_flight;
  ASSERT_EQ(table.Join(key, &follower_flight),
            SingleFlightTable::Role::kFollower);
  ASSERT_EQ(leader_flight, follower_flight);
  EXPECT_EQ(table.open_flights(), 1);

  core::QueryResult served;
  std::thread follower([&] {
    ASSERT_EQ(SingleFlightTable::Wait(follower_flight.get(), std::nullopt,
                                      &served),
              SingleFlightTable::WaitResult::kServed);
  });
  table.Publish(key, leader_flight, /*ok=*/true, SvdResultWithValues(3, 2.0));
  follower.join();
  EXPECT_DOUBLE_EQ(served.svd.singular_values[0], 6.0);
  // The flight closed: the next miss on the key opens a fresh one.
  EXPECT_EQ(table.open_flights(), 0);
  std::shared_ptr<SingleFlightTable::Flight> next;
  EXPECT_EQ(table.Join(key, &next), SingleFlightTable::Role::kLeader);
  table.Publish(key, next, /*ok=*/false, core::QueryResult{});
}

TEST(SingleFlightTest, FailedLeaderAndDeadlineAreDistinguished) {
  SingleFlightTable table;
  const CacheKey key = KeyWithFingerprint(8);
  std::shared_ptr<SingleFlightTable::Flight> flight;
  ASSERT_EQ(table.Join(key, &flight), SingleFlightTable::Role::kLeader);

  // Deadline passes before any publish.
  EXPECT_EQ(SingleFlightTable::Wait(
                flight.get(),
                std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(10),
                nullptr),
            SingleFlightTable::WaitResult::kTimeout);

  table.Publish(key, flight, /*ok=*/false, core::QueryResult{});
  EXPECT_EQ(SingleFlightTable::Wait(flight.get(), std::nullopt, nullptr),
            SingleFlightTable::WaitResult::kLeaderFailed);
}

TEST(ServingStackTest, ConcurrentMissesOnOneKeyRunOneCompute) {
  ServingOptions options = CacheOnlyOptions(2);
  options.single_flight = true;
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<ServeResult> results(kThreads);
  std::vector<ExecContext> ctxs(kThreads);
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Barrier so the misses are genuinely concurrent.
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      results[static_cast<size_t>(t)] =
          (*stack)->Serve(core::QueryId::kSvd, core::DatasetSize::kSmall,
                          TinyOptions(), &ctxs[static_cast<size_t>(t)]);
    });
  }
  for (auto& thread : threads) thread.join();

  // However the threads interleaved (leader + followers, or stragglers that
  // hit the already-populated cache), the engines ran the query exactly
  // once, and every caller got that one correct result.
  const ServingCounters counters = (*stack)->counters();
  int64_t executed = 0;
  for (const auto& shard : counters.shards) executed += shard.ops;
  EXPECT_EQ(executed, 1);
  // Usually exactly one flight; a straggler that misses, then joins after
  // the publish, opens a second flight but is answered by the leader's
  // double-check peek — never by a second execution (asserted above).
  EXPECT_GE(counters.flight.leaders, 1);
  EXPECT_EQ(counters.flight.coalesced, counters.flight.coalesced_served);
  for (const auto& result : results) {
    ASSERT_FALSE(result.shed);
    ASSERT_TRUE(result.cell.status.ok()) << result.cell.status.ToString();
    EXPECT_TRUE(core::CompareQueryResults(results[0].cell.result,
                                          result.cell.result).ok());
  }
  EXPECT_EQ(counters.stale_hits, 0);
}

// --- adaptive admission -----------------------------------------------------

TEST(AdaptiveAdmissionTest, NextLimitConvergesOnBimodalServiceMix) {
  AdmissionOptions options;
  options.adaptive = true;
  options.target_queue_delay_s = 0.05;
  options.min_inflight = 1;
  options.max_inflight_cap = 32;

  // Synthetic bimodal mix: 80% lookups at 1ms, 20% biclustering at 96ms —
  // completion-weighted mean service 20ms. The backlog a limit produces is
  // modeled as the unserved share of a demand of 12 concurrent ops (more
  // slots, shorter queue). Iterating the controller's own step function
  // from both extremes must settle in the band around the Little's-law
  // fixed point limit = ceil(queue(limit) * 0.020 / 0.050):
  // queue(l) = 2*(12-l), so l* solves l = 0.8*(12-l) -> l* ~ 5.3.
  const double mean_service = 0.020;
  const auto queue_for_limit = [](int limit) {
    return 2.0 * std::max(0, 12 - limit);
  };
  for (int start : {1, 32}) {
    int limit = start;
    for (int i = 0; i < 64; ++i) {
      limit = AdaptiveNextLimit(options, limit, mean_service,
                                queue_for_limit(limit));
    }
    EXPECT_GE(limit, 4) << "from " << start;
    EXPECT_LE(limit, 7) << "from " << start;
  }
  // Degenerate inputs stay clamped: unknown service times hold the limit,
  // an empty queue decays to min, a huge backlog saturates at the cap.
  EXPECT_EQ(AdaptiveNextLimit(options, 5, 0.0, 100.0), 5);
  int idle = 32;
  for (int i = 0; i < 64; ++i) {
    idle = AdaptiveNextLimit(options, idle, mean_service, 0.0);
  }
  EXPECT_EQ(idle, 1);
  int slammed = 1;
  for (int i = 0; i < 64; ++i) {
    slammed = AdaptiveNextLimit(options, slammed, 1.0, 1000.0);
  }
  EXPECT_EQ(slammed, 32);
}

TEST(AdaptiveAdmissionTest, ShedPressureUnpinsAFastServiceLimit) {
  // Services much faster than the target delay: the Little's-law term
  // alone wants limit 1 forever (the adaptive queue bound caps the
  // observable backlog at 2 x limit, so `needed` never exceeds the
  // current limit), while queue-full sheds rage on. Shed pressure must
  // climb the limit until demand fits; without it the loop below pins at
  // the minimum.
  AdmissionOptions options;
  options.adaptive = true;
  options.target_queue_delay_s = 0.05;
  options.min_inflight = 1;
  options.max_inflight_cap = 64;
  const double mean_service = 0.001;  // 1ms ops, target 50ms.
  const int demand = 12;
  int limit = 1;
  for (int i = 0; i < 64; ++i) {
    const double queue = std::min(2 * limit, std::max(0, demand - limit));
    const int64_t sheds = std::max(0, demand - limit - 2 * limit);
    limit = AdaptiveNextLimit(options, limit, mean_service, queue, sheds);
  }
  // Sheds stop once limit + 2*limit >= demand (limit 4); the delay term
  // then pulls back toward 1 and shed pressure pushes up again — the
  // orbit must stay off the pinned minimum and inside a sane band.
  EXPECT_GE(limit, 3);
  EXPECT_LE(limit, 6);
}

TEST(AdaptiveAdmissionTest, HeavyClassIsLearnedFromServiceTimes) {
  AdmissionOptions options;
  options.adaptive = true;
  options.min_inflight = 4;
  options.heavy_service_factor = 4.0;
  AdmissionController ac(options);
  ASSERT_TRUE(ac.enabled());

  constexpr int kCheap = 1;
  constexpr int kHeavy = 3;
  // Teach the model: cheap ops at ~1ms, heavy at ~50ms.
  for (int i = 0; i < 5; ++i) {
    bool heavy = false;
    ASSERT_EQ(ac.Admit(std::nullopt, nullptr, kCheap, &heavy),
              AdmissionOutcome::kAdmitted);
    ac.Release(kCheap, 0.001, heavy);
    ASSERT_EQ(ac.Admit(std::nullopt, nullptr, kHeavy, &heavy),
              AdmissionOutcome::kAdmitted);
    ac.Release(kHeavy, 0.050, heavy);
  }
  EXPECT_FALSE(ac.IsHeavyClass(kCheap));
  EXPECT_TRUE(ac.IsHeavyClass(kHeavy));
  EXPECT_NEAR(ac.ClassServiceEwma(kCheap), 0.001, 1e-9);
  EXPECT_NEAR(ac.ClassServiceEwma(kHeavy), 0.050, 1e-9);
}

TEST(AdaptiveAdmissionTest, CheapOpsAreNotShedBehindHeavyOnes) {
  AdmissionOptions options;
  options.adaptive = true;
  options.min_inflight = 4;       // Limit stays 4 (no adjustments yet).
  options.heavy_share = 0.5;      // Heavy ops may hold 2 of the 4 slots.
  options.adjust_interval = 1000; // Keep the limit fixed for the test.
  AdmissionController ac(options);

  constexpr int kCheap = 1;
  constexpr int kHeavy = 3;
  for (int i = 0; i < 5; ++i) {
    bool heavy = false;
    ASSERT_EQ(ac.Admit(std::nullopt, nullptr, kCheap, &heavy),
              AdmissionOutcome::kAdmitted);
    ac.Release(kCheap, 0.001, heavy);
    ASSERT_EQ(ac.Admit(std::nullopt, nullptr, kHeavy, &heavy),
              AdmissionOutcome::kAdmitted);
    ac.Release(kHeavy, 0.050, heavy);
  }

  // Saturate the heavy share: two heavy ops occupy their slot cap.
  bool h1 = false, h2 = false;
  ASSERT_EQ(ac.Admit(std::nullopt, nullptr, kHeavy, &h1),
            AdmissionOutcome::kAdmitted);
  ASSERT_EQ(ac.Admit(std::nullopt, nullptr, kHeavy, &h2),
            AdmissionOutcome::kAdmitted);
  EXPECT_TRUE(h1);
  EXPECT_TRUE(h2);
  // A third heavy op cannot start (share exhausted) and sheds at its start
  // deadline even though two general slots are free...
  double waited = 0;
  EXPECT_EQ(ac.Admit(std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(20),
                     &waited, kHeavy),
            AdmissionOutcome::kShedTimeout);
  // ...while a cheap op walks straight into one of those free slots — the
  // biclustering burst cannot starve the lookups.
  bool cheap_heavy = true;
  EXPECT_EQ(ac.Admit(std::nullopt, nullptr, kCheap, &cheap_heavy),
            AdmissionOutcome::kAdmitted);
  EXPECT_FALSE(cheap_heavy);
  ac.Release(kCheap, 0.001, cheap_heavy);
  ac.Release(kHeavy, 0.050, h1);
  ac.Release(kHeavy, 0.050, h2);
  EXPECT_EQ(ac.stats().shed_timeout, 1);
}

// --- counters delta ---------------------------------------------------------

TEST(CountersDeltaTest, MismatchedShardVectorLengthsAreHandled) {
  ServingCounters now;
  now.shards.resize(4);
  for (size_t s = 0; s < 4; ++s) {
    now.shards[s].ops = 10 + static_cast<int64_t>(s);
  }
  now.cache.hits = 7;
  now.flight.coalesced = 3;
  now.stale_hits = 0;
  now.reloads = 2;
  now.admission.shed_by_class = {{1, 5}, {2, 3}};

  ServingCounters since;
  since.shards.resize(2);  // e.g. counters captured before a resize.
  since.shards[0].ops = 4;
  since.shards[1].ops = 5;
  since.cache.hits = 2;
  since.flight.coalesced = 1;
  since.reloads = 1;
  since.admission.shed_by_class = {{1, 2}};

  const ServingCounters d = CountersDelta(now, since);
  ASSERT_EQ(d.shards.size(), 4u);
  EXPECT_EQ(d.shards[0].ops, 6);   // 10 - 4.
  EXPECT_EQ(d.shards[1].ops, 6);   // 11 - 5.
  EXPECT_EQ(d.shards[2].ops, 12);  // No baseline: cumulative value kept.
  EXPECT_EQ(d.shards[3].ops, 13);
  EXPECT_EQ(d.cache.hits, 5);
  EXPECT_EQ(d.flight.coalesced, 2);
  EXPECT_EQ(d.reloads, 1);
  // Per-class shed counts subtract per key; classes with no baseline keep
  // their cumulative value.
  EXPECT_EQ(d.admission.shed_by_class.at(1), 3);
  EXPECT_EQ(d.admission.shed_by_class.at(2), 3);

  // The reverse shape (baseline longer than current) must not read past
  // the shorter vector either.
  const ServingCounters r = CountersDelta(since, now);
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_EQ(r.shards[0].ops, -6);
}

// --- reload / epochs through the stack --------------------------------------

TEST(ServingStackTest, ReloadInvalidatesCacheAndAdvancesEpoch) {
  auto stack = ServingStack::Create(CacheOnlyOptions(2),
                                    engine::CreateColumnStoreUdf, TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  ExecContext ctx;
  const uint64_t epoch_before = (*stack)->current_epoch();
  const auto first = (*stack)->Serve(core::QueryId::kRegression,
                                     core::DatasetSize::kSmall, TinyOptions(),
                                     &ctx);
  ASSERT_TRUE(first.cell.status.ok()) << first.cell.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  ASSERT_TRUE((*stack)->ReloadDataset(TinyData()).ok());
  EXPECT_GT((*stack)->current_epoch(), epoch_before);

  // Identical op after the reload: the old entry is unreachable (new epoch
  // in the key), so this recomputes — and the result still matches, because
  // the reloaded data is the same.
  const auto second = (*stack)->Serve(core::QueryId::kRegression,
                                      core::DatasetSize::kSmall,
                                      TinyOptions(), &ctx);
  EXPECT_FALSE(second.cache_hit);
  ASSERT_TRUE(second.cell.status.ok());
  EXPECT_TRUE(core::CompareQueryResults(first.cell.result,
                                        second.cell.result).ok());
  // And a third serve hits the new-epoch entry.
  const auto third = (*stack)->Serve(core::QueryId::kRegression,
                                     core::DatasetSize::kSmall, TinyOptions(),
                                     &ctx);
  EXPECT_TRUE(third.cache_hit);

  const ServingCounters counters = (*stack)->counters();
  EXPECT_EQ(counters.reloads, 1);
  EXPECT_EQ(counters.cache.invalidated, 1);
  EXPECT_EQ(counters.stale_hits, 0);
  EXPECT_EQ(counters.cache.entries, counters.cache.insertions -
                                        counters.cache.evictions -
                                        counters.cache.invalidated);
}

/// Wraps a real engine but fails DoLoadDataset while the shared failure
/// budget is positive — for driving mid-roll reload failures.
class FailingLoadEngine : public core::Engine {
 public:
  static std::atomic<int>& fail_next_loads() {
    static std::atomic<int> count{0};
    return count;
  }

  FailingLoadEngine() : inner_(engine::CreateSciDb()) {}
  std::string name() const override { return inner_->name(); }
  bool SupportsQuery(core::QueryId query) const override {
    return inner_->SupportsQuery(query);
  }
  void PrepareContext(ExecContext* ctx) override {
    inner_->PrepareContext(ctx);
  }
  genbase::Result<core::QueryResult> RunQuery(
      core::QueryId query, const core::QueryParams& params,
      ExecContext* ctx) override {
    return inner_->RunQuery(query, params, ctx);
  }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override {
    int budget = fail_next_loads().load();
    while (budget > 0 &&
           !fail_next_loads().compare_exchange_weak(budget, budget - 1)) {
    }
    if (budget > 0) return genbase::Status::Internal("injected load failure");
    return inner_->LoadDataset(data);
  }
  void DoUnloadDataset() override { inner_->UnloadDataset(); }

 private:
  std::unique_ptr<core::Engine> inner_;
};

TEST(ServingStackTest, FailedReloadHealsOnRetry) {
  FailingLoadEngine::fail_next_loads() = 0;
  auto stack = ServingStack::Create(
      CacheOnlyOptions(2), [] { return std::make_unique<FailingLoadEngine>(); },
      TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  const uint64_t epoch0 = (*stack)->current_epoch();

  // Mid-roll failure: the first shard's reload fails, the roll aborts, and
  // the stack must NOT advance its epoch (the fleet still serves — and
  // caches under — the old generation).
  FailingLoadEngine::fail_next_loads() = 1;
  EXPECT_FALSE((*stack)->ReloadDataset(TinyData()).ok());
  EXPECT_EQ((*stack)->current_epoch(), epoch0);

  // The retry targets the same generation again, so the fleet converges
  // instead of drifting — and crucially, post-retry results are cacheable:
  // a serve executes once and its repeat hits.
  ASSERT_TRUE((*stack)->ReloadDataset(TinyData()).ok());
  EXPECT_EQ((*stack)->current_epoch(), epoch0 + 1);
  ExecContext ctx;
  const auto first = (*stack)->Serve(core::QueryId::kRegression,
                                     core::DatasetSize::kSmall, TinyOptions(),
                                     &ctx);
  ASSERT_TRUE(first.cell.status.ok()) << first.cell.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  const auto second = (*stack)->Serve(core::QueryId::kRegression,
                                      core::DatasetSize::kSmall,
                                      TinyOptions(), &ctx);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ((*stack)->counters().stale_hits, 0);
}

TEST(ServingStackTest, ReloadWhileServingStaysCorrect) {
  ServingOptions options = CacheOnlyOptions(2);
  options.single_flight = true;
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());

  workload::WorkloadSpec spec = SmokeSpec();
  spec.param_variants = 2;
  spec.measured_ops = 32;
  workload::WorkloadRunner runner(spec);

  std::atomic<bool> stop{false};
  std::thread churn;
  runner.set_on_measure_start([&] {
    ASSERT_TRUE((*stack)->ReloadDataset(TinyData()).ok());
    churn = std::thread([&] {
      while (!stop.load()) {
        ASSERT_TRUE((*stack)->ReloadDataset(TinyData()).ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  });
  auto report = runner.Run(stack->get(), TinyData());
  stop.store(true);
  if (churn.joinable()) churn.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Under continuous rolling reloads: every op still verified correct,
  // no epoch-mismatched serve, and the measured delta saw the churn.
  EXPECT_EQ(report->total.errors, 0);
  EXPECT_EQ(report->total.verify_failures, 0);
  EXPECT_EQ(report->total.shed(), 0);
  EXPECT_EQ(report->serving.stale_hits, 0);
  EXPECT_GE(report->serving.reloads, 1);
}

// --- fault scripts and retry policy -----------------------------------------

TEST(FaultScriptTest, ParsesSeedPhasesWindowsAndComments) {
  auto script = FaultScript::Parse(
      "# fleet chaos drill\n"
      "seed 42\n"
      "@3 crash 1\n"
      "phase fault\n"
      "@0..40 error * 0.25  # any shard\n"
      "@10..20 latency 2 0.004\n"
      "@5 reload-fail 0\n"
      "phase healed\n"
      "@0 recover 1\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->seed, 42u);
  ASSERT_EQ(script->phases.size(), 3u);
  EXPECT_EQ(script->phases[0].name, "main");
  ASSERT_EQ(script->phases[0].actions.size(), 1u);
  EXPECT_EQ(script->phases[0].actions[0].kind, FaultKind::kCrash);
  EXPECT_EQ(script->phases[0].actions[0].shard, 1);
  EXPECT_EQ(script->phases[0].actions[0].at_op, 3u);
  EXPECT_EQ(script->phases[0].actions[0].until_op, 0u);  // Point action.
  EXPECT_EQ(script->phases[1].name, "fault");
  ASSERT_EQ(script->phases[1].actions.size(), 3u);
  const FaultAction& error = script->phases[1].actions[0];
  EXPECT_EQ(error.kind, FaultKind::kTransientError);
  EXPECT_EQ(error.shard, -1);  // '*' = any shard.
  EXPECT_EQ(error.at_op, 0u);
  EXPECT_EQ(error.until_op, 40u);
  EXPECT_DOUBLE_EQ(error.param, 0.25);
  const FaultAction& spike = script->phases[1].actions[1];
  EXPECT_EQ(spike.kind, FaultKind::kLatencySpike);
  EXPECT_EQ(spike.shard, 2);
  EXPECT_DOUBLE_EQ(spike.param, 0.004);
  EXPECT_EQ(script->phases[2].name, "healed");
  ASSERT_EQ(script->phases[2].actions.size(), 1u);
  EXPECT_EQ(script->phases[2].actions[0].kind, FaultKind::kRecover);
}

TEST(FaultScriptTest, KeepsEmptyLeadingAndConsecutivePhases) {
  // The fig9 recovery shape: a deliberately fault-free 'pre' phase opens
  // the script. Only the implicit empty "main" preamble may be dropped —
  // every named phase survives, even with no actions, or every phase label
  // after it misaligns by one run.
  auto script = FaultScript::Parse(
      "seed 902\n"
      "phase pre\n"
      "phase fault\n@0 crash 1\n"
      "phase healed\n@0 recover 1\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->phases.size(), 3u);
  EXPECT_EQ(script->phases[0].name, "pre");
  EXPECT_TRUE(script->phases[0].actions.empty());
  EXPECT_EQ(script->phases[1].name, "fault");
  ASSERT_EQ(script->phases[1].actions.size(), 1u);
  EXPECT_EQ(script->phases[1].actions[0].kind, FaultKind::kCrash);
  EXPECT_EQ(script->phases[2].name, "healed");
  ASSERT_EQ(script->phases[2].actions.size(), 1u);
  EXPECT_EQ(script->phases[2].actions[0].kind, FaultKind::kRecover);

  // Consecutive and trailing empty phases are all kept too.
  auto gaps = FaultScript::Parse(
      "@1 crash 0\nphase a\nphase b\n@2 recover 0\nphase c\n");
  ASSERT_TRUE(gaps.ok()) << gaps.status().ToString();
  ASSERT_EQ(gaps->phases.size(), 4u);
  EXPECT_EQ(gaps->phases[0].name, "main");  // Preamble with actions stays.
  EXPECT_EQ(gaps->phases[1].name, "a");
  EXPECT_TRUE(gaps->phases[1].actions.empty());
  EXPECT_EQ(gaps->phases[2].name, "b");
  EXPECT_EQ(gaps->phases[3].name, "c");
  EXPECT_TRUE(gaps->phases[3].actions.empty());

  // An empty script still parses to a single (disabled) "main" phase.
  auto empty = FaultScript::Parse("# nothing\n");
  ASSERT_TRUE(empty.ok());
  ASSERT_EQ(empty->phases.size(), 1u);
  EXPECT_EQ(empty->phases[0].name, "main");
}

TEST(FaultScriptTest, RejectsMalformedLines) {
  for (const char* bad : {
           "seed x",                // Non-numeric seed.
           "@5 crash",              // Missing shard.
           "@5..9 crash 1",         // Point action with a window.
           "@5 error * 0.5",        // Window action without a window.
           "@0..9 error * 1.5",     // Probability out of [0, 1].
           "@0..9 latency * 0.01",  // Latency needs a concrete shard.
           "@0..9 frobnicate 1 2",  // Unknown kind.
           "crash 1",               // Missing @op.
       }) {
    EXPECT_FALSE(FaultScript::Parse(bad).ok()) << bad;
  }
}

TEST(RetryPolicyTest, BackoffIsDeterministicJitteredAndCapped) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_s = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 0.010;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    // Pure in (seed, op, attempt): identical across calls and runs.
    const double backoff = RetryBackoffSeconds(policy, 7, 13, attempt);
    EXPECT_EQ(backoff, RetryBackoffSeconds(policy, 7, 13, attempt));
    // Exponential base, capped, with jitter in [0.5, 1.0] x the base.
    double base = policy.initial_backoff_s;
    for (int i = 1; i < attempt && base < policy.max_backoff_s; ++i) {
      base *= policy.backoff_multiplier;
    }
    base = std::min(base, policy.max_backoff_s);
    EXPECT_GE(backoff, 0.5 * base) << attempt;
    EXPECT_LE(backoff, base) << attempt;
  }
  // A pathological attempt count cannot overflow past the cap.
  EXPECT_LE(RetryBackoffSeconds(policy, 7, 13, 1 << 30),
            policy.max_backoff_s);
  // Jitter decorrelates ops: one attempt number drawn across many ops
  // spreads instead of thundering in lockstep.
  std::set<double> draws;
  for (uint64_t op = 0; op < 16; ++op) {
    draws.insert(RetryBackoffSeconds(policy, 7, op, 3));
  }
  EXPECT_GT(draws.size(), 8u);
}

TEST(RetryPolicyTest, ScheduleRetryHonorsAttemptAndDeadlineBudgets) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  double backoff = -1.0;
  // Attempt budget: after attempt 4 of 4 there is no retry left.
  EXPECT_FALSE(ScheduleRetry(policy, 1, 1, 4, 1e9, &backoff));
  // Within budget: grants exactly the deterministic backoff.
  ASSERT_TRUE(ScheduleRetry(policy, 1, 1, 1, 1e9, &backoff));
  EXPECT_EQ(backoff, RetryBackoffSeconds(policy, 1, 1, 1));
  // Deadline budget: a backoff that does not fit is refused outright, so
  // the caller gives up instead of sleeping past the deadline.
  EXPECT_FALSE(ScheduleRetry(policy, 1, 1, 1, backoff / 2, &backoff));
  // Property: for any (seed, op), the sum of granted backoffs never
  // exceeds the starting budget — total retry wall-time is bounded by the
  // request deadline by construction.
  policy.max_attempts = 64;
  for (uint64_t seed : {0u, 7u, 99u}) {
    for (uint64_t op = 1; op <= 32; ++op) {
      const double budget = 0.004;
      double remaining = budget;
      double total = 0.0;
      double step = 0.0;
      int attempt = 1;
      while (ScheduleRetry(policy, seed, op, attempt, remaining, &step)) {
        total += step;
        remaining -= step;
        ++attempt;
      }
      EXPECT_LE(total, budget + 1e-12) << "seed " << seed << " op " << op;
    }
  }
}

// --- fault injector ----------------------------------------------------------

TEST(FaultInjectorTest, AppliesScheduleOnOpTicksAndPersistsCrashAcrossPhases) {
  auto script = FaultScript::Parse(
      "seed 5\n"
      "@2 crash 1\n"
      "@4..6 latency 0 0.004\n"
      "phase second\n"
      "@1 recover 1\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());
  FaultInjector& faults = **injector;
  EXPECT_TRUE(faults.enabled());

  EXPECT_EQ(faults.OnServe(), 1u);
  EXPECT_FALSE(faults.ShardCrashed(1));
  EXPECT_EQ(faults.OnServe(), 2u);  // The crash applies exactly at its op.
  EXPECT_TRUE(faults.ShardCrashed(1));
  EXPECT_FALSE(faults.ShardCrashed(0));
  EXPECT_DOUBLE_EQ(faults.ShardLatencySeconds(0), 0.0);
  faults.OnServe();  // 3.
  faults.OnServe();  // 4: the latency window [4, 6) opens.
  EXPECT_DOUBLE_EQ(faults.ShardLatencySeconds(0), 0.004);
  faults.OnServe();  // 5: still inside.
  EXPECT_DOUBLE_EQ(faults.ShardLatencySeconds(0), 0.004);
  faults.OnServe();  // 6: exclusive end — the spike is gone.
  EXPECT_DOUBLE_EQ(faults.ShardLatencySeconds(0), 0.0);

  // Phase boundary: windows die with their phase, crash state persists,
  // and op indices restart (the recover scheduled at phase-local op 1
  // fires on the next tick, not at global op 7).
  ASSERT_TRUE(faults.AdvancePhase());
  EXPECT_TRUE(faults.ShardCrashed(1));
  EXPECT_EQ(faults.OnServe(), 1u);
  EXPECT_FALSE(faults.ShardCrashed(1));
  EXPECT_FALSE(faults.AdvancePhase());  // No third phase.

  EXPECT_EQ(faults.injected(FaultKind::kCrash), 1);
  EXPECT_EQ(faults.injected(FaultKind::kRecover), 1);
  EXPECT_EQ(faults.injected(FaultKind::kLatencySpike), 1);
  EXPECT_EQ(faults.injected_total(), 3);
}

TEST(FaultInjectorTest, TransientDrawsAndEventLogAreDeterministic) {
  auto script = FaultScript::Parse("seed 11\n@0..1000 error * 0.5\n");
  ASSERT_TRUE(script.ok());
  auto replay_a = FaultInjector::Create(*script);
  auto replay_b = FaultInjector::Create(*script);
  ASSERT_TRUE(replay_a.ok() && replay_b.ok());
  (*replay_a)->OnServe();  // Activates the window in both replicas.
  (*replay_b)->OnServe();
  int fired = 0;
  bool attempts_differ = false;
  for (uint64_t op = 1; op <= 64; ++op) {
    const bool first = (*replay_a)->DrawTransientError(0, op, 1);
    const bool second = (*replay_a)->DrawTransientError(0, op, 2);
    // The replay draws identically, call for call.
    EXPECT_EQ((*replay_b)->DrawTransientError(0, op, 1), first) << op;
    EXPECT_EQ((*replay_b)->DrawTransientError(0, op, 2), second) << op;
    fired += (first ? 1 : 0) + (second ? 1 : 0);
    attempts_differ |= first != second;
  }
  // p=0.5 over 128 draws sits comfortably between "never" and "always" —
  // and the draws are deterministic, so these bounds can never flake.
  EXPECT_GT(fired, 32);
  EXPECT_LT(fired, 96);
  // The attempt number salts the draw: a faulted op is not doomed to fail
  // every retry the same way.
  EXPECT_TRUE(attempts_differ);
  // Identical call sequences leave byte-identical event logs.
  EXPECT_FALSE((*replay_a)->EventLog().empty());
  EXPECT_EQ((*replay_a)->EventLog(), (*replay_b)->EventLog());
  EXPECT_EQ((*replay_a)->injected(FaultKind::kTransientError),
            (*replay_b)->injected(FaultKind::kTransientError));
}

TEST(FaultInjectorTest, ReloadFailureArmsAtItsOpAndIsConsumedOnce) {
  auto script = FaultScript::Parse("seed 1\n@1 reload-fail 0\n");
  ASSERT_TRUE(script.ok());
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());
  FaultInjector& faults = **injector;
  // Not armed until the scheduled op ticks.
  EXPECT_FALSE(faults.ConsumeReloadFailure(0));
  faults.OnServe();
  EXPECT_FALSE(faults.ConsumeReloadFailure(1));  // Wrong shard.
  EXPECT_TRUE(faults.ConsumeReloadFailure(0));
  EXPECT_FALSE(faults.ConsumeReloadFailure(0));  // Already consumed.
  EXPECT_EQ(faults.injected(FaultKind::kReloadFailure), 1);
}

// --- failure-aware routing and the circuit breaker ---------------------------

TEST(ShardRouterTest, CrashedShardIsRoutedAroundUntilRecovery) {
  auto script = FaultScript::Parse("seed 9\n@1 crash 0\n@5 recover 0\n");
  ASSERT_TRUE(script.ok());
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());
  auto router = ShardRouter::Create(2, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  (*router)->SetFaultInjector(injector->get());
  ExecContext ctx;

  (*injector)->OnServe();  // Op 1: shard 0 goes down.
  for (uint64_t op = 2; op <= 4; ++op) {
    (*injector)->OnServe();
    const int s = (*router)->AcquireShard();
    EXPECT_EQ(s, 1) << op;  // JSQ would tie to shard 0; down skips it.
    const auto cell = (*router)->RunOnShard(
        s, core::QueryId::kStatistics, core::DatasetSize::kSmall,
        TinyOptions(), &ctx, nullptr, op, 1);
    EXPECT_TRUE(cell.status.ok()) << cell.status.ToString();
  }
  EXPECT_EQ((*router)->capacity_fraction(), 0.5);
  const auto stats = (*router)->stats();
  EXPECT_EQ(stats[0].health, ShardHealth::kDown);
  EXPECT_EQ(stats[0].ops, 0);
  EXPECT_EQ(stats[1].ops, 3);

  (*injector)->OnServe();  // Op 5: recover.
  const int healed = (*router)->AcquireShard();
  EXPECT_EQ(healed, 0);  // Ties go to the lowest id again.
  const auto cell = (*router)->RunOnShard(
      healed, core::QueryId::kStatistics, core::DatasetSize::kSmall,
      TinyOptions(), &ctx, nullptr, 5, 1);
  EXPECT_TRUE(cell.status.ok());
  EXPECT_EQ((*router)->capacity_fraction(), 1.0);
}

TEST(ShardRouterTest, AllShardsDownFailsFastInsteadOfHanging) {
  auto script = FaultScript::Parse("seed 9\n@1 crash 0\n@1 crash 1\n");
  ASSERT_TRUE(script.ok());
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());
  auto router = ShardRouter::Create(2, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(router.ok());
  (*router)->SetFaultInjector(injector->get());
  ExecContext ctx;

  (*injector)->OnServe();  // Both shards down.
  const int s = (*router)->AcquireShard();  // Least-loaded down shard.
  const auto cell = (*router)->RunOnShard(
      s, core::QueryId::kStatistics, core::DatasetSize::kSmall, TinyOptions(),
      &ctx, nullptr, 1, 1);
  // Fails fast with an error instead of touching the engine or blocking —
  // the caller's retry budget stays spendable on a recovery.
  EXPECT_FALSE(cell.status.ok());
  EXPECT_EQ((*router)->capacity_fraction(), 0.0);
  EXPECT_EQ((*router)->stats()[static_cast<size_t>(s)].errors, 1);
  EXPECT_EQ((*injector)->injected(FaultKind::kCrash), 2);
}

TEST(ShardRouterTest, BreakerOpensGoesHalfOpenAndClosesOnSuccess) {
  // Phase 'err' makes every execute on shard 0 fail; phase 'clean' clears
  // the window so the half-open probe can succeed.
  auto script = FaultScript::Parse(
      "seed 3\nphase err\n@0..100000 error 0 1\nphase clean\n");
  ASSERT_TRUE(script.ok());
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());
  auto router = ShardRouter::Create(2, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(router.ok());
  (*router)->SetFaultInjector(injector->get());
  ExecContext ctx;

  // Three consecutive injected errors on shard 0 open its breaker.
  for (int i = 0; i < ShardRouter::kBreakerErrorThreshold; ++i) {
    const uint64_t op = (*injector)->OnServe();
    const int s = (*router)->AcquireShard(/*exclude=*/1);
    ASSERT_EQ(s, 0);
    const auto cell = (*router)->RunOnShard(
        s, core::QueryId::kStatistics, core::DatasetSize::kSmall,
        TinyOptions(), &ctx, nullptr, op, 1);
    EXPECT_FALSE(cell.status.ok());
  }
  const auto opened = (*router)->stats();
  EXPECT_EQ(opened[0].health, ShardHealth::kDown);
  EXPECT_EQ(opened[0].breaker_opens, 1);
  EXPECT_EQ((*router)->capacity_fraction(), 0.5);

  // The cooldown clock is fleet-wide acquires. Serve the cooldown's worth
  // of traffic on the healthy replica; the final acquire flips the breaker
  // half-open (degraded: probed again, at the back of the queue).
  ASSERT_TRUE((*injector)->AdvancePhase());  // 'clean': error window gone.
  for (uint64_t i = 0; i < ShardRouter::kBreakerCooldownOps; ++i) {
    const uint64_t op = (*injector)->OnServe();
    const int s = (*router)->AcquireShard();
    EXPECT_EQ(s, 1);
    const auto cell = (*router)->RunOnShard(
        s, core::QueryId::kStatistics, core::DatasetSize::kSmall,
        TinyOptions(), &ctx, nullptr, op, 1);
    EXPECT_TRUE(cell.status.ok());
  }
  EXPECT_EQ((*router)->stats()[0].health, ShardHealth::kDegraded);

  // One successful probe closes the breaker for good.
  const uint64_t op = (*injector)->OnServe();
  const int probe = (*router)->AcquireShard(/*exclude=*/1);
  EXPECT_EQ(probe, 0);
  const auto cell = (*router)->RunOnShard(
      probe, core::QueryId::kStatistics, core::DatasetSize::kSmall,
      TinyOptions(), &ctx, nullptr, op, 1);
  EXPECT_TRUE(cell.status.ok());
  const auto healed = (*router)->stats();
  EXPECT_EQ(healed[0].health, ShardHealth::kHealthy);
  EXPECT_EQ(healed[0].breaker_opens, 1);
  EXPECT_EQ((*router)->capacity_fraction(), 1.0);
}

// --- brown-out degradation ---------------------------------------------------

TEST(AdaptiveAdmissionTest, BrownOutShedsHeavyArrivalsAndSparesCheap) {
  AdmissionOptions options;
  options.adaptive = true;
  options.min_inflight = 4;
  options.heavy_share = 0.5;
  options.adjust_interval = 1000;  // Keep the limit fixed for the test.
  AdmissionController ac(options);
  constexpr int kCheap = 1;
  constexpr int kHeavy = 3;
  // Teach the class model: cheap at ~1ms, heavy at ~50ms.
  for (int i = 0; i < 5; ++i) {
    bool heavy = false;
    ASSERT_EQ(ac.Admit(std::nullopt, nullptr, kCheap, &heavy),
              AdmissionOutcome::kAdmitted);
    ac.Release(kCheap, 0.001, heavy);
    ASSERT_EQ(ac.Admit(std::nullopt, nullptr, kHeavy, &heavy),
              AdmissionOutcome::kAdmitted);
    ac.Release(kHeavy, 0.050, heavy);
  }

  // Brown-out: at 40% fleet capacity the heavy cap (4 slots x 0.5 share x
  // 0.4) rounds to zero, so heavy arrivals shed on arrival instead of
  // queueing against the cheap traffic that still fits.
  ac.SetCapacityFactor(0.4);
  bool heavy = false;
  EXPECT_EQ(ac.Admit(std::nullopt, nullptr, kHeavy, &heavy),
            AdmissionOutcome::kShedQueueFull);
  EXPECT_EQ(ac.Admit(std::nullopt, nullptr, kCheap, &heavy),
            AdmissionOutcome::kAdmitted);
  EXPECT_FALSE(heavy);
  ac.Release(kCheap, 0.001, heavy);
  const AdmissionStats browned = ac.stats();
  EXPECT_EQ(browned.shed_brownout, 1);
  EXPECT_EQ(browned.shed_queue_full, 1);  // Attribution is a subset count.

  // Mild degradation — one slow shard in a 32-fleet (31.5/32 = 0.984) —
  // stays above the brown-out threshold: heavy arrivals queue and admit
  // normally instead of hitting a shed-on-arrival cliff.
  ac.SetCapacityFactor(31.5 / 32.0);
  EXPECT_EQ(ac.Admit(std::nullopt, nullptr, kHeavy, &heavy),
            AdmissionOutcome::kAdmitted);
  EXPECT_TRUE(heavy);
  ac.Release(kHeavy, 0.050, heavy);

  // Capacity restored: heavy flows again (the cap floors at one slot at
  // full health).
  ac.SetCapacityFactor(1.0);
  EXPECT_EQ(ac.Admit(std::nullopt, nullptr, kHeavy, &heavy),
            AdmissionOutcome::kAdmitted);
  EXPECT_TRUE(heavy);
  ac.Release(kHeavy, 0.050, heavy);
  EXPECT_EQ(ac.stats().shed_brownout, 1);
}

// --- fault tolerance through the stack ---------------------------------------

TEST(ServingStackTest, RetriesRecoverFromInjectedTransientErrors) {
  auto script = FaultScript::Parse("seed 21\n@0..100000 error * 0.4\n");
  ASSERT_TRUE(script.ok());
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());

  ServingOptions options;
  options.shards = 2;
  options.cache_enabled = false;  // A hit never reaches the fault machinery.
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_s = 1e-4;
  options.retry.max_backoff_s = 1e-3;
  options.fault_injector = injector->get();
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());

  ExecContext ctx;
  int64_t errors = 0;
  int64_t retried_ops = 0;
  for (int i = 0; i < 12; ++i) {
    const auto result = (*stack)->Serve(core::QueryId::kStatistics,
                                        core::DatasetSize::kSmall,
                                        TinyOptions(), &ctx);
    EXPECT_FALSE(result.shed);
    errors += result.cell.status.ok() ? 0 : 1;
    retried_ops += result.retries > 0 ? 1 : 0;
  }
  const ServingCounters counters = (*stack)->counters();
  // A 40% per-attempt error rate against a 6-attempt budget: every op
  // recovers. Deterministic — the draws are pure in (seed, op, attempt,
  // shard), so this can never flake.
  EXPECT_EQ(errors, 0);
  EXPECT_GT(retried_ops, 0);
  EXPECT_EQ(counters.retry.retry_successes, retried_ops);
  // No deadline configured, no op exhausted its attempts: every injected
  // failure was paid for with exactly one retry.
  EXPECT_EQ(counters.retry.retries,
            (*injector)->injected(FaultKind::kTransientError));
  EXPECT_EQ(counters.retry.retry_deadline_giveups, 0);
  EXPECT_EQ(counters.faults.transient_errors,
            (*injector)->injected(FaultKind::kTransientError));
}

TEST(ServingStackTest, RetryBudgetIsBoundedByTheStartDeadline) {
  auto script = FaultScript::Parse("seed 23\n@0..100000 error * 1\n");
  ASSERT_TRUE(script.ok());
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());

  ServingOptions options;
  options.shards = 2;
  options.cache_enabled = false;
  options.admission.max_inflight = 4;
  options.admission.max_queue = 4;
  options.admission.max_queue_delay_s = 0.01;  // 10ms start budget.
  options.retry.max_attempts = 8;
  options.retry.initial_backoff_s = 0.1;  // Min jittered backoff: 50ms.
  options.retry.max_backoff_s = 0.1;
  options.fault_injector = injector->get();
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());

  ExecContext ctx;
  const auto result = (*stack)->Serve(core::QueryId::kStatistics,
                                      core::DatasetSize::kSmall, TinyOptions(),
                                      &ctx);
  // Every attempt fails by script, and the first retry's backoff alone
  // exceeds the whole 10ms budget: the op errors out with zero retries
  // rather than sleeping past its deadline.
  EXPECT_FALSE(result.shed);
  EXPECT_FALSE(result.cell.status.ok());
  EXPECT_EQ(result.retries, 0);
  const ServingCounters counters = (*stack)->counters();
  EXPECT_EQ(counters.retry.retries, 0);
  EXPECT_EQ(counters.retry.retry_deadline_giveups, 1);
}

TEST(ServingStackTest, InjectedReloadFailureQuarantinesThenHeals) {
  auto script = FaultScript::Parse("seed 31\n@1 reload-fail 0\n");
  ASSERT_TRUE(script.ok());
  auto injector = FaultInjector::Create(*script);
  ASSERT_TRUE(injector.ok());

  ServingOptions options = CacheOnlyOptions(2);
  options.fault_injector = injector->get();
  auto stack = ServingStack::Create(options, engine::CreateSciDb, TinyData());
  ASSERT_TRUE(stack.ok());
  ExecContext ctx;

  // One serve ticks the script (arming the failure) and fills the cache.
  const auto first = (*stack)->Serve(core::QueryId::kRegression,
                                     core::DatasetSize::kSmall, TinyOptions(),
                                     &ctx);
  ASSERT_TRUE(first.cell.status.ok());
  const uint64_t epoch0 = (*stack)->current_epoch();

  // Mid-roll failure: shard 0's load fails, the roll aborts, the epoch
  // stays pinned to the old generation, and shard 0 is quarantined.
  EXPECT_FALSE((*stack)->ReloadDataset(TinyData()).ok());
  EXPECT_EQ((*stack)->current_epoch(), epoch0);
  EXPECT_EQ((*stack)->counters().shards[0].health, ShardHealth::kDown);

  // The fleet keeps serving through the window: old-generation cache
  // entries are still valid (the epoch never moved), and new work routes
  // to the surviving replica.
  const auto hit = (*stack)->Serve(core::QueryId::kRegression,
                                   core::DatasetSize::kSmall, TinyOptions(),
                                   &ctx);
  EXPECT_TRUE(hit.cache_hit);
  const auto routed = (*stack)->Serve(core::QueryId::kStatistics,
                                      core::DatasetSize::kSmall, TinyOptions(),
                                      &ctx);
  ASSERT_TRUE(routed.cell.status.ok());
  EXPECT_EQ(routed.shard, 1);

  // The next roll succeeds (the armed failure was consumed), advances the
  // epoch, and heals the quarantined shard — with zero stale hits anywhere.
  ASSERT_TRUE((*stack)->ReloadDataset(TinyData()).ok());
  EXPECT_EQ((*stack)->current_epoch(), epoch0 + 1);
  const ServingCounters counters = (*stack)->counters();
  EXPECT_EQ(counters.shards[0].health, ShardHealth::kHealthy);
  EXPECT_EQ(counters.stale_hits, 0);
  EXPECT_EQ(counters.reloads, 1);  // Only completed rolls count.
  EXPECT_EQ(counters.faults.reload_failures, 1);
  EXPECT_EQ((*injector)->injected(FaultKind::kReloadFailure), 1);
}

/// Wraps a real engine but parks RunQuery on a gate and fails it while
/// `failing` is up — for orchestrating single-flight leader failures with
/// controlled timing.
class GatedErrorEngine : public core::Engine {
 public:
  static std::atomic<bool>& failing() {
    static std::atomic<bool> flag{false};
    return flag;
  }
  static std::atomic<bool>& release() {
    static std::atomic<bool> flag{false};
    return flag;
  }
  static std::atomic<int>& entered() {
    static std::atomic<int> count{0};
    return count;
  }

  GatedErrorEngine() : inner_(engine::CreateSciDb()) {}
  std::string name() const override { return inner_->name(); }
  bool SupportsQuery(core::QueryId query) const override {
    return inner_->SupportsQuery(query);
  }
  void PrepareContext(ExecContext* ctx) override {
    inner_->PrepareContext(ctx);
  }
  genbase::Result<core::QueryResult> RunQuery(
      core::QueryId query, const core::QueryParams& params,
      ExecContext* ctx) override {
    if (!failing().load()) return inner_->RunQuery(query, params, ctx);
    entered().fetch_add(1);
    while (!release().load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return genbase::Status::Internal("gated failure");
  }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override {
    return inner_->LoadDataset(data);
  }
  void DoUnloadDataset() override { inner_->UnloadDataset(); }

 private:
  std::unique_ptr<core::Engine> inner_;
};

TEST(ServingStackTest, FollowerFallbackKeepsTheOriginalDeadline) {
  GatedErrorEngine::failing() = true;
  GatedErrorEngine::release() = false;
  GatedErrorEngine::entered() = 0;

  ServingOptions options;
  options.shards = 2;
  options.cache_enabled = true;
  options.single_flight = true;
  options.admission.max_inflight = 4;
  options.admission.max_queue = 4;
  options.admission.max_queue_delay_s = 1.0;  // 1s start budget per op.
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_s = 1.0;  // Min jittered backoff: 0.5s.
  options.retry.max_backoff_s = 1.0;
  auto stack = ServingStack::Create(
      options, [] { return std::make_unique<GatedErrorEngine>(); },
      TinyData());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  ServeResult leader_result;
  ExecContext leader_ctx;
  std::thread leader([&] {
    leader_result = (*stack)->Serve(core::QueryId::kSvd,
                                    core::DatasetSize::kSmall, TinyOptions(),
                                    &leader_ctx);
  });
  // Wait until the leader is parked inside the engine, then send in a
  // follower on the same key; it joins the leader's flight.
  while (GatedErrorEngine::entered().load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ServeResult follower_result;
  ExecContext follower_ctx;
  std::thread follower([&] {
    follower_result = (*stack)->Serve(core::QueryId::kSvd,
                                      core::DatasetSize::kSmall, TinyOptions(),
                                      &follower_ctx);
  });
  while ((*stack)->counters().flight.coalesced == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Burn ~80% of the follower's budget on the gate, then fail the leader.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  GatedErrorEngine::release() = true;
  leader.join();
  follower.join();
  GatedErrorEngine::failing() = false;

  // The leader's only attempt failed; with ~0.2s of budget left, the 0.5s+
  // backoff does not fit, so it gave up instead of retrying.
  EXPECT_FALSE(leader_result.cell.status.ok());
  EXPECT_EQ(leader_result.retries, 0);
  // The follower fell back to its own execution — on the op's ORIGINAL
  // deadline. A fresh 1s budget would have granted its retry; the ~0.2s
  // actually left did not, so it too failed without retrying.
  EXPECT_FALSE(follower_result.shed);
  EXPECT_FALSE(follower_result.cell.status.ok());
  EXPECT_FALSE(follower_result.cache_hit);
  EXPECT_EQ(follower_result.retries, 0);

  const ServingCounters counters = (*stack)->counters();
  EXPECT_EQ(counters.flight.leaders, 1);
  EXPECT_EQ(counters.flight.coalesced, 1);
  EXPECT_EQ(counters.flight.follower_fallbacks, 1);
  // Every follower is accounted exactly once across the three outcomes.
  EXPECT_EQ(counters.flight.coalesced,
            counters.flight.coalesced_served +
                counters.flight.follower_fallbacks +
                counters.flight.shed_wait_timeout);
  EXPECT_EQ(counters.retry.retries, 0);
  EXPECT_EQ(counters.retry.retry_deadline_giveups, 2);
  int64_t executed = 0;
  for (const auto& shard : counters.shards) executed += shard.ops;
  EXPECT_EQ(executed, 2);  // One leader attempt + one follower fallback.
}

}  // namespace
}  // namespace genbase::serving
