#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster_engine.h"
#include "cluster/dist_kernels.h"
#include "cluster/sim_cluster.h"
#include "common/rng.h"
#include "core/generator.h"
#include "core/reference.h"
#include "core/verify.h"
#include "linalg/covariance.h"
#include "linalg/qr.h"
#include "linalg/svd.h"

namespace genbase::cluster {
namespace {

using core::DatasetSize;
using core::QueryId;

// --- PartitionRows ---------------------------------------------------------------

TEST(PartitionTest, CoversRangeWithoutOverlap) {
  for (int nodes : {1, 2, 3, 4, 7}) {
    for (int64_t n : {0LL, 1LL, 10LL, 97LL, 1000LL}) {
      const auto parts = PartitionRows(n, nodes);
      ASSERT_EQ(static_cast<int>(parts.size()), nodes);
      int64_t at = 0;
      for (const auto& p : parts) {
        EXPECT_EQ(p.begin, at);
        EXPECT_GE(p.size(), 0);
        at = p.end;
      }
      EXPECT_EQ(at, n);
    }
  }
}

TEST(PartitionTest, Balanced) {
  const auto parts = PartitionRows(10, 4);
  EXPECT_EQ(parts[0].size(), 3);
  EXPECT_EQ(parts[1].size(), 3);
  EXPECT_EQ(parts[2].size(), 2);
  EXPECT_EQ(parts[3].size(), 2);
}

// --- SimCluster --------------------------------------------------------------------

TEST(SimClusterTest, ComputeChargesPerNode) {
  SimCluster sim(3, NetworkModel{});
  ASSERT_TRUE(sim.Compute([](int node) {
    // Unequal busy-work per node.
    volatile double x = 0;
    for (int i = 0; i < (node + 1) * 100000; ++i) x += i;
    return genbase::Status::OK();
  }).ok());
  EXPECT_GT(sim.elapsed(), 0.0);
  EXPECT_DOUBLE_EQ(sim.comm_elapsed(), 0.0);
}

TEST(SimClusterTest, SingleNodeCollectivesAreFree) {
  SimCluster sim(1, NetworkModel{});
  sim.AllReduce(1 << 30);
  sim.Gather(0, 1 << 30);
  sim.Broadcast(0, 1 << 30);
  sim.AllToAll(1 << 30);
  sim.Barrier();
  EXPECT_DOUBLE_EQ(sim.elapsed(), 0.0);
}

TEST(SimClusterTest, AllReduceCostMatchesRingModel) {
  NetworkModel net{100e6, 1e-3};
  SimCluster sim(4, net);
  sim.AllReduce(100'000'000);  // 1 second of bytes at full bandwidth.
  // Ring: 2*(P-1)*(latency + bytes/P/bw) = 6 * (1e-3 + 0.25) = 1.506.
  EXPECT_NEAR(sim.elapsed(), 1.506, 1e-9);
  EXPECT_NEAR(sim.comm_elapsed(), sim.elapsed(), 1e-12);
}

TEST(SimClusterTest, GatherSerializesAtRoot) {
  NetworkModel net{1e9, 0.0};
  SimCluster sim(4, net);
  sim.Gather(0, 1'000'000'000);  // 1 s per node.
  EXPECT_NEAR(sim.elapsed(), 3.0, 1e-9);
}

TEST(SimClusterTest, ChargeComputeAndAll) {
  SimCluster sim(2, NetworkModel{});
  sim.ChargeCompute(1, 5.0);
  EXPECT_DOUBLE_EQ(sim.elapsed(), 5.0);
  sim.ChargeAll(1.0);
  EXPECT_DOUBLE_EQ(sim.elapsed(), 6.0);
}

TEST(SimClusterTest, ErrorPropagatesFromCompute) {
  SimCluster sim(2, NetworkModel{});
  auto st = sim.Compute([](int node) {
    return node == 1 ? genbase::Status::Internal("boom")
                     : genbase::Status::OK();
  });
  EXPECT_FALSE(st.ok());
}

// --- distributed kernels vs single-node oracles -----------------------------------------

linalg::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

std::vector<linalg::Matrix> SplitRows(const linalg::Matrix& m, int nodes) {
  const auto parts = PartitionRows(m.rows(), nodes);
  std::vector<linalg::Matrix> blocks;
  for (const auto& p : parts) {
    linalg::Matrix b(p.size(), m.cols());
    for (int64_t i = 0; i < p.size(); ++i) {
      std::copy(m.Row(p.begin + i), m.Row(p.begin + i) + m.cols(),
                b.Row(i));
    }
    blocks.push_back(std::move(b));
  }
  return blocks;
}

class DistKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(DistKernelTest, LeastSquaresMatchesSingleNode) {
  const int nodes = GetParam();
  const int64_t m = 120, k = 10;
  linalg::Matrix x = RandomMatrix(m, k, 7);
  for (int64_t i = 0; i < m; ++i) x(i, 0) = 1.0;  // Intercept.
  Rng rng(8);
  std::vector<double> y(m);
  for (auto& v : y) v = rng.Gaussian();

  auto single = linalg::LeastSquaresQr(x, y);
  ASSERT_TRUE(single.ok());

  SimCluster sim(nodes, NetworkModel{});
  std::vector<std::vector<double>> y_blocks;
  const auto parts = PartitionRows(m, nodes);
  for (const auto& p : parts) {
    y_blocks.emplace_back(y.begin() + p.begin, y.begin() + p.end);
  }
  auto dist =
      DistributedLeastSquares(&sim, SplitRows(x, nodes), y_blocks, nullptr);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  ASSERT_EQ(dist->coefficients.size(), single->coefficients.size());
  for (size_t i = 0; i < single->coefficients.size(); ++i) {
    EXPECT_NEAR(dist->coefficients[i], single->coefficients[i], 1e-8);
  }
  EXPECT_NEAR(dist->residual_norm, single->residual_norm, 1e-8);
  EXPECT_NEAR(dist->r_squared, single->r_squared, 1e-10);
}

TEST_P(DistKernelTest, LeastSquaresShortBlocksFallback) {
  // Fewer rows per node than columns: exercises the raw-block path.
  const int nodes = GetParam();
  const int64_t m = 4 * nodes + 2, k = 6;
  if (m < k) GTEST_SKIP();
  linalg::Matrix x = RandomMatrix(m, k, 17);
  Rng rng(18);
  std::vector<double> y(m);
  for (auto& v : y) v = rng.Gaussian();
  auto single = linalg::LeastSquaresQr(x, y);
  ASSERT_TRUE(single.ok());
  SimCluster sim(nodes, NetworkModel{});
  std::vector<std::vector<double>> y_blocks;
  for (const auto& p : PartitionRows(m, nodes)) {
    y_blocks.emplace_back(y.begin() + p.begin, y.begin() + p.end);
  }
  auto dist =
      DistributedLeastSquares(&sim, SplitRows(x, nodes), y_blocks, nullptr);
  ASSERT_TRUE(dist.ok());
  for (size_t i = 0; i < single->coefficients.size(); ++i) {
    EXPECT_NEAR(dist->coefficients[i], single->coefficients[i], 1e-8);
  }
}

TEST_P(DistKernelTest, CovarianceMatchesSingleNode) {
  const int nodes = GetParam();
  linalg::Matrix x = RandomMatrix(90, 25, 9);
  auto single =
      linalg::CovarianceMatrix(linalg::MatrixView(x),
                               linalg::KernelQuality::kTuned);
  ASSERT_TRUE(single.ok());
  SimCluster sim(nodes, NetworkModel{});
  auto dist = DistributedCovariance(&sim, SplitRows(x, nodes),
                                    linalg::KernelQuality::kTuned, nullptr);
  ASSERT_TRUE(dist.ok());
  for (int64_t i = 0; i < single->size(); ++i) {
    EXPECT_NEAR(dist->data()[i], single->data()[i], 1e-9);
  }
  if (nodes > 1) EXPECT_GT(sim.comm_elapsed(), 0.0);
}

TEST_P(DistKernelTest, SvdMatchesSingleNode) {
  const int nodes = GetParam();
  linalg::Matrix a = RandomMatrix(80, 30, 11);
  linalg::SvdOptions opt;
  opt.rank = 8;
  auto single = linalg::TruncatedSvd(linalg::MatrixView(a), opt);
  ASSERT_TRUE(single.ok());
  SimCluster sim(nodes, NetworkModel{});
  auto dist = DistributedTruncatedSvd(&sim, SplitRows(a, nodes), 8,
                                      linalg::KernelQuality::kTuned, 42,
                                      nullptr);
  ASSERT_TRUE(dist.ok());
  ASSERT_EQ(dist->singular_values.size(), single->singular_values.size());
  const double scale = single->singular_values[0];
  for (size_t i = 0; i < dist->singular_values.size(); ++i) {
    EXPECT_NEAR(dist->singular_values[i], single->singular_values[i],
                1e-6 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DistKernelTest,
                         ::testing::Values(1, 2, 3, 4));

// --- multi-node engines vs reference ---------------------------------------------------

constexpr double kTinyScale = 0.008;

const core::GenBaseData& TinyData() {
  static const core::GenBaseData* data = [] {
    auto r = core::GenerateDataset(DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new core::GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

core::QueryParams TinyParams() {
  core::QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

struct MnCase {
  const char* config;
  int nodes;
  QueryId query;
};

ClusterEngineOptions OptionsByName(const std::string& config, int nodes) {
  if (config == "scidb") return SciDbMnOptions(nodes);
  if (config == "pbdr") return PbdrOptions(nodes);
  if (config == "col_pbdr") return ColumnStorePbdrOptions(nodes);
  if (config == "col_udf") return ColumnStoreUdfMnOptions(nodes);
  return HadoopMnOptions(nodes);
}

class MnAgreementTest : public ::testing::TestWithParam<MnCase> {};

TEST_P(MnAgreementTest, MatchesReference) {
  const auto& param = GetParam();
  ClusterEngine engine(OptionsByName(param.config, param.nodes));
  if (!engine.SupportsQuery(param.query)) {
    GTEST_SKIP() << param.config << " does not support this query";
  }
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine.PrepareContext(&ctx);
  auto result = engine.RunQuery(param.query, TinyParams(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected =
      core::RunReferenceQuery(param.query, TinyData(), TinyParams());
  ASSERT_TRUE(expected.ok());
  // Distributed summation orders differ from the single-node reference;
  // compare with a slightly relaxed tolerance.
  const genbase::Status match =
      core::CompareQueryResults(*expected, *result, 1e-5);
  EXPECT_TRUE(match.ok()) << param.config << "@" << param.nodes << ": "
                          << match.ToString();
  // Multi-node cells must report virtual time.
  EXPECT_GT(ctx.clock().grand_total(), 0.0);
}

std::vector<MnCase> MnCases() {
  std::vector<MnCase> cases;
  for (const char* config :
       {"scidb", "pbdr", "col_pbdr", "col_udf", "hadoop"}) {
    for (int nodes : {1, 2, 4}) {
      for (QueryId q : core::kAllQueries) {
        cases.push_back({config, nodes, q});
      }
    }
  }
  return cases;
}

std::string MnCaseName(const ::testing::TestParamInfo<MnCase>& info) {
  return std::string(info.param.config) + "_n" +
         std::to_string(info.param.nodes) + "_" +
         core::QueryName(info.param.query);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, MnAgreementTest,
                         ::testing::ValuesIn(MnCases()), MnCaseName);

TEST(MnEngineTest, FigureThreeLineupHasFiveSystems) {
  const auto engines = CreateMultiNodeEngines(2);
  EXPECT_EQ(engines.size(), 5u);
}

TEST(MnEngineTest, CommunicationGrowsWithNodes) {
  // The covariance Gram all-reduce must make multi-node communication
  // nonzero and the 4-node query must charge more glue-free comm time than
  // the 1-node query (which has none).
  core::QueryParams params = TinyParams();
  double analytics1 = 0, analytics4 = 0;
  for (int nodes : {1, 4}) {
    ClusterEngine engine(SciDbMnOptions(nodes));
    ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
    ExecContext ctx;
    engine.PrepareContext(&ctx);
    auto result = engine.RunQuery(QueryId::kCovariance, params, &ctx);
    ASSERT_TRUE(result.ok());
    (nodes == 1 ? analytics1 : analytics4) =
        ctx.clock().total(Phase::kAnalytics);
  }
  EXPECT_GT(analytics1, 0.0);
  EXPECT_GT(analytics4, 0.0);
}

TEST(MnEngineTest, PhiOffloadAgreesAndAccountsAnalytics) {
  ClusterEngineOptions opt = SciDbMnOptions(2);
  opt.phi_offload = true;
  opt.name = "SciDB + Phi";
  ClusterEngine engine(opt);
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine.PrepareContext(&ctx);
  auto result = engine.RunQuery(QueryId::kCovariance, TinyParams(), &ctx);
  ASSERT_TRUE(result.ok());
  auto expected = core::RunReferenceQuery(QueryId::kCovariance, TinyData(),
                                          TinyParams());
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(core::CompareQueryResults(*expected, *result, 1e-5).ok());
  EXPECT_GT(ctx.clock().total(Phase::kAnalytics), 0.0);
}

}  // namespace
}  // namespace genbase::cluster
