#include <gtest/gtest.h>

#include <cmath>

#include "core/config.h"
#include "core/datasets.h"
#include "core/generator.h"
#include "core/queries.h"
#include "core/reference.h"
#include "core/verify.h"

namespace genbase::core {
namespace {

constexpr double kTinyScale = 0.008;  // genes 40, patients 40 for small.

const GenBaseData& TinyData() {
  static const GenBaseData* data = [] {
    auto r = GenerateDataset(DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

QueryParams TinyParams() {
  QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;  // Enough samples at tiny scale.
  return p;
}

// --- dims / datasets ------------------------------------------------------------

TEST(DatasetsTest, PaperDimsAtFullScale) {
  const DatasetDims small = DimsFor(DatasetSize::kSmall, 1.0);
  EXPECT_EQ(small.genes, 5000);
  EXPECT_EQ(small.patients, 5000);
  const DatasetDims large = DimsFor(DatasetSize::kLarge, 1.0);
  EXPECT_EQ(large.genes, 30000);
  EXPECT_EQ(large.patients, 40000);
  const DatasetDims xl = DimsFor(DatasetSize::kXLarge, 1.0);
  EXPECT_EQ(xl.genes, 60000);
  EXPECT_EQ(xl.patients, 70000);
}

TEST(DatasetsTest, ScaleShrinksLinearly) {
  const DatasetDims d = DimsFor(DatasetSize::kMedium, 0.1);
  EXPECT_EQ(d.genes, 1500);
  EXPECT_EQ(d.patients, 2000);
}

TEST(DatasetsTest, MinimumDimsEnforced) {
  const DatasetDims d = DimsFor(DatasetSize::kSmall, 1e-9);
  EXPECT_GE(d.genes, 20);
  EXPECT_GE(d.patients, 20);
  EXPECT_GE(d.go_terms, 5);
}

TEST(DatasetsTest, SchemasMatchPaperSection31) {
  EXPECT_EQ(MicroarraySchema().ToString(),
            "(gene_id:int64, patient_id:int64, expr:double)");
  EXPECT_EQ(PatientMetaSchema().num_fields(), 6);
  EXPECT_EQ(GeneMetaSchema().num_fields(), 5);
  EXPECT_EQ(GeneOntologySchema().num_fields(), 3);
}

// --- generator -------------------------------------------------------------------

TEST(GeneratorTest, RowCountsMatchDims) {
  const GenBaseData& d = TinyData();
  EXPECT_EQ(d.microarray.num_rows(), d.dims.cells());
  EXPECT_EQ(d.patients.num_rows(), d.dims.patients);
  EXPECT_EQ(d.genes.num_rows(), d.dims.genes);
  EXPECT_EQ(d.ontology.num_rows(),
            d.dims.genes * d.dims.go_terms_per_gene);
}

TEST(GeneratorTest, DeterministicAcrossCalls) {
  auto a = GenerateDataset(DatasetSize::kSmall, kTinyScale);
  auto b = GenerateDataset(DatasetSize::kSmall, kTinyScale);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto& ea = a->microarray.DoubleColumn(MicroarrayCols::kExpr);
  const auto& eb = b->microarray.DoubleColumn(MicroarrayCols::kExpr);
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); i += 97) EXPECT_EQ(ea[i], eb[i]);
  EXPECT_EQ(a->patients.DoubleColumn(PatientCols::kDrugResponse),
            b->patients.DoubleColumn(PatientCols::kDrugResponse));
}

TEST(GeneratorTest, SeedChangesData) {
  GeneratorOptions opt;
  opt.seed = 999;
  auto a = GenerateDataset(DatasetSize::kSmall, kTinyScale, opt);
  ASSERT_TRUE(a.ok());
  const auto& ea = a->microarray.DoubleColumn(MicroarrayCols::kExpr);
  const auto& eb = TinyData().microarray.DoubleColumn(MicroarrayCols::kExpr);
  int differing = 0;
  for (size_t i = 0; i < ea.size(); i += 13) differing += ea[i] != eb[i];
  EXPECT_GT(differing, 10);
}

TEST(GeneratorTest, MetadataInRanges) {
  const GenBaseData& d = TinyData();
  for (int64_t i = 0; i < d.patients.num_rows(); ++i) {
    const int64_t age = d.patients.IntColumn(PatientCols::kAge)[i];
    EXPECT_GE(age, 0);
    EXPECT_LE(age, 99);
    const int64_t disease =
        d.patients.IntColumn(PatientCols::kDiseaseId)[i];
    EXPECT_GE(disease, 1);
    EXPECT_LE(disease, d.dims.diseases);
    const int64_t gender = d.patients.IntColumn(PatientCols::kGender)[i];
    EXPECT_TRUE(gender == 0 || gender == 1);
  }
  for (int64_t i = 0; i < d.genes.num_rows(); ++i) {
    const int64_t fn = d.genes.IntColumn(GeneCols::kFunction)[i];
    EXPECT_GE(fn, 0);
    EXPECT_LT(fn, d.dims.functions);
  }
  for (int64_t i = 0; i < d.ontology.num_rows(); ++i) {
    const int64_t t = d.ontology.IntColumn(GoCols::kGoId)[i];
    EXPECT_GE(t, 0);
    EXPECT_LT(t, d.dims.go_terms);
    EXPECT_EQ(d.ontology.IntColumn(GoCols::kBelongs)[i], 1);
  }
}

// --- selections ------------------------------------------------------------------

TEST(SelectionTest, GenesByFunctionMatchesScan) {
  const GenBaseData& d = TinyData();
  const auto sel = SelectGenesByFunction(d, 250);
  const auto& fn = d.genes.IntColumn(GeneCols::kFunction);
  int64_t expected = 0;
  for (int64_t v : fn) expected += v < 250;
  EXPECT_EQ(static_cast<int64_t>(sel.size()), expected);
  EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
}

TEST(SelectionTest, SampleCountFloorsAtTwo) {
  EXPECT_EQ(SampleCount(1000, 0.0025), 3);
  EXPECT_EQ(SampleCount(100, 0.0025), 2);
  EXPECT_EQ(SampleCount(40000, 0.0025), 100);
}

TEST(SelectionTest, PatientsByDiseaseNonTrivial) {
  const GenBaseData& d = TinyData();
  const auto sel = SelectPatientsByDisease(d, 7);
  for (int64_t id : sel) {
    EXPECT_EQ(d.patients.IntColumn(PatientCols::kDiseaseId)[id], 7);
  }
}

// --- reference queries ------------------------------------------------------------

TEST(ReferenceTest, RegressionFindsSignal) {
  auto r = RunReferenceQuery(QueryId::kRegression, TinyData(), TinyParams());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The generator plants causal genes; with most genes included the fit
  // must explain much of the variance.
  EXPECT_GT(r->regression.r_squared, 0.5);
  EXPECT_LE(r->regression.r_squared, 1.0 + 1e-12);
  EXPECT_EQ(r->regression.rows, TinyData().dims.patients);
  EXPECT_GT(r->regression.predictors, 0);
}

TEST(ReferenceTest, CovarianceThresholdKeepsRoughlyTopDecile) {
  auto r = RunReferenceQuery(QueryId::kCovariance, TinyData(), TinyParams());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& c = r->covariance;
  const int64_t genes = c.genes;
  const int64_t pairs = genes * (genes - 1) / 2;
  EXPECT_GT(c.pairs_above, 0);
  EXPECT_LT(c.pairs_above, pairs / 5);  // ~10% expected.
  EXPECT_GT(c.meta_checksum, 0.0);
}

TEST(ReferenceTest, BiclusterFindsPlantedStructure) {
  auto r = RunReferenceQuery(QueryId::kBiclustering, TinyData(),
                             TinyParams());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->bicluster.biclusters.empty());
  for (const auto& b : r->bicluster.biclusters) {
    EXPECT_GE(b.rows, 4);
    EXPECT_GE(b.cols, 4);
  }
}

TEST(ReferenceTest, SvdSingularValuesDescendAndReflectFactors) {
  auto r = RunReferenceQuery(QueryId::kSvd, TinyData(), TinyParams());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& sv = r->svd.singular_values;
  ASSERT_EQ(static_cast<int>(sv.size()), r->svd.rank);
  for (size_t i = 1; i < sv.size(); ++i) EXPECT_LE(sv[i], sv[i - 1] + 1e-9);
  EXPECT_GT(sv[0], 0.0);
}

TEST(ReferenceTest, StatisticsTestsAllTerms) {
  auto r = RunReferenceQuery(QueryId::kStatistics, TinyData(), TinyParams());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.terms_tested, TinyData().dims.go_terms);
  EXPECT_GE(r->stats.significant_terms, 0);
  EXPECT_LE(r->stats.significant_terms, r->stats.terms_tested);
  EXPECT_GT(r->stats.z_abs_sum, 0.0);
}

TEST(ReferenceTest, DeterministicResults) {
  auto a = RunReferenceQuery(QueryId::kSvd, TinyData(), TinyParams());
  auto b = RunReferenceQuery(QueryId::kSvd, TinyData(), TinyParams());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(CompareQueryResults(*a, *b, 1e-14).ok());
}

// --- verify ----------------------------------------------------------------------

TEST(VerifyTest, DetectsRegressionMismatch) {
  QueryResult a, b;
  a.query = b.query = QueryId::kRegression;
  a.regression.rows = b.regression.rows = 10;
  a.regression.predictors = b.regression.predictors = 3;
  a.regression.r_squared = 0.5;
  b.regression.r_squared = 0.9;
  EXPECT_FALSE(CompareQueryResults(a, b).ok());
  b.regression.r_squared = 0.5 + 1e-9;
  EXPECT_TRUE(CompareQueryResults(a, b).ok());
}

TEST(VerifyTest, DetectsQueryKindMismatch) {
  QueryResult a, b;
  a.query = QueryId::kSvd;
  b.query = QueryId::kCovariance;
  EXPECT_FALSE(CompareQueryResults(a, b).ok());
}

TEST(VerifyTest, CovariancePairSlack) {
  QueryResult a, b;
  a.query = b.query = QueryId::kCovariance;
  a.covariance.pairs_above = 100000;
  b.covariance.pairs_above = 100001;  // Within slack.
  EXPECT_TRUE(CompareQueryResults(a, b).ok());
  b.covariance.pairs_above = 100500;  // Outside slack.
  EXPECT_FALSE(CompareQueryResults(a, b).ok());
}

// --- config ----------------------------------------------------------------------

TEST(ConfigTest, DefaultsSane) {
  const SimConfig& c = SimConfig::Get();
  EXPECT_GT(c.scale, 0.0);
  EXPECT_GT(c.timeout_seconds, 0.0);
  EXPECT_EQ(c.r_max_cells, (1LL << 31) - 1);
  EXPECT_GT(c.net_bandwidth_bytes_per_s, 0.0);
}

}  // namespace
}  // namespace genbase::core
