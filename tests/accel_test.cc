#include <gtest/gtest.h>

#include "accel/coprocessor.h"
#include "accel/phi_engine.h"
#include "core/generator.h"
#include "core/reference.h"
#include "core/verify.h"
#include "engine/engines.h"

namespace genbase::accel {
namespace {

using core::DatasetSize;
using core::QueryId;

// --- Coprocessor model ---------------------------------------------------------

TEST(CoprocessorTest, KernelClassMapping) {
  EXPECT_EQ(KernelClassFor(QueryId::kCovariance), KernelClass::kGemmBound);
  EXPECT_EQ(KernelClassFor(QueryId::kSvd), KernelClass::kGemmBound);
  EXPECT_EQ(KernelClassFor(QueryId::kRegression), KernelClass::kGemmBound);
  EXPECT_EQ(KernelClassFor(QueryId::kStatistics),
            KernelClass::kBandwidthBound);
  EXPECT_EQ(KernelClassFor(QueryId::kBiclustering),
            KernelClass::kLatencyBound);
}

TEST(CoprocessorTest, OffloadMathExact) {
  // speedup 4x gemm, 2x bw, 1 GB/s transfer, 10 ms launch, 1 GiB memory.
  Coprocessor phi(4.0, 2.0, 1e9, 0.01, 1LL << 30);
  // 100 MB transfer = 0.1 s; 8 s host gemm -> 2 s device.
  EXPECT_NEAR(phi.OffloadedSeconds(KernelClass::kGemmBound, 100'000'000,
                                   8.0),
              0.01 + 0.1 + 2.0, 1e-12);
  EXPECT_NEAR(phi.OffloadedSeconds(KernelClass::kBandwidthBound,
                                   100'000'000, 8.0),
              0.01 + 0.1 + 4.0, 1e-12);
}

TEST(CoprocessorTest, LargeKernelsWin_SmallKernelsLose) {
  Coprocessor phi(3.0, 1.5, 6e9, 0.01, 8LL << 30);
  // Long-running kernel: offload wins despite transfer.
  const double long_host = 10.0;
  EXPECT_LT(phi.OffloadedSeconds(KernelClass::kGemmBound, 1 << 30,
                                 long_host),
            long_host);
  // Tiny kernel: launch + transfer overheads dominate ("for small data
  // sets ... data transfer overheads dominate overall runtime").
  const double tiny_host = 0.001;
  EXPECT_GT(phi.OffloadedSeconds(KernelClass::kGemmBound, 1 << 30,
                                 tiny_host),
            tiny_host);
}

TEST(CoprocessorTest, OversizedWorkingSetStaysOnHost) {
  Coprocessor phi(4.0, 2.0, 1e9, 0.01, /*memory_bytes=*/1000);
  EXPECT_DOUBLE_EQ(
      phi.OffloadedSeconds(KernelClass::kGemmBound, 10'000, 5.0), 5.0);
}

TEST(CoprocessorTest, LatencyBoundBarelyAccelerates) {
  Coprocessor phi;
  EXPECT_LT(phi.ComputeSpeedup(KernelClass::kLatencyBound), 1.3);
  EXPECT_GT(phi.ComputeSpeedup(KernelClass::kGemmBound), 2.0);
}

// --- Phi SciDB engine ---------------------------------------------------------------

constexpr double kTinyScale = 0.008;

const core::GenBaseData& TinyData() {
  static const core::GenBaseData* data = [] {
    auto r = core::GenerateDataset(DatasetSize::kSmall, kTinyScale);
    GENBASE_CHECK(r.ok());
    return new core::GenBaseData(std::move(r).ValueOrDie());
  }();
  return *data;
}

core::QueryParams TinyParams() {
  core::QueryParams p;
  p.svd_rank = 6;
  p.bicluster_count = 2;
  p.sample_fraction = 0.1;
  return p;
}

class PhiAgreementTest : public ::testing::TestWithParam<QueryId> {};

TEST_P(PhiAgreementTest, SameAnswerAsReference) {
  PhiSciDbEngine engine;
  ASSERT_TRUE(engine.LoadDataset(TinyData()).ok());
  ExecContext ctx;
  engine.PrepareContext(&ctx);
  auto result = engine.RunQuery(GetParam(), TinyParams(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected =
      core::RunReferenceQuery(GetParam(), TinyData(), TinyParams());
  ASSERT_TRUE(expected.ok());
  const genbase::Status match = core::CompareQueryResults(*expected, *result);
  EXPECT_TRUE(match.ok()) << match.ToString();
  // Analytics must be reported as modeled (virtual) device time.
  EXPECT_GT(ctx.clock().modeled(Phase::kAnalytics), 0.0);
  EXPECT_DOUBLE_EQ(ctx.clock().measured(Phase::kAnalytics), 0.0);
  // Data management is identical to plain SciDB: measured, not modeled.
  EXPECT_GT(ctx.clock().measured(Phase::kDataManagement), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PhiAgreementTest,
                         ::testing::ValuesIn(std::vector<QueryId>(
                             std::begin(core::kAllQueries),
                             std::end(core::kAllQueries))),
                         [](const ::testing::TestParamInfo<QueryId>& info) {
                           return std::string(core::QueryName(info.param));
                         });

TEST(PhiEngineTest, NameDistinguishesConfiguration) {
  PhiSciDbEngine phi;
  EXPECT_EQ(phi.name(), "SciDB + Xeon Phi");
  EXPECT_EQ(engine::CreateSciDb()->name(), "SciDB");
}

}  // namespace
}  // namespace genbase::accel
