#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "relational/col_ops.h"
#include "relational/restructure.h"
#include "relational/row_ops.h"
#include "storage/column_store.h"
#include "storage/row_store.h"

namespace genbase::relational {
namespace {

using storage::ColumnTable;
using storage::DataType;
using storage::RowStore;
using storage::Schema;
using storage::Value;

Schema PairSchema() {
  return Schema({{"key", DataType::kInt64}, {"val", DataType::kDouble}});
}

RowStore MakeRowTable(const std::vector<std::pair<int64_t, double>>& rows) {
  RowStore t(PairSchema());
  for (const auto& [k, v] : rows) {
    GENBASE_CHECK_OK(t.AppendRow({Value::Int(k), Value::Double(v)}));
  }
  return t;
}

ColumnTable MakeColTable(const std::vector<std::pair<int64_t, double>>& rows) {
  ColumnTable t(PairSchema());
  for (const auto& [k, v] : rows) {
    GENBASE_CHECK_OK(t.AppendRow({Value::Int(k), Value::Double(v)}));
  }
  return t;
}

// --- Volcano row operators ----------------------------------------------------------

TEST(RowOpsTest, ScanProducesAllRows) {
  RowStore t = MakeRowTable({{1, 0.1}, {2, 0.2}, {3, 0.3}});
  RowScan scan(&t);
  auto count = CountRows(&scan, nullptr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3);
}

TEST(RowOpsTest, FilterDropsNonMatching) {
  RowStore t = MakeRowTable({{1, 0.1}, {2, 0.2}, {3, 0.3}, {4, 0.4}});
  RowFilter filter(std::make_unique<RowScan>(&t),
                   [](const std::vector<Value>& r) {
                     return r[0].AsInt() % 2 == 0;
                   });
  ASSERT_TRUE(filter.Open(nullptr).ok());
  std::vector<Value> row;
  std::vector<int64_t> keys;
  for (;;) {
    auto more = filter.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    keys.push_back(row[0].AsInt());
  }
  EXPECT_EQ(keys, (std::vector<int64_t>{2, 4}));
}

TEST(RowOpsTest, ProjectReordersColumns) {
  RowStore t = MakeRowTable({{7, 1.5}});
  RowProject proj(std::make_unique<RowScan>(&t), {1, 0});
  ASSERT_TRUE(proj.Open(nullptr).ok());
  std::vector<Value> row;
  auto more = proj.Next(&row);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_DOUBLE_EQ(row[0].AsDouble(), 1.5);
  EXPECT_EQ(row[1].AsInt(), 7);
  EXPECT_EQ(proj.schema().field(0).name, "val");
}

/// Join oracle: nested loops.
std::multiset<std::pair<int64_t, int64_t>> NestedLoopJoinKeys(
    const std::vector<std::pair<int64_t, double>>& left,
    const std::vector<std::pair<int64_t, double>>& right) {
  std::multiset<std::pair<int64_t, int64_t>> out;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (left[i].first == right[j].first) {
        out.insert({static_cast<int64_t>(i), static_cast<int64_t>(j)});
      }
    }
  }
  return out;
}

TEST(RowOpsTest, HashJoinMatchesNestedLoopOracle) {
  Rng rng(5);
  std::vector<std::pair<int64_t, double>> left, right;
  for (int i = 0; i < 60; ++i) {
    left.push_back({rng.UniformInt(0, 15), i * 1.0});
  }
  for (int i = 0; i < 80; ++i) {
    right.push_back({rng.UniformInt(0, 15), i * 2.0});
  }
  RowStore lt = MakeRowTable(left);
  RowStore rt = MakeRowTable(right);
  RowHashJoin join(std::make_unique<RowScan>(&lt),
                   std::make_unique<RowScan>(&rt), 0, 0);
  ASSERT_TRUE(join.Open(nullptr).ok());
  int64_t matches = 0;
  std::vector<Value> row;
  for (;;) {
    auto more = join.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(row[0].AsInt(), row[2].AsInt());  // Keys agree.
    ++matches;
  }
  EXPECT_EQ(matches,
            static_cast<int64_t>(NestedLoopJoinKeys(left, right).size()));
}

TEST(RowOpsTest, HashJoinEmptyBuildSide) {
  RowStore lt = MakeRowTable({});
  RowStore rt = MakeRowTable({{1, 1.0}});
  RowHashJoin join(std::make_unique<RowScan>(&lt),
                   std::make_unique<RowScan>(&rt), 0, 0);
  ASSERT_TRUE(join.Open(nullptr).ok());
  std::vector<Value> row;
  auto more = join.Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(RowOpsTest, MaterializePreservesRows) {
  RowStore t = MakeRowTable({{1, 0.5}, {2, 1.5}});
  RowScan scan(&t);
  auto mat = MaterializeRows(&scan, nullptr, nullptr);
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->num_rows(), 2);
  EXPECT_DOUBLE_EQ(mat->GetDouble(1, 1), 1.5);
}

TEST(RowOpsTest, DeadlineAbortsScan) {
  std::vector<std::pair<int64_t, double>> rows(100000, {1, 1.0});
  RowStore t = MakeRowTable(rows);
  ExecContext ctx;
  ctx.SetDeadlineAfter(-1.0);
  RowScan scan(&t);
  auto count = CountRows(&scan, &ctx);
  EXPECT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsDeadlineExceeded());
}

// --- vectorized column operators ------------------------------------------------------

TEST(ColOpsTest, FilterSinglePredicate) {
  ColumnTable t = MakeColTable({{5, 0.1}, {2, 0.2}, {9, 0.3}, {2, 0.4}});
  auto sel = FilterColumns(t, {ColumnPredicate::Eq(0, Value::Int(2))},
                           nullptr);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (std::vector<int64_t>{1, 3}));
}

TEST(ColOpsTest, FilterConjunction) {
  ColumnTable t = MakeColTable(
      {{1, 0.1}, {2, 0.9}, {3, 0.95}, {4, 0.2}, {5, 0.99}});
  auto sel = FilterColumns(t,
                           {ColumnPredicate::Gt(1, Value::Double(0.5)),
                            ColumnPredicate::Ge(0, Value::Int(3))},
                           nullptr);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (std::vector<int64_t>{2, 4}));
}

TEST(ColOpsTest, EmptyPredicateListSelectsAll) {
  ColumnTable t = MakeColTable({{1, 0.1}, {2, 0.2}});
  auto sel = FilterColumns(t, {}, nullptr);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 2u);
}

TEST(ColOpsTest, AllOperatorsAgainstScalarOracle) {
  Rng rng(17);
  ColumnTable t(PairSchema());
  std::vector<int64_t> keys;
  for (int i = 0; i < 500; ++i) {
    const int64_t k = rng.UniformInt(-20, 20);
    keys.push_back(k);
    GENBASE_CHECK_OK(t.AppendRow({Value::Int(k), Value::Double(0)}));
  }
  const int64_t pivot = 3;
  struct OpCase {
    ColumnPredicate::Op op;
    std::function<bool(int64_t)> oracle;
  };
  const std::vector<OpCase> cases = {
      {ColumnPredicate::Op::kLt, [&](int64_t v) { return v < pivot; }},
      {ColumnPredicate::Op::kLe, [&](int64_t v) { return v <= pivot; }},
      {ColumnPredicate::Op::kEq, [&](int64_t v) { return v == pivot; }},
      {ColumnPredicate::Op::kGe, [&](int64_t v) { return v >= pivot; }},
      {ColumnPredicate::Op::kGt, [&](int64_t v) { return v > pivot; }},
  };
  for (const auto& c : cases) {
    ColumnPredicate pred{0, c.op, Value::Int(pivot)};
    auto sel = FilterColumns(t, {pred}, nullptr);
    ASSERT_TRUE(sel.ok());
    std::vector<int64_t> expected;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (c.oracle(keys[i])) expected.push_back(static_cast<int64_t>(i));
    }
    EXPECT_EQ(*sel, expected);
  }
}

TEST(ColOpsTest, GatherRows) {
  ColumnTable t = MakeColTable({{1, 0.1}, {2, 0.2}, {3, 0.3}});
  auto g = GatherRows(t, {2, 0}, nullptr, nullptr);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_rows(), 2);
  EXPECT_EQ(g->IntColumn(0)[0], 3);
  EXPECT_EQ(g->IntColumn(0)[1], 1);
}

TEST(ColOpsTest, HashJoinMatchesRowJoinCount) {
  Rng rng(23);
  std::vector<std::pair<int64_t, double>> left, right;
  for (int i = 0; i < 40; ++i) left.push_back({rng.UniformInt(0, 9), 0.0});
  for (int i = 0; i < 70; ++i) right.push_back({rng.UniformInt(0, 9), 0.0});
  ColumnTable lt = MakeColTable(left);
  ColumnTable rt = MakeColTable(right);
  auto join = HashJoinIndices(lt, 0, rt, 0, nullptr, nullptr);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->left.size(),
            NestedLoopJoinKeys(left, right).size());
  // Every match pair must actually agree on the key.
  for (size_t i = 0; i < join->left.size(); ++i) {
    EXPECT_EQ(left[static_cast<size_t>(join->left[i])].first,
              right[static_cast<size_t>(join->right[i])].first);
  }
}

TEST(ColOpsTest, JoinRespectsLeftSelection) {
  ColumnTable lt = MakeColTable({{1, 0}, {2, 0}, {3, 0}});
  ColumnTable rt = MakeColTable({{1, 0}, {2, 0}, {3, 0}, {2, 0}});
  auto join = HashJoinIndicesFiltered(lt, 0, {1}, rt, 0, nullptr, nullptr);
  ASSERT_TRUE(join.ok());
  ASSERT_EQ(join->left.size(), 2u);  // Key 2 appears twice on the right.
  EXPECT_EQ(join->left[0], 1);
  EXPECT_EQ(join->left[1], 1);
}

// --- restructure -------------------------------------------------------------------

TEST(RestructureTest, MappingSortsAndDedupes) {
  DenseMapping m = MakeDenseMapping({5, 1, 5, 3});
  EXPECT_EQ(m.ids, (std::vector<int64_t>{1, 3, 5}));
  EXPECT_EQ(m.index.at(3), 1);
}

TEST(RestructureTest, TriplesScatterIntoMatrix) {
  const std::vector<int64_t> rows = {10, 10, 20};
  const std::vector<int64_t> cols = {100, 200, 200};
  const std::vector<double> vals = {1.0, 2.0, 3.0};
  DenseMapping rm = MakeDenseMapping({10, 20});
  DenseMapping cm = MakeDenseMapping({100, 200});
  auto m = TriplesToMatrix(rows.data(), cols.data(), vals.data(), 3, rm, cm,
                           nullptr, nullptr);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ((*m)(0, 1), 2.0);
  EXPECT_DOUBLE_EQ((*m)(1, 1), 3.0);
  EXPECT_DOUBLE_EQ((*m)(1, 0), 0.0);
}

TEST(RestructureTest, UnmappedIdsAreSkipped) {
  const std::vector<int64_t> rows = {1, 99};
  const std::vector<int64_t> cols = {1, 1};
  const std::vector<double> vals = {5.0, 7.0};
  DenseMapping rm = MakeDenseMapping({1});
  DenseMapping cm = MakeDenseMapping({1});
  auto m = TriplesToMatrix(rows.data(), cols.data(), vals.data(), 2, rm, cm,
                           nullptr, nullptr);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)(0, 0), 5.0);
}

}  // namespace
}  // namespace genbase::relational
