#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/array_store.h"
#include "storage/column_store.h"
#include "storage/row_store.h"
#include "storage/types.h"

namespace genbase::storage {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"weight", DataType::kDouble},
                 {"group", DataType::kInt64}});
}

// --- types --------------------------------------------------------------------

TEST(ValueTest, TypedAccess) {
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Int(5).ToDouble(), 5.0);
  EXPECT_TRUE(Value::Int(3) == Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Double(3.0));
}

TEST(SchemaTest, FieldLookup) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 3);
  EXPECT_EQ(s.FieldIndex("weight"), 1);
  EXPECT_EQ(s.FieldIndex("missing"), -1);
  EXPECT_EQ(s.row_width(), 24);
  EXPECT_EQ(s.ToString(), "(id:int64, weight:double, group:int64)");
}

// --- RowStore -------------------------------------------------------------------

TEST(RowStoreTest, AppendAndGet) {
  RowStore t(TestSchema());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::Double(i * 0.5),
                             Value::Int(i % 3)})
                    .ok());
  }
  EXPECT_EQ(t.num_rows(), 10);
  EXPECT_EQ(t.GetInt(7, 0), 7);
  EXPECT_DOUBLE_EQ(t.GetDouble(7, 1), 3.5);
  EXPECT_EQ(t.GetInt(7, 2), 1);
}

TEST(RowStoreTest, SpansManyPages) {
  RowStore t(TestSchema());
  const int64_t rows = 10000;  // 24 B/row * 10000 > 64 KiB.
  for (int64_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::Double(i),
                             Value::Int(-i)})
                    .ok());
  }
  EXPECT_GT(t.bytes(), RowStore::kPageBytes);
  for (int64_t i = 0; i < rows; i += 997) {
    EXPECT_EQ(t.GetInt(i, 0), i);
    EXPECT_EQ(t.GetInt(i, 2), -i);
  }
}

TEST(RowStoreTest, ChargesAndReleasesTracker) {
  MemoryTracker tracker(10 << 20);
  {
    RowStore t(TestSchema(), &tracker);
    ASSERT_TRUE(
        t.AppendRow({Value::Int(1), Value::Double(1), Value::Int(1)}).ok());
    EXPECT_EQ(tracker.used(), RowStore::kPageBytes);
  }
  EXPECT_EQ(tracker.used(), 0);
}

TEST(RowStoreTest, BudgetFailureOnAppend) {
  MemoryTracker tracker(1000);  // Less than one page.
  RowStore t(TestSchema(), &tracker);
  Status s =
      t.AppendRow({Value::Int(1), Value::Double(1), Value::Int(1)});
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(RowStoreTest, MoveTransfersOwnership) {
  MemoryTracker tracker(10 << 20);
  RowStore a(TestSchema(), &tracker);
  ASSERT_TRUE(
      a.AppendRow({Value::Int(9), Value::Double(9), Value::Int(9)}).ok());
  RowStore b = std::move(a);
  EXPECT_EQ(b.num_rows(), 1);
  EXPECT_EQ(b.GetInt(0, 0), 9);
  EXPECT_EQ(tracker.used(), RowStore::kPageBytes);
}

// --- ColumnTable ------------------------------------------------------------------

TEST(ColumnTableTest, AppendRowAndTypedColumns) {
  ColumnTable t(TestSchema());
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::Double(2.0 * i),
                             Value::Int(i * i)})
                    .ok());
  }
  EXPECT_EQ(t.num_rows(), 5);
  EXPECT_EQ(t.IntColumn(0)[3], 3);
  EXPECT_DOUBLE_EQ(t.DoubleColumn(1)[3], 6.0);
  EXPECT_EQ(t.Get(4, 2).AsInt(), 16);
}

TEST(ColumnTableTest, BulkLoadPath) {
  ColumnTable t(TestSchema());
  ASSERT_TRUE(t.Reserve(3).ok());
  t.MutableIntColumn(0) = {1, 2, 3};
  t.MutableDoubleColumn(1) = {0.1, 0.2, 0.3};
  t.MutableIntColumn(2) = {7, 8, 9};
  ASSERT_TRUE(t.FinishBulkLoad().ok());
  EXPECT_EQ(t.num_rows(), 3);
}

TEST(ColumnTableTest, BulkLoadDetectsRaggedColumns) {
  ColumnTable t(TestSchema());
  t.MutableIntColumn(0) = {1, 2, 3};
  t.MutableDoubleColumn(1) = {0.1};
  t.MutableIntColumn(2) = {7, 8, 9};
  EXPECT_FALSE(t.FinishBulkLoad().ok());
}

TEST(ColumnTableTest, ReserveChargesTracker) {
  MemoryTracker tracker(1 << 20);
  ColumnTable t(TestSchema(), &tracker);
  ASSERT_TRUE(t.Reserve(100).ok());
  EXPECT_EQ(tracker.used(), 100 * 24);
}

TEST(ColumnTableTest, ReserveFailsOverBudget) {
  MemoryTracker tracker(100);
  ColumnTable t(TestSchema(), &tracker);
  EXPECT_TRUE(t.Reserve(1000).IsOutOfMemory());
}

// --- ChunkedArray2D ------------------------------------------------------------------

TEST(ChunkedArrayTest, SetGetAcrossChunkBoundaries) {
  auto a = ChunkedArray2D::Create(300, 520, nullptr, 256);
  ASSERT_TRUE(a.ok());
  a->Set(0, 0, 1.5);
  a->Set(255, 255, 2.5);
  a->Set(256, 256, 3.5);
  a->Set(299, 519, 4.5);
  EXPECT_DOUBLE_EQ(a->Get(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a->Get(255, 255), 2.5);
  EXPECT_DOUBLE_EQ(a->Get(256, 256), 3.5);
  EXPECT_DOUBLE_EQ(a->Get(299, 519), 4.5);
  EXPECT_DOUBLE_EQ(a->Get(100, 100), 0.0);
}

TEST(ChunkedArrayTest, MatrixRoundTrip) {
  Rng rng(3);
  linalg::Matrix m(70, 90);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  auto a = ChunkedArray2D::FromMatrix(linalg::MatrixView(m), nullptr, 32);
  ASSERT_TRUE(a.ok());
  auto back = a->ToMatrix(nullptr);
  ASSERT_TRUE(back.ok());
  for (int64_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(back->data()[i], m.data()[i]);
  }
}

TEST(ChunkedArrayTest, GatherSubmatrix) {
  auto a = ChunkedArray2D::Create(10, 10, nullptr, 4);
  ASSERT_TRUE(a.ok());
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 10; ++j) a->Set(i, j, i * 10.0 + j);
  }
  auto sub = a->GatherSubmatrix({1, 5, 9}, {0, 7}, nullptr);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->rows(), 3);
  EXPECT_EQ(sub->cols(), 2);
  EXPECT_DOUBLE_EQ((*sub)(0, 0), 10.0);
  EXPECT_DOUBLE_EQ((*sub)(1, 1), 57.0);
  EXPECT_DOUBLE_EQ((*sub)(2, 0), 90.0);
}

TEST(ChunkedArrayTest, TrackerChargedForChunks) {
  MemoryTracker tracker(MemoryTracker::kUnlimited);
  auto a = ChunkedArray2D::Create(100, 100, &tracker, 64);
  ASSERT_TRUE(a.ok());
  // 2x2 chunk grid of 64x64 chunks.
  EXPECT_EQ(tracker.used(), 4 * 64 * 64 * 8);
}

TEST(ChunkedArrayTest, BudgetFailure) {
  MemoryTracker tracker(1000);
  auto a = ChunkedArray2D::Create(1000, 1000, &tracker);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(a.status().IsOutOfMemory());
  EXPECT_EQ(tracker.used(), 0);
}

TEST(ChunkedArrayTest, RejectsBadShapes) {
  EXPECT_FALSE(ChunkedArray2D::Create(-1, 5).ok());
  EXPECT_FALSE(ChunkedArray2D::Create(5, 5, nullptr, 0).ok());
}

}  // namespace
}  // namespace genbase::storage
