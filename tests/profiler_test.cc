#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"

namespace genbase::obs {
namespace {

/// Restores the process-global profiling switch around each test so suites
/// sharing the binary never observe each other's state.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Profiler::Enabled(); }
  void TearDown() override { Profiler::SetEnabled(saved_); }
  bool saved_ = false;
};

TEST_F(ProfilerTest, DisabledCpuClockIsSentinel) {
  Profiler::SetEnabled(false);
  const double begin = Profiler::CpuBegin();
  EXPECT_LT(begin, 0.0);
  EXPECT_EQ(Profiler::CpuDelta(begin), 0.0);
}

TEST_F(ProfilerTest, EnabledCpuClockAdvancesMonotonically) {
  Profiler::SetEnabled(true);
  const double begin = Profiler::CpuBegin();
  ASSERT_GE(begin, 0.0);
  // Burn a little CPU so the delta is strictly positive even on coarse
  // clocks.
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += i * 1e-9;
  const double delta = Profiler::CpuDelta(begin);
  EXPECT_GT(delta, 0.0);
  EXPECT_LT(delta, 60.0);  // Sanity: seconds, not nanoseconds.
}

TEST_F(ProfilerTest, SetEnabledToggles) {
  Profiler::SetEnabled(true);
  EXPECT_TRUE(Profiler::Enabled());
  Profiler::SetEnabled(false);
  EXPECT_FALSE(Profiler::Enabled());
}

TEST_F(ProfilerTest, RssReadableOnLinux) {
#if defined(__linux__)
  const int64_t rss = ReadRssBytes();
  EXPECT_GT(rss, 0);
  // A test binary holds at least a page and at most ~terabytes.
  EXPECT_LT(rss, int64_t{1} << 42);
#else
  EXPECT_EQ(ReadRssBytes(), -1);
#endif
}

TEST_F(ProfilerTest, SampleProcessRssPublishesGauges) {
  const int64_t sampled = SampleProcessRss();
  if (sampled < 0) GTEST_SKIP() << "RSS unavailable on this platform";
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("process_rss_bytes", {})->Value(), sampled);
  EXPECT_GE(registry.GetGauge("process_peak_rss_bytes", {})->Value(),
            sampled);
  // Peak is a high-water mark: a second sample never lowers it.
  const int64_t peak =
      registry.GetGauge("process_peak_rss_bytes", {})->Value();
  SampleProcessRss();
  EXPECT_GE(registry.GetGauge("process_peak_rss_bytes", {})->Value(), peak);
}

TEST_F(ProfilerTest, PerfCountersDegradeGracefully) {
  // Whatever the host allows (perf_event_paranoid, missing PMU), opening
  // and reading must never crash or error: either the set is available and
  // reads are valid, or it is unavailable and reads are invalid.
  PerfCounterSet* set = ThreadPerfCounters();
  ASSERT_NE(set, nullptr);
  const PerfReading reading = set->Read();
  EXPECT_EQ(reading.valid, set->available());
  if (reading.valid) {
    EXPECT_GE(reading.cycles, 0);
    EXPECT_GE(reading.instructions, 0);
  } else {
    EXPECT_EQ(reading.ipc(), 0.0);
    EXPECT_EQ(reading.cache_miss_rate(), 0.0);
  }
}

TEST_F(ProfilerTest, InvalidPerfReadingSerializesAsNulls) {
  const PerfReading invalid;
  const std::string json = invalid.ToJson();
  EXPECT_NE(json.find("\"cycles\":null"), std::string::npos);
  EXPECT_NE(json.find("\"ipc\":null"), std::string::npos);
}

TEST_F(ProfilerTest, ExecutePerfScopeAccumulatesOrStaysSilent) {
  Profiler::SetEnabled(true);
  const ExecutePerfTotals before = ExecutePerfSnapshot();
  {
    ScopedExecutePerf scope;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  const ExecutePerfTotals delta = ExecutePerfSnapshot() - before;
  if (ThreadPerfCounters()->available()) {
    EXPECT_EQ(delta.samples, 1);
    EXPECT_TRUE(delta.reading.valid);
    EXPECT_GT(delta.reading.cycles, 0);
    EXPECT_GT(delta.reading.instructions, 0);
  } else {
    EXPECT_EQ(delta.samples, 0);
    EXPECT_FALSE(delta.reading.valid);
  }
}

TEST_F(ProfilerTest, ExecutePerfScopeInertWhenDisabled) {
  Profiler::SetEnabled(false);
  const ExecutePerfTotals before = ExecutePerfSnapshot();
  {
    ScopedExecutePerf scope;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  const ExecutePerfTotals delta = ExecutePerfSnapshot() - before;
  EXPECT_EQ(delta.samples, 0);
  EXPECT_FALSE(delta.reading.valid);
}

}  // namespace
}  // namespace genbase::obs
