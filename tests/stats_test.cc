#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "stats/normal.h"
#include "stats/quantile.h"
#include "stats/ranking.h"
#include "stats/wilcoxon.h"

namespace genbase::stats {
namespace {

// --- ranking ------------------------------------------------------------------

TEST(RankingTest, SimpleOrder) {
  const std::vector<double> v = {10, 30, 20};
  const auto r = AverageRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(RankingTest, TiesGetMidRanks) {
  const std::vector<double> v = {5, 5, 1, 9};
  const auto r = AverageRanks(v);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(RankingTest, AllEqual) {
  const std::vector<double> v = {2, 2, 2};
  const auto r = AverageRanks(v);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(RankingTest, RankSumIsInvariant) {
  // Sum of ranks is always n(n+1)/2 regardless of ties.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(50);
    for (auto& x : v) x = rng.UniformInt(0, 9);  // Many ties.
    const auto r = AverageRanks(v);
    double sum = 0;
    for (double x : r) sum += x;
    EXPECT_NEAR(sum, 50.0 * 51.0 / 2.0, 1e-9);
  }
}

TEST(RankingTest, TieGroupSizes) {
  const std::vector<double> v = {1, 2, 2, 3, 3, 3};
  const auto g = TieGroupSizes(v);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g[0], 2);
  EXPECT_EQ(g[1], 3);
}

TEST(RankingTest, SingleSortProducesRanksAndTiesTogether) {
  const std::vector<double> v = {7, 1, 7, 7, 3, 1};
  const RankedValues r = RankWithTies(v);
  // Sorted: 1 1 3 7 7 7 -> mid-ranks 1.5 1.5 3 5 5 5, groups {2, 3}.
  EXPECT_DOUBLE_EQ(r.ranks[1], 1.5);
  EXPECT_DOUBLE_EQ(r.ranks[5], 1.5);
  EXPECT_DOUBLE_EQ(r.ranks[4], 3.0);
  EXPECT_DOUBLE_EQ(r.ranks[0], 5.0);
  ASSERT_EQ(r.tie_group_sizes.size(), 2u);
  EXPECT_EQ(r.tie_group_sizes[0], 2);
  EXPECT_EQ(r.tie_group_sizes[1], 3);
}

TEST(RankingTest, TieHeavyRegression) {
  // Tie-heavy inputs are the Wilcoxon (Q4/Q5) hot case: integer-quantized
  // scores collapse into a few large tie runs. Check the fused single-sort
  // path against a brute-force oracle on many random tie-heavy vectors.
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t n = 1 + rng.UniformInt(0, 199);
    std::vector<double> v(static_cast<size_t>(n));
    for (auto& x : v) x = rng.UniformInt(0, 4);  // ~n/5 per tie run.
    const RankedValues got = RankWithTies(v);
    // Brute-force mid-rank: 1-based count of smaller values, plus half the
    // remaining tied values (including self -> +0.5 each, +1 for self).
    for (size_t i = 0; i < v.size(); ++i) {
      int64_t smaller = 0, equal = 0;
      for (size_t j = 0; j < v.size(); ++j) {
        if (v[j] < v[i]) ++smaller;
        if (v[j] == v[i]) ++equal;
      }
      const double want =
          static_cast<double>(smaller) + 0.5 * static_cast<double>(equal + 1);
      ASSERT_DOUBLE_EQ(got.ranks[i], want) << "trial=" << trial;
    }
    // Tie groups: multiset of value multiplicities > 1, ascending by value.
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int64_t> want_groups;
    for (size_t i = 0; i < sorted.size();) {
      size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      if (j > i) want_groups.push_back(static_cast<int64_t>(j - i + 1));
      i = j + 1;
    }
    ASSERT_EQ(got.tie_group_sizes, want_groups) << "trial=" << trial;
    // Mid-rank invariant: ranks always sum to n(n+1)/2.
    double sum = 0;
    for (double x : got.ranks) sum += x;
    ASSERT_NEAR(sum, 0.5 * static_cast<double>(n) *
                         static_cast<double>(n + 1), 1e-9);
  }
}

// --- normal ---------------------------------------------------------------------

TEST(NormalTest, KnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(StdNormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(StdNormalSf(1.644853627), 0.05, 1e-6);
}

TEST(NormalTest, TwoSidedPValue) {
  EXPECT_NEAR(TwoSidedNormalPValue(1.959963985), 0.05, 1e-6);
  EXPECT_NEAR(TwoSidedNormalPValue(-1.959963985), 0.05, 1e-6);
  EXPECT_NEAR(TwoSidedNormalPValue(0.0), 1.0, 1e-12);
}

// --- quantile ---------------------------------------------------------------------

TEST(QuantileTest, MedianOfOddSet) {
  auto q = Quantile({5, 1, 3}, 0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(*q, 3.0);
}

TEST(QuantileTest, ExtremesAreMinMax) {
  const std::vector<double> v = {4, 8, 15, 16, 23, 42};
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.0), 4.0);
  // q = 1.0 clamps to the last element.
  EXPECT_DOUBLE_EQ(*Quantile(v, 1.0), 42.0);
}

TEST(QuantileTest, NinetiethPercentileSeparatesTopDecile) {
  std::vector<double> v(1000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  auto q = Quantile(v, 0.9);
  ASSERT_TRUE(q.ok());
  int64_t above = 0;
  for (double x : v) above += x > *q;
  EXPECT_NEAR(static_cast<double>(above), 100.0, 2.0);
}

TEST(QuantileTest, RejectsBadInput) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
}

TEST(SampledQuantileTest, FullCopyWhenSmall) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  auto q = SampledQuantile(v.data(), 5, 0.5, 100, 1);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(*q, 3.0);
}

TEST(SampledQuantileTest, SampleApproximatesTrueQuantile) {
  Rng rng(77);
  std::vector<double> v(200000);
  for (auto& x : v) x = rng.Uniform();
  auto q = SampledQuantile(v.data(), static_cast<int64_t>(v.size()), 0.9,
                           20000, 7);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(*q, 0.9, 0.02);
}

// --- Wilcoxon -----------------------------------------------------------------------

TEST(WilcoxonTest, RejectsDegenerateGroups) {
  EXPECT_FALSE(WilcoxonRankSum({1, 2}, {true, true}).ok());
  EXPECT_FALSE(WilcoxonRankSum({1, 2}, {false, false}).ok());
  EXPECT_FALSE(WilcoxonRankSum({1, 2}, {true}).ok());
}

TEST(WilcoxonTest, BalancedGroupsGiveZeroZ) {
  // Group ranks symmetric around the middle -> z == 0.
  const std::vector<double> v = {1, 2, 3, 4};
  const std::vector<bool> mask = {true, false, false, true};
  auto r = WilcoxonRankSum(v, mask);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->z, 0.0, 1e-12);
  EXPECT_NEAR(r->p_two_sided, 1.0, 1e-12);
}

TEST(WilcoxonTest, ExtremeSeparationIsSignificant) {
  std::vector<double> v(40);
  std::vector<bool> mask(40);
  for (int i = 0; i < 40; ++i) {
    v[i] = i;
    mask[i] = i >= 30;  // Top 10 values in-group.
  }
  auto r = WilcoxonRankSum(v, mask);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_two_sided, 1e-4);
  EXPECT_GT(r->z, 3.0);
}

TEST(WilcoxonTest, SymmetricUnderGroupSwap) {
  Rng rng(123);
  std::vector<double> v(30);
  std::vector<bool> mask(30), inv(30);
  for (int i = 0; i < 30; ++i) {
    v[i] = rng.Gaussian();
    mask[i] = rng.Bernoulli(0.4);
    inv[i] = !mask[i];
  }
  int in = std::count(mask.begin(), mask.end(), true);
  if (in == 0 || in == 30) GTEST_SKIP();
  auto a = WilcoxonRankSum(v, mask);
  auto b = WilcoxonRankSum(v, inv);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->z, -b->z, 1e-9);
  EXPECT_NEAR(a->p_two_sided, b->p_two_sided, 1e-9);
}

TEST(WilcoxonTest, AllValuesEqualGivesPOne) {
  const std::vector<double> v = {3, 3, 3, 3};
  const std::vector<bool> mask = {true, true, false, false};
  auto r = WilcoxonRankSum(v, mask);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->p_two_sided, 1.0);
}

/// Property test: the normal approximation with continuity correction should
/// track the exact enumeration p-value on small inputs.
struct ExactCase {
  uint64_t seed;
  int n;
  int k;
};

class WilcoxonExactTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(WilcoxonExactTest, NormalApproxTracksExact) {
  const auto p = GetParam();
  Rng rng(p.seed);
  std::vector<double> v(p.n);
  std::vector<bool> mask(p.n, false);
  for (auto& x : v) x = rng.Gaussian();
  for (int i = 0; i < p.k; ++i) mask[i] = true;
  // Shuffle the mask deterministically (vector<bool> needs a manual swap).
  for (int i = p.n - 1; i > 0; --i) {
    const int64_t j = rng.UniformInt(0, i);
    const bool tmp = mask[static_cast<size_t>(i)];
    mask[static_cast<size_t>(i)] = mask[static_cast<size_t>(j)];
    mask[static_cast<size_t>(j)] = tmp;
  }
  if (std::count(mask.begin(), mask.end(), true) == 0) GTEST_SKIP();
  auto approx = WilcoxonRankSum(v, mask);
  auto exact = ExactRankSumPValue(v, mask);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  // The approximation is coarse at these sizes; assert agreement within a
  // generous band plus matching significance direction at alpha = 0.25.
  EXPECT_NEAR(approx->p_two_sided, *exact, 0.12)
      << "n=" << p.n << " k=" << p.k;
}

INSTANTIATE_TEST_SUITE_P(
    SmallInputs, WilcoxonExactTest,
    ::testing::Values(ExactCase{1, 10, 3}, ExactCase{2, 12, 6},
                      ExactCase{3, 14, 4}, ExactCase{4, 15, 7},
                      ExactCase{5, 16, 8}, ExactCase{6, 12, 2},
                      ExactCase{7, 18, 9}, ExactCase{8, 18, 5}));

TEST(WilcoxonExactTest, ExactRejectsLargeInput) {
  std::vector<double> v(25, 0.0);
  std::vector<bool> m(25, false);
  m[0] = true;
  EXPECT_FALSE(ExactRankSumPValue(v, m).ok());
}

TEST(WilcoxonTest, UStatisticIdentity) {
  // U1 + U2 == n1 * n2.
  Rng rng(321);
  std::vector<double> v(20);
  std::vector<bool> mask(20), inv(20);
  for (int i = 0; i < 20; ++i) {
    v[i] = rng.Gaussian();
    mask[i] = i < 8;
    inv[i] = !mask[i];
  }
  auto a = WilcoxonRankSum(v, mask);
  auto b = WilcoxonRankSum(v, inv);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->u_statistic + b->u_statistic, 8.0 * 12.0, 1e-9);
}

}  // namespace
}  // namespace genbase::stats
