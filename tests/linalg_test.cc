#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/covariance.h"
#include "linalg/jacobi.h"
#include "linalg/lanczos.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/randomized_svd.h"
#include "linalg/svd.h"
#include "linalg/tridiag.h"

namespace genbase::linalg {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed,
                    double scale = 1.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Gaussian(0.0, scale);
  }
  return m;
}

Matrix RandomSymmetricPsd(int64_t n, uint64_t seed) {
  // A^T A is symmetric PSD by construction.
  Matrix a = RandomMatrix(n + 5, n, seed);
  Matrix c(n, n);
  GENBASE_CHECK_OK(Syrk(MatrixView(a), &c));
  return c;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  double worst = 0;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

// --- BLAS-1 -------------------------------------------------------------------

TEST(Blas1Test, DotMatchesManual) {
  const double x[] = {1, 2, 3, 4, 5};
  const double y[] = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(Dot(x, y, 5), 5 + 8 + 9 + 8 + 5);
}

TEST(Blas1Test, Nrm2AvoidsOverflow) {
  const double x[] = {1e200, 1e200};
  EXPECT_NEAR(Nrm2(x, 2), std::sqrt(2.0) * 1e200, 1e186);
}

TEST(Blas1Test, AxpyAndScal) {
  double y[] = {1, 1, 1};
  const double x[] = {1, 2, 3};
  Axpy(2.0, x, y, 3);
  EXPECT_DOUBLE_EQ(y[0], 3);
  EXPECT_DOUBLE_EQ(y[2], 7);
  Scal(0.5, y, 3);
  EXPECT_DOUBLE_EQ(y[0], 1.5);
}

// --- GEMM family: tuned vs naive oracle ------------------------------------------

struct GemmShape {
  int64_t m, k, n;
  uint64_t seed;
};

class GemmParamTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmParamTest, BlockedMatchesNaive) {
  const auto p = GetParam();
  Matrix a = RandomMatrix(p.m, p.k, p.seed);
  Matrix b = RandomMatrix(p.k, p.n, p.seed + 1);
  Matrix c_tuned(p.m, p.n), c_naive(p.m, p.n);
  ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &c_tuned).ok());
  ASSERT_TRUE(GemmNaive(MatrixView(a), MatrixView(b), &c_naive).ok());
  EXPECT_LT(MaxAbsDiff(c_tuned, c_naive), 1e-9);
}

TEST_P(GemmParamTest, ParallelMatchesSerial) {
  const auto p = GetParam();
  Matrix a = RandomMatrix(p.m, p.k, p.seed);
  Matrix b = RandomMatrix(p.k, p.n, p.seed + 1);
  Matrix serial(p.m, p.n), parallel(p.m, p.n);
  ASSERT_TRUE(Gemm(MatrixView(a), MatrixView(b), &serial).ok());
  ASSERT_TRUE(
      Gemm(MatrixView(a), MatrixView(b), &parallel, DefaultPool()).ok());
  EXPECT_LT(MaxAbsDiff(serial, parallel), 1e-12);
}

TEST_P(GemmParamTest, SyrkMatchesNaive) {
  const auto p = GetParam();
  Matrix a = RandomMatrix(p.m, p.n, p.seed + 2);
  Matrix tuned(p.n, p.n), naive(p.n, p.n);
  ASSERT_TRUE(Syrk(MatrixView(a), &tuned, DefaultPool()).ok());
  ASSERT_TRUE(SyrkNaive(MatrixView(a), &naive).ok());
  EXPECT_LT(MaxAbsDiff(tuned, naive), 1e-9);
}

TEST_P(GemmParamTest, GemmTransposeAMatchesExplicitTranspose) {
  const auto p = GetParam();
  Matrix a = RandomMatrix(p.k, p.m, p.seed + 3);
  Matrix b = RandomMatrix(p.k, p.n, p.seed + 4);
  Matrix at(p.m, p.k);
  for (int64_t i = 0; i < p.k; ++i) {
    for (int64_t j = 0; j < p.m; ++j) at(j, i) = a(i, j);
  }
  Matrix via_t(p.m, p.n), direct(p.m, p.n);
  ASSERT_TRUE(Gemm(MatrixView(at), MatrixView(b), &via_t).ok());
  ASSERT_TRUE(GemmTransposeA(MatrixView(a), MatrixView(b), &direct,
                             DefaultPool()).ok());
  EXPECT_LT(MaxAbsDiff(via_t, direct), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(GemmShape{1, 1, 1, 10}, GemmShape{3, 5, 2, 11},
                      GemmShape{17, 33, 9, 12}, GemmShape{64, 64, 64, 13},
                      GemmShape{65, 63, 70, 14}, GemmShape{128, 40, 100, 15},
                      GemmShape{200, 129, 65, 16}));

TEST(GemmTest, ShapeMismatchRejected) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_FALSE(Gemm(MatrixView(a), MatrixView(b), &c).ok());
}

TEST(GemvTest, MatchesGemm) {
  Matrix a = RandomMatrix(50, 30, 21);
  std::vector<double> x(30), y(50), y2(50);
  Rng rng(22);
  for (auto& v : x) v = rng.Gaussian();
  Gemv(MatrixView(a), x.data(), y.data(), DefaultPool());
  for (int64_t i = 0; i < 50; ++i) {
    y2[i] = Dot(a.Row(i), x.data(), 30);
  }
  for (int64_t i = 0; i < 50; ++i) EXPECT_NEAR(y[i], y2[i], 1e-12);
}

TEST(GemvTest, TransposeMatchesManual) {
  Matrix a = RandomMatrix(40, 25, 23);
  std::vector<double> x(40), y(25), y2(25, 0.0);
  Rng rng(24);
  for (auto& v : x) v = rng.Gaussian();
  GemvTranspose(MatrixView(a), x.data(), y.data(), DefaultPool());
  for (int64_t i = 0; i < 40; ++i) {
    for (int64_t j = 0; j < 25; ++j) y2[j] += a(i, j) * x[i];
  }
  for (int64_t j = 0; j < 25; ++j) EXPECT_NEAR(y[j], y2[j], 1e-10);
}

// --- QR -------------------------------------------------------------------------

struct QrShape {
  int64_t m, n;
  uint64_t seed;
};

class QrParamTest : public ::testing::TestWithParam<QrShape> {};

TEST_P(QrParamTest, ReconstructsA) {
  const auto p = GetParam();
  Matrix a = RandomMatrix(p.m, p.n, p.seed);
  auto qr = HouseholderQr::Factor(a);
  ASSERT_TRUE(qr.ok());
  Matrix q = qr->ThinQ();
  Matrix r = qr->R();
  Matrix qr_product(p.m, p.n);
  ASSERT_TRUE(Gemm(MatrixView(q), MatrixView(r), &qr_product).ok());
  EXPECT_LT(MaxAbsDiff(a, qr_product), 1e-10);
}

TEST_P(QrParamTest, QIsOrthonormal) {
  const auto p = GetParam();
  Matrix a = RandomMatrix(p.m, p.n, p.seed);
  auto qr = HouseholderQr::Factor(std::move(a));
  ASSERT_TRUE(qr.ok());
  Matrix q = qr->ThinQ();
  Matrix qtq(p.n, p.n);
  ASSERT_TRUE(Syrk(MatrixView(q), &qtq).ok());
  for (int64_t i = 0; i < p.n; ++i) {
    for (int64_t j = 0; j < p.n; ++j) {
      EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST_P(QrParamTest, RIsUpperTriangular) {
  const auto p = GetParam();
  auto qr = HouseholderQr::Factor(RandomMatrix(p.m, p.n, p.seed));
  ASSERT_TRUE(qr.ok());
  Matrix r = qr->R();
  for (int64_t i = 0; i < p.n; ++i) {
    for (int64_t j = 0; j < i; ++j) EXPECT_EQ(r(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrParamTest,
                         ::testing::Values(QrShape{1, 1, 30},
                                           QrShape{5, 5, 31},
                                           QrShape{20, 7, 32},
                                           QrShape{100, 40, 33},
                                           QrShape{150, 150, 34}));

TEST(QrTest, RejectsWideMatrix) {
  EXPECT_FALSE(HouseholderQr::Factor(Matrix(3, 5)).ok());
}

TEST(QrTest, ParallelTrailingUpdateBitIdentical) {
  Matrix a = RandomMatrix(300, 120, 35);
  auto serial = HouseholderQr::Factor(a);
  ASSERT_TRUE(serial.ok());
  ExecContext ctx;
  ctx.set_pool(DefaultPool());
  auto parallel = HouseholderQr::Factor(a, &ctx);
  ASSERT_TRUE(parallel.ok());
  // Column updates are independent computations: results are bit-identical.
  for (int64_t i = 0; i < serial->packed().size(); ++i) {
    ASSERT_EQ(serial->packed().data()[i], parallel->packed().data()[i]);
  }
}

TEST(LeastSquaresTest, RecoversExactCoefficients) {
  // y = 3 - 2 x1 + 0.5 x2 exactly: residual ~ 0, coefficients exact.
  const int64_t m = 60;
  Matrix x(m, 3);
  std::vector<double> y(m);
  Rng rng(40);
  for (int64_t i = 0; i < m; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Gaussian();
    x(i, 2) = rng.Gaussian();
    y[i] = 3.0 - 2.0 * x(i, 1) + 0.5 * x(i, 2);
  }
  auto fit = LeastSquaresQr(std::move(x), y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 3.0, 1e-10);
  EXPECT_NEAR(fit->coefficients[1], -2.0, 1e-10);
  EXPECT_NEAR(fit->coefficients[2], 0.5, 1e-10);
  EXPECT_NEAR(fit->residual_norm, 0.0, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(LeastSquaresTest, ResidualOrthogonalToColumns) {
  const int64_t m = 80, n = 10;
  Matrix x = RandomMatrix(m, n, 41);
  std::vector<double> y(m);
  Rng rng(42);
  for (auto& v : y) v = rng.Gaussian();
  Matrix x_copy = x;
  auto fit = LeastSquaresQr(std::move(x_copy), y);
  ASSERT_TRUE(fit.ok());
  // r = y - X beta must satisfy X^T r = 0.
  std::vector<double> r = y;
  for (int64_t i = 0; i < m; ++i) {
    r[i] -= Dot(x.Row(i), fit->coefficients.data(), n);
  }
  std::vector<double> xtr(n);
  GemvTranspose(MatrixView(x), r.data(), xtr.data());
  for (int64_t j = 0; j < n; ++j) EXPECT_NEAR(xtr[j], 0.0, 1e-9);
}

// --- Tridiagonal eigensolver -----------------------------------------------------

TEST(TridiagTest, DiagonalMatrixIsItsOwnSpectrum) {
  std::vector<double> d = {3.0, 1.0, 2.0};
  std::vector<double> e = {0.0, 0.0, 0.0};
  ASSERT_TRUE(SymmetricTridiagonalEigen(&d, &e).ok());
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

TEST(TridiagTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  std::vector<double> d = {2.0, 2.0};
  std::vector<double> e = {1.0, 0.0};
  Matrix z(2, 2);
  z(0, 0) = z(1, 1) = 1.0;
  ASSERT_TRUE(SymmetricTridiagonalEigen(&d, &e, &z).ok());
  EXPECT_NEAR(d[0], 1.0, 1e-12);
  EXPECT_NEAR(d[1], 3.0, 1e-12);
  // Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(z(0, 1)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::fabs(z(1, 1)), std::sqrt(0.5), 1e-10);
}

TEST(TridiagTest, MatchesJacobiOnRandomTridiagonal) {
  const int64_t n = 24;
  Rng rng(50);
  std::vector<double> d(n), e(n, 0.0);
  for (auto& v : d) v = rng.Gaussian();
  for (int64_t i = 0; i + 1 < n; ++i) e[i] = rng.Gaussian();
  // Dense copy for the Jacobi oracle.
  Matrix dense(n, n);
  for (int64_t i = 0; i < n; ++i) {
    dense(i, i) = d[i];
    if (i + 1 < n) dense(i, i + 1) = dense(i + 1, i) = e[i];
  }
  auto jac = JacobiEigen(dense);
  ASSERT_TRUE(jac.ok());
  ASSERT_TRUE(SymmetricTridiagonalEigen(&d, &e).ok());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(d[i], jac->values[i], 1e-9);
  }
}

// --- Jacobi ----------------------------------------------------------------------

TEST(JacobiTest, EigenEquationHolds) {
  const int64_t n = 16;
  Matrix a = RandomSymmetricPsd(n, 60);
  auto eig = JacobiEigen(a);
  ASSERT_TRUE(eig.ok());
  for (int64_t k = 0; k < n; ++k) {
    std::vector<double> v(n), av(n);
    for (int64_t i = 0; i < n; ++i) v[i] = eig->vectors(i, k);
    Gemv(MatrixView(a), v.data(), av.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], eig->values[k] * v[i], 1e-8);
    }
  }
}

TEST(JacobiTest, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigen(Matrix(3, 4)).ok());
}

// --- Lanczos ---------------------------------------------------------------------

LinearOperator DenseOperator(const Matrix& a) {
  LinearOperator op;
  op.n = a.rows();
  op.apply = [&a](const double* x, double* y) {
    Gemv(MatrixView(a), x, y);
    return genbase::Status::OK();
  };
  return op;
}

struct LanczosCase {
  int64_t n;
  int k;
  uint64_t seed;
};

class LanczosParamTest : public ::testing::TestWithParam<LanczosCase> {};

TEST_P(LanczosParamTest, TopEigenvaluesMatchJacobi) {
  const auto p = GetParam();
  Matrix a = RandomSymmetricPsd(p.n, p.seed);
  auto jac = JacobiEigen(a);
  ASSERT_TRUE(jac.ok());
  LanczosOptions opt;
  opt.num_eigenpairs = p.k;
  opt.seed = p.seed + 7;
  auto lan = LanczosLargestEigenpairs(DenseOperator(a), opt);
  ASSERT_TRUE(lan.ok());
  ASSERT_GE(static_cast<int>(lan->eigenvalues.size()), p.k);
  const double scale = std::fabs(jac->values.back()) + 1e-12;
  for (int i = 0; i < p.k; ++i) {
    const double expected =
        jac->values[static_cast<size_t>(p.n - 1 - i)];
    EXPECT_NEAR(lan->eigenvalues[i], expected, 1e-7 * scale)
        << "eigenvalue " << i;
  }
}

TEST_P(LanczosParamTest, RitzVectorsSatisfyEigenEquation) {
  const auto p = GetParam();
  Matrix a = RandomSymmetricPsd(p.n, p.seed + 1);
  LanczosOptions opt;
  opt.num_eigenpairs = p.k;
  opt.seed = p.seed + 9;
  auto lan = LanczosLargestEigenpairs(DenseOperator(a), opt);
  ASSERT_TRUE(lan.ok());
  const double scale = std::fabs(lan->eigenvalues[0]) + 1e-12;
  for (int i = 0; i < p.k; ++i) {
    std::vector<double> v(p.n), av(p.n);
    for (int64_t t = 0; t < p.n; ++t) v[t] = lan->eigenvectors(t, i);
    Gemv(MatrixView(a), v.data(), av.data());
    double resid = 0;
    for (int64_t t = 0; t < p.n; ++t) {
      const double r = av[t] - lan->eigenvalues[i] * v[t];
      resid += r * r;
    }
    EXPECT_LT(std::sqrt(resid), 1e-6 * scale) << "pair " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, LanczosParamTest,
                         ::testing::Values(LanczosCase{30, 5, 70},
                                           LanczosCase{60, 10, 71},
                                           LanczosCase{100, 20, 72},
                                           LanczosCase{40, 40, 73}));

TEST(LanczosTest, DeterministicForSeed) {
  Matrix a = RandomSymmetricPsd(50, 80);
  LanczosOptions opt;
  opt.num_eigenpairs = 8;
  auto r1 = LanczosLargestEigenpairs(DenseOperator(a), opt);
  auto r2 = LanczosLargestEigenpairs(DenseOperator(a), opt);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->eigenvalues, r2->eigenvalues);
}

// --- Covariance --------------------------------------------------------------------

TEST(CovarianceTest, MatchesManualTwoColumn) {
  // Columns [1,2,3,4] and [2,4,6,8]: var1 = 5/3, cov = 10/3, var2 = 20/3.
  Matrix x(4, 2);
  for (int64_t i = 0; i < 4; ++i) {
    x(i, 0) = static_cast<double>(i + 1);
    x(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  auto cov = CovarianceMatrix(MatrixView(x), KernelQuality::kTuned);
  ASSERT_TRUE(cov.ok());
  EXPECT_NEAR((*cov)(0, 0), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR((*cov)(0, 1), 10.0 / 3.0, 1e-12);
  EXPECT_NEAR((*cov)(1, 1), 20.0 / 3.0, 1e-12);
}

TEST(CovarianceTest, SymmetricAndPsd) {
  Matrix x = RandomMatrix(30, 12, 90);
  auto cov = CovarianceMatrix(MatrixView(x), KernelQuality::kTuned);
  ASSERT_TRUE(cov.ok());
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ((*cov)(i, j), (*cov)(j, i));
    }
  }
  auto eig = JacobiEigen(*cov);
  ASSERT_TRUE(eig.ok());
  for (double v : eig->values) EXPECT_GE(v, -1e-9);
}

TEST(CovarianceTest, NaiveMatchesTuned) {
  Matrix x = RandomMatrix(25, 10, 91);
  auto tuned = CovarianceMatrix(MatrixView(x), KernelQuality::kTuned);
  auto naive = CovarianceMatrix(MatrixView(x), KernelQuality::kNaive);
  ASSERT_TRUE(tuned.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_LT(MaxAbsDiff(*tuned, *naive), 1e-10);
}

TEST(CovarianceTest, RejectsSingleSample) {
  Matrix x(1, 5);
  EXPECT_FALSE(CovarianceMatrix(MatrixView(x), KernelQuality::kTuned).ok());
}

// --- SVD -----------------------------------------------------------------------------

struct SvdCase {
  int64_t m, n;
  int k;
  uint64_t seed;
};

class SvdParamTest : public ::testing::TestWithParam<SvdCase> {};

TEST_P(SvdParamTest, SingularValuesMatchGramSpectrum) {
  const auto p = GetParam();
  Matrix a = RandomMatrix(p.m, p.n, p.seed);
  Matrix gram(p.n, p.n);
  ASSERT_TRUE(Syrk(MatrixView(a), &gram).ok());
  auto jac = JacobiEigen(gram);
  ASSERT_TRUE(jac.ok());
  SvdOptions opt;
  opt.rank = p.k;
  opt.seed = p.seed + 3;
  auto svd = TruncatedSvd(MatrixView(a), opt);
  ASSERT_TRUE(svd.ok());
  const double scale = std::sqrt(std::max(0.0, jac->values.back())) + 1e-12;
  for (int i = 0; i < p.k; ++i) {
    const double expected =
        std::sqrt(std::max(0.0, jac->values[static_cast<size_t>(p.n - 1 -
                                                                i)]));
    EXPECT_NEAR(svd->singular_values[i], expected, 1e-6 * scale);
  }
}

TEST_P(SvdParamTest, ReconstructionDominatesResidual) {
  // With k = n the truncated SVD is exact: ||A - U S V^T|| ~ 0.
  const auto p = GetParam();
  if (p.k < p.n) GTEST_SKIP() << "only for full-rank cases";
  Matrix a = RandomMatrix(p.m, p.n, p.seed);
  SvdOptions opt;
  opt.rank = p.k;
  auto svd = TruncatedSvd(MatrixView(a), opt);
  ASSERT_TRUE(svd.ok());
  double worst = 0;
  for (int64_t i = 0; i < p.m; ++i) {
    for (int64_t j = 0; j < p.n; ++j) {
      double acc = 0;
      for (int t = 0; t < p.k; ++t) {
        acc += svd->u(i, t) * svd->singular_values[t] * svd->v(j, t);
      }
      worst = std::max(worst, std::fabs(a(i, j) - acc));
    }
  }
  EXPECT_LT(worst, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Cases, SvdParamTest,
                         ::testing::Values(SvdCase{40, 20, 5, 100},
                                           SvdCase{60, 30, 10, 101},
                                           SvdCase{25, 25, 25, 102},
                                           SvdCase{80, 15, 15, 103}));

TEST(SvdTest, NaiveQualityMatchesTuned) {
  Matrix a = RandomMatrix(40, 18, 110);
  SvdOptions tuned_opt;
  tuned_opt.rank = 6;
  auto tuned = TruncatedSvd(MatrixView(a), tuned_opt);
  SvdOptions naive_opt = tuned_opt;
  naive_opt.quality = KernelQuality::kNaive;
  auto naive = TruncatedSvd(MatrixView(a), naive_opt);
  ASSERT_TRUE(tuned.ok());
  ASSERT_TRUE(naive.ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(tuned->singular_values[i], naive->singular_values[i],
                1e-8 * (tuned->singular_values[0] + 1));
  }
}

// --- Randomized SVD (approximate-algorithm extension, paper Section 6.3) ------------

/// Low-rank signal + small noise: the regime randomized sketching targets.
Matrix LowRankPlusNoise(int64_t m, int64_t n, int rank, uint64_t seed) {
  Rng rng(seed);
  Matrix left(m, rank), right(rank, n);
  for (int64_t i = 0; i < left.size(); ++i) left.data()[i] = rng.Gaussian();
  for (int64_t i = 0; i < right.size(); ++i) {
    right.data()[i] = rng.Gaussian();
  }
  Matrix out(m, n);
  GENBASE_CHECK_OK(Gemm(MatrixView(left), MatrixView(right), &out));
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] += rng.Gaussian(0.0, 0.01);
  }
  return out;
}

TEST(RandomizedSvdTest, MatchesLanczosOnLowRankSignal) {
  Matrix a = LowRankPlusNoise(120, 60, 8, 200);
  SvdOptions exact_opt;
  exact_opt.rank = 8;
  auto exact = TruncatedSvd(MatrixView(a), exact_opt);
  ASSERT_TRUE(exact.ok());
  RandomizedSvdOptions opt;
  opt.rank = 8;
  auto approx = RandomizedSvd(MatrixView(a), opt);
  ASSERT_TRUE(approx.ok());
  const double scale = exact->singular_values[0];
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(approx->singular_values[i], exact->singular_values[i],
                1e-3 * scale)
        << "sigma_" << i;
  }
}

TEST(RandomizedSvdTest, ReconstructionCapturesSignal) {
  Matrix a = LowRankPlusNoise(80, 40, 5, 201);
  RandomizedSvdOptions opt;
  opt.rank = 5;
  auto svd = RandomizedSvd(MatrixView(a), opt);
  ASSERT_TRUE(svd.ok());
  // || A - U S V^T ||_F must be on the order of the injected noise.
  double err = 0, total = 0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      double acc = 0;
      for (int t = 0; t < 5; ++t) {
        acc += svd->u(i, t) * svd->singular_values[t] * svd->v(j, t);
      }
      err += (a(i, j) - acc) * (a(i, j) - acc);
      total += a(i, j) * a(i, j);
    }
  }
  EXPECT_LT(std::sqrt(err / total), 0.02);
}

TEST(RandomizedSvdTest, DeterministicForSeed) {
  Matrix a = LowRankPlusNoise(50, 30, 4, 202);
  RandomizedSvdOptions opt;
  opt.rank = 4;
  auto r1 = RandomizedSvd(MatrixView(a), opt);
  auto r2 = RandomizedSvd(MatrixView(a), opt);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->singular_values, r2->singular_values);
}

TEST(RandomizedSvdTest, RejectsEmpty) {
  Matrix a;
  EXPECT_FALSE(RandomizedSvd(MatrixView(a), RandomizedSvdOptions()).ok());
}

// --- Matrix memory accounting --------------------------------------------------------

TEST(MatrixTest, CreateChargesTracker) {
  MemoryTracker tracker(1 << 20);
  auto m = Matrix::Create(100, 100, &tracker);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(tracker.used(), 100 * 100 * 8);
}

TEST(MatrixTest, CreateFailsOverBudget) {
  MemoryTracker tracker(1000);
  auto m = Matrix::Create(100, 100, &tracker);
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsOutOfMemory());
  EXPECT_EQ(tracker.used(), 0);
}

TEST(MatrixTest, MoveTransfersReservation) {
  MemoryTracker tracker(1 << 20);
  auto m = Matrix::Create(10, 10, &tracker);
  ASSERT_TRUE(m.ok());
  Matrix other = std::move(m).ValueOrDie();
  EXPECT_EQ(tracker.used(), 800);
  other = Matrix();
  EXPECT_EQ(tracker.used(), 0);
}

TEST(MatrixTest, CopyIsUntracked) {
  MemoryTracker tracker(1 << 20);
  auto m = Matrix::Create(10, 10, &tracker);
  ASSERT_TRUE(m.ok());
  Matrix copy = *m;
  EXPECT_EQ(tracker.used(), 800);  // Only the original is charged.
  EXPECT_EQ(copy.rows(), 10);
}

}  // namespace
}  // namespace genbase::linalg
