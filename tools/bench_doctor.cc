// bench_doctor: bench-history regression gate.
//
// Ingests a directory of stamped BENCH_*.json artifacts, orders them by
// stamp timestamp, and judges the newest run against a median-of-window
// baseline built from the preceding runs (see src/obs/doctor.h).
//
//   bench_doctor [--check] [--window=N] [--throughput-slack=F]
//                [--latency-slack=F] HISTORY_DIR
//
// Always prints the trend table. With --check the exit code becomes the
// gate: 1 on any regression (or unreadable history), 0 otherwise; without
// it the tool is informational and always exits 0 once the directory loads.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/doctor.h"

namespace {

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atof(arg + len + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  genbase::obs::doctor::DoctorOptions options;
  bool check = false;
  std::string dir;
  double window = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (ParseDoubleFlag(arg, "--throughput-slack",
                               &options.throughput_slack) ||
               ParseDoubleFlag(arg, "--latency-slack",
                               &options.latency_slack)) {
    } else if (ParseDoubleFlag(arg, "--window", &window)) {
      options.baseline_window = static_cast<int>(window);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    } else {
      dir = arg;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: bench_doctor [--check] [--window=N] "
                 "[--throughput-slack=F] [--latency-slack=F] HISTORY_DIR\n");
    return 2;
  }

  auto result = genbase::obs::doctor::CheckHistoryDir(dir, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_doctor: %s\n",
                 result.status().ToString().c_str());
    return check ? 1 : 0;
  }
  const genbase::obs::doctor::DoctorReport report =
      std::move(result).ValueOrDie();
  std::fputs(genbase::obs::doctor::FormatReport(report).c_str(), stdout);
  return check && !report.ok() ? 1 : 0;
}
