#!/usr/bin/env python3
"""genbase_check: repo-specific lint invariants for src/.

Five rules, each encoding a convention the concurrent serving/obs stack
depends on but that neither the compiler nor clang-tidy enforces:

  atomic-memory-order   Every std::atomic load/store/RMW names an explicit
                        std::memory_order. A bare .load() silently means
                        seq_cst — usually an accident in a codebase whose
                        lock-free structures document their ordering, and a
                        reviewer cannot tell intent from default.
  raw-new-delete        No raw `new` / `delete` outside annotated sites.
                        Ownership flows through std::make_unique /
                        containers; the annotated exceptions are the
                        intentionally-leaked process singletons and
                        private-constructor factories.
  mutex-across-run      No std::mutex-family guard held across an
                        Engine::Run* / Serve call. Engine execution is
                        milliseconds to seconds: holding a lock across it
                        serializes the serving tier (the shard router's
                        drain logic was specifically built to avoid this).
  no-bare-assert        No bare assert()/std::abort() in src/ — internal
                        invariants use GENBASE_CHECK (which prints
                        file:line before aborting and is greppable),
                        runtime conditions use Status/Result.
  fault-hook-guard      Every FaultInjector hook call (OnServe,
                        ShardCrashed, ShardLatencySeconds,
                        DrawTransientError, ConsumeReloadFailure) in
                        src/serving/ outside faults.{h,cc} must sit inside
                        a scope guarded by an `enabled()` check — either
                        the positive `if (f && f->enabled()) { ... }`
                        style or the inverted early-return style
                        `if (f == nullptr || !f->enabled()) return;`. The
                        injector's no-fault fast path is one relaxed atomic
                        load; calling a hook unguarded either crashes on
                        the null default or silently pays mutex/tick costs
                        on every production op.
  plan-arena-alloc      No dense-buffer heap allocation in src/plan/ —
                        no Matrix construction, no std::vector<double>,
                        no `new double[]`/`new unsigned char[]`. Every
                        per-run buffer in the plan subsystem must come
                        from the static memory plan's arena, or the
                        planner's exact peak accounting (predicted ==
                        observed, gated in kernelbench) silently turns
                        into a lower bound. The arena's own backing
                        allocation and per-plan statics carry inline
                        waivers.

Waivers: a finding on line N is waived by a comment on line N or N-1 of the
form

    // lint:allow(<rule>): <justification>

The justification is mandatory; `--list-waivers` prints every waiver in the
tree so reviews can audit them in one place (see README).

Zero third-party dependencies; scans the source tree directly (no
compile_commands.json needed) so it runs identically everywhere.
"""

import argparse
import re
import sys
from pathlib import Path

RULES = (
    "atomic-memory-order",
    "raw-new-delete",
    "mutex-across-run",
    "no-bare-assert",
    "fault-hook-guard",
    "plan-arena-alloc",
)

ATOMIC_METHODS = (
    "load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    "compare_exchange_weak|compare_exchange_strong|wait|notify_one|"
    "notify_all"
)
# Receiver limited to an expression tail (identifier / ) / ]) directly
# joined by . or -> so free functions named `load` etc. don't match.
ATOMIC_CALL_RE = re.compile(
    r"[\w\)\]](?:\.|->)(" + ATOMIC_METHODS + r")\s*\(")
# notify/wait take no ordering; everything else must name one.
ATOMIC_NEEDS_ORDER = re.compile(
    r"^(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)$")

NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` placement included
DELETE_RE = re.compile(r"\bdelete\b")
ASSERT_RE = re.compile(r"(?<![\w:])assert\s*\(")
ABORT_RE = re.compile(r"(?:\bstd::)?\babort\s*\(")
LOCK_DECL_RE = re.compile(
    r"\b(?:std::)?(lock_guard|unique_lock|scoped_lock|shared_lock)\s*[<(]")
RUN_CALL_RE = re.compile(r"(?:\.|->)(Run\w*|Serve)\s*\(")
FAULT_HOOK_RE = re.compile(
    r"(?:\.|->)(OnServe|ShardCrashed|ShardLatencySeconds|DrawTransientError|"
    r"ConsumeReloadFailure)\s*\(")
WAIVER_RE = re.compile(r"//\s*lint:allow\(([\w-]+)\)\s*:\s*(\S.*)")
# Block-comment variant for macro bodies, where a // comment would splice
# the continuation backslash into the comment.
BLOCK_WAIVER_RE = re.compile(
    r"lint:allow\(([\w-]+)\)\s*:\s*([^*\n]*[^*\s])")


def strip_comments_and_strings(text):
    """Returns text with comments/string contents blanked (same length and
    line structure), plus {line_number: waiver} parsed from the comments."""
    out = []
    waivers = {}
    i, n = 0, len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            m = WAIVER_RE.search(text[i:j])
            if m:
                waivers[line] = (m.group(1), m.group(2).strip())
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            m = BLOCK_WAIVER_RE.search(chunk)
            if m:
                waivers[line + chunk.count("\n", 0, m.start())] = (
                    m.group(1), m.group(2).strip())
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(out), waivers


def balanced_args(code, open_paren):
    """Returns the argument text of the call whose '(' is at open_paren."""
    depth = 0
    for j in range(open_paren, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1:j]
    return code[open_paren + 1:]


def matching_brace(code, open_brace):
    """Returns the index of the '}' closing the '{' at open_brace, or -1."""
    depth = 0
    for j in range(open_brace, len(code)):
        if code[j] == "{":
            depth += 1
        elif code[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    return -1


class Finding:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = (
            path, line, rule, message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def line_of(code, pos):
    return code.count("\n", 0, pos) + 1


def check_atomics(path, code):
    for m in ATOMIC_CALL_RE.finditer(code):
        method = m.group(1)
        if not ATOMIC_NEEDS_ORDER.match(method):
            continue
        args = balanced_args(code, m.end() - 1)
        if "memory_order" not in args:
            yield Finding(path, line_of(code, m.start()), "atomic-memory-order",
                          f".{method}() without an explicit std::memory_order")


def check_new_delete(path, code):
    for m in NEW_RE.finditer(code):
        yield Finding(path, line_of(code, m.start()), "raw-new-delete",
                      "raw `new` (use std::make_unique, or waive an "
                      "intentional singleton/factory)")
    for m in DELETE_RE.finditer(code):
        # `= delete` declarations are not deallocation.
        prefix = code[max(0, m.start() - 8):m.start()]
        if "=" in prefix:
            continue
        yield Finding(path, line_of(code, m.start()), "raw-new-delete",
                      "raw `delete`")


def check_assert_abort(path, code):
    for m in ASSERT_RE.finditer(code):
        yield Finding(path, line_of(code, m.start()), "no-bare-assert",
                      "bare assert() — use GENBASE_CHECK / GENBASE_DCHECK")
    for m in ABORT_RE.finditer(code):
        yield Finding(path, line_of(code, m.start()), "no-bare-assert",
                      "abort() outside GENBASE_CHECK — use GENBASE_CHECK or "
                      "return a Status")


def check_mutex_across_run(path, code):
    """Flags Run*/Serve calls made while a scoped lock is live.

    Brace-depth heuristic: a lock declaration at depth D guards everything
    until the enclosing scope closes below D. Function-call matching on a
    blanked source can't see through helper indirection; it doesn't need to
    — the rule polices the direct pattern reviews keep catching.
    """
    depth = 0
    live_locks = []  # (depth_at_decl, line)
    for m in re.finditer(r"[{}]|" + LOCK_DECL_RE.pattern + "|" +
                         RUN_CALL_RE.pattern, code):
        tok = m.group(0)
        if tok == "{":
            depth += 1
        elif tok == "}":
            depth -= 1
            live_locks = [(d, l) for (d, l) in live_locks if d <= depth]
        elif LOCK_DECL_RE.match(tok):
            live_locks.append((depth, line_of(code, m.start())))
        else:  # Run*/Serve call
            if live_locks:
                lock_line = live_locks[-1][1]
                yield Finding(
                    path, line_of(code, m.start()), "mutex-across-run",
                    f"engine call under a scoped lock taken at line "
                    f"{lock_line} — release before executing")


def check_fault_hook_guard(path, code):
    """Flags FaultInjector hook calls outside an enabled()-guarded scope.

    Scope model mirrors check_mutex_across_run: an `if (...)` whose
    condition mentions enabled() guards its braced block (tracked by brace
    depth), its brace-less statement (up to the next ';'), and the
    condition text itself (so `f->enabled() && f->ShardCrashed(s)`
    short-circuits count). An *inverted* guard that unconditionally leaves
    — `if (f == nullptr || !f->enabled()) return;` (brace-less or a braced
    body ending in return) — guards the remainder of its enclosing block.
    Not modeled: hooks in the `else` branch of an inverted guard — write
    those positive-if or early-return style, or waive inline. Applies only
    to src/serving/ and exempts the injector's own files, where the hooks
    are defined and self-call.
    """
    norm = str(path).replace("\\", "/")
    if "src/serving/" not in norm or norm.endswith(("/faults.h",
                                                    "/faults.cc")):
        return
    depth = 0
    # Open guards as (brace_depth, position the guarantee starts at): a
    # positive guard covers its block from the '{', an inverted
    # early-return guard covers the enclosing block from just past the
    # return — hooks *inside* the disabled-path body stay flagged.
    guards = []
    guarded_spans = []   # (start, end) ranges guarded without a brace scope
    expected_brace = -1  # position of the '{' opening a pending guard block
    for m in re.finditer(r"[{}]|\bif\s*\(|" + FAULT_HOOK_RE.pattern, code):
        tok = m.group(0)
        if tok == "{":
            depth += 1
            if m.start() == expected_brace:
                guards.append((depth, m.start()))
                expected_brace = -1
        elif tok == "}":
            depth -= 1
            guards = [(d, p) for (d, p) in guards if d <= depth]
        elif tok.startswith("if"):
            open_paren = m.end() - 1
            cond = balanced_args(code, open_paren)
            if "enabled" not in cond:
                continue
            close = open_paren + 1 + len(cond)  # position of ')'
            guarded_spans.append((open_paren, close))
            # A not applied to the enabled() call itself (`!f->enabled()`)
            # marks the inverted idiom: the branch body is the *disabled*
            # path. A `!` elsewhere (`enabled() && !crashed`) stays a
            # positive guard.
            inverted = re.search(r"!\s*(?:[\w.]|->|::)*enabled\s*\(",
                                 cond) is not None
            j = close + 1
            while j < len(code) and code[j].isspace():
                j += 1
            if j < len(code) and code[j] == "{":
                if inverted:
                    # Inverted braced guard: when the body unconditionally
                    # returns, everything after it in the enclosing block
                    # runs with the injector known enabled.
                    end = matching_brace(code, j)
                    body = code[j + 1:end] if end != -1 else code[j + 1:]
                    if end != -1 and re.search(r"\breturn\b[^;{}]*;\s*$",
                                               body):
                        guards.append((depth, end + 1))
                else:
                    expected_brace = j
            else:  # Brace-less guarded statement.
                stmt_end = code.find(";", close)
                if inverted:
                    if stmt_end != -1 and re.match(r"return\b", code[j:]):
                        guards.append((depth, stmt_end + 1))
                else:
                    guarded_spans.append(
                        (close, stmt_end if stmt_end != -1 else len(code)))
        else:  # Hook call.
            pos = m.start()
            if (any(pos >= p for (_, p) in guards) or
                    any(a <= pos < b for a, b in guarded_spans)):
                continue
            yield Finding(
                path, line_of(code, pos), "fault-hook-guard",
                f"FaultInjector::{m.group(1)}() outside an enabled() guard "
                "— wrap in `if (faults != nullptr && faults->enabled())`")


PLAN_ALLOC_RE = re.compile(
    r"\bMatrix\s*\(|\bMatrix::Create\b|\bstd::vector\s*<\s*double\s*>|"
    r"\bnew\b[^;]*?\b(?:double|unsigned char)\s*\[")


def check_plan_arena_alloc(path, code):
    """Flags heap allocation of dense buffers inside src/plan/.

    The plan subsystem's whole point is that execution scratch is placed by
    the static memory planner into one arena with exact peak accounting; a
    Matrix / vector<double> / raw double[] allocated in an operator body is
    memory the planner cannot see. Statics built once per compile (and the
    arena's own backing store) are waived inline.
    """
    norm = str(path).replace("\\", "/")
    if "src/plan/" not in norm:
        return
    for m in PLAN_ALLOC_RE.finditer(code):
        yield Finding(
            path, line_of(code, m.start()), "plan-arena-alloc",
            "dense buffer allocated outside the plan arena — route it "
            "through the memory plan, or waive a one-time/static allocation")


def scan_file(path):
    text = path.read_text(encoding="utf-8")
    code, waivers = strip_comments_and_strings(text)
    findings = []
    checkers = [check_atomics, check_new_delete, check_mutex_across_run,
                check_fault_hook_guard, check_plan_arena_alloc]
    # check.h implements GENBASE_CHECK itself; its aborts are the sanctioned
    # ones and carry inline waivers, which the generic path below honors.
    checkers.append(check_assert_abort)
    used_waivers = set()
    for checker in checkers:
        for f in checker(str(path), code):
            waiver = waivers.get(f.line) or waivers.get(f.line - 1)
            if waiver and waiver[0] == f.rule:
                used_waivers.add(f.line if f.line in waivers else f.line - 1)
                continue
            findings.append(f)
    unused = [
        (ln, rule, why) for ln, (rule, why) in sorted(waivers.items())
        if ln not in used_waivers
    ]
    return findings, [(str(path), ln, rule, why) for ln, rule, why in unused]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("roots", nargs="*", default=["src"],
                    help="directories to scan (default: src)")
    ap.add_argument("--list-waivers", action="store_true",
                    help="print every lint:allow waiver and exit")
    args = ap.parse_args()

    repo = Path(__file__).resolve().parent.parent.parent
    files = []
    for root in (args.roots or ["src"]):
        root_path = (repo / root) if not Path(root).is_absolute() else Path(root)
        files.extend(sorted(root_path.rglob("*.h")))
        files.extend(sorted(root_path.rglob("*.cc")))

    all_findings = []
    all_waivers = []
    stale_waivers = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        _, waivers = strip_comments_and_strings(text)
        for ln, (rule, why) in sorted(waivers.items()):
            all_waivers.append((str(path), ln, rule, why))
            if rule not in RULES:
                stale_waivers.append(
                    (str(path), ln, rule, f"unknown rule '{rule}'"))
        findings, _ = scan_file(path)
        all_findings.extend(findings)

    if args.list_waivers:
        for path, ln, rule, why in all_waivers:
            print(f"{path}:{ln}: waiver({rule}): {why}")
        print(f"{len(all_waivers)} waiver(s)")
        return 0

    for path, ln, rule, why in stale_waivers:
        all_findings.append(Finding(path, ln, "waiver", why))
    for f in all_findings:
        print(f)
    if all_findings:
        print(f"genbase_check: {len(all_findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"genbase_check: OK ({len(files)} files, "
          f"{len(all_waivers)} waiver(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
