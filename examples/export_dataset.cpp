// Dataset export tool: writes a generated GenBase instance as four CSV
// files, mirroring the paper's published data-generator deliverable ("all of
// our data, data generators, and scripts are available on our web site").
//
//   $ ./build/examples/export_dataset [size] [scale] [output_dir]
//     size:   small | medium | large | xlarge   (default small)
//     scale:  linear scale factor               (default 0.02)
//     outdir: target directory                  (default ./genbase_data)
//
// Files: microarray.csv, patients.csv, genes.csv, gene_ontology.csv —
// headers included, relational form per paper Section 3.1.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/generator.h"
#include "storage/column_store.h"

namespace {

genbase::Status WriteTableCsv(const genbase::storage::ColumnTable& table,
                              const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return genbase::Status::IOError("cannot open " + path);
  }
  const auto& schema = table.schema();
  for (int c = 0; c < schema.num_fields(); ++c) {
    std::fprintf(f, "%s%s", schema.field(c).name.c_str(),
                 c + 1 == schema.num_fields() ? "\n" : ",");
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_fields(); ++c) {
      const auto v = table.Get(r, c);
      if (schema.field(c).type == genbase::storage::DataType::kInt64) {
        std::fprintf(f, "%lld", static_cast<long long>(v.AsInt()));
      } else {
        std::fprintf(f, "%.17g", v.AsDouble());
      }
      std::fputc(c + 1 == schema.num_fields() ? '\n' : ',', f);
    }
  }
  std::fclose(f);
  return genbase::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace genbase;

  core::DatasetSize size = core::DatasetSize::kSmall;
  if (argc > 1) {
    const std::string s = argv[1];
    if (s == "medium") size = core::DatasetSize::kMedium;
    else if (s == "large") size = core::DatasetSize::kLarge;
    else if (s == "xlarge") size = core::DatasetSize::kXLarge;
    else if (s != "small") {
      std::fprintf(stderr, "unknown size '%s'\n", s.c_str());
      return 1;
    }
  }
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.02;
  const std::string outdir = argc > 3 ? argv[3] : "genbase_data";
  ::mkdir(outdir.c_str(), 0755);

  auto data = core::GenerateDataset(size, scale);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %s at scale %g: %lld genes x %lld patients\n",
              core::DatasetSizeName(size), scale,
              static_cast<long long>(data->dims.genes),
              static_cast<long long>(data->dims.patients));

  const struct {
    const storage::ColumnTable* table;
    const char* file;
  } outputs[] = {
      {&data->microarray, "microarray.csv"},
      {&data->patients, "patients.csv"},
      {&data->genes, "genes.csv"},
      {&data->ontology, "gene_ontology.csv"},
  };
  for (const auto& out : outputs) {
    const std::string path = outdir + "/" + out.file;
    if (auto st = WriteTableCsv(*out.table, path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("  wrote %s (%lld rows)\n", path.c_str(),
                static_cast<long long>(out.table->num_rows()));
  }
  return 0;
}
