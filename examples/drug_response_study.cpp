// Drug-response study: the paper's motivating pharmacogenomics scenario.
// A bioinformatician wants to know (a) which gene program predicts drug
// response, and (b) which gene pairs co-vary in the diseased cohort — and
// needs both the relational cohort selection AND the linear algebra in one
// system. We run the same study on three architectures and compare both the
// answers (identical) and the cost profiles (very different).

#include <cstdio>
#include <memory>
#include <vector>

#include "core/driver.h"
#include "core/generator.h"
#include "core/verify.h"
#include "engine/engines.h"

int main() {
  using namespace genbase;

  auto data = core::GenerateDataset(core::DatasetSize::kSmall, 0.05);
  GENBASE_CHECK(data.ok());

  core::DriverOptions options;
  options.timeout_seconds = 120.0;
  options.params.disease_id = 7;           // The cancer cohort.
  options.params.covariance_quantile = 0.9;  // Top 10% covariant pairs.

  struct Configured {
    const char* label;
    std::unique_ptr<core::Engine> engine;
  };
  std::vector<Configured> systems;
  systems.push_back({"SciDB (array DBMS)", engine::CreateSciDb()});
  systems.push_back({"Postgres + R (glue)", engine::CreatePostgresR()});
  systems.push_back({"Vanilla R", engine::CreateVanillaR()});

  std::printf("Drug-response study: %lld patients, %lld genes\n\n",
              static_cast<long long>(data->dims.patients),
              static_cast<long long>(data->dims.genes));
  std::printf("%-22s %12s %12s %10s %8s %12s\n", "system", "Q1 total(s)",
              "Q2 total(s)", "glue(s)", "R^2", "top pairs");

  core::QueryResult reference_q1, reference_q2;
  bool have_reference = false;
  for (auto& sys : systems) {
    GENBASE_CHECK_OK(sys.engine->LoadDataset(*data));
    const core::CellResult q1 =
        core::RunCell(sys.engine.get(), core::QueryId::kRegression,
                      core::DatasetSize::kSmall, options);
    const core::CellResult q2 =
        core::RunCell(sys.engine.get(), core::QueryId::kCovariance,
                      core::DatasetSize::kSmall, options);
    GENBASE_CHECK_OK(q1.status);
    GENBASE_CHECK_OK(q2.status);
    std::printf("%-22s %12.3f %12.3f %10.3f %8.4f %12lld\n", sys.label,
                q1.total_s, q2.total_s, q1.glue_s + q2.glue_s,
                q1.result.regression.r_squared,
                static_cast<long long>(q2.result.covariance.pairs_above));
    if (!have_reference) {
      reference_q1 = q1.result;
      reference_q2 = q2.result;
      have_reference = true;
    } else {
      // All three systems must agree on the science.
      GENBASE_CHECK_OK(core::CompareQueryResults(reference_q1, q1.result));
      GENBASE_CHECK_OK(core::CompareQueryResults(reference_q2, q2.result));
    }
    sys.engine->UnloadDataset();
  }

  std::printf(
      "\nAll systems computed identical models; only the cost profile "
      "differs.\nThe R^2 shows the planted causal-gene signal is "
      "recovered; the qualifying\npair count is the Q2 threshold join "
      "(top-decile covariances x gene metadata).\n");
  return 0;
}
