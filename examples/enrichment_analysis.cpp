// Gene-set enrichment: Query 5's workflow, open-coded against the library's
// statistical primitives rather than the packaged engines — the "use the
// pieces directly" API tour. Ranks genes by mean expression over a patient
// sample, then Wilcoxon-tests every GO term and prints the most enriched
// ones (the generator aligns some GO terms with latent expression factors,
// so real signal exists).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/generator.h"
#include "core/reference.h"
#include "stats/wilcoxon.h"

int main() {
  using namespace genbase;

  auto data = core::GenerateDataset(core::DatasetSize::kSmall, 0.05);
  GENBASE_CHECK(data.ok());
  const auto& dims = data->dims;

  // Step 1-2: select a patient sample and aggregate mean expression per
  // gene (the data-management half of Query 5).
  const std::vector<int64_t> sample =
      core::SelectSamplePatients(*data, /*fraction=*/0.02);
  std::vector<double> score(static_cast<size_t>(dims.genes), 0.0);
  const auto& pid =
      data->microarray.IntColumn(core::MicroarrayCols::kPatientId);
  const auto& gid =
      data->microarray.IntColumn(core::MicroarrayCols::kGeneId);
  const auto& expr =
      data->microarray.DoubleColumn(core::MicroarrayCols::kExpr);
  const int64_t cutoff = static_cast<int64_t>(sample.size());
  for (size_t i = 0; i < pid.size(); ++i) {
    if (pid[i] < cutoff) score[static_cast<size_t>(gid[i])] += expr[i];
  }
  for (auto& s : score) s /= static_cast<double>(sample.size());

  // Step 3: GO memberships.
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(dims.go_terms));
  const auto& go_gene = data->ontology.IntColumn(core::GoCols::kGeneId);
  const auto& go_term = data->ontology.IntColumn(core::GoCols::kGoId);
  for (size_t i = 0; i < go_gene.size(); ++i) {
    members[static_cast<size_t>(go_term[i])].push_back(go_gene[i]);
  }

  // Step 4: Wilcoxon rank-sum per GO term.
  struct TermResult {
    int64_t term;
    int64_t size;
    double z;
    double p;
  };
  std::vector<TermResult> results;
  std::vector<bool> mask(static_cast<size_t>(dims.genes));
  for (int64_t t = 0; t < dims.go_terms; ++t) {
    auto& m = members[static_cast<size_t>(t)];
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
    if (m.empty() || static_cast<int64_t>(m.size()) == dims.genes) continue;
    std::fill(mask.begin(), mask.end(), false);
    for (int64_t g : m) mask[static_cast<size_t>(g)] = true;
    auto r = stats::WilcoxonRankSum(score, mask);
    GENBASE_CHECK(r.ok());
    results.push_back(
        {t, static_cast<int64_t>(m.size()), r->z, r->p_two_sided});
  }
  std::sort(results.begin(), results.end(),
            [](const TermResult& a, const TermResult& b) {
              return a.p < b.p;
            });

  std::printf("Enrichment over %lld GO terms (%zu patients sampled, %lld "
              "genes ranked)\n\n",
              static_cast<long long>(dims.go_terms), sample.size(),
              static_cast<long long>(dims.genes));
  std::printf("%8s %8s %10s %12s   %s\n", "GO term", "genes", "z", "p",
              "direction");
  int shown = 0;
  for (const auto& r : results) {
    if (++shown > 10) break;
    std::printf("%8lld %8lld %10.3f %12.3g   %s\n",
                static_cast<long long>(r.term),
                static_cast<long long>(r.size), r.z, r.p,
                r.z > 0 ? "over-expressed" : "under-expressed");
  }
  int64_t significant = 0;
  for (const auto& r : results) significant += r.p < 0.01;
  std::printf("\n%lld of %zu terms significant at p < 0.01\n",
              static_cast<long long>(significant), results.size());
  return 0;
}
