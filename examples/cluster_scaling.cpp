// Cluster scaling: runs Query 2 (covariance) on the virtual-time cluster at
// 1/2/4/8 nodes and prints the scaling curve, separating compute from the
// modeled interconnect. Demonstrates the paper's Section 4.4 finding — the
// n x n Gram all-reduce caps covariance scalability — and how to use the
// multi-node API.

#include <cstdio>

#include "cluster/cluster_engine.h"
#include "core/driver.h"
#include "core/generator.h"

int main() {
  using namespace genbase;

  auto data = core::GenerateDataset(core::DatasetSize::kMedium, 0.05);
  GENBASE_CHECK(data.ok());
  std::printf("Covariance query scaling, %lld genes x %lld patients\n\n",
              static_cast<long long>(data->dims.genes),
              static_cast<long long>(data->dims.patients));
  std::printf("%6s %12s %12s %12s %10s\n", "nodes", "total(s)", "dm(s)",
              "analytics(s)", "speedup");

  core::DriverOptions options;
  options.timeout_seconds = 120.0;
  double base = 0.0;
  for (int nodes : {1, 2, 4, 8}) {
    cluster::ClusterEngine engine(cluster::SciDbMnOptions(nodes));
    GENBASE_CHECK_OK(engine.LoadDataset(*data));
    const core::CellResult cell =
        core::RunCell(&engine, core::QueryId::kCovariance,
                      core::DatasetSize::kMedium, options);
    GENBASE_CHECK_OK(cell.status);
    if (nodes == 1) base = cell.total_s;
    std::printf("%6d %12.3f %12.3f %12.3f %9.2fx\n", nodes, cell.total_s,
                cell.dm_s, cell.analytics_s,
                cell.total_s > 0 ? base / cell.total_s : 0.0);
  }

  std::printf(
      "\nSub-linear (sometimes negative) scaling is the expected result:\n"
      "the gene x gene Gram matrix must be all-reduced over the modeled\n"
      "GbE interconnect regardless of node count, while per-node compute\n"
      "shrinks — exactly the paper's observation that SciDB 'often has\n"
      "worse performance on two nodes than on one'.\n");
  return 0;
}
