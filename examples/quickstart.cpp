// Quickstart: generate a GenBase dataset, run Query 1 (predictive modeling)
// on the array-native engine, and inspect the result.
//
//   $ ./build/examples/quickstart
//
// This is the five-minute tour of the public API:
//   1. core::GenerateDataset  — the benchmark's synthetic data generator
//   2. engine::CreateSciDb    — one of the seven system configurations
//   3. core::RunCell          — the benchmark driver (budgets + phase times)
//   4. core::QueryResult      — the per-query summary

#include <cstdio>

#include "core/driver.h"
#include "core/generator.h"
#include "engine/engines.h"

int main() {
  using namespace genbase;

  // 1. A small benchmark instance at 1/20th of the paper's dimensions.
  auto data = core::GenerateDataset(core::DatasetSize::kSmall, 0.05);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %lld genes x %lld patients (%lld GO terms)\n",
              static_cast<long long>(data->dims.genes),
              static_cast<long long>(data->dims.patients),
              static_cast<long long>(data->dims.go_terms));

  // 2. Load it into the SciDB-like array engine.
  auto engine = engine::CreateSciDb();
  if (auto st = engine->LoadDataset(*data); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Run Query 1: select genes with function < 250, join with the
  //    microarray, and fit drug response by QR least squares.
  core::DriverOptions options;
  options.timeout_seconds = 60.0;
  const core::CellResult cell =
      core::RunCell(engine.get(), core::QueryId::kRegression,
                    core::DatasetSize::kSmall, options);
  if (!cell.status.ok()) {
    std::fprintf(stderr, "query: %s\n", cell.status.ToString().c_str());
    return 1;
  }

  // 4. Inspect the result.
  const auto& fit = cell.result.regression;
  std::printf("\nQuery 1 (predictive modeling) on %s\n",
              engine->name().c_str());
  std::printf("  rows (patients):       %lld\n",
              static_cast<long long>(fit.rows));
  std::printf("  predictors (genes):    %lld\n",
              static_cast<long long>(fit.predictors));
  std::printf("  R^2:                   %.4f\n", fit.r_squared);
  std::printf("  first coefficients:    ");
  for (double c : fit.coef_head) std::printf("%.3f ", c);
  std::printf("\n");
  std::printf("  data management time:  %.3f s\n", cell.dm_s);
  std::printf("  analytics time:        %.3f s\n", cell.analytics_s);
  std::printf("  total:                 %.3f s\n", cell.total_s);
  return 0;
}
