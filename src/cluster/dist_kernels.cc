#include "cluster/dist_kernels.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "linalg/blas.h"
#include "linalg/lanczos.h"

namespace genbase::cluster {

std::vector<RowRange> PartitionRows(int64_t n, int nodes) {
  std::vector<RowRange> out(static_cast<size_t>(nodes));
  const int64_t base = n / nodes;
  const int64_t extra = n % nodes;
  int64_t at = 0;
  for (int i = 0; i < nodes; ++i) {
    const int64_t len = base + (i < extra ? 1 : 0);
    out[static_cast<size_t>(i)] = {at, at + len};
    at += len;
  }
  return out;
}

genbase::Result<linalg::LeastSquaresFit> DistributedLeastSquares(
    SimCluster* cluster, std::vector<linalg::Matrix> design_blocks,
    const std::vector<std::vector<double>>& y_blocks, ExecContext* ctx) {
  const int p = cluster->nodes();
  if (static_cast<int>(design_blocks.size()) != p ||
      static_cast<int>(y_blocks.size()) != p) {
    return genbase::Status::InvalidArgument("block count != node count");
  }
  const int64_t k = design_blocks[0].cols();

  // Global response statistics for TSS (one small all-reduce).
  double y_sum = 0.0, y_sumsq = 0.0;
  int64_t m_total = 0;
  for (const auto& y : y_blocks) {
    for (double v : y) {
      y_sum += v;
      y_sumsq += v * v;
    }
    m_total += static_cast<int64_t>(y.size());
  }
  cluster->AllReduce(3 * 8);
  if (m_total < k) {
    return genbase::Status::InvalidArgument("fewer rows than predictors");
  }
  const double mean_y = y_sum / static_cast<double>(m_total);
  const double tss = y_sumsq - static_cast<double>(m_total) * mean_y * mean_y;

  // Local TSQR step per node.
  struct NodeReduced {
    linalg::Matrix r;        // k x k (or m_i x k fallback).
    std::vector<double> c;   // Matching row count.
    double rho = 0.0;        // Residual energy already resolved locally.
  };
  std::vector<NodeReduced> reduced(static_cast<size_t>(p));
  GENBASE_RETURN_NOT_OK(cluster->Compute([&](int node) -> genbase::Status {
    auto& nr = reduced[static_cast<size_t>(node)];
    linalg::Matrix& block = design_blocks[static_cast<size_t>(node)];
    const std::vector<double>& y = y_blocks[static_cast<size_t>(node)];
    const int64_t m_i = block.rows();
    if (m_i >= k) {
      GENBASE_ASSIGN_OR_RETURN(
          linalg::HouseholderQr qr,
          linalg::HouseholderQr::Factor(std::move(block), ctx));
      std::vector<double> qty = y;
      qr.ApplyQTranspose(qty.data());
      nr.r = qr.R();
      nr.c.assign(qty.begin(), qty.begin() + k);
      for (int64_t i = k; i < m_i; ++i) nr.rho += qty[i] * qty[i];
    } else {
      // Short block: ship it raw (standard TSQR fallback).
      nr.r = std::move(block);
      nr.c = y;
    }
    return genbase::Status::OK();
  }));

  // Gather reduced factors to the root.
  int64_t max_bytes = 0;
  int64_t stacked_rows = 0;
  for (const auto& nr : reduced) {
    max_bytes = std::max(max_bytes, nr.r.bytes() +
                                        static_cast<int64_t>(nr.c.size()) * 8);
    stacked_rows += nr.r.rows();
  }
  cluster->Gather(0, max_bytes);

  // Root: stack and solve the reduced problem.
  linalg::LeastSquaresFit fit;
  genbase::Status root_status = genbase::Status::OK();
  GENBASE_RETURN_NOT_OK(cluster->Compute([&](int node) -> genbase::Status {
    if (node != 0) return genbase::Status::OK();
    linalg::Matrix stacked(stacked_rows, k);
    std::vector<double> stacked_c;
    stacked_c.reserve(static_cast<size_t>(stacked_rows));
    int64_t at = 0;
    double rho_total = 0.0;
    for (const auto& nr : reduced) {
      for (int64_t i = 0; i < nr.r.rows(); ++i) {
        std::copy(nr.r.Row(i), nr.r.Row(i) + k, stacked.Row(at + i));
      }
      at += nr.r.rows();
      stacked_c.insert(stacked_c.end(), nr.c.begin(), nr.c.end());
      rho_total += nr.rho;
    }
    auto root_fit = linalg::LeastSquaresQr(std::move(stacked), stacked_c,
                                           ctx);
    if (!root_fit.ok()) {
      root_status = root_fit.status();
      return genbase::Status::OK();
    }
    fit.coefficients = std::move(root_fit->coefficients);
    const double rss = rho_total + root_fit->residual_norm *
                                       root_fit->residual_norm;
    fit.residual_norm = std::sqrt(rss);
    fit.r_squared = tss > 0 ? 1.0 - rss / tss : 0.0;
    return genbase::Status::OK();
  }));
  GENBASE_RETURN_NOT_OK(root_status);
  // Broadcast the coefficients back (small).
  cluster->Broadcast(0, k * 8);
  return fit;
}

genbase::Result<linalg::Matrix> DistributedCovariance(
    SimCluster* cluster, const std::vector<linalg::Matrix>& x_blocks,
    linalg::KernelQuality quality, ExecContext* ctx) {
  const int p = cluster->nodes();
  const int64_t n = x_blocks[0].cols();
  int64_t m_total = 0;
  for (const auto& b : x_blocks) m_total += b.rows();
  if (m_total < 2) {
    return genbase::Status::InvalidArgument("covariance needs >= 2 samples");
  }

  // Column means: local partial sums, all-reduce of length-n vector.
  std::vector<double> sums(static_cast<size_t>(n), 0.0);
  GENBASE_RETURN_NOT_OK(cluster->Compute([&](int node) -> genbase::Status {
    const auto& b = x_blocks[static_cast<size_t>(node)];
    for (int64_t i = 0; i < b.rows(); ++i) {
      const double* row = b.Row(i);
      for (int64_t j = 0; j < n; ++j) sums[static_cast<size_t>(j)] += row[j];
    }
    return genbase::Status::OK();
  }));
  cluster->AllReduce(n * 8);
  std::vector<double> means(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    means[static_cast<size_t>(j)] = sums[static_cast<size_t>(j)] /
                                    static_cast<double>(m_total);
  }

  // Local centered Gram per node, accumulated into the reduce result.
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix total,
                           linalg::Matrix::Create(n, n, tracker));
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix local,
                           linalg::Matrix::Create(n, n, tracker));
  for (int node = 0; node < p; ++node) {
    genbase::Status st = cluster->Compute([&](int it) -> genbase::Status {
      if (it != node) return genbase::Status::OK();
      const auto& b = x_blocks[static_cast<size_t>(node)];
      if (b.rows() == 0) {
        local.Fill(0.0);
        return genbase::Status::OK();
      }
      GENBASE_ASSIGN_OR_RETURN(
          linalg::Matrix centered,
          linalg::Matrix::Create(b.rows(), n, tracker));
      for (int64_t i = 0; i < b.rows(); ++i) {
        const double* src = b.Row(i);
        double* dst = centered.Row(i);
        for (int64_t j = 0; j < n; ++j) {
          dst[j] = src[j] - means[static_cast<size_t>(j)];
        }
      }
      if (quality == linalg::KernelQuality::kTuned) {
        return linalg::Syrk(linalg::MatrixView(centered), &local,
                            ctx != nullptr ? ctx->pool() : nullptr, ctx);
      }
      return linalg::SyrkNaive(linalg::MatrixView(centered), &local, ctx);
    });
    GENBASE_RETURN_NOT_OK(st);
    for (int64_t i = 0; i < n * n; ++i) total.data()[i] += local.data()[i];
  }
  // The n x n Gram all-reduce: the dominant communication cost of Query 2.
  cluster->AllReduce(n * n * 8);
  const double inv = 1.0 / static_cast<double>(m_total - 1);
  for (int64_t i = 0; i < n * n; ++i) total.data()[i] *= inv;
  return total;
}

genbase::Result<DistributedSvdResult> DistributedTruncatedSvd(
    SimCluster* cluster, const std::vector<linalg::Matrix>& a_blocks,
    int rank, linalg::KernelQuality quality, uint64_t seed,
    ExecContext* ctx) {
  const int64_t n = a_blocks[0].cols();
  const bool tuned = quality == linalg::KernelQuality::kTuned;

  // Per-node temp for A_i v.
  int64_t max_rows = 0;
  for (const auto& b : a_blocks) max_rows = std::max(max_rows, b.rows());
  std::vector<double> tmp(static_cast<size_t>(max_rows));
  std::vector<double> partial(static_cast<size_t>(n));

  double op_cpu_seconds = 0.0;
  linalg::LinearOperator op;
  op.n = n;
  op.apply = [&](const double* x, double* y) -> genbase::Status {
    WallTimer op_timer;
    std::fill(y, y + n, 0.0);
    GENBASE_RETURN_NOT_OK(
        cluster->Compute([&](int node) -> genbase::Status {
          const auto& b = a_blocks[static_cast<size_t>(node)];
          if (b.rows() == 0) return genbase::Status::OK();
          const linalg::MatrixView view(b);
          if (tuned) {
            linalg::Gemv(view, x, tmp.data());
            linalg::GemvTranspose(view, tmp.data(), partial.data());
          } else {
            for (int64_t i = 0; i < b.rows(); ++i) {
              double s = 0;
              for (int64_t j = 0; j < n; ++j) s += view(i, j) * x[j];
              tmp[static_cast<size_t>(i)] = s;
            }
            for (int64_t j = 0; j < n; ++j) {
              double s = 0;
              for (int64_t i = 0; i < b.rows(); ++i) {
                s += view(i, j) * tmp[static_cast<size_t>(i)];
              }
              partial[static_cast<size_t>(j)] = s;
            }
          }
          for (int64_t j = 0; j < n; ++j) y[j] += partial[j];
          return genbase::Status::OK();
        }));
    // One length-n all-reduce per operator application.
    cluster->AllReduce(n * 8);
    op_cpu_seconds += op_timer.Seconds();
    if (ctx != nullptr) return ctx->CheckBudgets();
    return genbase::Status::OK();
  };

  linalg::LanczosOptions opt;
  opt.num_eigenpairs = std::min<int64_t>(rank, n);
  opt.seed = seed;
  opt.compute_vectors = false;
  WallTimer total_timer;
  GENBASE_ASSIGN_OR_RETURN(linalg::LanczosResult lr,
                           linalg::LanczosLargestEigenpairs(op, opt, ctx));
  // The Lanczos recurrence (reorthogonalization etc.) ran on the root;
  // charge its CPU time beyond the distributed operator applications.
  const double driver_seconds =
      std::max(0.0, total_timer.Seconds() - op_cpu_seconds);
  cluster->ChargeCompute(0, driver_seconds);

  DistributedSvdResult out;
  out.iterations = lr.iterations;
  out.singular_values.reserve(lr.eigenvalues.size());
  for (double lambda : lr.eigenvalues) {
    out.singular_values.push_back(std::sqrt(std::max(0.0, lambda)));
  }
  return out;
}

}  // namespace genbase::cluster
