#ifndef GENBASE_CLUSTER_CLUSTER_ENGINE_H_
#define GENBASE_CLUSTER_CLUSTER_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/dist_kernels.h"
#include "cluster/sim_cluster.h"
#include "core/engine.h"
#include "engine/engine_util.h"
#include "storage/array_store.h"

namespace genbase::cluster {

/// \brief Architectural knobs distinguishing the paper's five multi-node
/// systems (Section 4.2 / Figure 3). All five share the virtual-time
/// cluster substrate and the distributed kernels; they differ in local
/// storage, glue, kernel quality and job model — the same axes that
/// distinguish the single-node configurations.
struct ClusterEngineOptions {
  std::string name;
  int nodes = 1;
  /// SciDB: array-native local storage, no relational restructure.
  bool array_native = false;
  /// Column store + pbdR: per-node CSV export into the R runtime.
  bool csv_glue = false;
  /// Column store + UDFs: per-invocation interpreter overhead.
  bool udf_glue = false;
  /// Hadoop: per-job startup latency, shuffle charges, per-iteration SVD
  /// jobs, and the Mahout-quality (naive) kernels.
  bool mapreduce = false;
  linalg::KernelQuality quality = linalg::KernelQuality::kTuned;

  /// Per-node coprocessor offload (Table 1 / Section 5): analytics compute
  /// is accelerated by the device ratio; communication and transfers are
  /// not.
  bool phi_offload = false;
};

/// Factory helpers for the paper's configurations.
ClusterEngineOptions SciDbMnOptions(int nodes);
ClusterEngineOptions PbdrOptions(int nodes);
ClusterEngineOptions ColumnStorePbdrOptions(int nodes);
ClusterEngineOptions ColumnStoreUdfMnOptions(int nodes);
ClusterEngineOptions HadoopMnOptions(int nodes);

/// \brief One multi-node system configuration over the virtual-time
/// cluster: data row-partitioned by patient across nodes, metadata
/// replicated, ScaLAPACK-style distributed analytics (TSQR, Gram
/// all-reduce, distributed Lanczos), gather-to-root for the algorithms the
/// paper's systems did not distribute (biclustering).
class ClusterEngine : public core::Engine {
 public:
  explicit ClusterEngine(ClusterEngineOptions options);

  std::string name() const override { return options_.name; }
  int nodes() const { return options_.nodes; }

  bool SupportsQuery(core::QueryId query) const override {
    if (options_.mapreduce) {
      return query == core::QueryId::kRegression ||
             query == core::QueryId::kCovariance ||
             query == core::QueryId::kSvd;
    }
    return true;
  }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override;
  void DoUnloadDataset() override;

 public:
  void PrepareContext(ExecContext* ctx) override;

  genbase::Result<core::QueryResult> RunQuery(core::QueryId query,
                                              const core::QueryParams& params,
                                              ExecContext* ctx) override;

 private:
  struct NodeData {
    engine::ColumnarTables tables;           ///< Relational local storage.
    storage::ChunkedArray2D expression;      ///< Array-native local storage.
    RowRange patients;
  };

  /// Per-node data management: local filter + join/restructure (or array
  /// gather) producing this node's block of the analysis matrix.
  genbase::Result<std::vector<linalg::Matrix>> LocalBlocks(
      core::QueryId query, const core::QueryParams& params, SimCluster* sim,
      std::vector<std::vector<double>>* y_blocks,
      std::vector<int64_t>* col_ids, ExecContext* ctx);

  /// Applies the per-node glue (CSV round trip / UDF transfer) in place.
  genbase::Status ApplyGlue(std::vector<linalg::Matrix>* blocks,
                            SimCluster* sim, ExecContext* ctx);

  ClusterEngineOptions options_;
  MemoryTracker tracker_;
  std::vector<std::unique_ptr<NodeData>> node_data_;
  core::DatasetDims dims_;
  bool loaded_ = false;
};

/// The paper's Figure 3 lineup for a given node count.
std::vector<std::unique_ptr<core::Engine>> CreateMultiNodeEngines(int nodes);

}  // namespace genbase::cluster

#endif  // GENBASE_CLUSTER_CLUSTER_ENGINE_H_
