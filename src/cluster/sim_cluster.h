#ifndef GENBASE_CLUSTER_SIM_CLUSTER_H_
#define GENBASE_CLUSTER_SIM_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

namespace genbase::cluster {

/// \brief Interconnect cost model: a GbE-class network by default
/// (SimConfig). Transfers charge latency + bytes/bandwidth.
struct NetworkModel {
  double bandwidth_bytes_per_s = 125e6;
  double latency_s = 200e-6;

  double TransferSeconds(int64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// \brief Virtual-time cluster simulator (bulk-synchronous accounting).
///
/// Only 2 physical cores exist in this environment, so a real N-node run is
/// impossible; instead every node's local work is executed for real —
/// sequentially, timed with the per-thread CPU clock so scheduling does not
/// distort it — and charged to that node's *virtual* clock. Communication
/// steps advance clocks by modeled collective costs (ring all-reduce, tree
/// broadcast, ...). Cluster elapsed time is the maximum node clock: the
/// critical path. This reproduces the paper's multi-node phenomena (e.g.
/// SciDB's 2-node covariance being no faster than 1-node because the
/// all-reduce of the gene x gene Gram matrix eats the compute savings)
/// deterministically.
///
/// Compute and communication are tracked separately so the coprocessor
/// model can accelerate compute while leaving communication untouched
/// (the mechanism behind Table 1's shrinking speedups at higher node
/// counts).
class SimCluster {
 public:
  SimCluster(int nodes, NetworkModel net);

  int nodes() const { return static_cast<int>(clock_.size()); }

  /// Critical-path elapsed virtual seconds.
  double elapsed() const;

  /// Portion of elapsed() spent in collectives (critical path).
  double comm_elapsed() const { return comm_elapsed_; }

  /// Runs fn(node) for every node, adding each node's thread-CPU seconds to
  /// its virtual clock. Stops at the first non-OK status.
  genbase::Status Compute(const std::function<genbase::Status(int)>& fn);

  /// Adds externally measured (or modeled) compute seconds to one node.
  void ChargeCompute(int node, double seconds) {
    clock_[static_cast<size_t>(node)] += seconds;
  }

  /// Adds modeled seconds to every node simultaneously (e.g. per-job
  /// startup latency of a MapReduce stage).
  void ChargeAll(double seconds) {
    for (auto& c : clock_) c += seconds;
  }

  /// Synchronizes all clocks to the maximum (tree barrier latency).
  void Barrier();

  /// Ring all-reduce of `bytes` per node.
  void AllReduce(int64_t bytes);

  /// Every non-root node sends `bytes_per_node` to root.
  void Gather(int root, int64_t bytes_per_node);

  /// Root sends `bytes` to every other node (binomial tree).
  void Broadcast(int root, int64_t bytes);

  /// Each ordered pair exchanges `bytes_per_pair`.
  void AllToAll(int64_t bytes_per_pair);

 private:
  double MaxClock() const;
  void AdvanceAll(double from, double cost);

  std::vector<double> clock_;
  NetworkModel net_;
  double comm_elapsed_ = 0.0;
};

}  // namespace genbase::cluster

#endif  // GENBASE_CLUSTER_SIM_CLUSTER_H_
