#include "cluster/cluster_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/config.h"
#include "core/reference.h"
#include "relational/col_ops.h"

namespace genbase::cluster {

namespace {

using core::GeneCols;
using core::MicroarrayCols;
using core::PatientCols;
using core::QueryId;
using core::SimConfig;

NetworkModel ConfigNetwork() {
  const auto& c = SimConfig::Get();
  return {c.net_bandwidth_bytes_per_s, c.net_latency_s};
}

/// Copies a row range of a columnar table (the per-node partition).
genbase::Status SliceTable(const storage::ColumnTable& src, int64_t begin,
                           int64_t end, MemoryTracker* tracker,
                           storage::ColumnTable* dst) {
  *dst = storage::ColumnTable(src.schema(), tracker);
  GENBASE_RETURN_NOT_OK(dst->Reserve(end - begin));
  for (int c = 0; c < src.schema().num_fields(); ++c) {
    if (src.schema().field(c).type == storage::DataType::kInt64) {
      const auto& col = src.IntColumn(c);
      dst->MutableIntColumn(c).assign(col.begin() + begin,
                                      col.begin() + end);
    } else {
      const auto& col = src.DoubleColumn(c);
      dst->MutableDoubleColumn(c).assign(col.begin() + begin,
                                         col.begin() + end);
    }
  }
  return dst->FinishBulkLoad();
}

}  // namespace

ClusterEngineOptions SciDbMnOptions(int nodes) {
  ClusterEngineOptions o;
  o.name = "SciDB";
  o.nodes = nodes;
  o.array_native = true;
  return o;
}

ClusterEngineOptions PbdrOptions(int nodes) {
  ClusterEngineOptions o;
  o.name = "pbdR";
  o.nodes = nodes;
  return o;
}

ClusterEngineOptions ColumnStorePbdrOptions(int nodes) {
  ClusterEngineOptions o;
  o.name = "Column store + pbdR";
  o.nodes = nodes;
  o.csv_glue = true;
  return o;
}

ClusterEngineOptions ColumnStoreUdfMnOptions(int nodes) {
  ClusterEngineOptions o;
  o.name = "Column store + UDFs";
  o.nodes = nodes;
  o.udf_glue = true;
  return o;
}

ClusterEngineOptions HadoopMnOptions(int nodes) {
  ClusterEngineOptions o;
  o.name = "Hadoop";
  o.nodes = nodes;
  o.mapreduce = true;
  o.quality = linalg::KernelQuality::kNaive;
  return o;
}

ClusterEngine::ClusterEngine(ClusterEngineOptions options)
    : options_(std::move(options)),
      tracker_(MemoryTracker::kUnlimited, options_.name + "-mn") {
  GENBASE_CHECK(options_.nodes >= 1);
}

genbase::Status ClusterEngine::DoLoadDataset(const core::GenBaseData& data) {
  DoUnloadDataset();
  dims_ = data.dims;
  const std::vector<RowRange> ranges =
      PartitionRows(dims_.patients, options_.nodes);
  for (int node = 0; node < options_.nodes; ++node) {
    auto nd = std::make_unique<NodeData>();
    nd->patients = ranges[static_cast<size_t>(node)];
    nd->tables.dims = dims_;
    // Patient rows of this node (the generator emits patients in id order).
    GENBASE_RETURN_NOT_OK(SliceTable(data.patients, nd->patients.begin,
                                     nd->patients.end, &tracker_,
                                     &nd->tables.patients));
    // Metadata replicated on every node (small).
    GENBASE_RETURN_NOT_OK(SliceTable(data.genes, 0, data.genes.num_rows(),
                                     &tracker_, &nd->tables.genes));
    GENBASE_RETURN_NOT_OK(SliceTable(data.ontology, 0,
                                     data.ontology.num_rows(), &tracker_,
                                     &nd->tables.ontology));
    // Microarray rows: patient-major triples, contiguous per range.
    const int64_t row_begin = nd->patients.begin * dims_.genes;
    const int64_t row_end = nd->patients.end * dims_.genes;
    if (options_.array_native) {
      GENBASE_ASSIGN_OR_RETURN(
          nd->expression,
          storage::ChunkedArray2D::Create(nd->patients.size(), dims_.genes,
                                          &tracker_));
      const auto& pid = data.microarray.IntColumn(MicroarrayCols::kPatientId);
      const auto& gid = data.microarray.IntColumn(MicroarrayCols::kGeneId);
      const auto& expr = data.microarray.DoubleColumn(MicroarrayCols::kExpr);
      for (int64_t i = row_begin; i < row_end; ++i) {
        nd->expression.Set(pid[static_cast<size_t>(i)] - nd->patients.begin,
                           gid[static_cast<size_t>(i)],
                           expr[static_cast<size_t>(i)]);
      }
    } else {
      GENBASE_RETURN_NOT_OK(SliceTable(data.microarray, row_begin, row_end,
                                       &tracker_, &nd->tables.microarray));
    }
    node_data_.push_back(std::move(nd));
  }
  loaded_ = true;
  return genbase::Status::OK();
}

void ClusterEngine::DoUnloadDataset() {
  node_data_.clear();
  tracker_.Reset();
  loaded_ = false;
}

void ClusterEngine::PrepareContext(ExecContext* ctx) {
  ctx->set_memory(&tracker_);
  // Per-node execution is single threaded (SimConfig node_threads); the
  // parallelism across nodes lives in the virtual-time cluster.
  ctx->set_pool(nullptr);
}

genbase::Result<std::vector<linalg::Matrix>> ClusterEngine::LocalBlocks(
    QueryId query, const core::QueryParams& params, SimCluster* sim,
    std::vector<std::vector<double>>* y_blocks,
    std::vector<int64_t>* col_ids, ExecContext* ctx) {
  const auto& config = SimConfig::Get();
  if (options_.mapreduce) {
    // Job startups: dimension filter job + fact join job, then the shuffle
    // of matched triples between map and reduce waves.
    sim->ChargeAll(2.0 * config.mr_job_startup_s);
  }
  std::vector<linalg::Matrix> blocks(
      static_cast<size_t>(options_.nodes));
  if (y_blocks != nullptr) {
    y_blocks->assign(static_cast<size_t>(options_.nodes), {});
  }
  genbase::Status worker = genbase::Status::OK();
  GENBASE_RETURN_NOT_OK(sim->Compute([&](int node) -> genbase::Status {
    NodeData& nd = *node_data_[static_cast<size_t>(node)];
    if (options_.array_native) {
      // SciDB: dimension-aligned selections + chunked submatrix gather.
      using relational::ColumnPredicate;
      using storage::Value;
      std::vector<int64_t> local_rows;
      std::vector<int64_t> cols;
      if (query == QueryId::kRegression || query == QueryId::kSvd) {
        GENBASE_ASSIGN_OR_RETURN(
            std::vector<int64_t> gene_sel,
            relational::FilterColumns(
                nd.tables.genes,
                {ColumnPredicate::Lt(GeneCols::kFunction,
                                     Value::Int(params.function_threshold))},
                ctx));
        const auto& gids = nd.tables.genes.IntColumn(GeneCols::kGeneId);
        for (int64_t i : gene_sel) cols.push_back(gids[i]);
        std::sort(cols.begin(), cols.end());
        local_rows.resize(static_cast<size_t>(nd.patients.size()));
        for (int64_t i = 0; i < nd.patients.size(); ++i) local_rows[i] = i;
        if (y_blocks != nullptr) {
          (*y_blocks)[static_cast<size_t>(node)] =
              nd.tables.patients.DoubleColumn(PatientCols::kDrugResponse);
        }
      } else {
        std::vector<ColumnPredicate> preds;
        if (query == QueryId::kCovariance) {
          preds = {ColumnPredicate::Eq(PatientCols::kDiseaseId,
                                       Value::Int(params.disease_id))};
        } else {
          preds = {ColumnPredicate::Eq(PatientCols::kGender,
                                       Value::Int(params.gender)),
                   ColumnPredicate::Lt(PatientCols::kAge,
                                       Value::Int(params.max_age))};
        }
        GENBASE_ASSIGN_OR_RETURN(
            std::vector<int64_t> patient_sel,
            relational::FilterColumns(nd.tables.patients, preds, ctx));
        local_rows = patient_sel;  // Positions == local array rows.
        cols.resize(static_cast<size_t>(dims_.genes));
        for (int64_t g = 0; g < dims_.genes; ++g) cols[g] = g;
      }
      GENBASE_ASSIGN_OR_RETURN(
          blocks[static_cast<size_t>(node)],
          nd.expression.GatherSubmatrix(local_rows, cols, ctx->memory()));
      if (node == 0 && col_ids != nullptr) *col_ids = cols;
      return genbase::Status::OK();
    }
    // Relational local pipeline (pbdR / column store / Hadoop local wave).
    GENBASE_ASSIGN_OR_RETURN(
        engine::QueryInputs in,
        engine::PrepareInputsColumnar(nd.tables, query, params, ctx));
    blocks[static_cast<size_t>(node)] = std::move(in.x);
    if (y_blocks != nullptr) {
      (*y_blocks)[static_cast<size_t>(node)] = std::move(in.y);
    }
    if (node == 0 && col_ids != nullptr) *col_ids = std::move(in.col_ids);
    return genbase::Status::OK();
  }));
  GENBASE_RETURN_NOT_OK(worker);
  if (options_.mapreduce) {
    int64_t total_bytes = 0;
    for (const auto& b : blocks) total_bytes += b.bytes() * 3;  // Triples.
    sim->AllToAll(total_bytes /
                  (static_cast<int64_t>(options_.nodes) * options_.nodes));
    sim->ChargeAll(config.mr_job_startup_s);  // Restructure job.
  }
  return blocks;
}

genbase::Status ClusterEngine::ApplyGlue(std::vector<linalg::Matrix>* blocks,
                                         SimCluster* sim, ExecContext* ctx) {
  const auto& config = SimConfig::Get();
  if (options_.csv_glue) {
    return sim->Compute([&](int node) -> genbase::Status {
      linalg::Matrix& b = (*blocks)[static_cast<size_t>(node)];
      if (b.size() == 0) return genbase::Status::OK();
      GENBASE_ASSIGN_OR_RETURN(
          b, engine::CsvRoundTripMatrix(linalg::MatrixView(b), ctx));
      return genbase::Status::OK();
    });
  }
  if (options_.udf_glue) {
    for (int node = 0; node < options_.nodes; ++node) {
      const linalg::Matrix& b = (*blocks)[static_cast<size_t>(node)];
      const int64_t chunks = std::max<int64_t>(1, b.rows() / 512 + 1);
      sim->ChargeCompute(node,
                         static_cast<double>(chunks) *
                             config.udf_invocation_overhead_s);
    }
  }
  return genbase::Status::OK();
}

genbase::Result<core::QueryResult> ClusterEngine::RunQuery(
    QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  if (!loaded_) return genbase::Status::Internal("not loaded");
  if (!SupportsQuery(query)) {
    return genbase::Status::NotSupported(options_.name +
                                         " lacks this analytics function");
  }
  const auto& config = SimConfig::Get();
  SimCluster sim(options_.nodes, ConfigNetwork());
  core::QueryResult out;
  out.query = query;

  // ---------- data management (+ glue) ----------------------------------------
  double phase_start = sim.elapsed();
  std::vector<std::vector<double>> y_blocks;
  std::vector<int64_t> col_ids;
  std::vector<linalg::Matrix> blocks;
  if (query != QueryId::kStatistics) {
    GENBASE_ASSIGN_OR_RETURN(
        blocks, LocalBlocks(query, params, &sim,
                            query == QueryId::kRegression ? &y_blocks
                                                          : nullptr,
                            &col_ids, ctx));
  }
  ctx->clock().AddVirtual(Phase::kDataManagement,
                          sim.elapsed() - phase_start);

  phase_start = sim.elapsed();
  if (query != QueryId::kStatistics) {
    GENBASE_RETURN_NOT_OK(ApplyGlue(&blocks, &sim, ctx));
  }
  ctx->clock().AddVirtual(Phase::kGlue, sim.elapsed() - phase_start);

  // ---------- analytics ---------------------------------------------------------
  phase_start = sim.elapsed();
  const double comm_start = sim.comm_elapsed();
  int64_t max_block_bytes = 0;
  for (const auto& b : blocks) {
    max_block_bytes = std::max(max_block_bytes, b.bytes());
  }

  switch (query) {
    case QueryId::kRegression: {
      if (options_.mapreduce) sim.ChargeAll(config.mr_job_startup_s);
      // Add the intercept column per node (the model.matrix step).
      std::vector<linalg::Matrix> designs(blocks.size());
      GENBASE_RETURN_NOT_OK(sim.Compute([&](int node) -> genbase::Status {
        const linalg::Matrix& b = blocks[static_cast<size_t>(node)];
        GENBASE_ASSIGN_OR_RETURN(
            linalg::Matrix d,
            linalg::Matrix::Create(b.rows(), b.cols() + 1, ctx->memory()));
        for (int64_t i = 0; i < b.rows(); ++i) {
          d(i, 0) = 1.0;
          std::copy(b.Row(i), b.Row(i) + b.cols(), d.Row(i) + 1);
        }
        designs[static_cast<size_t>(node)] = std::move(d);
        return genbase::Status::OK();
      }));
      int64_t rows = 0;
      for (const auto& b : blocks) rows += b.rows();
      GENBASE_ASSIGN_OR_RETURN(
          linalg::LeastSquaresFit fit,
          DistributedLeastSquares(&sim, std::move(designs), y_blocks, ctx));
      out.regression.rows = rows;
      out.regression.predictors = static_cast<int64_t>(col_ids.size());
      out.regression.r_squared = fit.r_squared;
      double l2 = 0;
      for (double c : fit.coefficients) l2 += c * c;
      out.regression.coef_l2 = std::sqrt(l2);
      const size_t head = std::min<size_t>(8, fit.coefficients.size());
      out.regression.coef_head.assign(fit.coefficients.begin(),
                                      fit.coefficients.begin() + head);
      break;
    }
    case QueryId::kCovariance: {
      if (options_.mapreduce) sim.ChargeAll(config.mr_job_startup_s);
      int64_t samples = 0;
      for (const auto& b : blocks) samples += b.rows();
      GENBASE_ASSIGN_OR_RETURN(
          linalg::Matrix cov,
          DistributedCovariance(&sim, blocks, options_.quality, ctx));
      genbase::Status root_status = genbase::Status::OK();
      GENBASE_RETURN_NOT_OK(sim.Compute([&](int node) -> genbase::Status {
        if (node != 0) return genbase::Status::OK();
        auto meta = engine::MakeColumnarMetaLookup(
            node_data_[0]->tables.genes);
        auto summary = core::CovarianceThresholdJoin(
            cov, samples, col_ids, meta, params.covariance_quantile, ctx);
        if (!summary.ok()) {
          root_status = summary.status();
          return genbase::Status::OK();
        }
        out.covariance = std::move(summary).ValueOrDie();
        return genbase::Status::OK();
      }));
      GENBASE_RETURN_NOT_OK(root_status);
      break;
    }
    case QueryId::kBiclustering: {
      // The paper's systems did not distribute biclustering: partitions are
      // gathered to the root, which runs the (custom-code) algorithm.
      sim.Gather(0, max_block_bytes);
      int64_t rows = 0;
      for (const auto& b : blocks) rows += b.rows();
      const int64_t cols = blocks[0].cols();
      genbase::Status root_status = genbase::Status::OK();
      GENBASE_RETURN_NOT_OK(sim.Compute([&](int node) -> genbase::Status {
        if (node != 0) return genbase::Status::OK();
        GENBASE_ASSIGN_OR_RETURN(
            linalg::Matrix full,
            linalg::Matrix::Create(rows, cols, ctx->memory()));
        int64_t at = 0;
        for (const auto& b : blocks) {
          for (int64_t i = 0; i < b.rows(); ++i) {
            std::copy(b.Row(i), b.Row(i) + cols, full.Row(at + i));
          }
          at += b.rows();
        }
        std::function<genbase::Status()> hook;
        if (options_.udf_glue) {
          hook = [&sim, &config]() {
            sim.ChargeCompute(0, config.udf_invocation_overhead_s);
            return genbase::Status::OK();
          };
        }
        auto summary = core::BiclusterAnalytics(
            linalg::MatrixView(full), params.bicluster_delta_fraction,
            params.bicluster_count, ctx, std::move(hook));
        if (!summary.ok()) {
          root_status = summary.status();
          return genbase::Status::OK();
        }
        out.bicluster = std::move(summary).ValueOrDie();
        return genbase::Status::OK();
      }));
      GENBASE_RETURN_NOT_OK(root_status);
      break;
    }
    case QueryId::kSvd: {
      const int rank = static_cast<int>(
          std::min<int64_t>(params.svd_rank, blocks[0].cols()));
      GENBASE_ASSIGN_OR_RETURN(
          DistributedSvdResult svd,
          DistributedTruncatedSvd(&sim, blocks, rank, options_.quality,
                                  /*seed=*/42, ctx));
      if (options_.mapreduce) {
        // Mahout's DistributedLanczosSolver: one MapReduce job/iteration.
        sim.ChargeAll(static_cast<double>(svd.iterations) *
                      config.mr_job_startup_s);
      }
      int64_t rows = 0;
      for (const auto& b : blocks) rows += b.rows();
      out.svd.rows = rows;
      out.svd.cols = blocks[0].cols();
      out.svd.rank = rank;
      out.svd.iterations = svd.iterations;
      out.svd.singular_values = std::move(svd.singular_values);
      break;
    }
    case QueryId::kStatistics: {
      const int64_t k =
          core::SampleCount(dims_.patients, params.sample_fraction);
      std::vector<double> sums(static_cast<size_t>(dims_.genes), 0.0);
      GENBASE_RETURN_NOT_OK(sim.Compute([&](int node) -> genbase::Status {
        const NodeData& nd = *node_data_[static_cast<size_t>(node)];
        const int64_t lo = nd.patients.begin;
        const int64_t hi = std::min(nd.patients.end, k);
        if (options_.array_native) {
          for (int64_t p = lo; p < hi; ++p) {
            for (int64_t g = 0; g < dims_.genes; ++g) {
              sums[static_cast<size_t>(g)] +=
                  nd.expression.Get(p - lo, g);
            }
          }
        } else if (hi > lo) {
          const auto& pid =
              nd.tables.microarray.IntColumn(MicroarrayCols::kPatientId);
          const auto& gid =
              nd.tables.microarray.IntColumn(MicroarrayCols::kGeneId);
          const auto& expr =
              nd.tables.microarray.DoubleColumn(MicroarrayCols::kExpr);
          for (size_t i = 0; i < pid.size(); ++i) {
            if (pid[i] < k) {
              sums[static_cast<size_t>(gid[i])] += expr[i];
            }
          }
        }
        return genbase::Status::OK();
      }));
      sim.AllReduce(dims_.genes * 8);
      genbase::Status root_status = genbase::Status::OK();
      GENBASE_RETURN_NOT_OK(sim.Compute([&](int node) -> genbase::Status {
        if (node != 0) return genbase::Status::OK();
        std::vector<double> scores = sums;
        const double inv = 1.0 / static_cast<double>(std::min(k,
                                                     dims_.patients));
        for (auto& s : scores) s *= inv;
        const auto memberships = engine::BuildMembershipsColumnar(
            node_data_[0]->tables.ontology, dims_.go_terms);
        auto summary = core::StatsAnalytics(scores, memberships,
                                            params.significance, ctx);
        if (!summary.ok()) {
          root_status = summary.status();
          return genbase::Status::OK();
        }
        out.stats = std::move(summary).ValueOrDie();
        out.stats.samples = std::min(k, dims_.patients);
        return genbase::Status::OK();
      }));
      GENBASE_RETURN_NOT_OK(root_status);
      break;
    }
  }

  double analytics_elapsed = sim.elapsed() - phase_start;
  if (options_.phi_offload) {
    // Device model: communication stays on the host network; per-node
    // compute is accelerated; partitions cross PCIe first.
    const double comm = sim.comm_elapsed() - comm_start;
    const double compute = std::max(0.0, analytics_elapsed - comm);
    double speedup = 1.0;
    switch (query) {
      case QueryId::kCovariance:
      case QueryId::kSvd:
      case QueryId::kRegression:
        speedup = config.phi_gemm_speedup;
        break;
      case QueryId::kStatistics:
        speedup = config.phi_bandwidth_speedup;
        break;
      case QueryId::kBiclustering:
        speedup = 1.15;  // Latency-bound: "cannot be expected to show
                         // significant speedup on any accelerator".
        break;
    }
    const double transfer =
        static_cast<double>(max_block_bytes) /
            config.phi_transfer_bytes_per_s +
        config.phi_launch_latency_s;
    analytics_elapsed = comm + compute / speedup + transfer;
  }
  ctx->clock().AddVirtual(Phase::kAnalytics, analytics_elapsed);
  return out;
}

std::vector<std::unique_ptr<core::Engine>> CreateMultiNodeEngines(
    int nodes) {
  std::vector<std::unique_ptr<core::Engine>> engines;
  engines.push_back(
      std::make_unique<ClusterEngine>(ColumnStorePbdrOptions(nodes)));
  engines.push_back(
      std::make_unique<ClusterEngine>(ColumnStoreUdfMnOptions(nodes)));
  engines.push_back(std::make_unique<ClusterEngine>(HadoopMnOptions(nodes)));
  engines.push_back(std::make_unique<ClusterEngine>(PbdrOptions(nodes)));
  engines.push_back(std::make_unique<ClusterEngine>(SciDbMnOptions(nodes)));
  return engines;
}

}  // namespace genbase::cluster
