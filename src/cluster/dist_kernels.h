#ifndef GENBASE_CLUSTER_DIST_KERNELS_H_
#define GENBASE_CLUSTER_DIST_KERNELS_H_

#include <cstdint>
#include <vector>

#include "cluster/sim_cluster.h"
#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/covariance.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"

namespace genbase::cluster {

/// \brief Contiguous row ranges assigning n rows to nodes (the "evenly
/// partitioned the data between nodes" layout the paper used for pbdR).
struct RowRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};
std::vector<RowRange> PartitionRows(int64_t n, int nodes);

/// \brief ScaLAPACK-style distributed least squares via TSQR: each node
/// factors its local row block, the small R factors (plus transformed
/// responses) are gathered, and the root solves the stacked reduced problem.
/// Nodes whose local block is shorter than the column count ship the raw
/// block instead (the standard tall-skinny fallback).
genbase::Result<linalg::LeastSquaresFit> DistributedLeastSquares(
    SimCluster* cluster, std::vector<linalg::Matrix> design_blocks,
    const std::vector<std::vector<double>>& y_blocks, ExecContext* ctx);

/// \brief Distributed covariance: local column-sum reduction for the means,
/// local centered Gram (Syrk) per node, ring all-reduce of the n x n Gram —
/// the communication step whose cost the paper blames for SciDB's poor
/// 2-node covariance scaling.
genbase::Result<linalg::Matrix> DistributedCovariance(
    SimCluster* cluster, const std::vector<linalg::Matrix>& x_blocks,
    linalg::KernelQuality quality, ExecContext* ctx);

/// \brief Result of the distributed truncated Gram eigensolve.
struct DistributedSvdResult {
  std::vector<double> singular_values;  ///< Descending.
  int iterations = 0;
};

/// \brief Distributed Lanczos SVD: the Gram operator v -> A^T (A v) is
/// evaluated as per-node partials plus an all-reduce of the length-n vector
/// each iteration; the Lanczos recurrence itself runs on the root.
genbase::Result<DistributedSvdResult> DistributedTruncatedSvd(
    SimCluster* cluster, const std::vector<linalg::Matrix>& a_blocks,
    int rank, linalg::KernelQuality quality, uint64_t seed,
    ExecContext* ctx);

}  // namespace genbase::cluster

#endif  // GENBASE_CLUSTER_DIST_KERNELS_H_
