#include "cluster/sim_cluster.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"

namespace genbase::cluster {

SimCluster::SimCluster(int nodes, NetworkModel net)
    : clock_(static_cast<size_t>(nodes), 0.0), net_(net) {
  GENBASE_CHECK(nodes >= 1);
}

double SimCluster::MaxClock() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

double SimCluster::elapsed() const { return MaxClock(); }

genbase::Status SimCluster::Compute(
    const std::function<genbase::Status(int)>& fn) {
  // Node steps run sequentially, so high-resolution wall time measures each
  // node's local work accurately (the per-thread CPU clock has only ~10 ms
  // granularity in sandboxed kernels, far too coarse for these steps).
  for (int node = 0; node < nodes(); ++node) {
    WallTimer timer;
    GENBASE_RETURN_NOT_OK(fn(node));
    clock_[static_cast<size_t>(node)] += timer.Seconds();
  }
  return genbase::Status::OK();
}

void SimCluster::AdvanceAll(double from, double cost) {
  for (auto& c : clock_) c = from + cost;
  comm_elapsed_ += cost;
}

void SimCluster::Barrier() {
  if (nodes() == 1) return;
  const double steps = std::ceil(std::log2(static_cast<double>(nodes())));
  AdvanceAll(MaxClock(), steps * net_.latency_s);
}

void SimCluster::AllReduce(int64_t bytes) {
  if (nodes() == 1) return;
  // Ring all-reduce: 2(P-1) steps of latency + (bytes/P)/bandwidth.
  const double p = static_cast<double>(nodes());
  const double per_step =
      net_.latency_s +
      static_cast<double>(bytes) / p / net_.bandwidth_bytes_per_s;
  AdvanceAll(MaxClock(), 2.0 * (p - 1.0) * per_step);
}

void SimCluster::Gather(int root, int64_t bytes_per_node) {
  if (nodes() == 1) return;
  (void)root;  // Cost symmetric in root identity under BSP accounting.
  // Root serializes (P-1) receives.
  const double cost = static_cast<double>(nodes() - 1) *
                      net_.TransferSeconds(bytes_per_node);
  AdvanceAll(MaxClock(), cost);
}

void SimCluster::Broadcast(int root, int64_t bytes) {
  if (nodes() == 1) return;
  (void)root;
  const double steps = std::ceil(std::log2(static_cast<double>(nodes())));
  AdvanceAll(MaxClock(), steps * net_.TransferSeconds(bytes));
}

void SimCluster::AllToAll(int64_t bytes_per_pair) {
  if (nodes() == 1) return;
  // Each node sends and receives (P-1) blocks; links are full duplex.
  const double cost = static_cast<double>(nodes() - 1) *
                      net_.TransferSeconds(bytes_per_pair);
  AdvanceAll(MaxClock(), cost);
}

}  // namespace genbase::cluster
