#include "accel/phi_engine.h"

namespace genbase::accel {

std::unique_ptr<core::Engine> CreatePhiSciDb() {
  return std::make_unique<PhiSciDbEngine>();
}

}  // namespace genbase::accel
