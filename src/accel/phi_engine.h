#ifndef GENBASE_ACCEL_PHI_ENGINE_H_
#define GENBASE_ACCEL_PHI_ENGINE_H_

#include <memory>
#include <string>

#include "accel/coprocessor.h"
#include "engine/scidb_engine.h"

namespace genbase::accel {

/// \brief Section 5's accelerated configuration: "data management on SciDB
/// ... linear algebra operations performed with routines specific to the
/// Intel Xeon Phi coprocessor". Data management is identical to the plain
/// SciDB engine; the analytics phase is offloaded through the coprocessor
/// model (PCIe transfer + device compute ratio), so "this system will show
/// the acceleration of a state-of-the-art co-processor, but only if the
/// arrays are large enough to overcome the setup time".
class PhiSciDbEngine : public engine::SciDbEngine,
                       private engine::SciDbEngine::AnalyticsOffload {
 public:
  PhiSciDbEngine() { set_offload(this); }

  std::string name() const override { return "SciDB + Xeon Phi"; }

 private:
  double OffloadSeconds(core::QueryId query, int64_t input_bytes,
                        double host_seconds) const override {
    return device_.OffloadedSeconds(KernelClassFor(query), input_bytes,
                                    host_seconds);
  }

  Coprocessor device_;
};

std::unique_ptr<core::Engine> CreatePhiSciDb();

}  // namespace genbase::accel

#endif  // GENBASE_ACCEL_PHI_ENGINE_H_
