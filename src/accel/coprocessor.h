#ifndef GENBASE_ACCEL_COPROCESSOR_H_
#define GENBASE_ACCEL_COPROCESSOR_H_

#include <cstdint>

#include "core/queries.h"

namespace genbase::accel {

/// \brief Kernel classes with different acceleration profiles on a many-core
/// coprocessor (paper Section 5).
enum class KernelClass {
  kGemmBound,       ///< Covariance, SVD: compute-rich, big speedups.
  kBandwidthBound,  ///< Statistics: limited by memory streams.
  kLatencyBound,    ///< Biclustering: "takes very little computation time
                    ///< and cannot be expected to show significant speedup
                    ///< on any accelerator".
};

KernelClass KernelClassFor(core::QueryId query);

/// \brief Analytic model of an Intel Xeon Phi 5110P-class coprocessor
/// attached over PCIe. No such device exists in this environment, so the
/// *compute ratio* is modeled (from the device/host peak FLOP and bandwidth
/// ratios, derated) while the decisive structural effects — transfer
/// amortization with data size, device memory capacity, communication not
/// accelerating — are computed from the actual workload sizes. Constants
/// live in core::SimConfig; DESIGN.md documents the substitution.
class Coprocessor {
 public:
  Coprocessor();  // From SimConfig.
  Coprocessor(double gemm_speedup, double bandwidth_speedup,
              double transfer_bytes_per_s, double launch_latency_s,
              int64_t memory_bytes);

  /// Speedup applied to host compute seconds for a kernel class.
  double ComputeSpeedup(KernelClass kernel_class) const;

  /// PCIe transfer time for `bytes` (one direction), plus launch latency.
  double TransferSeconds(int64_t bytes) const;

  /// Whether a working set fits on-device ("data sets that do not fit in
  /// this memory will suffer excessive data movement costs").
  bool Fits(int64_t bytes) const { return bytes <= memory_bytes_; }

  /// End-to-end modeled device-seconds for an analytics phase measured at
  /// `host_seconds` over `input_bytes`. Falls back to host execution when
  /// the working set does not fit on the device.
  double OffloadedSeconds(KernelClass kernel_class, int64_t input_bytes,
                          double host_seconds) const;

 private:
  double gemm_speedup_;
  double bandwidth_speedup_;
  double transfer_bytes_per_s_;
  double launch_latency_s_;
  int64_t memory_bytes_;
};

}  // namespace genbase::accel

#endif  // GENBASE_ACCEL_COPROCESSOR_H_
