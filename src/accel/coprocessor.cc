#include "accel/coprocessor.h"

#include "core/config.h"

namespace genbase::accel {

KernelClass KernelClassFor(core::QueryId query) {
  switch (query) {
    case core::QueryId::kCovariance:
    case core::QueryId::kSvd:
    case core::QueryId::kRegression:
      return KernelClass::kGemmBound;
    case core::QueryId::kStatistics:
      return KernelClass::kBandwidthBound;
    case core::QueryId::kBiclustering:
      return KernelClass::kLatencyBound;
  }
  return KernelClass::kBandwidthBound;
}

Coprocessor::Coprocessor() {
  const auto& c = core::SimConfig::Get();
  gemm_speedup_ = c.phi_gemm_speedup;
  bandwidth_speedup_ = c.phi_bandwidth_speedup;
  transfer_bytes_per_s_ = c.phi_transfer_bytes_per_s;
  launch_latency_s_ = c.phi_launch_latency_s;
  memory_bytes_ = c.phi_memory_bytes;
}

Coprocessor::Coprocessor(double gemm_speedup, double bandwidth_speedup,
                         double transfer_bytes_per_s,
                         double launch_latency_s, int64_t memory_bytes)
    : gemm_speedup_(gemm_speedup),
      bandwidth_speedup_(bandwidth_speedup),
      transfer_bytes_per_s_(transfer_bytes_per_s),
      launch_latency_s_(launch_latency_s),
      memory_bytes_(memory_bytes) {}

double Coprocessor::ComputeSpeedup(KernelClass kernel_class) const {
  switch (kernel_class) {
    case KernelClass::kGemmBound:
      return gemm_speedup_;
    case KernelClass::kBandwidthBound:
      return bandwidth_speedup_;
    case KernelClass::kLatencyBound:
      return 1.15;
  }
  return 1.0;
}

double Coprocessor::TransferSeconds(int64_t bytes) const {
  return launch_latency_s_ +
         static_cast<double>(bytes) / transfer_bytes_per_s_;
}

double Coprocessor::OffloadedSeconds(KernelClass kernel_class,
                                     int64_t input_bytes,
                                     double host_seconds) const {
  if (!Fits(input_bytes)) return host_seconds;  // Stay on the host.
  return TransferSeconds(input_bytes) +
         host_seconds / ComputeSpeedup(kernel_class);
}

}  // namespace genbase::accel
