#ifndef GENBASE_STATS_RANKING_H_
#define GENBASE_STATS_RANKING_H_

#include <cstdint>
#include <vector>

namespace genbase::stats {

/// \brief Ranks plus tie structure, produced from one index sort.
struct RankedValues {
  /// 1-based mid-ranks: ties receive the average of the ranks they span
  /// (the convention the Wilcoxon test needs).
  std::vector<double> ranks;
  /// Sizes of tie groups with more than one member, in sorted-value order
  /// (for the tie-corrected rank-sum variance).
  std::vector<int64_t> tie_group_sizes;
};

/// \brief Computes mid-ranks and tie-group sizes with a single index sort
/// and one tie-run sweep: O(n log n) comparisons, no value copies, one pass
/// over each tie run. Q4/Q5 call this once per GO term, so the second sort
/// the old AverageRanks + TieGroupSizes pair paid is gone.
RankedValues RankWithTies(const std::vector<double>& values);

/// Span overload for values living in externally planned storage (the
/// static-plan arena); the vector overload forwards here.
RankedValues RankWithTies(const double* values, int64_t count);

/// \brief Returns 1-based mid-ranks of `values` (RankWithTies().ranks).
std::vector<double> AverageRanks(const std::vector<double>& values);

/// \brief Tie-group sizes of the sorted values. Only groups of size > 1 are
/// returned. (RankWithTies().tie_group_sizes.)
std::vector<int64_t> TieGroupSizes(const std::vector<double>& values);

}  // namespace genbase::stats

#endif  // GENBASE_STATS_RANKING_H_
