#ifndef GENBASE_STATS_RANKING_H_
#define GENBASE_STATS_RANKING_H_

#include <cstdint>
#include <vector>

namespace genbase::stats {

/// \brief Returns 1-based ranks of `values`, ties receiving the average of
/// the ranks they span (the "mid-rank" convention the Wilcoxon test needs).
std::vector<double> AverageRanks(const std::vector<double>& values);

/// \brief Tie-group sizes of the sorted values (for the tie-corrected
/// variance in the rank-sum test). Only groups of size > 1 are returned.
std::vector<int64_t> TieGroupSizes(const std::vector<double>& values);

}  // namespace genbase::stats

#endif  // GENBASE_STATS_RANKING_H_
