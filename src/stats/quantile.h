#ifndef GENBASE_STATS_QUANTILE_H_
#define GENBASE_STATS_QUANTILE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace genbase::stats {

/// \brief q-quantile (0 <= q <= 1) of `values` by partial selection
/// (nth_element on a copy). q = 0.9 gives the paper's Query 2 "top 10%
/// covariance" threshold.
genbase::Result<double> Quantile(const std::vector<double>& values, double q);

/// Span overload for values living in externally planned storage (the
/// static-plan arena); the vector overload forwards here. Still selects on
/// a private copy — the input is not reordered.
genbase::Result<double> Quantile(const double* values, int64_t count,
                                 double q);

/// \brief Approximate quantile from a deterministic subsample; used when the
/// full pair population (n^2 covariances) is too large to copy.
genbase::Result<double> SampledQuantile(const double* values, int64_t count,
                                        double q, int64_t max_sample,
                                        uint64_t seed);

}  // namespace genbase::stats

#endif  // GENBASE_STATS_QUANTILE_H_
