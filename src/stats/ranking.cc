#include "stats/ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace genbase::stats {

RankedValues RankWithTies(const std::vector<double>& values) {
  return RankWithTies(values.data(), static_cast<int64_t>(values.size()));
}

RankedValues RankWithTies(const double* values, int64_t n) {
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // `<` alone is not a strict weak ordering when NaN is present, and
  // std::sort on an inconsistent comparator can read out of bounds. Sort
  // NaNs after every finite value, ordered among themselves by index.
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const double va = values[a];
    const double vb = values[b];
    const bool na = std::isnan(va);
    const bool nb = std::isnan(vb);
    if (na != nb) return nb;
    if (na) return a < b;
    return va < vb;
  });
  RankedValues out;
  out.ranks.assign(static_cast<size_t>(n), 0.0);
  int64_t i = 0;
  while (i < n) {
    const double v = values[order[i]];
    int64_t j = i;
    while (j + 1 < n && values[order[j + 1]] == v) ++j;
    // Positions i..j (0-based) share the average of 1-based ranks i+1..j+1.
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (int64_t t = i; t <= j; ++t) out.ranks[order[t]] = avg;
    if (j > i) out.tie_group_sizes.push_back(j - i + 1);
    i = j + 1;
  }
  return out;
}

std::vector<double> AverageRanks(const std::vector<double>& values) {
  return RankWithTies(values).ranks;
}

std::vector<int64_t> TieGroupSizes(const std::vector<double>& values) {
  return RankWithTies(values).tie_group_sizes;
}

}  // namespace genbase::stats
