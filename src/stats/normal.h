#ifndef GENBASE_STATS_NORMAL_H_
#define GENBASE_STATS_NORMAL_H_

#include <cmath>

namespace genbase::stats {

/// \brief Standard normal CDF via the complementary error function.
inline double StdNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

/// \brief Standard normal survival function P(Z > z).
inline double StdNormalSf(double z) {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

/// \brief Two-sided p-value for a standard normal statistic.
inline double TwoSidedNormalPValue(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

}  // namespace genbase::stats

#endif  // GENBASE_STATS_NORMAL_H_
