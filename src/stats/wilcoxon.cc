#include "stats/wilcoxon.h"

#include <algorithm>
#include <cmath>

#include "stats/normal.h"
#include "stats/ranking.h"

namespace genbase::stats {

genbase::Result<RankSumResult> WilcoxonRankSum(
    const std::vector<double>& values, const std::vector<bool>& in_group) {
  return WilcoxonRankSum(values.data(),
                         static_cast<int64_t>(values.size()), in_group);
}

genbase::Result<RankSumResult> WilcoxonRankSum(
    const double* values, int64_t count, const std::vector<bool>& in_group) {
  if (static_cast<size_t>(count) != in_group.size()) {
    return genbase::Status::InvalidArgument("values/mask length mismatch");
  }
  RankSumResult r;
  for (bool b : in_group) (b ? r.n_in : r.n_out)++;
  if (r.n_in == 0 || r.n_out == 0) {
    return genbase::Status::InvalidArgument(
        "rank-sum test needs both groups non-empty");
  }
  const double n1 = static_cast<double>(r.n_in);
  const double n2 = static_cast<double>(r.n_out);
  const double n = n1 + n2;

  // One index sort yields both the mid-ranks and the tie structure.
  const RankedValues ranked = RankWithTies(values, count);
  for (int64_t i = 0; i < count; ++i) {
    if (in_group[static_cast<size_t>(i)]) {
      r.rank_sum_in_group += ranked.ranks[static_cast<size_t>(i)];
    }
  }
  r.u_statistic = r.rank_sum_in_group - n1 * (n1 + 1.0) / 2.0;

  const double mean_u = n1 * n2 / 2.0;
  // Tie correction: var = n1 n2 /12 * (n+1 - sum(t^3 - t) / (n (n-1))).
  double tie_term = 0.0;
  for (int64_t t : ranked.tie_group_sizes) {
    const double td = static_cast<double>(t);
    tie_term += td * td * td - td;
  }
  const double var_u =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All values identical: no evidence either way.
    r.z = 0.0;
    r.p_two_sided = 1.0;
    return r;
  }
  // Continuity correction toward the mean.
  double diff = r.u_statistic - mean_u;
  if (diff > 0.5) {
    diff -= 0.5;
  } else if (diff < -0.5) {
    diff += 0.5;
  } else {
    diff = 0.0;
  }
  r.z = diff / std::sqrt(var_u);
  r.p_two_sided = TwoSidedNormalPValue(r.z);
  return r;
}

namespace {

/// Recursively enumerates size-k subsets accumulating rank sums >= observed
/// (in absolute deviation from the mean) to produce an exact p-value.
void EnumerateSubsets(const std::vector<double>& ranks, size_t next, int64_t
                      remaining, double sum, double mean, double target_dev,
                      int64_t* total, int64_t* at_least_as_extreme) {
  if (remaining == 0) {
    ++*total;
    if (std::fabs(sum - mean) >= target_dev - 1e-12) {
      ++*at_least_as_extreme;
    }
    return;
  }
  if (next >= ranks.size()) return;
  if (ranks.size() - next < static_cast<size_t>(remaining)) return;
  EnumerateSubsets(ranks, next + 1, remaining - 1, sum + ranks[next], mean,
                   target_dev, total, at_least_as_extreme);
  EnumerateSubsets(ranks, next + 1, remaining, sum, mean, target_dev, total,
                   at_least_as_extreme);
}

}  // namespace

genbase::Result<double> ExactRankSumPValue(const std::vector<double>& values,
                                           const std::vector<bool>& in_group) {
  if (values.size() != in_group.size()) {
    return genbase::Status::InvalidArgument("values/mask length mismatch");
  }
  if (values.size() > 20) {
    return genbase::Status::InvalidArgument(
        "exact test limited to n <= 20 (enumeration oracle)");
  }
  int64_t n1 = 0;
  for (bool b : in_group) n1 += b ? 1 : 0;
  if (n1 == 0 || n1 == static_cast<int64_t>(values.size())) {
    return genbase::Status::InvalidArgument("both groups must be non-empty");
  }
  const std::vector<double> ranks = AverageRanks(values);
  double observed = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (in_group[i]) observed += ranks[i];
  }
  const double n = static_cast<double>(values.size());
  const double mean = static_cast<double>(n1) * (n + 1.0) / 2.0;
  int64_t total = 0, extreme = 0;
  EnumerateSubsets(ranks, 0, n1, 0.0, mean, std::fabs(observed - mean),
                   &total, &extreme);
  return static_cast<double>(extreme) / static_cast<double>(total);
}

}  // namespace genbase::stats
