#ifndef GENBASE_STATS_WILCOXON_H_
#define GENBASE_STATS_WILCOXON_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace genbase::stats {

/// \brief Result of a Wilcoxon rank-sum (Mann-Whitney) test.
struct RankSumResult {
  double rank_sum_in_group = 0.0;  ///< W: sum of ranks of group-1 members.
  double u_statistic = 0.0;        ///< Mann-Whitney U for group 1.
  double z = 0.0;                  ///< Normal approximation statistic.
  double p_two_sided = 1.0;
  int64_t n_in = 0;
  int64_t n_out = 0;
};

/// \brief Wilcoxon rank-sum test of whether values flagged in_group rank
/// systematically high or low among all values. Normal approximation with
/// continuity correction and tie-corrected variance — the standard recipe
/// (and what R's wilcox.test uses at these sample sizes).
///
/// This is GenBase Query 5's statistical kernel: "The Wilcoxon Rank-Sum
/// statistical test is used to determine if a gene set ranks at the top or
/// bottom of the ranked list."
genbase::Result<RankSumResult> WilcoxonRankSum(
    const std::vector<double>& values, const std::vector<bool>& in_group);

/// Span overload for values living in externally planned storage (the
/// static-plan arena); the vector overload forwards here.
genbase::Result<RankSumResult> WilcoxonRankSum(
    const double* values, int64_t count, const std::vector<bool>& in_group);

/// \brief Exact two-sided p-value by complete enumeration of group
/// assignments. Exponential cost; only valid for small inputs (n <= 20,
/// choose(n, k) <= ~2e6). Used as the property-test oracle.
genbase::Result<double> ExactRankSumPValue(const std::vector<double>& values,
                                           const std::vector<bool>& in_group);

}  // namespace genbase::stats

#endif  // GENBASE_STATS_WILCOXON_H_
