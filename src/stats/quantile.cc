#include "stats/quantile.h"

#include <algorithm>

#include "common/rng.h"

namespace genbase::stats {

genbase::Result<double> Quantile(const std::vector<double>& values,
                                 double q) {
  return Quantile(values.data(), static_cast<int64_t>(values.size()), q);
}

genbase::Result<double> Quantile(const double* values, int64_t count,
                                 double q) {
  if (count == 0) {
    return genbase::Status::InvalidArgument("quantile of empty set");
  }
  if (q < 0.0 || q > 1.0) {
    return genbase::Status::InvalidArgument("quantile q out of [0,1]");
  }
  std::vector<double> copy(values, values + count);
  const int64_t idx = std::min<int64_t>(
      static_cast<int64_t>(copy.size()) - 1,
      static_cast<int64_t>(q * static_cast<double>(copy.size())));
  std::nth_element(copy.begin(), copy.begin() + idx, copy.end());
  return copy[static_cast<size_t>(idx)];
}

genbase::Result<double> SampledQuantile(const double* values, int64_t count,
                                        double q, int64_t max_sample,
                                        uint64_t seed) {
  if (count <= 0) {
    return genbase::Status::InvalidArgument("quantile of empty set");
  }
  if (count <= max_sample) {
    return Quantile(std::vector<double>(values, values + count), q);
  }
  genbase::Rng rng(seed);
  std::vector<double> sample(static_cast<size_t>(max_sample));
  for (int64_t i = 0; i < max_sample; ++i) {
    sample[static_cast<size_t>(i)] =
        values[rng.UniformInt(0, count - 1)];
  }
  return Quantile(sample, q);
}

}  // namespace genbase::stats
