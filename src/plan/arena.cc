#include "plan/arena.h"

#include <cstdint>
#include <memory>
#include <utility>

namespace genbase::plan {

genbase::Result<std::unique_ptr<PlanArena>> PlanArena::Create(
    int64_t bytes, int64_t alignment, MemoryTracker* tracker) {
  if (alignment < 64 || (alignment & (alignment - 1)) != 0) {
    return genbase::Status::InvalidArgument(
        "arena alignment must be a power of two >= 64");
  }
  if (bytes < 0) {
    return genbase::Status::InvalidArgument("negative arena size");
  }
  const int64_t rounded = (bytes + alignment - 1) / alignment * alignment;
  const int64_t total = rounded + alignment;
  GENBASE_ASSIGN_OR_RETURN(ScopedReservation reservation,
                           ScopedReservation::Acquire(tracker, total));
  const auto total_bytes = static_cast<size_t>(total);
  // lint:allow(plan-arena-alloc): this IS the arena's one backing allocation.
  std::unique_ptr<unsigned char[]> storage(new (std::nothrow)
                                               unsigned char[total_bytes]);
  if (storage == nullptr) {
    return genbase::Status::OutOfMemory("arena allocation failed");
  }
  auto addr = reinterpret_cast<uintptr_t>(storage.get());
  const uintptr_t aligned =
      (addr + static_cast<uintptr_t>(alignment) - 1) &
      ~(static_cast<uintptr_t>(alignment) - 1);
  unsigned char* base = storage.get() + (aligned - addr);
  return std::unique_ptr<PlanArena>(
      // lint:allow(raw-new-delete): private ctor, unreachable by make_unique.
      new PlanArena(std::move(storage), base, rounded, alignment,
                    std::move(reservation)));
}

}  // namespace genbase::plan
