#ifndef GENBASE_PLAN_MEMORY_PLANNER_H_
#define GENBASE_PLAN_MEMORY_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan_graph.h"

namespace genbase::plan {

/// \brief Static placement of one plan value inside the arena.
struct BufferAssignment {
  int64_t offset = 0;     ///< Byte offset into the arena (alignment-multiple).
  int64_t size = 0;       ///< Alignment-rounded byte size.
  int def_step = 0;       ///< First schedule step that writes the buffer.
  int last_use_step = 0;  ///< Last schedule step that touches the buffer.
  int alias_root = -1;    ///< Value id this aliases (in-place chains), or -1.
};

/// \brief The static allocation plan: per-value offsets into one arena,
/// plus the accounting the obs stack reports. `arena_bytes` is an exact
/// peak — executing the schedule touches exactly the planned high-water
/// mark, never more (property-tested), so peak memory is known before the
/// first byte is allocated.
struct MemoryPlan {
  std::vector<BufferAssignment> buffers;  ///< Indexed by value id.
  int64_t alignment = 64;
  int64_t arena_bytes = 0;            ///< Peak = arena size.
  int64_t total_bytes_no_reuse = 0;   ///< Sum of distinct buffer sizes.
  int64_t reused_bytes = 0;           ///< total_bytes_no_reuse - arena_bytes.

  /// Human-readable allocation plan (one line per value: offset, size,
  /// lifetime, alias) for debugging planner decisions.
  std::string Dump(const PlanGraph& graph) const;
};

/// \brief Computes buffer lifetimes over `schedule` and assigns arena
/// offsets greedily by size (largest first), best-fit into the gaps left by
/// lifetime-overlapping buffers — lifetime-disjoint buffers may share
/// offsets, which is where the reuse comes from. In-place op chains
/// collapse to one buffer (shared offset, merged lifetime). All sizes are
/// rounded up to `alignment` (>= 64 for the SIMD kernels' aligned loads)
/// and every offset is an alignment multiple.
genbase::Result<MemoryPlan> PlanMemory(const PlanGraph& graph,
                                       const std::vector<int>& schedule,
                                       int64_t alignment = 64);

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_MEMORY_PLANNER_H_
