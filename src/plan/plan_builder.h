#ifndef GENBASE_PLAN_PLAN_BUILDER_H_
#define GENBASE_PLAN_PLAN_BUILDER_H_

#include <memory>

#include "common/exec_context.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/queries.h"
#include "engine/engine_util.h"
#include "plan/compiled_plan.h"

namespace genbase::plan {

/// \brief Compiles one query against a dataset snapshot into a static plan:
/// runs the relational prep (filters, hash joins, dense mappings) once,
/// builds the operator DAG with exact buffer shapes, schedules it
/// deterministically, runs the memory planner, and binds operator closures
/// to the planned arena offsets. The result executes any number of times
/// against the same tables with zero per-run planning or allocation beyond
/// one arena grab.
///
/// Planned execution is bitwise identical to the legacy
/// PrepareInputsColumnar + RunStandardAnalytics path: every operator runs
/// the same kernel entry points in the same order (property-tested).
genbase::Result<std::shared_ptr<CompiledPlan>> CompileQuery(
    std::shared_ptr<const engine::ColumnarTables> tables,
    core::QueryId query, const core::QueryParams& params,
    MemoryTracker* tracker, ExecContext* ctx);

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_PLAN_BUILDER_H_
