#include "plan/plan_engine.h"

#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan_stats.h"
#include "serving/result_cache.h"

namespace genbase::plan {

PlanEngine::PlanEngine()
    : tracker_(MemoryTracker::kUnlimited, "PlanStore") {}

genbase::Status PlanEngine::DoLoadDataset(const core::GenBaseData& data) {
  DoUnloadDataset();
  auto tables = std::make_shared<engine::ColumnarTables>();
  GENBASE_RETURN_NOT_OK(
      engine::LoadColumnarTables(data, &tracker_, tables.get()));
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    tables_ = std::move(tables);
    // Read the epoch AFTER the swap, inside the lock: LoadDataset bumps the
    // epoch before calling us, so any snapshot pairing these tables with
    // this epoch is consistent (a concurrent reload re-enters here and
    // overwrites both together).
    tables_epoch_ = dataset_epoch();
  }
  return genbase::Status::OK();
}

void PlanEngine::DoUnloadDataset() {
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    tables_.reset();
    tables_epoch_ = 0;
  }
  // No tracker_.Reset(): in-flight executions may still pin the previous
  // tables via their plans' shared_ptr; their reservations release when the
  // last plan reference drops, keeping the accounting balanced.
  cache_.Clear();
}

void PlanEngine::PrepareContext(ExecContext* ctx) {
  ctx->set_memory(&tracker_);
  ctx->set_pool(nullptr);
}

PlanEngine::TablesSnapshot PlanEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  return {tables_, tables_epoch_};
}

genbase::Result<std::shared_ptr<CompiledPlan>> PlanEngine::GetPlan(
    core::QueryId query, const core::QueryParams& params,
    const TablesSnapshot& snap, ExecContext* ctx, bool* cache_hit) {
  cache_.EvictEpochsBelow(snap.epoch);
  PlanKey key;
  key.query = query;
  key.params_fingerprint = serving::FingerprintParams(params);
  key.epoch = snap.epoch;
  auto result = cache_.GetOrCompile(
      key,
      [this, &snap, query, &params, ctx]()
          -> genbase::Result<std::shared_ptr<CompiledPlan>> {
        // Compile counts as data management: it subsumes the filter, join
        // and mapping work the legacy path pays there on every run.
        ScopedPhase dm(ctx, Phase::kDataManagement);
        obs::ScopedSpan span("plan.compile");
        span.SetDetail(core::QueryName(query));
        WallTimer timer;
        GENBASE_ASSIGN_OR_RETURN(
            std::shared_ptr<CompiledPlan> plan,
            CompileQuery(snap.tables, query, params, &tracker_, ctx));
        plan->set_compile_ns(
            static_cast<int64_t>(timer.Seconds() * 1e9));
        PlanMetrics& m = PlanMetrics::Get();
        m.compiles->Inc();
        m.compile_ns->Inc(plan->compile_ns());
        m.reused_bytes->Inc(plan->memory_plan().reused_bytes);
        m.predicted_peak_bytes->SetMax(
            static_cast<double>(plan->memory_plan().arena_bytes));
        return plan;
      },
      cache_hit);
  if (result.ok() && cache_hit != nullptr && *cache_hit) {
    PlanMetrics::Get().cache_hits->Inc();
  }
  return result;
}

genbase::Result<core::QueryResult> PlanEngine::RunQuery(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  const TablesSnapshot snap = Snapshot();
  if (snap.tables == nullptr) {
    return genbase::Status::Internal("PlanEngine: dataset not loaded");
  }
  bool cache_hit = false;
  GENBASE_ASSIGN_OR_RETURN(std::shared_ptr<CompiledPlan> plan,
                           GetPlan(query, params, snap, ctx, &cache_hit));
  return plan->Execute(ctx);
}

genbase::Result<std::shared_ptr<CompiledPlan>> PlanEngine::CompileForTest(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  const TablesSnapshot snap = Snapshot();
  if (snap.tables == nullptr) {
    return genbase::Status::Internal("PlanEngine: dataset not loaded");
  }
  bool cache_hit = false;
  return GetPlan(query, params, snap, ctx, &cache_hit);
}

std::unique_ptr<core::Engine> CreatePlanStore() {
  return std::make_unique<PlanEngine>();
}

}  // namespace genbase::plan
