#include "plan/compiled_plan.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "plan/plan_stats.h"

namespace genbase::plan {

double* ExecFrame::Data(int value_id) {
  const BufferAssignment& b =
      plan_->mem_.buffers[static_cast<size_t>(value_id)];
  observed_peak_ = std::max(observed_peak_, b.offset + b.size);
  return arena_->DoubleAt(b.offset);
}

linalg::MatrixView ExecFrame::View(int value_id) {
  const TensorSpec& spec =
      plan_->graph_.values()[static_cast<size_t>(value_id)].spec;
  return linalg::MatrixView(Data(value_id), spec.rows, spec.cols, spec.cols);
}

const PlanStatics& ExecFrame::statics() const { return plan_->statics_; }

genbase::Result<std::unique_ptr<PlanArena>> CompiledPlan::AcquireArena() {
  {
    std::lock_guard<std::mutex> lock(arena_mu_);
    if (!arena_pool_.empty()) {
      std::unique_ptr<PlanArena> arena = std::move(arena_pool_.back());
      arena_pool_.pop_back();
      return arena;
    }
  }
  return PlanArena::Create(mem_.arena_bytes, mem_.alignment, tracker_);
}

void CompiledPlan::ReleaseArena(std::unique_ptr<PlanArena> arena) {
  std::lock_guard<std::mutex> lock(arena_mu_);
  // A small pool is enough: the serving stack runs a handful of worker
  // threads; beyond that, returning the arena to the tracker is cheaper
  // than pinning idle memory.
  if (arena_pool_.size() < 8) arena_pool_.push_back(std::move(arena));
}

genbase::Result<core::QueryResult> CompiledPlan::Execute(ExecContext* ctx) {
  GENBASE_ASSIGN_OR_RETURN(std::unique_ptr<PlanArena> arena, AcquireArena());
  ExecFrame frame(arena.get(), this);
  core::QueryResult result;
  result.query = query_;
  for (const CompiledOp& op : ops_) {
    obs::ScopedSpan span(OpSpanName(op.kind));
    span.SetDetail(op.name);
    ScopedPhase phase(ctx, OpPhase(op.kind));
    genbase::Status s = op.run(&frame, ctx, &result);
    if (!s.ok()) {
      ReleaseArena(std::move(arena));
      return s;
    }
  }
  PlanMetrics& m = PlanMetrics::Get();
  m.executes->Inc();
  m.peak_bytes->SetMax(static_cast<double>(frame.observed_peak()));
  // A successful execution must touch exactly the planned high-water mark;
  // anything else means planner and runtime disagree about lifetimes.
  if (frame.observed_peak() != mem_.arena_bytes) m.peak_mismatches->Inc();
  int64_t cur = observed_peak_bytes_.load(std::memory_order_relaxed);
  while (cur < frame.observed_peak() &&
         !observed_peak_bytes_.compare_exchange_weak(
             cur, frame.observed_peak(), std::memory_order_relaxed)) {
  }
  ReleaseArena(std::move(arena));
  return result;
}

}  // namespace genbase::plan
