#ifndef GENBASE_PLAN_ARENA_H_
#define GENBASE_PLAN_ARENA_H_

#include <cstdint>
#include <memory>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace genbase::plan {

/// \brief One contiguous aligned allocation backing every buffer of a
/// compiled plan execution. The arena is sized by the memory planner before
/// execution starts, charged to the engine's MemoryTracker as a single
/// reservation, and handed out purely by precomputed offsets — operators
/// never allocate (enforced by the `plan-arena-alloc` lint rule).
class PlanArena {
 public:
  /// Allocates `bytes` rounded up to `alignment`, with the base pointer
  /// aligned to `alignment` (>= 64 so kernel-facing buffers satisfy the
  /// SIMD layer's aligned-load contract). Charges the tracker (nullptr =
  /// untracked) and fails with OutOfMemory when over budget.
  static genbase::Result<std::unique_ptr<PlanArena>> Create(
      int64_t bytes, int64_t alignment, MemoryTracker* tracker);

  unsigned char* base() { return base_; }
  const unsigned char* base() const { return base_; }
  int64_t size() const { return size_; }
  int64_t alignment() const { return alignment_; }

  double* DoubleAt(int64_t offset) {
    return reinterpret_cast<double*>(base_ + offset);
  }

  PlanArena(const PlanArena&) = delete;
  PlanArena& operator=(const PlanArena&) = delete;

 private:
  PlanArena(std::unique_ptr<unsigned char[]> storage, unsigned char* base,
            int64_t size, int64_t alignment,
            ScopedReservation reservation)
      : storage_(std::move(storage)),
        base_(base),
        size_(size),
        alignment_(alignment),
        reservation_(std::move(reservation)) {}

  std::unique_ptr<unsigned char[]> storage_;
  unsigned char* base_;
  int64_t size_;
  int64_t alignment_;
  ScopedReservation reservation_;
};

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_ARENA_H_
