#include "plan/plan_builder.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/datasets.h"
#include "core/reference.h"
#include "linalg/blas.h"
#include "linalg/covariance.h"
#include "plan/memory_planner.h"
#include "plan/scheduler.h"
#include "relational/col_ops.h"
#include "relational/restructure.h"
#include "stats/quantile.h"
#include "storage/types.h"

namespace genbase::plan {

namespace {

using core::GeneCols;
using core::MicroarrayCols;
using core::PatientCols;
using core::QueryId;
using core::QueryParams;
using core::QueryResult;
using engine::ColumnarTables;
using relational::ColumnPredicate;
using relational::DenseMapping;
using relational::FilterColumns;
using relational::HashJoinIndicesFiltered;
using relational::JoinIndex;
using relational::MakeDenseMapping;
using storage::Value;

std::vector<int64_t> GatherIds(const std::vector<int64_t>& ids,
                               const std::vector<int64_t>& selection) {
  std::vector<int64_t> out;
  out.reserve(selection.size());
  for (int64_t i : selection) out.push_back(ids[static_cast<size_t>(i)]);
  return out;
}

/// Approximate resident footprint of the compile-time statics, charged to
/// the engine tracker for the plan's lifetime (id vectors, join index,
/// dense mappings, Q5 memberships).
int64_t StaticsBytes(const PlanStatics& st) {
  int64_t bytes = 0;
  bytes += static_cast<int64_t>(st.join.left.size() + st.join.right.size()) *
           8;
  bytes += static_cast<int64_t>(st.row_ids.size() + st.col_ids.size()) * 8;
  bytes += static_cast<int64_t>(st.y.size()) * 8;
  // DenseMapping: sorted ids plus a hash entry (~3 words) per id.
  bytes += static_cast<int64_t>(st.row_map.ids.size() +
                                st.col_map.ids.size()) *
           32;
  for (const auto& m : st.memberships) {
    bytes += static_cast<int64_t>(m.size()) * 8;
  }
  return bytes;
}

/// Zero + scatter of the joined microarray triples into a dense arena
/// matrix at `data` (the planned twin of engine_util's RestructureJoined;
/// `col_offset` shifts gene columns right for Q1's intercept column).
genbase::Status ScatterJoined(const PlanStatics& st, double* data,
                              int64_t num_cols, int64_t col_offset,
                              ExecContext* ctx) {
  const auto& pid =
      st.tables->microarray.IntColumn(MicroarrayCols::kPatientId);
  const auto& gid = st.tables->microarray.IntColumn(MicroarrayCols::kGeneId);
  const auto& expr =
      st.tables->microarray.DoubleColumn(MicroarrayCols::kExpr);
  for (size_t k = 0; k < st.join.right.size(); ++k) {
    if (ctx != nullptr && (k & 262143) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    const int64_t row = st.join.right[k];
    const auto rit = st.row_map.index.find(pid[static_cast<size_t>(row)]);
    if (rit == st.row_map.index.end()) continue;
    const auto cit = st.col_map.index.find(gid[static_cast<size_t>(row)]);
    if (cit == st.col_map.index.end()) continue;
    data[rit->second * num_cols + col_offset + cit->second] =
        expr[static_cast<size_t>(row)];
  }
  return genbase::Status::OK();
}

/// Builds the relational statics shared by Q1-Q4 (filter -> hash join ->
/// dense row/col mappings), replicating PrepareInputsColumnar's choices
/// exactly so planned matrices hold the same bits as legacy ones.
genbase::Result<PlanStatics> BuildMatrixStatics(
    std::shared_ptr<const ColumnarTables> tables, QueryId query,
    const QueryParams& params, MemoryTracker* tracker, ExecContext* ctx) {
  PlanStatics st;
  st.tables = std::move(tables);
  const ColumnarTables& t = *st.tables;
  if (query == QueryId::kRegression || query == QueryId::kSvd) {
    GENBASE_ASSIGN_OR_RETURN(
        std::vector<int64_t> gene_sel,
        FilterColumns(t.genes,
                      {ColumnPredicate::Lt(
                          GeneCols::kFunction,
                          Value::Int(params.function_threshold))},
                      ctx));
    st.col_ids = GatherIds(t.genes.IntColumn(GeneCols::kGeneId), gene_sel);
    GENBASE_ASSIGN_OR_RETURN(
        st.join,
        HashJoinIndicesFiltered(t.genes, GeneCols::kGeneId, gene_sel,
                                t.microarray, MicroarrayCols::kGeneId, ctx,
                                tracker));
    st.row_ids = t.patients.IntColumn(PatientCols::kPatientId);
    std::sort(st.row_ids.begin(), st.row_ids.end());
    st.row_map = MakeDenseMapping(st.row_ids);
    st.col_map = MakeDenseMapping(st.col_ids);
    st.col_ids = st.col_map.ids;
    if (query == QueryId::kRegression) {
      st.y.assign(static_cast<size_t>(st.row_map.size()), 0.0);
      const auto& pid = t.patients.IntColumn(PatientCols::kPatientId);
      const auto& resp = t.patients.DoubleColumn(PatientCols::kDrugResponse);
      for (size_t i = 0; i < pid.size(); ++i) {
        const auto it = st.row_map.index.find(pid[i]);
        if (it != st.row_map.index.end()) {
          st.y[static_cast<size_t>(it->second)] = resp[i];
        }
      }
    }
    return st;
  }
  // Q2/Q3: patient-side filter.
  std::vector<ColumnPredicate> preds;
  if (query == QueryId::kCovariance) {
    preds = {ColumnPredicate::Eq(PatientCols::kDiseaseId,
                                 Value::Int(params.disease_id))};
  } else {
    preds = {ColumnPredicate::Eq(PatientCols::kGender,
                                 Value::Int(params.gender)),
             ColumnPredicate::Lt(PatientCols::kAge,
                                 Value::Int(params.max_age))};
  }
  GENBASE_ASSIGN_OR_RETURN(std::vector<int64_t> patient_sel,
                           FilterColumns(t.patients, preds, ctx));
  st.row_ids =
      GatherIds(t.patients.IntColumn(PatientCols::kPatientId), patient_sel);
  GENBASE_ASSIGN_OR_RETURN(
      st.join,
      HashJoinIndicesFiltered(t.patients, PatientCols::kPatientId,
                              patient_sel, t.microarray,
                              MicroarrayCols::kPatientId, ctx, tracker));
  st.col_ids = t.genes.IntColumn(GeneCols::kGeneId);
  std::sort(st.col_ids.begin(), st.col_ids.end());
  st.row_map = MakeDenseMapping(st.row_ids);
  st.col_map = MakeDenseMapping(st.col_ids);
  st.row_ids = st.row_map.ids;
  if (query == QueryId::kCovariance) {
    st.meta = engine::MakeColumnarMetaLookup(t.genes);
  }
  return st;
}

genbase::Result<PlanStatics> BuildStatsStatics(
    std::shared_ptr<const ColumnarTables> tables, const QueryParams& params,
    MemoryTracker* tracker, ExecContext* ctx) {
  PlanStatics st;
  st.tables = std::move(tables);
  const ColumnarTables& t = *st.tables;
  const int64_t k =
      core::SampleCount(t.dims.patients, params.sample_fraction);
  GENBASE_ASSIGN_OR_RETURN(
      std::vector<int64_t> patient_sel,
      FilterColumns(t.patients,
                    {ColumnPredicate::Lt(PatientCols::kPatientId,
                                         Value::Int(k))},
                    ctx));
  st.sample_count = static_cast<int64_t>(patient_sel.size());
  GENBASE_ASSIGN_OR_RETURN(
      st.join,
      HashJoinIndicesFiltered(t.patients, PatientCols::kPatientId,
                              patient_sel, t.microarray,
                              MicroarrayCols::kPatientId, ctx, tracker));
  // The per-gene aggregate target mapping (gene id -> dense index).
  st.col_map = MakeDenseMapping(t.genes.IntColumn(GeneCols::kGeneId));
  st.memberships =
      engine::BuildMembershipsColumnar(t.ontology, t.dims.go_terms);
  return st;
}

struct GraphParts {
  PlanGraph graph;
  std::vector<CompiledOp> ops;  ///< Indexed by op id.
};

GraphParts BuildRegressionGraph(const PlanStatics& st,
                                const QueryParams& /*params*/) {
  GraphParts p;
  const int64_t rows = st.row_map.size();
  const int64_t cd = st.col_map.size() + 1;  // Intercept column first.
  const int v_design = p.graph.AddValue("design", {rows, cd});
  p.graph.AddOp({OpKind::kScan, "scan_design", {}, {v_design}});
  p.graph.AddOp({OpKind::kGemm, "least_squares", {v_design}, {}});
  p.ops.resize(2);
  p.ops[0] = {OpKind::kScan, "scan_design",
              [v_design, rows, cd](ExecFrame* f, ExecContext* ctx,
                                   QueryResult*) -> genbase::Status {
                const PlanStatics& st = f->statics();
                double* d = f->Data(v_design);
                std::fill_n(d, static_cast<size_t>(rows * cd), 0.0);
                for (int64_t i = 0; i < rows; ++i) d[i * cd] = 1.0;
                return ScatterJoined(st, d, cd, /*col_offset=*/1, ctx);
              }};
  p.ops[1] = {OpKind::kGemm, "least_squares",
              [v_design](ExecFrame* f, ExecContext* ctx,
                         QueryResult* out) -> genbase::Status {
                GENBASE_ASSIGN_OR_RETURN(
                    out->regression,
                    core::RegressionAnalytics(f->View(v_design),
                                              f->statics().y, ctx));
                return genbase::Status::OK();
              }};
  return p;
}

genbase::Result<GraphParts> BuildCovarianceGraph(const PlanStatics& st,
                                                 const QueryParams& params) {
  GraphParts p;
  const int64_t rows = st.row_map.size();
  const int64_t cols = st.col_map.size();
  if (rows < 2) {
    return genbase::Status::InvalidArgument(
        "covariance needs at least 2 samples");
  }
  const int64_t num_pairs = cols * (cols - 1) / 2;
  const int v_x = p.graph.AddValue("x", {rows, cols});
  const int v_means = p.graph.AddValue("means", {cols, 1});
  const int v_cov_raw = p.graph.AddValue("cov_raw", {cols, cols});
  const int v_cov = p.graph.AddValue("cov", {cols, cols});
  const int v_upper = p.graph.AddValue("upper", {num_pairs, 1});
  const int v_thr = p.graph.AddValue("threshold", {1, 1});
  p.graph.AddOp({OpKind::kScan, "scan_matrix", {}, {v_x}});
  p.graph.AddOp({OpKind::kColumnMeans, "column_means", {v_x}, {v_means}});
  p.graph.AddOp({OpKind::kSyrkCentered, "syrk_centered", {v_x, v_means},
                 {v_cov_raw}});
  p.graph.AddOp({OpKind::kScale, "scale_cov", {v_cov_raw}, {v_cov},
                 /*in_place=*/true});
  p.graph.AddOp({OpKind::kSelect, "extract_upper", {v_cov}, {v_upper}});
  p.graph.AddOp({OpKind::kQuantile, "quantile", {v_upper}, {v_thr}});
  p.graph.AddOp({OpKind::kJoin, "threshold_join", {v_cov, v_thr}, {}});
  p.ops.resize(7);
  p.ops[0] = {OpKind::kScan, "scan_matrix",
              [v_x, rows, cols](ExecFrame* f, ExecContext* ctx,
                                QueryResult*) -> genbase::Status {
                double* d = f->Data(v_x);
                std::fill_n(d, static_cast<size_t>(rows * cols), 0.0);
                return ScatterJoined(f->statics(), d, cols,
                                     /*col_offset=*/0, ctx);
              }};
  p.ops[1] = {OpKind::kColumnMeans, "column_means",
              [v_x, v_means](ExecFrame* f, ExecContext*,
                             QueryResult*) -> genbase::Status {
                linalg::ColumnMeansInto(f->View(v_x), f->Data(v_means));
                return genbase::Status::OK();
              }};
  p.ops[2] = {OpKind::kSyrkCentered, "syrk_centered",
              [v_x, v_means, v_cov_raw](ExecFrame* f, ExecContext* ctx,
                                        QueryResult*) -> genbase::Status {
                return linalg::SyrkCentered(
                    f->View(v_x), f->Data(v_means), f->Data(v_cov_raw),
                    ctx != nullptr ? ctx->pool() : nullptr, ctx);
              }};
  p.ops[3] = {OpKind::kScale, "scale_cov",
              [v_cov, rows, cols](ExecFrame* f, ExecContext*,
                                  QueryResult*) -> genbase::Status {
                double* c = f->Data(v_cov);
                const double inv = 1.0 / static_cast<double>(rows - 1);
                for (int64_t i = 0; i < cols * cols; ++i) c[i] *= inv;
                return genbase::Status::OK();
              }};
  p.ops[4] = {OpKind::kSelect, "extract_upper",
              [v_cov, v_upper](ExecFrame* f, ExecContext* ctx,
                               QueryResult*) -> genbase::Status {
                return core::CovarianceExtractUpper(
                    f->View(v_cov), f->Data(v_upper), ctx);
              }};
  p.ops[5] = {OpKind::kQuantile, "quantile",
              [v_upper, v_thr, num_pairs, params](
                  ExecFrame* f, ExecContext*,
                  QueryResult*) -> genbase::Status {
                GENBASE_ASSIGN_OR_RETURN(
                    const double thr,
                    stats::Quantile(f->Data(v_upper), num_pairs,
                                    params.covariance_quantile));
                f->Data(v_thr)[0] = thr;
                return genbase::Status::OK();
              }};
  p.ops[6] = {OpKind::kJoin, "threshold_join",
              [v_cov, v_thr, rows](ExecFrame* f, ExecContext* ctx,
                                   QueryResult* out) -> genbase::Status {
                const PlanStatics& st = f->statics();
                GENBASE_ASSIGN_OR_RETURN(
                    out->covariance,
                    core::CovarianceJoinPass(f->View(v_cov), rows,
                                             f->Data(v_thr)[0], st.col_ids,
                                             st.meta, ctx));
                return genbase::Status::OK();
              }};
  return p;
}

GraphParts BuildBiclusterGraph(const PlanStatics& st,
                               const QueryParams& params) {
  GraphParts p;
  const int64_t rows = st.row_map.size();
  const int64_t cols = st.col_map.size();
  const int v_x = p.graph.AddValue("x", {rows, cols});
  p.graph.AddOp({OpKind::kScan, "scan_matrix", {}, {v_x}});
  p.graph.AddOp({OpKind::kChengChurchStep, "cheng_church", {v_x}, {}});
  p.ops.resize(2);
  p.ops[0] = {OpKind::kScan, "scan_matrix",
              [v_x, rows, cols](ExecFrame* f, ExecContext* ctx,
                                QueryResult*) -> genbase::Status {
                double* d = f->Data(v_x);
                std::fill_n(d, static_cast<size_t>(rows * cols), 0.0);
                return ScatterJoined(f->statics(), d, cols,
                                     /*col_offset=*/0, ctx);
              }};
  p.ops[1] = {OpKind::kChengChurchStep, "cheng_church",
              [v_x, params](ExecFrame* f, ExecContext* ctx,
                            QueryResult* out) -> genbase::Status {
                GENBASE_ASSIGN_OR_RETURN(
                    out->bicluster,
                    core::BiclusterAnalytics(
                        f->View(v_x), params.bicluster_delta_fraction,
                        params.bicluster_count, ctx, nullptr));
                return genbase::Status::OK();
              }};
  return p;
}

GraphParts BuildSvdGraph(const PlanStatics& st, const QueryParams& params) {
  GraphParts p;
  const int64_t rows = st.row_map.size();
  const int64_t cols = st.col_map.size();
  const int v_x = p.graph.AddValue("x", {rows, cols});
  p.graph.AddOp({OpKind::kScan, "scan_matrix", {}, {v_x}});
  p.graph.AddOp({OpKind::kSvdHelper, "truncated_svd", {v_x}, {}});
  p.ops.resize(2);
  p.ops[0] = {OpKind::kScan, "scan_matrix",
              [v_x, rows, cols](ExecFrame* f, ExecContext* ctx,
                                QueryResult*) -> genbase::Status {
                double* d = f->Data(v_x);
                std::fill_n(d, static_cast<size_t>(rows * cols), 0.0);
                return ScatterJoined(f->statics(), d, cols,
                                     /*col_offset=*/0, ctx);
              }};
  p.ops[1] = {OpKind::kSvdHelper, "truncated_svd",
              [v_x, params](ExecFrame* f, ExecContext* ctx,
                            QueryResult* out) -> genbase::Status {
                GENBASE_ASSIGN_OR_RETURN(
                    out->svd,
                    core::SvdAnalytics(f->View(v_x), params.svd_rank,
                                       linalg::KernelQuality::kTuned, ctx));
                return genbase::Status::OK();
              }};
  return p;
}

GraphParts BuildStatsGraph(const PlanStatics& st, const QueryParams& params) {
  GraphParts p;
  const int64_t genes = st.col_map.size();
  const int v_scores = p.graph.AddValue("scores", {genes, 1});
  p.graph.AddOp({OpKind::kScan, "aggregate_scores", {}, {v_scores}});
  p.graph.AddOp({OpKind::kWilcoxonRank, "wilcoxon", {v_scores}, {}});
  p.ops.resize(2);
  p.ops[0] = {OpKind::kScan, "aggregate_scores",
              [v_scores, genes](ExecFrame* f, ExecContext* ctx,
                                QueryResult*) -> genbase::Status {
                const PlanStatics& st = f->statics();
                double* scores = f->Data(v_scores);
                std::fill_n(scores, static_cast<size_t>(genes), 0.0);
                const auto& gid =
                    st.tables->microarray.IntColumn(MicroarrayCols::kGeneId);
                const auto& expr = st.tables->microarray.DoubleColumn(
                    MicroarrayCols::kExpr);
                for (size_t idx = 0; idx < st.join.right.size(); ++idx) {
                  if (ctx != nullptr && (idx & 262143) == 0) {
                    GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
                  }
                  const int64_t row = st.join.right[idx];
                  const auto it =
                      st.col_map.index.find(gid[static_cast<size_t>(row)]);
                  if (it != st.col_map.index.end()) {
                    scores[it->second] += expr[static_cast<size_t>(row)];
                  }
                }
                const double inv =
                    st.sample_count > 0
                        ? 1.0 / static_cast<double>(st.sample_count)
                        : 0.0;
                for (int64_t g = 0; g < genes; ++g) scores[g] *= inv;
                return genbase::Status::OK();
              }};
  p.ops[1] = {OpKind::kWilcoxonRank, "wilcoxon",
              [v_scores, genes, params](ExecFrame* f, ExecContext* ctx,
                                        QueryResult* out) -> genbase::Status {
                const PlanStatics& st = f->statics();
                GENBASE_ASSIGN_OR_RETURN(
                    out->stats,
                    core::StatsAnalytics(f->Data(v_scores), genes,
                                         st.memberships, params.significance,
                                         ctx));
                out->stats.samples = st.sample_count;
                return genbase::Status::OK();
              }};
  return p;
}

}  // namespace

genbase::Result<std::shared_ptr<CompiledPlan>> CompileQuery(
    std::shared_ptr<const ColumnarTables> tables, QueryId query,
    const QueryParams& params, MemoryTracker* tracker, ExecContext* ctx) {
  // Relational prep once, at compile time.
  PlanStatics statics;
  if (query == QueryId::kStatistics) {
    GENBASE_ASSIGN_OR_RETURN(
        statics, BuildStatsStatics(std::move(tables), params, tracker, ctx));
  } else {
    GENBASE_ASSIGN_OR_RETURN(
        statics,
        BuildMatrixStatics(std::move(tables), query, params, tracker, ctx));
  }
  GENBASE_ASSIGN_OR_RETURN(
      ScopedReservation statics_reservation,
      ScopedReservation::Acquire(tracker, StaticsBytes(statics)));

  GraphParts parts;
  switch (query) {
    case QueryId::kRegression:
      parts = BuildRegressionGraph(statics, params);
      break;
    case QueryId::kCovariance: {
      GENBASE_ASSIGN_OR_RETURN(parts,
                               BuildCovarianceGraph(statics, params));
      break;
    }
    case QueryId::kBiclustering:
      parts = BuildBiclusterGraph(statics, params);
      break;
    case QueryId::kSvd:
      parts = BuildSvdGraph(statics, params);
      break;
    case QueryId::kStatistics:
      parts = BuildStatsGraph(statics, params);
      break;
  }

  GENBASE_RETURN_NOT_OK(parts.graph.Validate());
  GENBASE_ASSIGN_OR_RETURN(std::vector<int> schedule,
                           TopologicalSchedule(parts.graph));
  GENBASE_ASSIGN_OR_RETURN(MemoryPlan mem,
                           PlanMemory(parts.graph, schedule));

  std::vector<CompiledOp> scheduled;
  scheduled.reserve(schedule.size());
  for (int op_id : schedule) {
    scheduled.push_back(std::move(parts.ops[static_cast<size_t>(op_id)]));
  }
  return std::make_shared<CompiledPlan>(
      query, std::move(parts.graph), std::move(schedule), std::move(mem),
      std::move(statics), std::move(statics_reservation),
      std::move(scheduled), tracker);
}

}  // namespace genbase::plan
