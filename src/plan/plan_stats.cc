#include "plan/plan_stats.h"

#include "obs/metrics.h"

namespace genbase::plan {

PlanMetrics& PlanMetrics::Get() {
  static PlanMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::Global();
    PlanMetrics m;
    m.compiles = reg.GetCounter("plan_compiles_total");
    m.cache_hits = reg.GetCounter("plan_cache_hits_total");
    m.executes = reg.GetCounter("plan_executes_total");
    m.compile_ns = reg.GetCounter("plan_compile_ns_total");
    m.reused_bytes = reg.GetCounter("plan_reused_bytes_total");
    m.peak_mismatches = reg.GetCounter("plan_peak_mismatch_total");
    m.peak_bytes = reg.GetGauge("plan_peak_bytes");
    m.predicted_peak_bytes = reg.GetGauge("plan_predicted_peak_bytes");
    return m;
  }();
  return metrics;
}

PlanStatsSnapshot PlanStatsSnapshot::Capture() {
  const PlanMetrics& m = PlanMetrics::Get();
  PlanStatsSnapshot s;
  s.compiles = m.compiles->Value();
  s.cache_hits = m.cache_hits->Value();
  s.executes = m.executes->Value();
  s.compile_ns = m.compile_ns->Value();
  s.reused_bytes = m.reused_bytes->Value();
  s.peak_mismatches = m.peak_mismatches->Value();
  s.peak_bytes = m.peak_bytes->Value();
  s.predicted_peak_bytes = m.predicted_peak_bytes->Value();
  return s;
}

PlanStatsSnapshot PlanStatsSnapshot::operator-(
    const PlanStatsSnapshot& rhs) const {
  PlanStatsSnapshot d = *this;
  d.compiles -= rhs.compiles;
  d.cache_hits -= rhs.cache_hits;
  d.executes -= rhs.executes;
  d.compile_ns -= rhs.compile_ns;
  d.reused_bytes -= rhs.reused_bytes;
  d.peak_mismatches -= rhs.peak_mismatches;
  return d;
}

}  // namespace genbase::plan
