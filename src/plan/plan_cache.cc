#include "plan/plan_cache.h"

#include <utility>
#include <vector>

namespace genbase::plan {

// Tripwire (mirrors serving/result_cache.cc): the plan-cache key must keep
// covering the full query identity. If QueryParams grows a field,
// FingerprintParams' mix list must be updated or two different plans would
// collide under one key; if PlanKey itself changes shape, re-audit
// PlanKeyHash and every place a key is built.
static_assert(sizeof(core::QueryParams) == 72,
              "QueryParams changed: update serving::FingerprintParams and "
              "re-audit PlanKey coverage");
static_assert(sizeof(PlanKey) == 24,
              "PlanKey changed: re-audit PlanKeyHash, operator== and all "
              "key-construction sites");

genbase::Result<std::shared_ptr<CompiledPlan>> PlanCache::GetOrCompile(
    const PlanKey& key, const Compiler& compile, bool* cache_hit) {
  for (;;) {
    std::shared_ptr<Slot> slot;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = slots_.find(key);
      if (it == slots_.end()) {
        slot = std::make_shared<Slot>();
        slots_.emplace(key, slot);
        leader = true;
      } else {
        slot = it->second;
      }
    }
    if (leader) {
      auto result = compile();
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        if (result.ok()) slot->plan = *result;
        slot->done = true;
      }
      if (!result.ok()) {
        // Release the slot so the next requester retries the compile.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = slots_.find(key);
        if (it != slots_.end() && it->second == slot) slots_.erase(it);
      }
      slot->cv.notify_all();
      if (cache_hit != nullptr) *cache_hit = false;
      return result;
    }
    {
      std::unique_lock<std::mutex> lock(slot->mu);
      slot->cv.wait(lock, [&slot] { return slot->done; });
      if (slot->plan != nullptr) {
        if (cache_hit != nullptr) *cache_hit = true;
        return slot->plan;
      }
    }
    // Leader failed and released the slot; loop to retry (possibly
    // becoming the new leader).
  }
}

void PlanCache::EvictEpochsBelow(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first.epoch < epoch) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

int64_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(slots_.size());
}

}  // namespace genbase::plan
