#include "plan/memory_planner.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace genbase::plan {

namespace {

int64_t RoundUp(int64_t bytes, int64_t alignment) {
  return (bytes + alignment - 1) / alignment * alignment;
}

/// One distinct physical buffer (alias class root) to place.
struct Root {
  int value_id = 0;
  int64_t size = 0;
  int def_step = 0;
  int last_step = 0;
  int64_t offset = -1;

  bool Overlaps(const Root& o) const {
    return def_step <= o.last_step && o.def_step <= last_step;
  }
};

}  // namespace

genbase::Result<MemoryPlan> PlanMemory(const PlanGraph& graph,
                                       const std::vector<int>& schedule,
                                       int64_t alignment) {
  if (alignment < 64 || (alignment & (alignment - 1)) != 0) {
    return genbase::Status::InvalidArgument(
        "arena alignment must be a power of two >= 64");
  }
  GENBASE_RETURN_NOT_OK(graph.Validate());
  const auto& ops = graph.ops();
  const auto& values = graph.values();
  if (schedule.size() != ops.size()) {
    return genbase::Status::InvalidArgument("schedule/op count mismatch");
  }
  const int num_steps = static_cast<int>(schedule.size());
  const int num_values = static_cast<int>(values.size());

  // Resolve in-place alias chains to roots. Walking in schedule order means
  // an op's input root is final before its output aliases it.
  std::vector<int> root(static_cast<size_t>(num_values));
  for (int v = 0; v < num_values; ++v) root[static_cast<size_t>(v)] = v;
  for (int step = 0; step < num_steps; ++step) {
    const OpDef& op = ops[static_cast<size_t>(schedule[step])];
    if (op.in_place) {
      root[static_cast<size_t>(op.outputs[0])] =
          root[static_cast<size_t>(op.inputs[0])];
    }
  }

  // Lifetimes over the schedule: a root is live from its first write to its
  // last touch. Values nothing consumes (graph outputs) stay live to the
  // end of the schedule.
  std::vector<int> def_step(static_cast<size_t>(num_values), num_steps);
  std::vector<int> last_step(static_cast<size_t>(num_values), -1);
  std::vector<int> consumers(static_cast<size_t>(num_values), 0);
  for (int step = 0; step < num_steps; ++step) {
    const OpDef& op = ops[static_cast<size_t>(schedule[step])];
    for (int v : op.inputs) {
      const int r = root[static_cast<size_t>(v)];
      last_step[static_cast<size_t>(r)] =
          std::max(last_step[static_cast<size_t>(r)], step);
      ++consumers[static_cast<size_t>(v)];
    }
    for (int v : op.outputs) {
      const int r = root[static_cast<size_t>(v)];
      def_step[static_cast<size_t>(r)] =
          std::min(def_step[static_cast<size_t>(r)], step);
      last_step[static_cast<size_t>(r)] =
          std::max(last_step[static_cast<size_t>(r)], step);
    }
  }
  for (int v = 0; v < num_values; ++v) {
    if (consumers[static_cast<size_t>(v)] == 0) {
      last_step[static_cast<size_t>(root[static_cast<size_t>(v)])] =
          num_steps - 1;
    }
  }

  std::vector<Root> roots;
  for (int v = 0; v < num_values; ++v) {
    if (root[static_cast<size_t>(v)] != v) continue;
    Root r;
    r.value_id = v;
    r.size = RoundUp(values[static_cast<size_t>(v)].spec.bytes(), alignment);
    r.def_step = def_step[static_cast<size_t>(v)];
    r.last_step = last_step[static_cast<size_t>(v)];
    roots.push_back(r);
  }

  // Greedy-by-size offline placement (the shape TFLite's GreedyBySize and
  // onnxruntime's arena planner use): place big buffers first, each at the
  // best-fit gap among already-placed buffers whose lifetimes overlap it.
  // Buffers with disjoint lifetimes never constrain each other, so a dead
  // buffer's address range is reused for free.
  std::vector<size_t> order(roots.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&roots](size_t a, size_t b) {
    if (roots[a].size != roots[b].size) return roots[a].size > roots[b].size;
    return roots[a].value_id < roots[b].value_id;
  });

  int64_t arena_bytes = 0;
  std::vector<const Root*> placed;
  std::vector<const Root*> blockers;
  for (size_t idx : order) {
    Root& r = roots[idx];
    blockers.clear();
    for (const Root* p : placed) {
      if (p->Overlaps(r)) blockers.push_back(p);
    }
    std::sort(blockers.begin(), blockers.end(),
              [](const Root* a, const Root* b) {
                return a->offset < b->offset;
              });
    // Best fit: smallest gap between live neighbours that holds the buffer;
    // the open gap after the last blocker always fits (ties -> lowest
    // offset, so the choice stays deterministic).
    int64_t best_offset = -1;
    int64_t best_gap = std::numeric_limits<int64_t>::max();
    int64_t cursor = 0;
    for (const Root* p : blockers) {
      if (p->offset > cursor) {
        const int64_t gap = p->offset - cursor;
        if (gap >= r.size && gap < best_gap) {
          best_gap = gap;
          best_offset = cursor;
        }
      }
      cursor = std::max(cursor, p->offset + p->size);
    }
    if (best_offset < 0) best_offset = cursor;
    r.offset = best_offset;
    arena_bytes = std::max(arena_bytes, r.offset + r.size);
    placed.push_back(&r);
  }

  MemoryPlan plan;
  plan.alignment = alignment;
  plan.arena_bytes = arena_bytes;
  plan.buffers.resize(static_cast<size_t>(num_values));
  std::vector<int64_t> root_offset(static_cast<size_t>(num_values), 0);
  for (const Root& r : roots) {
    root_offset[static_cast<size_t>(r.value_id)] = r.offset;
    plan.total_bytes_no_reuse += r.size;
  }
  plan.reused_bytes = plan.total_bytes_no_reuse - plan.arena_bytes;
  for (int v = 0; v < num_values; ++v) {
    const int rv = root[static_cast<size_t>(v)];
    BufferAssignment& b = plan.buffers[static_cast<size_t>(v)];
    b.offset = root_offset[static_cast<size_t>(rv)];
    b.size = RoundUp(values[static_cast<size_t>(v)].spec.bytes(), alignment);
    b.def_step = def_step[static_cast<size_t>(rv)];
    b.last_use_step = last_step[static_cast<size_t>(rv)];
    b.alias_root = rv == v ? -1 : rv;
  }
  return plan;
}

std::string MemoryPlan::Dump(const PlanGraph& graph) const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "plan-arena: %zu values, arena=%lld B, no-reuse=%lld B, "
                "reused=%lld B, align=%lld\n",
                buffers.size(), static_cast<long long>(arena_bytes),
                static_cast<long long>(total_bytes_no_reuse),
                static_cast<long long>(reused_bytes),
                static_cast<long long>(alignment));
  out += line;
  for (size_t v = 0; v < buffers.size(); ++v) {
    const BufferAssignment& b = buffers[v];
    const ValueDef& val = graph.values()[v];
    std::snprintf(line, sizeof(line),
                  "  [%2zu] %-16s %6lldx%-6lld %10lld B @%-10lld "
                  "live[%d,%d]%s%s\n",
                  v, val.name.c_str(), static_cast<long long>(val.spec.rows),
                  static_cast<long long>(val.spec.cols),
                  static_cast<long long>(val.spec.bytes()),
                  static_cast<long long>(b.offset), b.def_step,
                  b.last_use_step, b.alias_root >= 0 ? " alias-of " : "",
                  b.alias_root >= 0
                      ? graph.values()[static_cast<size_t>(b.alias_root)]
                            .name.c_str()
                      : "");
    out += line;
  }
  return out;
}

}  // namespace genbase::plan
