#ifndef GENBASE_PLAN_SCHEDULER_H_
#define GENBASE_PLAN_SCHEDULER_H_

#include <vector>

#include "common/status.h"
#include "plan/plan_graph.h"

namespace genbase::plan {

/// \brief Deterministic topological schedule of the graph's ops (Kahn's
/// algorithm, lowest-ready-op-id first). The result is the execution order
/// and the time axis the memory planner computes buffer lifetimes over —
/// identical graphs always schedule identically, so allocation plans are
/// reproducible across runs and machines. Returns InvalidArgument on a
/// cycle.
genbase::Result<std::vector<int>> TopologicalSchedule(const PlanGraph& graph);

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_SCHEDULER_H_
