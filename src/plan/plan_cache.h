#ifndef GENBASE_PLAN_PLAN_CACHE_H_
#define GENBASE_PLAN_PLAN_CACHE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "core/queries.h"
#include "plan/compiled_plan.h"

namespace genbase::plan {

/// \brief Identity of a compiled plan: which query, which parameter values
/// (the serving tier's full-fingerprint hash), and which dataset epoch the
/// statics were built against. Any of the three changing means the plan is
/// unusable — params alter shapes and thresholds, a new epoch means new
/// tables.
struct PlanKey {
  core::QueryId query = core::QueryId::kRegression;
  uint64_t params_fingerprint = 0;
  uint64_t epoch = 0;

  bool operator==(const PlanKey& o) const {
    return query == o.query && params_fingerprint == o.params_fingerprint &&
           epoch == o.epoch;
  }
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.query) * 0x9e3779b97f4a7c15ULL;
    h ^= k.params_fingerprint + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= k.epoch + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// \brief Single-flight compiled-plan cache. The first thread to request a
/// key compiles; concurrent requesters for the same key block on the slot
/// until the leader finishes and then share the compiled plan (one compile
/// per key, ever). A failed compile releases the slot so the next
/// requester retries instead of caching the error forever.
class PlanCache {
 public:
  using Compiler =
      std::function<genbase::Result<std::shared_ptr<CompiledPlan>>()>;

  /// Returns the cached plan for `key`, compiling it via `compile` if
  /// absent. `*cache_hit` is false only for the thread that ran the
  /// compile.
  genbase::Result<std::shared_ptr<CompiledPlan>> GetOrCompile(
      const PlanKey& key, const Compiler& compile, bool* cache_hit);

  /// Drops plans compiled against epochs older than `epoch` (dataset
  /// reload invalidation).
  void EvictEpochsBelow(uint64_t epoch);

  void Clear();

  int64_t size() const;

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<CompiledPlan> plan;  ///< Null if the compile failed.
  };

  mutable std::mutex mu_;
  std::unordered_map<PlanKey, std::shared_ptr<Slot>, PlanKeyHash> slots_;
};

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_PLAN_CACHE_H_
