#ifndef GENBASE_PLAN_PLAN_ENGINE_H_
#define GENBASE_PLAN_PLAN_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>

#include "core/engine.h"
#include "engine/engine_util.h"
#include "plan/plan_builder.h"
#include "plan/plan_cache.h"

namespace genbase::plan {

/// \brief The planned column store: identical storage and kernels to
/// ColumnStoreEngine's in-database path, but every query compiles once per
/// (params, dataset epoch) into a static plan — operator DAG, deterministic
/// schedule, arena memory plan — and then executes with zero per-run
/// planning, allocation or hashing beyond one arena grab. Results are
/// bitwise identical to the legacy path (property-tested); what changes is
/// where the time and memory go, which the plan_* metrics expose.
class PlanEngine : public core::Engine {
 public:
  PlanEngine();

  std::string name() const override { return "Planned column store"; }

  void PrepareContext(ExecContext* ctx) override;

  genbase::Result<core::QueryResult> RunQuery(core::QueryId query,
                                              const core::QueryParams& params,
                                              ExecContext* ctx) override;

  /// Compiles (or fetches) the plan for `query` without executing it; test
  /// and bench hook for inspecting schedules and allocation plans.
  genbase::Result<std::shared_ptr<CompiledPlan>> CompileForTest(
      core::QueryId query, const core::QueryParams& params, ExecContext* ctx);

  MemoryTracker* tracker() { return &tracker_; }
  int64_t cached_plans() const { return cache_.size(); }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override;
  void DoUnloadDataset() override;

 private:
  /// Snapshot of {tables, epoch} taken together under the lock, so a plan
  /// is always keyed by the epoch matching the tables it was built on.
  struct TablesSnapshot {
    std::shared_ptr<const engine::ColumnarTables> tables;
    uint64_t epoch = 0;
  };
  TablesSnapshot Snapshot() const;

  genbase::Result<std::shared_ptr<CompiledPlan>> GetPlan(
      core::QueryId query, const core::QueryParams& params,
      const TablesSnapshot& snap, ExecContext* ctx, bool* cache_hit);

  MemoryTracker tracker_;
  mutable std::mutex tables_mu_;
  std::shared_ptr<const engine::ColumnarTables> tables_;
  uint64_t tables_epoch_ = 0;
  PlanCache cache_;
};

/// Factory for the serving/bench registries.
std::unique_ptr<core::Engine> CreatePlanStore();

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_PLAN_ENGINE_H_
