#include "plan/plan_graph.h"

namespace genbase::plan {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "scan";
    case OpKind::kSelect:
      return "select";
    case OpKind::kJoin:
      return "join";
    case OpKind::kGemm:
      return "gemm";
    case OpKind::kSyrkCentered:
      return "syrk_centered";
    case OpKind::kSvdHelper:
      return "svd_helper";
    case OpKind::kWilcoxonRank:
      return "wilcoxon_rank";
    case OpKind::kChengChurchStep:
      return "cheng_church_step";
    case OpKind::kColumnMeans:
      return "column_means";
    case OpKind::kScale:
      return "scale";
    case OpKind::kQuantile:
      return "quantile";
  }
  return "?";
}

const char* OpSpanName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "plan.scan";
    case OpKind::kSelect:
      return "plan.select";
    case OpKind::kJoin:
      return "plan.join";
    case OpKind::kGemm:
      return "plan.gemm";
    case OpKind::kSyrkCentered:
      return "plan.syrk_centered";
    case OpKind::kSvdHelper:
      return "plan.svd_helper";
    case OpKind::kWilcoxonRank:
      return "plan.wilcoxon_rank";
    case OpKind::kChengChurchStep:
      return "plan.cheng_church_step";
    case OpKind::kColumnMeans:
      return "plan.column_means";
    case OpKind::kScale:
      return "plan.scale";
    case OpKind::kQuantile:
      return "plan.quantile";
  }
  return "plan.op";
}

Phase OpPhase(OpKind kind) {
  // The scan restructures relational rows into the dense arena buffer —
  // exactly the work PrepareInputsColumnar charges to data management.
  return kind == OpKind::kScan ? Phase::kDataManagement : Phase::kAnalytics;
}

int PlanGraph::AddValue(std::string name, TensorSpec spec) {
  values_.push_back(ValueDef{std::move(name), spec});
  return static_cast<int>(values_.size()) - 1;
}

int PlanGraph::AddOp(OpDef op) {
  ops_.push_back(std::move(op));
  return static_cast<int>(ops_.size()) - 1;
}

genbase::Status PlanGraph::Validate() const {
  const int num_values = static_cast<int>(values_.size());
  std::vector<int> producer(values_.size(), -1);
  for (size_t o = 0; o < ops_.size(); ++o) {
    const OpDef& op = ops_[o];
    for (int v : op.inputs) {
      if (v < 0 || v >= num_values) {
        return genbase::Status::InvalidArgument(
            "op " + op.name + " reads out-of-range value id");
      }
    }
    for (int v : op.outputs) {
      if (v < 0 || v >= num_values) {
        return genbase::Status::InvalidArgument(
            "op " + op.name + " writes out-of-range value id");
      }
      if (producer[static_cast<size_t>(v)] != -1) {
        return genbase::Status::InvalidArgument(
            "value " + values_[static_cast<size_t>(v)].name +
            " has two producers");
      }
      producer[static_cast<size_t>(v)] = static_cast<int>(o);
    }
    if (op.in_place) {
      if (op.inputs.empty() || op.outputs.empty()) {
        return genbase::Status::InvalidArgument(
            "in-place op " + op.name + " needs an input and an output");
      }
      const TensorSpec& in = values_[static_cast<size_t>(op.inputs[0])].spec;
      const TensorSpec& out =
          values_[static_cast<size_t>(op.outputs[0])].spec;
      if (in.bytes() != out.bytes()) {
        return genbase::Status::InvalidArgument(
            "in-place op " + op.name + " aliases mismatched byte sizes");
      }
    }
  }
  for (size_t v = 0; v < values_.size(); ++v) {
    if (producer[v] == -1) {
      return genbase::Status::InvalidArgument(
          "value " + values_[v].name + " has no producer");
    }
  }
  return genbase::Status::OK();
}

}  // namespace genbase::plan
