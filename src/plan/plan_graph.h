#ifndef GENBASE_PLAN_PLAN_GRAPH_H_
#define GENBASE_PLAN_PLAN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"

namespace genbase::plan {

/// \brief Operator vocabulary of the query plans. The first eight kinds are
/// the query-level operators Q1-Q5 decompose into; the last three are small
/// auxiliary kernels (mean vector, in-place scaling, quantile reduction)
/// that Q2's covariance pipeline needs as separate schedulable steps so the
/// memory planner sees their buffers' true lifetimes.
enum class OpKind {
  kScan = 0,         ///< Tables -> dense arena matrix/vector (zero + scatter).
  kSelect,           ///< Element selection (upper-triangle extraction).
  kJoin,             ///< Threshold pass + metadata join (Q2 summary).
  kGemm,             ///< Dense least-squares solve (Q1, QR-backed).
  kSyrkCentered,     ///< C = centered(A)^T centered(A) (Q2).
  kSvdHelper,        ///< Truncated Lanczos SVD (Q4 summary).
  kWilcoxonRank,     ///< Rank-sum tests over GO terms (Q5 summary).
  kChengChurchStep,  ///< Cheng-Church biclustering (Q3 summary).
  kColumnMeans,      ///< Column mean vector (Q2).
  kScale,            ///< In-place scalar multiply (Q2's 1/(m-1)).
  kQuantile,         ///< Quantile reduction to a scalar buffer (Q2).
};
inline constexpr int kNumOpKinds = 11;

const char* OpKindName(OpKind kind);

/// Static-storage span name for the per-op execute trace spans
/// (obs::Span::name must outlive the tracer rings).
const char* OpSpanName(OpKind kind);

/// Which benchmark phase an operator's execute time is charged to. Scans
/// are the relational->array restructure (data management); everything else
/// is analytics. (Plan compilation itself is charged to data management by
/// the engine, since it subsumes the filter/join/mapping work.)
Phase OpPhase(OpKind kind);

/// \brief Dense row-major shape of one plan value. Vectors are rows x 1,
/// scalars 1 x 1 — everything in the arena is a double buffer.
struct TensorSpec {
  int64_t rows = 0;
  int64_t cols = 1;

  int64_t elements() const { return rows * cols; }
  int64_t bytes() const {
    return elements() * static_cast<int64_t>(sizeof(double));
  }
};

/// \brief One named intermediate buffer in the plan (a "tensor" in
/// inference-engine terms). Values are arena-resident; compile-time
/// constants (join indices, id mappings, the Q1 response vector) live in
/// the compiled plan's statics instead and never appear here.
struct ValueDef {
  std::string name;
  TensorSpec spec;
};

/// \brief One operator instance: kind, the value ids it reads and writes,
/// and whether it runs in place (outputs[0] aliases inputs[0], which the
/// memory planner turns into a shared offset and a merged lifetime).
struct OpDef {
  OpKind kind = OpKind::kScan;
  std::string name;
  std::vector<int> inputs;
  std::vector<int> outputs;
  bool in_place = false;
};

/// \brief The operator DAG for one compiled query: values (buffers) plus
/// ops wired by value ids. Build with AddValue/AddOp, then Validate before
/// scheduling. Deliberately dumb storage — the scheduler and memory planner
/// do the thinking.
class PlanGraph {
 public:
  /// Adds a value and returns its id.
  int AddValue(std::string name, TensorSpec spec);

  /// Adds an op and returns its id. Input/output value ids must already
  /// exist (checked by Validate, not here).
  int AddOp(OpDef op);

  const std::vector<ValueDef>& values() const { return values_; }
  const std::vector<OpDef>& ops() const { return ops_; }

  /// Structural checks: value ids in range, every value written by exactly
  /// one op, in-place ops alias byte-identical shapes.
  genbase::Status Validate() const;

 private:
  std::vector<ValueDef> values_;
  std::vector<OpDef> ops_;
};

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_PLAN_GRAPH_H_
