#include "plan/scheduler.h"

#include <set>

namespace genbase::plan {

genbase::Result<std::vector<int>> TopologicalSchedule(const PlanGraph& graph) {
  const auto& ops = graph.ops();
  const int num_ops = static_cast<int>(ops.size());

  // producer[v] = op id that writes value v (Validate guarantees exactly
  // one). An op depends on the producer of each of its inputs.
  std::vector<int> producer(graph.values().size(), -1);
  for (int o = 0; o < num_ops; ++o) {
    for (int v : ops[static_cast<size_t>(o)].outputs) {
      producer[static_cast<size_t>(v)] = o;
    }
  }

  std::vector<int> indegree(static_cast<size_t>(num_ops), 0);
  std::vector<std::vector<int>> dependents(static_cast<size_t>(num_ops));
  for (int o = 0; o < num_ops; ++o) {
    for (int v : ops[static_cast<size_t>(o)].inputs) {
      const int p = producer[static_cast<size_t>(v)];
      if (p >= 0 && p != o) {
        dependents[static_cast<size_t>(p)].push_back(o);
        ++indegree[static_cast<size_t>(o)];
      }
    }
  }

  // Ordered ready set keeps the schedule canonical: among runnable ops the
  // lowest op id goes first, always.
  std::set<int> ready;
  for (int o = 0; o < num_ops; ++o) {
    if (indegree[static_cast<size_t>(o)] == 0) ready.insert(o);
  }
  std::vector<int> schedule;
  schedule.reserve(static_cast<size_t>(num_ops));
  while (!ready.empty()) {
    const int o = *ready.begin();
    ready.erase(ready.begin());
    schedule.push_back(o);
    for (int d : dependents[static_cast<size_t>(o)]) {
      if (--indegree[static_cast<size_t>(d)] == 0) ready.insert(d);
    }
  }
  if (static_cast<int>(schedule.size()) != num_ops) {
    return genbase::Status::InvalidArgument("plan graph has a cycle");
  }
  return schedule;
}

}  // namespace genbase::plan
