#ifndef GENBASE_PLAN_COMPILED_PLAN_H_
#define GENBASE_PLAN_COMPILED_PLAN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/queries.h"
#include "engine/engine_util.h"
#include "linalg/matrix.h"
#include "plan/arena.h"
#include "plan/memory_planner.h"
#include "plan/plan_graph.h"
#include "relational/col_ops.h"
#include "relational/restructure.h"

namespace genbase::plan {

/// \brief Everything resolved once at compile time and shared (read-only)
/// by every execution of the plan: the dataset snapshot the plan was built
/// against plus the relational access paths (filters, join indices, dense
/// mappings). Per-execute state lives in the arena, never here.
struct PlanStatics {
  std::shared_ptr<const engine::ColumnarTables> tables;
  relational::JoinIndex join;
  relational::DenseMapping row_map;
  relational::DenseMapping col_map;
  std::vector<int64_t> row_ids;
  std::vector<int64_t> col_ids;
  // lint:allow(plan-arena-alloc): compile-time static (statics reservation).
  std::vector<double> y;
  std::vector<std::vector<int64_t>> memberships;
  core::GeneMetaLookup meta;
  int64_t sample_count = 0;
};

class CompiledPlan;

/// \brief Per-execution frame: binds plan value ids to addresses inside one
/// arena and tracks the observed high-water mark (max touched offset+size),
/// which the obs stack compares against the planner's predicted peak.
class ExecFrame {
 public:
  ExecFrame(PlanArena* arena, const CompiledPlan* plan)
      : arena_(arena), plan_(plan) {}

  /// Address of value `id`'s buffer (alias chains share the root's offset).
  double* Data(int value_id);

  /// Read-only dense view of a 2-D value.
  linalg::MatrixView View(int value_id);

  /// The compile-time statics shared by every execution of this plan.
  const PlanStatics& statics() const;

  int64_t observed_peak() const { return observed_peak_; }

 private:
  PlanArena* arena_;
  const CompiledPlan* plan_;
  int64_t observed_peak_ = 0;
};

/// \brief One schedulable operator closure. `run` does only kernel work on
/// arena buffers — compile time already did the planning, binding and
/// allocation.
struct CompiledOp {
  OpKind kind = OpKind::kScan;
  std::string name;
  std::function<genbase::Status(ExecFrame*, ExecContext*,
                                core::QueryResult*)>
      run;
};

/// \brief A query compiled to a static plan: operator DAG, deterministic
/// schedule, memory plan, and the closures that execute each op against the
/// arena. Compiled once per (query, params, dataset epoch), then executed
/// concurrently by any number of serving threads — executions grab an arena
/// from a small pool so they never contend on buffer memory.
class CompiledPlan {
 public:
  CompiledPlan(core::QueryId query, PlanGraph graph,
               std::vector<int> schedule, MemoryPlan mem,
               PlanStatics statics, ScopedReservation statics_reservation,
               std::vector<CompiledOp> ops, MemoryTracker* tracker)
      : query_(query),
        graph_(std::move(graph)),
        schedule_(std::move(schedule)),
        mem_(std::move(mem)),
        statics_(std::move(statics)),
        statics_reservation_(std::move(statics_reservation)),
        ops_(std::move(ops)),
        tracker_(tracker) {}

  /// Runs the schedule. Each op gets a trace span + phase attribution;
  /// success bumps plan_executes_total and publishes the observed arena
  /// peak (with a mismatch counter if it differs from the predicted peak —
  /// property tests keep that counter at zero).
  genbase::Result<core::QueryResult> Execute(ExecContext* ctx);

  core::QueryId query() const { return query_; }
  const PlanGraph& graph() const { return graph_; }
  const std::vector<int>& schedule() const { return schedule_; }
  const MemoryPlan& memory_plan() const { return mem_; }
  const PlanStatics& statics() const { return statics_; }

  int64_t compile_ns() const { return compile_ns_; }
  void set_compile_ns(int64_t ns) { compile_ns_ = ns; }

  /// Max observed arena high-water mark across all executions so far
  /// (== memory_plan().arena_bytes once any execution completed; tested).
  int64_t observed_peak_bytes() const {
    return observed_peak_bytes_.load(std::memory_order_relaxed);
  }

  /// The allocation-plan dump (planner decisions, one line per buffer).
  std::string DumpAllocationPlan() const { return mem_.Dump(graph_); }

 private:
  friend class ExecFrame;

  genbase::Result<std::unique_ptr<PlanArena>> AcquireArena();
  void ReleaseArena(std::unique_ptr<PlanArena> arena);

  core::QueryId query_;
  PlanGraph graph_;
  std::vector<int> schedule_;
  MemoryPlan mem_;
  PlanStatics statics_;
  ScopedReservation statics_reservation_;
  std::vector<CompiledOp> ops_;  ///< In schedule order.
  MemoryTracker* tracker_;
  int64_t compile_ns_ = 0;

  std::mutex arena_mu_;
  std::vector<std::unique_ptr<PlanArena>> arena_pool_;
  std::atomic<int64_t> observed_peak_bytes_{0};
};

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_COMPILED_PLAN_H_
