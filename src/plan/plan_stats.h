#ifndef GENBASE_PLAN_PLAN_STATS_H_
#define GENBASE_PLAN_PLAN_STATS_H_

#include <cstdint>

namespace genbase::obs {
class Counter;
class Gauge;
}  // namespace genbase::obs

namespace genbase::plan {

/// \brief Process-wide plan metrics, registered once in the global
/// MetricsRegistry so they ride along in METRICS_* snapshots and the
/// workload report's --json output.
struct PlanMetrics {
  obs::Counter* compiles;        ///< plan_compiles_total
  obs::Counter* cache_hits;      ///< plan_cache_hits_total
  obs::Counter* executes;        ///< plan_executes_total
  obs::Counter* compile_ns;      ///< plan_compile_ns_total
  obs::Counter* reused_bytes;    ///< plan_reused_bytes_total (per compile)
  obs::Counter* peak_mismatches; ///< plan_peak_mismatch_total
  obs::Gauge* peak_bytes;        ///< plan_peak_bytes (observed high-water)
  obs::Gauge* predicted_peak_bytes;  ///< plan_predicted_peak_bytes

  static PlanMetrics& Get();
};

/// \brief Point-in-time copy of the plan metrics; the workload runner
/// snapshots at measure-start and reports the delta, same as the serving
/// counters.
struct PlanStatsSnapshot {
  int64_t compiles = 0;
  int64_t cache_hits = 0;
  int64_t executes = 0;
  int64_t compile_ns = 0;
  int64_t reused_bytes = 0;
  int64_t peak_mismatches = 0;
  double peak_bytes = 0.0;
  double predicted_peak_bytes = 0.0;

  static PlanStatsSnapshot Capture();

  /// Counter fields subtract; gauges keep the left-hand (current) value —
  /// a high-water mark has no meaningful delta.
  PlanStatsSnapshot operator-(const PlanStatsSnapshot& rhs) const;
};

}  // namespace genbase::plan

#endif  // GENBASE_PLAN_PLAN_STATS_H_
