#include "storage/row_store.h"

#include <cstring>

namespace genbase::storage {

RowStore::RowStore(Schema schema, MemoryTracker* tracker)
    : schema_(std::move(schema)), tracker_(tracker) {
  GENBASE_CHECK(schema_.num_fields() > 0);
  rows_per_page_ = kPageBytes / schema_.row_width();
  GENBASE_CHECK(rows_per_page_ > 0);
}

RowStore::~RowStore() { ReleaseAll(); }

RowStore::RowStore(RowStore&& other) noexcept
    : schema_(std::move(other.schema_)),
      tracker_(other.tracker_),
      pages_(std::move(other.pages_)),
      rows_per_page_(other.rows_per_page_),
      num_rows_(other.num_rows_),
      reserved_bytes_(other.reserved_bytes_) {
  other.tracker_ = nullptr;
  other.reserved_bytes_ = 0;
  other.num_rows_ = 0;
  other.pages_.clear();
}

RowStore& RowStore::operator=(RowStore&& other) noexcept {
  ReleaseAll();
  schema_ = std::move(other.schema_);
  tracker_ = other.tracker_;
  pages_ = std::move(other.pages_);
  rows_per_page_ = other.rows_per_page_;
  num_rows_ = other.num_rows_;
  reserved_bytes_ = other.reserved_bytes_;
  other.tracker_ = nullptr;
  other.reserved_bytes_ = 0;
  other.num_rows_ = 0;
  other.pages_.clear();
  return *this;
}

void RowStore::ReleaseAll() {
  if (tracker_ != nullptr && reserved_bytes_ > 0) {
    tracker_->Release(reserved_bytes_);
  }
  reserved_bytes_ = 0;
  pages_.clear();
}

genbase::Status RowStore::Append(const Value* values) {
  const int64_t slot = num_rows_ % rows_per_page_;
  if (slot == 0) {
    if (tracker_ != nullptr) {
      GENBASE_RETURN_NOT_OK(tracker_->Reserve(kPageBytes));
      reserved_bytes_ += kPageBytes;
    }
    pages_.push_back(std::make_unique<char[]>(kPageBytes));
  }
  char* dst = pages_.back().get() + slot * schema_.row_width();
  for (int c = 0; c < schema_.num_fields(); ++c) {
    // Both types are 8 bytes; copy the raw payload.
    std::memcpy(dst + 8 * c, &values[c].i, 8);
  }
  ++num_rows_;
  return genbase::Status::OK();
}

}  // namespace genbase::storage
