#ifndef GENBASE_STORAGE_ARRAY_STORE_H_
#define GENBASE_STORAGE_ARRAY_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::storage {

/// \brief Chunked dense 2-D array of doubles: the SciDB-like substrate.
///
/// The array is tiled into fixed-size chunks (SciDB's "rather large"
/// rectangular chunks; we default to 256x256 cells = 512 KiB). Array-native
/// engines operate chunk-wise and never pay a relational->array restructure
/// cost, which is the architectural advantage the paper credits SciDB with.
class ChunkedArray2D {
 public:
  static constexpr int64_t kDefaultChunk = 256;

  ChunkedArray2D() = default;

  static genbase::Result<ChunkedArray2D> Create(
      int64_t rows, int64_t cols, MemoryTracker* tracker = nullptr,
      int64_t chunk = kDefaultChunk);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t chunk() const { return chunk_; }
  int64_t chunk_rows() const { return chunk_grid_rows_; }
  int64_t chunk_cols() const { return chunk_grid_cols_; }

  double Get(int64_t r, int64_t c) const {
    const Chunk& ch = ChunkAt(r / chunk_, c / chunk_);
    return ch.data[(r % chunk_) * chunk_ + (c % chunk_)];
  }
  void Set(int64_t r, int64_t c, double v) {
    Chunk& ch = MutableChunkAt(r / chunk_, c / chunk_);
    ch.data[(r % chunk_) * chunk_ + (c % chunk_)] = v;
  }

  /// Dense copy of the whole array (row-major). Charged to `tracker`.
  genbase::Result<linalg::Matrix> ToMatrix(MemoryTracker* tracker) const;

  /// Dense copy of a row/column selection (ids are dense indices).
  genbase::Result<linalg::Matrix> GatherSubmatrix(
      const std::vector<int64_t>& row_ids,
      const std::vector<int64_t>& col_ids, MemoryTracker* tracker) const;

  /// Bulk import from a dense matrix.
  static genbase::Result<ChunkedArray2D> FromMatrix(
      const linalg::MatrixView& m, MemoryTracker* tracker = nullptr,
      int64_t chunk = kDefaultChunk);

  int64_t bytes() const {
    return static_cast<int64_t>(chunks_.size()) * chunk_ * chunk_ * 8;
  }

 private:
  struct Chunk {
    std::vector<double> data;
  };

  const Chunk& ChunkAt(int64_t cr, int64_t cc) const {
    return chunks_[static_cast<size_t>(cr * chunk_grid_cols_ + cc)];
  }
  Chunk& MutableChunkAt(int64_t cr, int64_t cc) {
    return chunks_[static_cast<size_t>(cr * chunk_grid_cols_ + cc)];
  }

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t chunk_ = kDefaultChunk;
  int64_t chunk_grid_rows_ = 0;
  int64_t chunk_grid_cols_ = 0;
  std::vector<Chunk> chunks_;
  ScopedReservation reservation_;
};

}  // namespace genbase::storage

#endif  // GENBASE_STORAGE_ARRAY_STORE_H_
