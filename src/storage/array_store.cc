#include "storage/array_store.h"

#include <algorithm>

namespace genbase::storage {

genbase::Result<ChunkedArray2D> ChunkedArray2D::Create(
    int64_t rows, int64_t cols, MemoryTracker* tracker, int64_t chunk) {
  if (rows < 0 || cols < 0 || chunk <= 0) {
    return genbase::Status::InvalidArgument("bad array shape");
  }
  ChunkedArray2D a;
  a.rows_ = rows;
  a.cols_ = cols;
  a.chunk_ = chunk;
  a.chunk_grid_rows_ = (rows + chunk - 1) / chunk;
  a.chunk_grid_cols_ = (cols + chunk - 1) / chunk;
  const int64_t n_chunks = a.chunk_grid_rows_ * a.chunk_grid_cols_;
  const int64_t bytes = n_chunks * chunk * chunk * 8;
  GENBASE_ASSIGN_OR_RETURN(a.reservation_,
                           ScopedReservation::Acquire(tracker, bytes));
  a.chunks_.resize(static_cast<size_t>(n_chunks));
  for (auto& ch : a.chunks_) {
    ch.data.assign(static_cast<size_t>(chunk * chunk), 0.0);
  }
  return a;
}

genbase::Result<linalg::Matrix> ChunkedArray2D::ToMatrix(
    MemoryTracker* tracker) const {
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix m,
                           linalg::Matrix::Create(rows_, cols_, tracker));
  for (int64_t cr = 0; cr < chunk_grid_rows_; ++cr) {
    for (int64_t cc = 0; cc < chunk_grid_cols_; ++cc) {
      const Chunk& ch = ChunkAt(cr, cc);
      const int64_t r0 = cr * chunk_;
      const int64_t c0 = cc * chunk_;
      const int64_t rl = std::min(chunk_, rows_ - r0);
      const int64_t cl = std::min(chunk_, cols_ - c0);
      for (int64_t r = 0; r < rl; ++r) {
        const double* src = ch.data.data() + r * chunk_;
        std::copy(src, src + cl, m.Row(r0 + r) + c0);
      }
    }
  }
  return m;
}

genbase::Result<linalg::Matrix> ChunkedArray2D::GatherSubmatrix(
    const std::vector<int64_t>& row_ids, const std::vector<int64_t>& col_ids,
    MemoryTracker* tracker) const {
  GENBASE_ASSIGN_OR_RETURN(
      linalg::Matrix m,
      linalg::Matrix::Create(static_cast<int64_t>(row_ids.size()),
                             static_cast<int64_t>(col_ids.size()), tracker));
  for (size_t i = 0; i < row_ids.size(); ++i) {
    for (size_t j = 0; j < col_ids.size(); ++j) {
      m(static_cast<int64_t>(i), static_cast<int64_t>(j)) =
          Get(row_ids[i], col_ids[j]);
    }
  }
  return m;
}

genbase::Result<ChunkedArray2D> ChunkedArray2D::FromMatrix(
    const linalg::MatrixView& m, MemoryTracker* tracker, int64_t chunk) {
  GENBASE_ASSIGN_OR_RETURN(ChunkedArray2D a,
                           Create(m.rows, m.cols, tracker, chunk));
  for (int64_t cr = 0; cr < a.chunk_grid_rows_; ++cr) {
    for (int64_t cc = 0; cc < a.chunk_grid_cols_; ++cc) {
      Chunk& ch = a.MutableChunkAt(cr, cc);
      const int64_t r0 = cr * chunk;
      const int64_t c0 = cc * chunk;
      const int64_t rl = std::min(chunk, m.rows - r0);
      const int64_t cl = std::min(chunk, m.cols - c0);
      for (int64_t r = 0; r < rl; ++r) {
        const double* src = m.data + (r0 + r) * m.stride + c0;
        std::copy(src, src + cl, ch.data.data() + r * chunk);
      }
    }
  }
  return a;
}

}  // namespace genbase::storage
