#ifndef GENBASE_STORAGE_COLUMN_STORE_H_
#define GENBASE_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "storage/types.h"

namespace genbase::storage {

/// \brief Columnar table: one contiguous typed vector per attribute — the
/// "popular column store" substrate. Scans and filters run vectorized over
/// column arrays; row reconstruction gathers across columns (the cost the
/// paper notes when several columns of a narrow table are retrieved).
class ColumnTable {
 public:
  explicit ColumnTable(Schema schema, MemoryTracker* tracker = nullptr);
  ~ColumnTable();

  ColumnTable(ColumnTable&&) noexcept;
  ColumnTable& operator=(ColumnTable&&) noexcept;
  ColumnTable(const ColumnTable&) = delete;
  ColumnTable& operator=(const ColumnTable&) = delete;

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }

  /// Reserves capacity (and charges the tracker) ahead of a bulk load.
  genbase::Status Reserve(int64_t rows);

  /// Appends one row (slow path; bulk loads should use the typed column
  /// writers below).
  genbase::Status AppendRow(const std::vector<Value>& values);

  /// Direct typed access for vectorized operators.
  std::vector<int64_t>& MutableIntColumn(int col);
  std::vector<double>& MutableDoubleColumn(int col);
  const std::vector<int64_t>& IntColumn(int col) const;
  const std::vector<double>& DoubleColumn(int col) const;

  Value Get(int64_t row, int col) const {
    const Field& f = schema_.field(col);
    return f.type == DataType::kInt64
               ? Value::Int(IntColumn(col)[static_cast<size_t>(row)])
               : Value::Double(DoubleColumn(col)[static_cast<size_t>(row)]);
  }

  /// Recomputes num_rows after direct column writes; all columns must agree.
  genbase::Status FinishBulkLoad();

  int64_t bytes() const;

 private:
  void ReleaseAll();

  Schema schema_;
  MemoryTracker* tracker_;
  // Per-field storage; only the vector matching the field type is used.
  std::vector<std::vector<int64_t>> int_cols_;
  std::vector<std::vector<double>> dbl_cols_;
  int64_t num_rows_ = 0;
  int64_t reserved_bytes_ = 0;
};

}  // namespace genbase::storage

#endif  // GENBASE_STORAGE_COLUMN_STORE_H_
