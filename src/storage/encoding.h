#ifndef GENBASE_STORAGE_ENCODING_H_
#define GENBASE_STORAGE_ENCODING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace genbase::storage {

/// \brief Column block encodings, as discussed in the paper's Section 6.2:
/// "Tabular row stores invariably store relational tuples in highly encoded
/// form on storage blocks. Column stores encode disk blocks in a different
/// way ... In contrast, ScaLAPACK operates on data arranged ... stored
/// unencoded, so they can be unpacked and operated on easily. ... it is an
/// O(N) operation to convert from one representation to the other. Since
/// the constant is fairly large, this conversion can dominate computation
/// time if the arrays are small to medium size."
///
/// These encoders make that conversion cost concrete: the ablation bench
/// measures encode/decode throughput against raw (ScaLAPACK-style) blocks.
enum class ColumnEncoding {
  kPlain = 0,       ///< Raw little-endian values.
  kRunLength = 1,   ///< (value, count) pairs — ids and low-cardinality codes.
  kDelta = 2,       ///< Varint zig-zag deltas — sorted/clustered ids.
  kDictionary = 3,  ///< Distinct-value dictionary + u32 indexes.
};

/// \brief An encoded int64 column block.
struct EncodedBlock {
  ColumnEncoding encoding = ColumnEncoding::kPlain;
  int64_t num_values = 0;
  std::vector<uint8_t> payload;

  int64_t bytes() const {
    return static_cast<int64_t>(payload.size()) +
           static_cast<int64_t>(sizeof(*this));
  }
};

/// Encodes `values` with the requested encoding.
genbase::Result<EncodedBlock> EncodeInt64(const int64_t* values,
                                          int64_t count,
                                          ColumnEncoding encoding);

/// Decodes a block back to raw values (exact round trip).
genbase::Status DecodeInt64(const EncodedBlock& block,
                            std::vector<int64_t>* out);

/// Picks the smallest encoding for the block among all supported ones
/// (what a column store's storage layer does per block).
genbase::Result<EncodedBlock> EncodeInt64Auto(const int64_t* values,
                                              int64_t count);

/// Compression ratio (raw bytes / encoded bytes).
double CompressionRatio(const EncodedBlock& block);

}  // namespace genbase::storage

#endif  // GENBASE_STORAGE_ENCODING_H_
