#ifndef GENBASE_STORAGE_ROW_STORE_H_
#define GENBASE_STORAGE_ROW_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "storage/types.h"

namespace genbase::storage {

/// \brief Paged row-major table: the Postgres-like storage substrate.
///
/// Rows are packed fixed-width into 64 KiB heap pages; access goes through
/// per-row offset arithmetic, which is exactly the cost profile that makes a
/// row store cheap to append to and comparatively expensive to scan
/// column-wise. Allocation is charged to an optional MemoryTracker.
class RowStore {
 public:
  static constexpr int64_t kPageBytes = 64 * 1024;

  explicit RowStore(Schema schema, MemoryTracker* tracker = nullptr);
  ~RowStore();

  RowStore(RowStore&&) noexcept;
  RowStore& operator=(RowStore&&) noexcept;
  RowStore(const RowStore&) = delete;
  RowStore& operator=(const RowStore&) = delete;

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }

  /// Appends one row; `values` must have schema().num_fields() entries.
  genbase::Status Append(const Value* values);

  genbase::Status AppendRow(const std::vector<Value>& values) {
    return Append(values.data());
  }

  int64_t GetInt(int64_t row, int col) const {
    return *reinterpret_cast<const int64_t*>(CellPtr(row, col));
  }
  double GetDouble(int64_t row, int col) const {
    return *reinterpret_cast<const double*>(CellPtr(row, col));
  }
  Value Get(int64_t row, int col) const {
    const Field& f = schema_.field(col);
    return f.type == DataType::kInt64 ? Value::Int(GetInt(row, col))
                                      : Value::Double(GetDouble(row, col));
  }

  /// Raw pointer to a row's packed bytes (within one page).
  const char* RowPtr(int64_t row) const {
    const int64_t page = row / rows_per_page_;
    const int64_t slot = row % rows_per_page_;
    return pages_[static_cast<size_t>(page)].get() +
           slot * schema_.row_width();
  }

  int64_t bytes() const {
    return static_cast<int64_t>(pages_.size()) * kPageBytes;
  }

 private:
  const char* CellPtr(int64_t row, int col) const {
    return RowPtr(row) + 8 * col;
  }
  void ReleaseAll();

  Schema schema_;
  MemoryTracker* tracker_;
  std::vector<std::unique_ptr<char[]>> pages_;
  int64_t rows_per_page_;
  int64_t num_rows_ = 0;
  int64_t reserved_bytes_ = 0;
};

}  // namespace genbase::storage

#endif  // GENBASE_STORAGE_ROW_STORE_H_
