#include "storage/encoding.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace genbase::storage {

namespace {

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

genbase::Status GetVarint(const std::vector<uint8_t>& in, size_t* pos,
                          uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (*pos < in.size()) {
    const uint8_t b = in[(*pos)++];
    *v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return genbase::Status::OK();
    shift += 7;
    if (shift > 63) break;
  }
  return genbase::Status::IOError("truncated varint");
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

genbase::Result<EncodedBlock> EncodeInt64(const int64_t* values,
                                          int64_t count,
                                          ColumnEncoding encoding) {
  if (count < 0) return genbase::Status::InvalidArgument("negative count");
  EncodedBlock block;
  block.encoding = encoding;
  block.num_values = count;
  switch (encoding) {
    case ColumnEncoding::kPlain: {
      block.payload.resize(static_cast<size_t>(count) * 8);
      if (count > 0) {
        std::memcpy(block.payload.data(), values,
                    static_cast<size_t>(count) * 8);
      }
      return block;
    }
    case ColumnEncoding::kRunLength: {
      int64_t i = 0;
      while (i < count) {
        int64_t j = i;
        while (j + 1 < count && values[j + 1] == values[i]) ++j;
        PutVarint(&block.payload, ZigZag(values[i]));
        PutVarint(&block.payload, static_cast<uint64_t>(j - i + 1));
        i = j + 1;
      }
      return block;
    }
    case ColumnEncoding::kDelta: {
      // Deltas wrap modulo 2^64 (matched by the decoder): extreme-magnitude
      // neighbours would overflow a signed subtraction.
      uint64_t prev = 0;
      for (int64_t i = 0; i < count; ++i) {
        const uint64_t cur = static_cast<uint64_t>(values[i]);
        PutVarint(&block.payload, ZigZag(static_cast<int64_t>(cur - prev)));
        prev = cur;
      }
      return block;
    }
    case ColumnEncoding::kDictionary: {
      std::vector<int64_t> dict;
      std::unordered_map<int64_t, uint32_t> index;
      std::vector<uint32_t> codes(static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        auto [it, inserted] = index.emplace(
            values[i], static_cast<uint32_t>(dict.size()));
        if (inserted) dict.push_back(values[i]);
        codes[static_cast<size_t>(i)] = it->second;
      }
      PutU64(&block.payload, dict.size());
      for (int64_t v : dict) PutU64(&block.payload, static_cast<uint64_t>(v));
      for (uint32_t c : codes) PutVarint(&block.payload, c);
      return block;
    }
  }
  return genbase::Status::InvalidArgument("unknown encoding");
}

genbase::Status DecodeInt64(const EncodedBlock& block,
                            std::vector<int64_t>* out) {
  out->clear();
  out->reserve(static_cast<size_t>(block.num_values));
  switch (block.encoding) {
    case ColumnEncoding::kPlain: {
      if (static_cast<int64_t>(block.payload.size()) !=
          block.num_values * 8) {
        return genbase::Status::IOError("plain block size mismatch");
      }
      out->resize(static_cast<size_t>(block.num_values));
      if (!block.payload.empty()) {
        std::memcpy(out->data(), block.payload.data(),
                    block.payload.size());
      }
      return genbase::Status::OK();
    }
    case ColumnEncoding::kRunLength: {
      size_t pos = 0;
      while (static_cast<int64_t>(out->size()) < block.num_values) {
        uint64_t zz = 0, run = 0;
        GENBASE_RETURN_NOT_OK(GetVarint(block.payload, &pos, &zz));
        GENBASE_RETURN_NOT_OK(GetVarint(block.payload, &pos, &run));
        if (run == 0 ||
            static_cast<int64_t>(out->size() + run) > block.num_values) {
          return genbase::Status::IOError("corrupt run length");
        }
        out->insert(out->end(), static_cast<size_t>(run), UnZigZag(zz));
      }
      return genbase::Status::OK();
    }
    case ColumnEncoding::kDelta: {
      size_t pos = 0;
      uint64_t prev = 0;
      for (int64_t i = 0; i < block.num_values; ++i) {
        uint64_t zz = 0;
        GENBASE_RETURN_NOT_OK(GetVarint(block.payload, &pos, &zz));
        prev += static_cast<uint64_t>(UnZigZag(zz));
        out->push_back(static_cast<int64_t>(prev));
      }
      return genbase::Status::OK();
    }
    case ColumnEncoding::kDictionary: {
      if (block.payload.size() < 8) {
        return genbase::Status::IOError("corrupt dictionary header");
      }
      const uint64_t dict_size = GetU64(block.payload.data());
      if (block.payload.size() < 8 + dict_size * 8) {
        return genbase::Status::IOError("corrupt dictionary");
      }
      std::vector<int64_t> dict(static_cast<size_t>(dict_size));
      for (uint64_t d = 0; d < dict_size; ++d) {
        dict[static_cast<size_t>(d)] = static_cast<int64_t>(
            GetU64(block.payload.data() + 8 + d * 8));
      }
      size_t pos = 8 + static_cast<size_t>(dict_size) * 8;
      for (int64_t i = 0; i < block.num_values; ++i) {
        uint64_t code = 0;
        GENBASE_RETURN_NOT_OK(GetVarint(block.payload, &pos, &code));
        if (code >= dict_size) {
          return genbase::Status::IOError("dictionary code out of range");
        }
        out->push_back(dict[static_cast<size_t>(code)]);
      }
      return genbase::Status::OK();
    }
  }
  return genbase::Status::InvalidArgument("unknown encoding");
}

genbase::Result<EncodedBlock> EncodeInt64Auto(const int64_t* values,
                                              int64_t count) {
  EncodedBlock best;
  bool have_best = false;
  for (ColumnEncoding e :
       {ColumnEncoding::kPlain, ColumnEncoding::kRunLength,
        ColumnEncoding::kDelta, ColumnEncoding::kDictionary}) {
    auto block = EncodeInt64(values, count, e);
    if (!block.ok()) continue;
    if (!have_best ||
        block->payload.size() < best.payload.size()) {
      best = std::move(block).ValueOrDie();
      have_best = true;
    }
  }
  if (!have_best) return genbase::Status::Internal("no encoding succeeded");
  return best;
}

double CompressionRatio(const EncodedBlock& block) {
  if (block.payload.empty()) return 1.0;
  return static_cast<double>(block.num_values * 8) /
         static_cast<double>(block.payload.size());
}

}  // namespace genbase::storage
