#ifndef GENBASE_STORAGE_TYPES_H_
#define GENBASE_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace genbase::storage {

/// GenBase schemas only need 64-bit integers (ids, codes) and doubles
/// (expression values, drug response); both are 8 bytes, which keeps row
/// layouts fixed-width.
enum class DataType { kInt64, kDouble };

inline const char* DataTypeName(DataType t) {
  return t == DataType::kInt64 ? "int64" : "double";
}

/// \brief A typed scalar. Deliberately POD-simple: engines pass billions of
/// these through tuple pipelines.
struct Value {
  DataType type = DataType::kInt64;
  union {
    int64_t i;
    double d;
  };

  Value() : i(0) {}
  static Value Int(int64_t v) {
    Value x;
    x.type = DataType::kInt64;
    x.i = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.type = DataType::kDouble;
    x.d = v;
    return x;
  }

  int64_t AsInt() const {
    GENBASE_DCHECK(type == DataType::kInt64);
    return i;
  }
  double AsDouble() const {
    GENBASE_DCHECK(type == DataType::kDouble);
    return d;
  }
  /// Numeric coercion (both types are exact doubles in GenBase's ranges).
  double ToDouble() const {
    return type == DataType::kDouble ? d : static_cast<double>(i);
  }

  bool operator==(const Value& o) const {
    if (type != o.type) return false;
    return type == DataType::kInt64 ? i == o.i : d == o.d;
  }
};

struct Field {
  std::string name;
  DataType type;
};

/// \brief Ordered field list. Fixed-width (8 bytes per field).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or -1.
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Bytes per packed row.
  int64_t row_width() const { return 8 * num_fields(); }

  std::string ToString() const {
    std::string s = "(";
    for (int i = 0; i < num_fields(); ++i) {
      if (i > 0) s += ", ";
      s += fields_[i].name;
      s += ":";
      s += DataTypeName(fields_[i].type);
    }
    s += ")";
    return s;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace genbase::storage

#endif  // GENBASE_STORAGE_TYPES_H_
