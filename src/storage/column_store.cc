#include "storage/column_store.h"

namespace genbase::storage {

ColumnTable::ColumnTable(Schema schema, MemoryTracker* tracker)
    : schema_(std::move(schema)), tracker_(tracker) {
  int_cols_.resize(static_cast<size_t>(schema_.num_fields()));
  dbl_cols_.resize(static_cast<size_t>(schema_.num_fields()));
}

ColumnTable::~ColumnTable() { ReleaseAll(); }

ColumnTable::ColumnTable(ColumnTable&& other) noexcept
    : schema_(std::move(other.schema_)),
      tracker_(other.tracker_),
      int_cols_(std::move(other.int_cols_)),
      dbl_cols_(std::move(other.dbl_cols_)),
      num_rows_(other.num_rows_),
      reserved_bytes_(other.reserved_bytes_) {
  other.tracker_ = nullptr;
  other.reserved_bytes_ = 0;
  other.num_rows_ = 0;
}

ColumnTable& ColumnTable::operator=(ColumnTable&& other) noexcept {
  ReleaseAll();
  schema_ = std::move(other.schema_);
  tracker_ = other.tracker_;
  int_cols_ = std::move(other.int_cols_);
  dbl_cols_ = std::move(other.dbl_cols_);
  num_rows_ = other.num_rows_;
  reserved_bytes_ = other.reserved_bytes_;
  other.tracker_ = nullptr;
  other.reserved_bytes_ = 0;
  other.num_rows_ = 0;
  return *this;
}

void ColumnTable::ReleaseAll() {
  if (tracker_ != nullptr && reserved_bytes_ > 0) {
    tracker_->Release(reserved_bytes_);
  }
  reserved_bytes_ = 0;
}

genbase::Status ColumnTable::Reserve(int64_t rows) {
  const int64_t bytes = rows * schema_.row_width();
  if (tracker_ != nullptr) {
    GENBASE_RETURN_NOT_OK(tracker_->Reserve(bytes));
    reserved_bytes_ += bytes;
  }
  for (int c = 0; c < schema_.num_fields(); ++c) {
    if (schema_.field(c).type == DataType::kInt64) {
      int_cols_[static_cast<size_t>(c)].reserve(static_cast<size_t>(rows));
    } else {
      dbl_cols_[static_cast<size_t>(c)].reserve(static_cast<size_t>(rows));
    }
  }
  return genbase::Status::OK();
}

genbase::Status ColumnTable::AppendRow(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != schema_.num_fields()) {
    return genbase::Status::InvalidArgument("row arity mismatch");
  }
  // Charge the tracker in page-ish increments to keep accounting cheap.
  if (tracker_ != nullptr &&
      num_rows_ * schema_.row_width() >= reserved_bytes_) {
    const int64_t grow = 64 * 1024;
    GENBASE_RETURN_NOT_OK(tracker_->Reserve(grow));
    reserved_bytes_ += grow;
  }
  for (int c = 0; c < schema_.num_fields(); ++c) {
    if (schema_.field(c).type == DataType::kInt64) {
      int_cols_[static_cast<size_t>(c)].push_back(values[c].AsInt());
    } else {
      dbl_cols_[static_cast<size_t>(c)].push_back(values[c].AsDouble());
    }
  }
  ++num_rows_;
  return genbase::Status::OK();
}

std::vector<int64_t>& ColumnTable::MutableIntColumn(int col) {
  GENBASE_CHECK(schema_.field(col).type == DataType::kInt64);
  return int_cols_[static_cast<size_t>(col)];
}

std::vector<double>& ColumnTable::MutableDoubleColumn(int col) {
  GENBASE_CHECK(schema_.field(col).type == DataType::kDouble);
  return dbl_cols_[static_cast<size_t>(col)];
}

const std::vector<int64_t>& ColumnTable::IntColumn(int col) const {
  GENBASE_CHECK(schema_.field(col).type == DataType::kInt64);
  return int_cols_[static_cast<size_t>(col)];
}

const std::vector<double>& ColumnTable::DoubleColumn(int col) const {
  GENBASE_CHECK(schema_.field(col).type == DataType::kDouble);
  return dbl_cols_[static_cast<size_t>(col)];
}

genbase::Status ColumnTable::FinishBulkLoad() {
  int64_t rows = -1;
  for (int c = 0; c < schema_.num_fields(); ++c) {
    const int64_t n =
        schema_.field(c).type == DataType::kInt64
            ? static_cast<int64_t>(int_cols_[static_cast<size_t>(c)].size())
            : static_cast<int64_t>(dbl_cols_[static_cast<size_t>(c)].size());
    if (rows < 0) {
      rows = n;
    } else if (rows != n) {
      return genbase::Status::InvalidArgument(
          "bulk-loaded columns have differing lengths");
    }
  }
  num_rows_ = rows < 0 ? 0 : rows;
  return genbase::Status::OK();
}

int64_t ColumnTable::bytes() const {
  int64_t total = 0;
  for (const auto& c : int_cols_) {
    total += static_cast<int64_t>(c.capacity() * sizeof(int64_t));
  }
  for (const auto& c : dbl_cols_) {
    total += static_cast<int64_t>(c.capacity() * sizeof(double));
  }
  return total;
}

}  // namespace genbase::storage
