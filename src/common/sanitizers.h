#ifndef GENBASE_COMMON_SANITIZERS_H_
#define GENBASE_COMMON_SANITIZERS_H_

/// Compile-time sanitizer detection (GCC defines __SANITIZE_*__; clang
/// exposes __has_feature). Perf-ratio gates consult this: sanitizer
/// instrumentation multiplies the cost of the instrumented side of an
/// A/B throughput comparison, so those gates measure the sanitizer, not
/// the product. Correctness gates must NOT consult it.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GENBASE_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GENBASE_UNDER_SANITIZER 1
#endif
#endif

#ifndef GENBASE_UNDER_SANITIZER
#define GENBASE_UNDER_SANITIZER 0
#endif

namespace genbase {
inline constexpr bool kUnderSanitizer = GENBASE_UNDER_SANITIZER != 0;
}  // namespace genbase

#endif  // GENBASE_COMMON_SANITIZERS_H_
