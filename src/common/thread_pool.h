#ifndef GENBASE_COMMON_THREAD_POOL_H_
#define GENBASE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace genbase {

/// \brief Fixed-size worker pool. Engines own a pool sized to the thread
/// budget of the system they model (1 for the R engine, hardware concurrency
/// for the SciDB-like engine), so "single-threaded analytics" is a real
/// constraint, not a simulated one.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous shards
  /// across the pool (plus the calling thread). Blocks until done. With
  /// num_threads() <= 1 the loop runs inline on the caller.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  int64_t outstanding_ = 0;
  bool shutdown_ = false;
};

/// \brief Global shared pool sized to hardware concurrency (for callers that
/// have no engine-specific budget, e.g. tests).
ThreadPool* DefaultPool();

}  // namespace genbase

#endif  // GENBASE_COMMON_THREAD_POOL_H_
