#ifndef GENBASE_COMMON_CHECK_H_
#define GENBASE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal-invariant checks. These abort: they guard programmer errors, not
/// runtime conditions (which use Status).
#define GENBASE_CHECK(cond)                                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GENBASE_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                        \
      /* lint:allow(no-bare-assert): the sanctioned abort - all other */    \
      std::abort(); /* call sites must route through this macro */          \
    }                                                                       \
  } while (0)

#define GENBASE_CHECK_OK(expr)                                               \
  do {                                                                       \
    ::genbase::Status _st = (expr);                                          \
    if (!_st.ok()) {                                                         \
      std::fprintf(stderr, "GENBASE_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, _st.ToString().c_str());              \
      /* lint:allow(no-bare-assert): the sanctioned abort (see above) */     \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define GENBASE_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define GENBASE_DCHECK(cond) GENBASE_CHECK(cond)
#endif

#endif  // GENBASE_COMMON_CHECK_H_
