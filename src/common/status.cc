#include "common/status.h"

namespace genbase {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace genbase
