#ifndef GENBASE_COMMON_CSV_H_
#define GENBASE_COMMON_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace genbase {

/// \brief Text serialization used by the "DBMS + external R" configurations.
///
/// The paper's Postgres+R and ColumnStore+R systems pay a genuine
/// export/reformat cost when shipping query results to R. We reproduce that
/// cost for real: doubles are printed with full round-trip precision (%.17g)
/// and re-parsed with strtod, just like a COPY TO ... CSV | read.csv pipe.
class CsvCodec {
 public:
  /// Serializes a row-major numeric block to CSV text.
  static std::string WriteMatrix(const double* data, int64_t rows,
                                 int64_t cols);

  /// Serializes typed columns (all the same length) to CSV text.
  static std::string WriteColumns(
      const std::vector<const double*>& doubles_cols,
      const std::vector<const int64_t*>& int_cols, int64_t rows);

  /// Parses CSV text into a row-major double buffer. All fields numeric.
  static Status ParseMatrix(const std::string& text, int64_t* rows,
                            int64_t* cols, std::vector<double>* out);
};

}  // namespace genbase

#endif  // GENBASE_COMMON_CSV_H_
