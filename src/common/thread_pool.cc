#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace genbase {

ThreadPool::ThreadPool(int num_threads) {
  GENBASE_CHECK(num_threads >= 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++outstanding_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0 && tasks_.empty(); });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --outstanding_;
      if (outstanding_ == 0 && tasks_.empty()) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  const int64_t n = end - begin;
  const int shards = std::min<int64_t>(
      n, static_cast<int64_t>(std::max(1, num_threads())));
  if (shards <= 1) {
    fn(begin, end);
    return;
  }
  const int64_t chunk = (n + shards - 1) / shards;
  // Per-call completion latch rather than Wait(): Wait drains the *whole*
  // pool, so on a shared pool (concurrent workload clients) it would block
  // on — and charge this caller's phase timer for — other callers' tasks.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int remaining = 0;
  };
  auto latch = std::make_shared<Latch>();
  // The calling thread takes the first shard; workers take the rest.
  for (int s = 1; s < shards; ++s) {
    const int64_t lo = begin + s * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) continue;
    {
      std::unique_lock<std::mutex> lock(latch->mu);
      ++latch->remaining;
    }
    Submit([fn, lo, hi, latch] {
      fn(lo, hi);
      std::unique_lock<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  fn(begin, std::min(end, begin + chunk));
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

ThreadPool* DefaultPool() {
  // lint:allow(raw-new-delete): leaked process singleton so worker threads never race static destruction at exit
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace genbase
