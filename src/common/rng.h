#ifndef GENBASE_COMMON_RNG_H_
#define GENBASE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <string_view>

namespace genbase {

/// \brief SplitMix64: used to derive stream seeds from (tag, index) pairs so
/// that every dataset/column/purpose gets an independent deterministic stream.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Derives a seed from a string tag plus numeric salts (FNV-1a over
/// the tag, mixed through SplitMix64).
uint64_t SeedFromTag(std::string_view tag, uint64_t salt0 = 0,
                     uint64_t salt1 = 0);

/// \brief xoshiro256** PRNG. Small, fast, reproducible across platforms
/// (unlike std::mt19937_64 distributions, whose outputs are
/// implementation-defined for e.g. normal_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x = SplitMix64(x);
      s = x;
    }
    has_gauss_ = false;
    gauss_ = 0.0;
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                  hi - lo + 1));
  }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double Gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * Uniform() - 1.0;
      v = 2.0 * Uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    gauss_ = v * f;
    has_gauss_ = true;
    return u * f;
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return Uniform() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_gauss_;
  double gauss_;
};

}  // namespace genbase

#endif  // GENBASE_COMMON_RNG_H_
