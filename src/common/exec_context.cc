#include "common/exec_context.h"

namespace genbase {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kDataManagement:
      return "data_management";
    case Phase::kAnalytics:
      return "analytics";
    case Phase::kGlue:
      return "glue";
  }
  return "unknown";
}

}  // namespace genbase
