#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace genbase::json {

const Value* Value::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const Value* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->string : fallback;
}

namespace {

/// Recursive-descent parser over the raw byte buffer. Depth is bounded so a
/// corrupt artifact cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  genbase::Result<Value> Run() {
    Value v;
    GENBASE_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != s_.size()) return Error("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  genbase::Status Error(const std::string& what) const {
    return genbase::Status::InvalidArgument(
        "json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  genbase::Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return genbase::Status::OK();
  }

  genbase::Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= s_.size()) return Error("unexpected end of input");
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = Value::Type::kBool;
        out->boolean = true;
        return ConsumeWord("true");
      case 'f':
        out->type = Value::Type::kBool;
        out->boolean = false;
        return ConsumeWord("false");
      case 'n':
        out->type = Value::Type::kNull;
        return ConsumeWord("null");
      default:
        return ParseNumber(out);
    }
  }

  genbase::Status ConsumeWord(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Consume(*p)) return Error(std::string("expected '") + word + "'");
    }
    return genbase::Status::OK();
  }

  genbase::Status ParseObject(Value* out, int depth) {
    out->type = Value::Type::kObject;
    GENBASE_RETURN_NOT_OK(Expect('{'));
    SkipWs();
    if (Consume('}')) return genbase::Status::OK();
    for (;;) {
      SkipWs();
      std::string key;
      GENBASE_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      GENBASE_RETURN_NOT_OK(Expect(':'));
      Value v;
      GENBASE_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      return Expect('}');
    }
  }

  genbase::Status ParseArray(Value* out, int depth) {
    out->type = Value::Type::kArray;
    GENBASE_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (Consume(']')) return genbase::Status::OK();
    for (;;) {
      Value v;
      GENBASE_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->array.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      return Expect(']');
    }
  }

  genbase::Status ParseString(std::string* out) {
    GENBASE_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return genbase::Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // This repo's emitters only escape control characters; decode the
          // ASCII range and pass anything else through as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  genbase::Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    const std::string token = s_.substr(start, pos_ - start);
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return Error("bad number");
    // strtod maps out-of-range literals like 1e999 to +/-inf; downstream
    // arithmetic assumes finite config values, so reject them here.
    if (!std::isfinite(v)) return Error("number out of range");
    out->type = Value::Type::kNumber;
    out->number = v;
    return genbase::Status::OK();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

genbase::Result<Value> Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace genbase::json
