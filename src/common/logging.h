#ifndef GENBASE_COMMON_LOGGING_H_
#define GENBASE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace genbase {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Global log threshold; messages below it are dropped.
/// Controlled by the GENBASE_LOG environment variable (debug/info/warn/error);
/// default is kWarning so that benchmarks produce clean tabular output.
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace genbase

#define GENBASE_LOG(level)                                              \
  if (::genbase::LogLevel::k##level < ::genbase::GlobalLogLevel()) {    \
  } else                                                                \
    ::genbase::internal::LogMessage(::genbase::LogLevel::k##level,      \
                                    __FILE__, __LINE__)                 \
        .stream()

#endif  // GENBASE_COMMON_LOGGING_H_
