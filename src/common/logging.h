#ifndef GENBASE_COMMON_LOGGING_H_
#define GENBASE_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace genbase {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Global log threshold; messages below it are dropped.
/// Controlled by the GENBASE_LOG environment variable (debug/info/warn/error);
/// default is kWarning so that benchmarks produce clean tabular output.
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Decision half of GENBASE_LOG_EVERY_N: bumps the call site's occurrence
/// counter and returns true for the occurrences that should emit (the first,
/// then every n-th). Suppressed occurrences are counted in
/// `log_messages_suppressed_total{level=...}` so a muted hot log is still
/// visible in the metrics snapshot.
bool LogEveryNShouldLog(std::atomic<int64_t>* counter, int64_t n,
                        LogLevel level);

}  // namespace internal
}  // namespace genbase

#define GENBASE_LOG(level)                                              \
  if (::genbase::LogLevel::k##level < ::genbase::GlobalLogLevel()) {    \
  } else                                                                \
    ::genbase::internal::LogMessage(::genbase::LogLevel::k##level,      \
                                    __FILE__, __LINE__)                 \
        .stream()

/// Rate-limited logging for per-operation paths: emits the 1st, (n+1)th,
/// (2n+1)th... occurrence at this call site, counts the rest as suppressed.
/// The occurrence counter only ticks when `level` clears the global
/// threshold, so disabled-level sites cost one comparison, same as
/// GENBASE_LOG.
#define GENBASE_LOG_EVERY_N(level, n)                                       \
  if (::genbase::LogLevel::k##level < ::genbase::GlobalLogLevel()) {        \
  } else if (static std::atomic<int64_t> genbase_log_count_{0};             \
             !::genbase::internal::LogEveryNShouldLog(                      \
                 &genbase_log_count_, (n),                                  \
                 ::genbase::LogLevel::k##level)) {                          \
  } else                                                                    \
    ::genbase::internal::LogMessage(::genbase::LogLevel::k##level,          \
                                    __FILE__, __LINE__)                     \
        .stream()

#endif  // GENBASE_COMMON_LOGGING_H_
