#ifndef GENBASE_COMMON_STATUS_H_
#define GENBASE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace genbase {

/// \brief Error categories used across the library.
///
/// The set mirrors what the benchmark driver needs to distinguish: resource
/// exhaustion and deadline expiry are reported as the paper's "infinite"
/// results, everything else is a hard error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kDeadlineExceeded,
  kCancelled,
  kNotSupported,
  kIOError,
  kNotFound,
  kAlreadyExists,
  kInternal,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief Arrow/RocksDB-style status object. Library functions never throw;
/// they return Status (or Result<T>).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }

  /// True for the failure classes the benchmark reports as INF (the paper's
  /// horizontal lines): memory exhaustion and timeout.
  bool IsResourceFailure() const {
    return IsOutOfMemory() || IsDeadlineExceeded();
  }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-Status, modeled on arrow::Result.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirroring arrow::Result.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }
  const Status& status() const {
    static const Status kOkStatus = Status::OK();
    if (ok()) return kOkStatus;
    return std::get<Status>(value_);
  }

  const T& ValueOrDie() const& { return std::get<T>(value_); }
  T& ValueOrDie() & { return std::get<T>(value_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace genbase

/// Propagates a non-OK Status from an expression.
#define GENBASE_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::genbase::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result expression or propagates its Status.
#define GENBASE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie();

#define GENBASE_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define GENBASE_ASSIGN_OR_RETURN_NAME(x, y) \
  GENBASE_ASSIGN_OR_RETURN_CONCAT(x, y)

#define GENBASE_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  GENBASE_ASSIGN_OR_RETURN_IMPL(                                              \
      GENBASE_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

#endif  // GENBASE_COMMON_STATUS_H_
