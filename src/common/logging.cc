#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/metrics.h"

namespace genbase {

namespace {

const char* LevelLabel(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

/// One counter per (metric, level); resolved once per level, not per message.
obs::Counter* LevelCounter(const char* name, LogLevel level) {
  static obs::Counter* counters[2][4] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    const char* names[2] = {"log_messages_total",
                            "log_messages_suppressed_total"};
    for (int m = 0; m < 2; ++m) {
      for (int l = 0; l < 4; ++l) {
        counters[m][l] = obs::MetricsRegistry::Global().GetCounter(
            names[m], {{"level", LevelLabel(static_cast<LogLevel>(l))}});
      }
    }
  });
  const int m = std::strcmp(name, "log_messages_total") == 0 ? 0 : 1;
  return counters[m][static_cast<int>(level)];
}

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("GENBASE_LOG");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseEnvLevel();
  return level;
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return MutableLevel(); }
void SetGlobalLogLevel(LogLevel level) { MutableLevel() = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  LevelCounter("log_messages_total", level_)->Inc();
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

bool LogEveryNShouldLog(std::atomic<int64_t>* counter, int64_t n,
                        LogLevel level) {
  if (n <= 1) return true;
  const int64_t occurrence =
      counter->fetch_add(1, std::memory_order_relaxed);
  if (occurrence % n == 0) return true;
  LevelCounter("log_messages_suppressed_total", level)->Inc();
  return false;
}

}  // namespace internal
}  // namespace genbase
