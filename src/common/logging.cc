#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace genbase {

namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("GENBASE_LOG");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseEnvLevel();
  return level;
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return MutableLevel(); }
void SetGlobalLogLevel(LogLevel level) { MutableLevel() = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace genbase
