#ifndef GENBASE_COMMON_JSON_H_
#define GENBASE_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace genbase::json {

/// \brief Minimal JSON document model, sized for this repo's own artifacts:
/// BENCH_*.json reports, TRACE_*.json span dumps and METRICS_*.json
/// snapshots are all emitted by hand-rolled printers here, and the
/// bench-history doctor plus the exporter round-trip tests need to read them
/// back without growing a third-party dependency. Standard JSON only —
/// no comments, no trailing commas, UTF-8 passed through uninterpreted
/// (\uXXXX escapes above ASCII are preserved verbatim as text).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered, duplicate keys preserved (last one wins in Find).
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Member `key` as a number / string, with a default when the member is
  /// absent or has the wrong type — the doctor reads loosely-versioned
  /// artifacts, so absence must be cheap to handle.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
};

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected). Errors carry a byte offset.
genbase::Result<Value> Parse(const std::string& text);

}  // namespace genbase::json

#endif  // GENBASE_COMMON_JSON_H_
