#ifndef GENBASE_COMMON_SIMD_H_
#define GENBASE_COMMON_SIMD_H_

namespace genbase::simd {

/// \brief Which kernel backend the linear-algebra hot paths run on.
///
/// kScalar keeps the portable blocked loops the repo shipped with; kSimd
/// routes Dot/Axpy/Gemv and the packed Gemm/Syrk macro-kernel through the
/// AVX2+FMA micro-kernels when the CPU has them, and through packed scalar
/// micro-kernels otherwise (so one binary runs everywhere and the packed
/// code paths are exercised even on non-x86 hosts).
enum class Backend { kScalar, kSimd };

/// "scalar" / "simd" — the strings reports and BENCH_*.json carry.
const char* BackendName(Backend backend);

/// True when this build can emit AVX2+FMA code paths at all (x86 gcc/clang).
bool CompiledWithAvx2Support();

/// Runtime CPUID check: does this machine execute AVX2+FMA?
bool CpuSupportsAvx2();

/// The backend every dispatching kernel consults. Resolved once, lazily:
/// GENBASE_KERNEL_BACKEND=scalar|simd overrides; the default is kSimd (the
/// micro-kernels degrade to packed scalar where AVX2 is unavailable).
Backend ActiveBackend();

/// Forces the backend (tests, kernelbench variants). Returns the previous
/// value so callers can restore it.
Backend SetBackend(Backend backend);

}  // namespace genbase::simd

#endif  // GENBASE_COMMON_SIMD_H_
