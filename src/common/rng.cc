#include "common/rng.h"

namespace genbase {

uint64_t SeedFromTag(std::string_view tag, uint64_t salt0, uint64_t salt1) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis.
  for (char c : tag) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;  // FNV prime.
  }
  h = SplitMix64(h ^ SplitMix64(salt0));
  h = SplitMix64(h ^ SplitMix64(salt1 * 0x9e3779b97f4a7c15ULL));
  return h;
}

}  // namespace genbase
