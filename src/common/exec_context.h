#ifndef GENBASE_COMMON_EXEC_CONTEXT_H_
#define GENBASE_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace genbase {

/// \brief Benchmark phases the paper breaks out (Figures 2 and 4).
/// Glue is the paper's "copy/reformat data between systems" cost; it is
/// reported inside data management totals unless broken out.
enum class Phase { kDataManagement = 0, kAnalytics = 1, kGlue = 2 };
inline constexpr int kNumPhases = 3;

const char* PhaseName(Phase phase);

/// \brief Accumulates measured wall seconds plus modeled virtual seconds per
/// phase. Virtual seconds cover costs the host machine cannot physically
/// incur (simulated network links, coprocessor transfer/compute); they are
/// folded into totals so bench output reflects the modeled deployment.
class PhaseClock {
 public:
  void AddMeasured(Phase phase, double seconds) {
    measured_[static_cast<int>(phase)] += seconds;
  }
  void AddVirtual(Phase phase, double seconds) {
    virtual_[static_cast<int>(phase)] += seconds;
  }

  double measured(Phase phase) const {
    return measured_[static_cast<int>(phase)];
  }
  double modeled(Phase phase) const {
    return virtual_[static_cast<int>(phase)];
  }
  double total(Phase phase) const {
    return measured(phase) + modeled(phase);
  }
  double grand_total() const {
    double t = 0;
    for (int i = 0; i < kNumPhases; ++i) t += measured_[i] + virtual_[i];
    return t;
  }

  void Reset() {
    for (int i = 0; i < kNumPhases; ++i) measured_[i] = virtual_[i] = 0.0;
  }

 private:
  double measured_[kNumPhases] = {0, 0, 0};
  double virtual_[kNumPhases] = {0, 0, 0};
};

/// \brief Per-query execution context threaded through every operator and
/// analytics kernel: deadline, cancellation, memory budget, thread budget,
/// and phase accounting.
class ExecContext {
 public:
  ExecContext() = default;

  /// Sets an absolute deadline `seconds` from now. The paper used a 2-hour
  /// cutoff; the bench driver uses a scaled default (GENBASE_TIMEOUT).
  void SetDeadlineAfter(double seconds) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
  }
  void ClearDeadline() { deadline_.reset(); }

  /// Returns the context to a fresh state so one context can be reused
  /// across operations (the workload runner keeps one per client thread).
  /// Engine-installed pointers (memory, pool) are left in place; the next
  /// PrepareContext overwrites them anyway.
  void ResetForRun() {
    deadline_.reset();
    cancelled_.store(false, std::memory_order_relaxed);
    clock_.Reset();
  }

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Cooperative check, called inside operator/iteration loops. Cheap enough
  /// to call every few thousand tuples.
  Status CheckBudgets() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() > *deadline_) {
      return Status::DeadlineExceeded("query exceeded time budget");
    }
    return Status::OK();
  }

  MemoryTracker* memory() const { return memory_; }
  void set_memory(MemoryTracker* tracker) { memory_ = tracker; }

  ThreadPool* pool() const { return pool_; }
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  int num_threads() const {
    return pool_ == nullptr ? 1 : std::max(1, pool_->num_threads());
  }

  PhaseClock& clock() { return clock_; }
  const PhaseClock& clock() const { return clock_; }

 private:
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::atomic<bool> cancelled_{false};
  MemoryTracker* memory_ = nullptr;
  ThreadPool* pool_ = nullptr;
  PhaseClock clock_;
};

/// \brief RAII phase timer: measures wall time of a scope into the context's
/// phase clock.
class ScopedPhase {
 public:
  ScopedPhase(ExecContext* ctx, Phase phase) : ctx_(ctx), phase_(phase) {}
  ~ScopedPhase() {
    if (ctx_ != nullptr) ctx_->clock().AddMeasured(phase_, timer_.Seconds());
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  ExecContext* ctx_;
  Phase phase_;
  WallTimer timer_;
};

}  // namespace genbase

#endif  // GENBASE_COMMON_EXEC_CONTEXT_H_
