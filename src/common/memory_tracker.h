#ifndef GENBASE_COMMON_MEMORY_TRACKER_H_
#define GENBASE_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace genbase::obs {
class Gauge;
}  // namespace genbase::obs

namespace genbase {

/// \brief Byte-accounting with a budget. Each engine run owns a tracker sized
/// to the memory model of the system it emulates; exceeding the budget turns
/// into Status::OutOfMemory, which the benchmark driver reports as INF —
/// exactly the paper's "temporary space allocation failed" outcome.
///
/// Labelled trackers additionally export `memory_tracker_used_bytes`,
/// `memory_tracker_peak_bytes` and `memory_tracker_budget_bytes` gauges
/// (labels: tracker=<label>, instance=<unique>) so memory pressure shows up
/// in METRICS_* snapshots next to the serving counters. Unlabelled trackers
/// stay metrics-free — tests construct thousands of them.
class MemoryTracker {
 public:
  static constexpr int64_t kUnlimited =
      std::numeric_limits<int64_t>::max();

  explicit MemoryTracker(int64_t budget_bytes = kUnlimited,
                         std::string label = "");

  /// Attempts to reserve bytes against the budget.
  Status Reserve(int64_t bytes);

  /// Releases a previous reservation.
  void Release(int64_t bytes);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Monotone sum of every successful reservation — never decremented, so
  /// before/after deltas measure allocation activity inside a window even
  /// when everything was released again (the profiler's per-request
  /// alloc_delta_bytes).
  int64_t reserved_total() const {
    return reserved_total_.load(std::memory_order_relaxed);
  }
  int64_t budget() const { return budget_; }
  const std::string& label() const { return label_; }

  void Reset() {
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  void PublishGauges(int64_t used_now);

  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> reserved_total_{0};
  int64_t budget_;
  std::string label_;
  obs::Gauge* used_gauge_ = nullptr;  ///< Non-null only for labelled trackers.
  obs::Gauge* peak_gauge_ = nullptr;
};

/// \brief RAII reservation; releases on destruction. Use via Acquire().
class ScopedReservation {
 public:
  ScopedReservation() : tracker_(nullptr), bytes_(0) {}
  ScopedReservation(ScopedReservation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedReservation& operator=(ScopedReservation&& other) noexcept {
    ReleaseNow();
    tracker_ = other.tracker_;
    bytes_ = other.bytes_;
    other.tracker_ = nullptr;
    other.bytes_ = 0;
    return *this;
  }
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;
  ~ScopedReservation() { ReleaseNow(); }

  /// Reserves `bytes` from `tracker` (nullptr tracker = no-op success).
  static Result<ScopedReservation> Acquire(MemoryTracker* tracker,
                                           int64_t bytes);

  int64_t bytes() const { return bytes_; }

  void ReleaseNow() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

 private:
  ScopedReservation(MemoryTracker* tracker, int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {}

  MemoryTracker* tracker_;
  int64_t bytes_;
};

}  // namespace genbase

#endif  // GENBASE_COMMON_MEMORY_TRACKER_H_
