#include "common/memory_tracker.h"

#include <string>

#include "obs/metrics.h"

namespace genbase {

MemoryTracker::MemoryTracker(int64_t budget_bytes, std::string label)
    : budget_(budget_bytes), label_(std::move(label)) {
  if (label_.empty()) return;
  // Same-label trackers are distinct instruments (one tracker per engine
  // run): the instance label keeps their series apart in the registry.
  const obs::Labels labels = {
      {"tracker", label_},
      {"instance", obs::MetricsRegistry::NextInstanceId("memtrk")}};
  auto& registry = obs::MetricsRegistry::Global();
  used_gauge_ = registry.GetGauge("memory_tracker_used_bytes", labels);
  peak_gauge_ = registry.GetGauge("memory_tracker_peak_bytes", labels);
  if (budget_ != kUnlimited) {
    registry.GetGauge("memory_tracker_budget_bytes", labels)
        ->Set(static_cast<double>(budget_));
  }
}

void MemoryTracker::PublishGauges(int64_t used_now) {
  if (used_gauge_ == nullptr) return;
  used_gauge_->Set(static_cast<double>(used_now));
  peak_gauge_->SetMax(static_cast<double>(used_now));
}

Status MemoryTracker::Reserve(int64_t bytes) {
  if (bytes < 0) return Status::InvalidArgument("negative reservation");
  const int64_t now =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (now > budget_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::OutOfMemory(
        label_ + ": allocation of " + std::to_string(bytes) +
        " bytes exceeds budget " + std::to_string(budget_) + " (in use " +
        std::to_string(now - bytes) + ")");
  }
  reserved_total_.fetch_add(bytes, std::memory_order_relaxed);
  int64_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
  PublishGauges(now);
  return Status::OK();
}

void MemoryTracker::Release(int64_t bytes) {
  const int64_t now =
      used_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  PublishGauges(now);
}

Result<ScopedReservation> ScopedReservation::Acquire(MemoryTracker* tracker,
                                                     int64_t bytes) {
  if (tracker == nullptr) return ScopedReservation();
  Status st = tracker->Reserve(bytes);
  if (!st.ok()) return st;
  return ScopedReservation(tracker, bytes);
}

}  // namespace genbase
