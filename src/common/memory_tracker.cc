#include "common/memory_tracker.h"

#include <string>

namespace genbase {

Status MemoryTracker::Reserve(int64_t bytes) {
  if (bytes < 0) return Status::InvalidArgument("negative reservation");
  const int64_t now =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (now > budget_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::OutOfMemory(
        label_ + ": allocation of " + std::to_string(bytes) +
        " bytes exceeds budget " + std::to_string(budget_) + " (in use " +
        std::to_string(now - bytes) + ")");
  }
  int64_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryTracker::Release(int64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

Result<ScopedReservation> ScopedReservation::Acquire(MemoryTracker* tracker,
                                                     int64_t bytes) {
  if (tracker == nullptr) return ScopedReservation();
  Status st = tracker->Reserve(bytes);
  if (!st.ok()) return st;
  return ScopedReservation(tracker, bytes);
}

}  // namespace genbase
