#ifndef GENBASE_COMMON_SPILL_H_
#define GENBASE_COMMON_SPILL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace genbase {

/// \brief Disk-backed byte stream used by the MapReduce engine to materialize
/// every stage boundary, as Hadoop does between map and reduce. Writes go to
/// real files under a temp directory so the cost is genuinely incurred.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();

  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Creates a fresh spill file in `dir` (or the default spill dir if empty).
  static Result<SpillFile> Create(const std::string& dir = "");

  /// Appends raw bytes; flushed through the OS file API.
  Status Write(const void* data, int64_t bytes);

  /// Convenience typed writers.
  Status WriteDoubles(const double* data, int64_t count) {
    return Write(data, count * static_cast<int64_t>(sizeof(double)));
  }
  Status WriteInts(const int64_t* data, int64_t count) {
    return Write(data, count * static_cast<int64_t>(sizeof(int64_t)));
  }

  /// Finishes writing and reopens for reading from the start.
  Status FinishWrite();

  /// Resets the read cursor to the start (files are re-read across queries,
  /// like HDFS inputs).
  Status Rewind() { return FinishWrite(); }

  /// Reads exactly `bytes` bytes; fails if the file is exhausted.
  Status Read(void* data, int64_t bytes);

  Status ReadDoubles(double* data, int64_t count) {
    return Read(data, count * static_cast<int64_t>(sizeof(double)));
  }
  Status ReadInts(int64_t* data, int64_t count) {
    return Read(data, count * static_cast<int64_t>(sizeof(int64_t)));
  }

  int64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

  /// Deletes the backing file.
  void Discard();

 private:
  std::string path_;
  int fd_ = -1;
  int64_t bytes_written_ = 0;
  bool reading_ = false;
};

/// \brief Returns (creating if needed) the process-wide spill directory.
const std::string& DefaultSpillDir();

}  // namespace genbase

#endif  // GENBASE_COMMON_SPILL_H_
