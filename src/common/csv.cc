#include "common/csv.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace genbase {

std::string CsvCodec::WriteMatrix(const double* data, int64_t rows,
                                  int64_t cols) {
  std::string out;
  out.reserve(static_cast<size_t>(rows * cols * 20));
  char buf[40];
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const int n = std::snprintf(buf, sizeof(buf), "%.17g",
                                  data[i * cols + j]);
      out.append(buf, n);
      out.push_back(j + 1 == cols ? '\n' : ',');
    }
  }
  return out;
}

std::string CsvCodec::WriteColumns(
    const std::vector<const double*>& doubles_cols,
    const std::vector<const int64_t*>& int_cols, int64_t rows) {
  std::string out;
  char buf[40];
  const size_t width = doubles_cols.size() + int_cols.size();
  out.reserve(static_cast<size_t>(rows) * width * 16);
  for (int64_t i = 0; i < rows; ++i) {
    size_t field = 0;
    for (const int64_t* col : int_cols) {
      const int n = std::snprintf(buf, sizeof(buf), "%lld",
                                  static_cast<long long>(col[i]));
      out.append(buf, n);
      out.push_back(++field == width ? '\n' : ',');
    }
    for (const double* col : doubles_cols) {
      const int n = std::snprintf(buf, sizeof(buf), "%.17g", col[i]);
      out.append(buf, n);
      out.push_back(++field == width ? '\n' : ',');
    }
  }
  return out;
}

Status CsvCodec::ParseMatrix(const std::string& text, int64_t* rows,
                             int64_t* cols, std::vector<double>* out) {
  out->clear();
  *rows = 0;
  *cols = -1;
  const char* p = text.c_str();
  const char* end = p + text.size();
  int64_t fields_this_row = 0;
  while (p < end) {
    char* next = nullptr;
    const double v = std::strtod(p, &next);
    if (next == p) {
      return Status::IOError("CSV parse error near byte offset " +
                             std::to_string(p - text.c_str()));
    }
    out->push_back(v);
    ++fields_this_row;
    p = next;
    if (p < end && *p == ',') {
      ++p;
    } else if (p < end && *p == '\n') {
      ++p;
      if (*cols < 0) {
        *cols = fields_this_row;
      } else if (fields_this_row != *cols) {
        return Status::IOError("CSV ragged row at line " +
                               std::to_string(*rows + 1));
      }
      fields_this_row = 0;
      ++*rows;
    } else if (p >= end) {
      break;
    } else {
      return Status::IOError("unexpected CSV character");
    }
  }
  if (fields_this_row > 0) {
    // Final line without trailing newline.
    if (*cols < 0) *cols = fields_this_row;
    if (fields_this_row != *cols) return Status::IOError("CSV ragged tail");
    ++*rows;
  }
  if (*cols < 0) *cols = 0;
  return Status::OK();
}

}  // namespace genbase
