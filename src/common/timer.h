#ifndef GENBASE_COMMON_TIMER_H_
#define GENBASE_COMMON_TIMER_H_

#include <chrono>
#include <ctime>

namespace genbase {

/// \brief Wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Per-thread CPU-time stopwatch. The cluster simulator times each
/// virtual node's local work with this clock so that scheduling two virtual
/// nodes onto one physical core does not inflate their reported compute time.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Restart(); }

  void Restart() { start_ = Now(); }

  double Seconds() const { return Now() - start_; }

  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }

 private:
  double start_;
};

/// \brief Adds the elapsed wall seconds to *sink on destruction.
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(double* sink) : sink_(sink) {}
  ~ScopedWallTimer() { *sink_ += timer_.Seconds(); }

  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace genbase

#endif  // GENBASE_COMMON_TIMER_H_
