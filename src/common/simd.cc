#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace genbase::simd {

namespace {

/// -1 = unresolved; otherwise holds a Backend value.
std::atomic<int> g_backend{-1};

Backend Resolve() {
  const char* env = std::getenv("GENBASE_KERNEL_BACKEND");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Backend::kScalar;
    if (std::strcmp(env, "simd") == 0) return Backend::kSimd;
  }
  return Backend::kSimd;
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSimd:
      return "simd";
  }
  return "?";
}

bool CompiledWithAvx2Support() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return true;
#else
  return false;
#endif
}

bool CpuSupportsAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Backend ActiveBackend() {
  int v = g_backend.load(std::memory_order_acquire);
  if (v < 0) {
    const Backend resolved = Resolve();
    int expected = -1;
    if (g_backend.compare_exchange_strong(expected, static_cast<int>(resolved),
                                          std::memory_order_acq_rel)) {
      return resolved;
    }
    v = g_backend.load(std::memory_order_acquire);
  }
  return static_cast<Backend>(v);
}

Backend SetBackend(Backend backend) {
  const Backend previous = ActiveBackend();
  g_backend.store(static_cast<int>(backend), std::memory_order_release);
  return previous;
}

}  // namespace genbase::simd
