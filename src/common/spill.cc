#include "common/spill.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace genbase {

namespace {
std::atomic<uint64_t> g_spill_counter{0};
}  // namespace

const std::string& DefaultSpillDir() {
  static const std::string* dir = [] {
    std::string d = "/tmp/genbase_spill";
    ::mkdir(d.c_str(), 0755);
    // lint:allow(raw-new-delete): leaked function-local singleton, avoids a static-destruction-order race with spill files closed at teardown
    return new std::string(d);
  }();
  return *dir;
}

SpillFile::~SpillFile() { Discard(); }

SpillFile::SpillFile(SpillFile&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      bytes_written_(other.bytes_written_),
      reading_(other.reading_) {
  other.fd_ = -1;
  other.path_.clear();
}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  Discard();
  path_ = std::move(other.path_);
  fd_ = other.fd_;
  bytes_written_ = other.bytes_written_;
  reading_ = other.reading_;
  other.fd_ = -1;
  other.path_.clear();
  return *this;
}

Result<SpillFile> SpillFile::Create(const std::string& dir) {
  SpillFile f;
  const std::string base = dir.empty() ? DefaultSpillDir() : dir;
  f.path_ = base + "/spill_" + std::to_string(::getpid()) + "_" +
            std::to_string(
                g_spill_counter.fetch_add(1, std::memory_order_relaxed));
  f.fd_ = ::open(f.path_.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (f.fd_ < 0) {
    return Status::IOError("cannot create spill file " + f.path_ + ": " +
                           std::strerror(errno));
  }
  return f;
}

Status SpillFile::Write(const void* data, int64_t bytes) {
  if (fd_ < 0) return Status::IOError("spill file not open");
  if (reading_) return Status::IOError("spill file already in read mode");
  const char* p = static_cast<const char*>(data);
  int64_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, static_cast<size_t>(remaining));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("spill write failed: ") +
                             std::strerror(errno));
    }
    p += n;
    remaining -= n;
  }
  bytes_written_ += bytes;
  return Status::OK();
}

Status SpillFile::FinishWrite() {
  if (fd_ < 0) return Status::IOError("spill file not open");
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::IOError("spill seek failed");
  }
  reading_ = true;
  return Status::OK();
}

Status SpillFile::Read(void* data, int64_t bytes) {
  if (fd_ < 0) return Status::IOError("spill file not open");
  if (!reading_) return Status::IOError("call FinishWrite before Read");
  char* p = static_cast<char*>(data);
  int64_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t n = ::read(fd_, p, static_cast<size_t>(remaining));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("spill read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IOError("spill file exhausted");
    p += n;
    remaining -= n;
  }
  return Status::OK();
}

void SpillFile::Discard() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

}  // namespace genbase
