#ifndef GENBASE_SERVING_FAULTS_H_
#define GENBASE_SERVING_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace genbase::serving {

/// \brief Deterministic fault injection for the serving stack.
///
/// A FaultInjector replays a *fault script*: a seeded, phase-structured
/// schedule of shard crashes/recoveries, latency-spike windows, transient
/// execute-error windows, and armed reload failures. Time is the stack's own
/// operation sequence (one tick per Serve), never the wall clock, so the same
/// script + seed produces the same fault event log on every run — the
/// property bench/fig9_faults gates on.
///
/// Hot-path contract: every injection hook call in src/serving/ must sit
/// behind `injector != nullptr && injector->enabled()` (the repo lint rule
/// fault-hook-guard enforces this), so a stack built without a script pays
/// one pointer compare per Serve and nothing else.
///
/// Script text format (see README "Fault tolerance"):
///
///     # comment
///     seed 42
///     phase fault              # sections; op indices restart at 0 per phase
///     @10 crash 1              # shard 1 refuses traffic from op 10 on
///     @200 recover 1
///     @10..300 latency 2 0.004 # +4ms modeled latency on shard 2 in window
///     @0..400 error * 0.3      # each execute attempt fails w.p. 0.3 ('*' =
///                              # any shard; a shard index narrows it)
///     @5 reload-fail 0         # arm: shard 0's next reload attempt fails
///
/// The driver moves between phases explicitly (AdvancePhase), typically one
/// phase per measured workload run, so scripts compose with the workload
/// runner's warmup/measure structure without counting its internal ops.

enum class FaultKind {
  kCrash = 0,
  kRecover,
  kLatencySpike,
  kTransientError,
  kReloadFailure,
  kNumFaultKinds,
};

const char* FaultKindName(FaultKind kind);

/// One scheduled action within a phase. Window kinds (latency, error) span
/// [at_op, until_op); point kinds (crash, recover, reload-fail) fire once at
/// at_op.
struct FaultAction {
  uint64_t at_op = 0;
  uint64_t until_op = 0;  ///< Exclusive window end; 0 for point actions.
  FaultKind kind = FaultKind::kCrash;
  int shard = -1;     ///< Target shard; -1 = any shard (error windows only).
  double param = 0.0; ///< Latency seconds / error probability.
};

struct FaultPhase {
  std::string name;
  std::vector<FaultAction> actions;
};

/// Parsed fault script: a seed plus ordered phases of actions.
struct FaultScript {
  uint64_t seed = 0;
  std::vector<FaultPhase> phases;

  static genbase::Result<FaultScript> Parse(std::string_view text);
};

/// \brief Bounded retry/hedging knobs for the serving stack's miss path.
/// Pure data; the backoff math lives in the free functions below so its
/// determinism, cap, and deadline-budget properties are testable without a
/// stack or a clock.
struct RetryPolicy {
  /// Total execute attempts per op (1 = retries disabled, the default).
  int max_attempts = 1;
  double initial_backoff_s = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 0.050;
  /// Sequential hedging for cheap query classes: when an attempt's total
  /// (real + modeled) exceeds hedge_threshold_factor x the class's observed
  /// service EWMA, one extra attempt runs on a different shard and the
  /// faster result wins. Heavy classes never hedge — duplicating their work
  /// is exactly the overload hedging exists to dodge.
  bool hedge_cheap = false;
  double hedge_threshold_factor = 3.0;

  bool enabled() const { return max_attempts > 1 || hedge_cheap; }
};

/// Backoff before retry number `attempt` (1-based: the wait between attempt
/// N and attempt N+1 passes attempt=N). Exponential in `attempt`, capped at
/// max_backoff_s, with deterministic jitter in [0.5, 1.0] x the capped base
/// derived from (seed, op, attempt) — a pure function, identical across runs.
double RetryBackoffSeconds(const RetryPolicy& policy, uint64_t seed,
                           uint64_t op, int attempt);

/// The stack's single retry decision point: returns true and sets
/// `*backoff_s` when retry `attempt` is within both the attempt budget and
/// the remaining deadline budget (`remaining_s`, +inf when the op has no
/// deadline); returns false otherwise. Because the stack sleeps exactly
/// `*backoff_s` only when this returns true, total retry wall-time can never
/// exceed the request deadline — the property tests/serving_test checks.
bool ScheduleRetry(const RetryPolicy& policy, uint64_t seed, uint64_t op,
                   int attempt, double remaining_s, double* backoff_s);

/// \brief Replays one FaultScript against a live stack. Thread-safe: the
/// per-op tick is an atomic increment plus one relaxed threshold compare;
/// scheduled state flips happen under an internal mutex exactly once, at the
/// first tick at/after their scheduled op.
class FaultInjector {
 public:
  static genbase::Result<std::unique_ptr<FaultInjector>> Create(
      const FaultScript& script);

  /// True when the script holds any action at all. Hooks below must only be
  /// reached behind this check (see the class comment).
  bool enabled() const { return enabled_; }

  /// Per-Serve tick: advances the op sequence, applies any scheduled
  /// actions that just came due, and returns this op's 1-based sequence
  /// number (the `op` fed to deterministic error draws and retry jitter).
  uint64_t OnServe();

  /// Moves to the next phase of the script: deactivates window faults,
  /// restarts the op sequence at 0, and logs a phase marker. Crash state
  /// persists across phases (a crashed shard stays down until a `recover`).
  /// Returns false when the script has no further phase (the injector then
  /// idles with whatever persistent state the last phase left).
  bool AdvancePhase();

  /// Injected-state queries (hot path; relaxed atomics, no locks).
  bool ShardCrashed(int shard) const;
  double ShardLatencySeconds(int shard) const;

  /// Deterministic transient-error draw for one execute attempt. Logs an
  /// event and counts the injection when it fires. Pure in (seed, op,
  /// attempt, shard) given the active windows.
  bool DrawTransientError(int shard, uint64_t op, int attempt);

  /// Consumes an armed reload failure for `shard` (true at most once per
  /// `reload-fail` action).
  bool ConsumeReloadFailure(int shard);

  /// Canonical fault event log: phase markers plus one line per applied
  /// action / fired draw, in application order. Byte-identical across runs
  /// of the same script + seed under a single-threaded driver; under
  /// concurrency the *set* of scheduled-action lines is still identical.
  std::string EventLog() const;

  /// Total injections by kind (cumulative), mirroring the
  /// serving_fault_injected_total{kind} registry counters.
  int64_t injected(FaultKind kind) const;
  int64_t injected_total() const;

  uint64_t seed() const { return script_.seed; }

 private:
  /// A point event compiled from the script: window actions expand into an
  /// activate/deactivate pair.
  struct Event {
    uint64_t at_op = 0;
    FaultKind kind = FaultKind::kCrash;
    int shard = -1;
    double param = 0.0;
    bool window_end = false;  ///< Deactivation half of a window action.
  };

  explicit FaultInjector(FaultScript script);

  void CompilePhaseLocked(size_t phase_index);
  void ApplyDueLocked(uint64_t op);
  void LogLocked(std::string line);

  /// Mutable injected state per shard, sized for the largest shard index
  /// the script names (queries beyond that are trivially "no fault").
  struct ShardState {
    std::atomic<bool> crashed{false};
    std::atomic<double> latency_s{0.0};
    std::atomic<double> error_p{0.0};
  };

  const FaultScript script_;
  const bool enabled_;

  std::atomic<uint64_t> op_counter_{0};
  /// Op index of the next unapplied event (relaxed-read fast path; ~UINT64
  /// when the current phase has no events left).
  std::atomic<uint64_t> next_event_at_{~uint64_t{0}};
  std::atomic<double> any_shard_error_p_{0.0};

  mutable std::mutex mu_;
  size_t phase_index_ = 0;          ///< Guarded by mu_.
  std::vector<Event> events_;       ///< Current phase, sorted; mu_.
  size_t next_event_ = 0;           ///< Guarded by mu_.
  std::vector<bool> reload_armed_;  ///< Per shard; guarded by mu_.
  std::vector<std::string> log_;    ///< Guarded by mu_.

  std::vector<std::unique_ptr<ShardState>> shard_state_;

  obs::Counter* injected_by_kind_[static_cast<int>(
      FaultKind::kNumFaultKinds)] = {};
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_FAULTS_H_
