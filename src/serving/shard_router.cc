#include "serving/shard_router.h"

#include <algorithm>
#include <utility>

namespace genbase::serving {

genbase::Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    int shards, const EngineFactory& factory, const core::GenBaseData& data) {
  if (shards < 1) {
    return genbase::Status::InvalidArgument(
        "shard router: shard count must be >= 1");
  }
  // lint:allow(raw-new-delete): make_unique cannot reach the private ctor; owned immediately
  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->shards_.reserve(static_cast<size_t>(shards));
  auto& reg = obs::MetricsRegistry::Global();
  const std::string instance = obs::MetricsRegistry::NextInstanceId("router");
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = factory();
    if (shard->engine == nullptr) {
      return genbase::Status::InvalidArgument(
          "shard router: engine factory returned null");
    }
    GENBASE_RETURN_NOT_OK(shard->engine->LoadDataset(data));
    shard->generation = 1;
    const obs::Labels labels{{"instance", instance},
                             {"shard", std::to_string(s)}};
    shard->ops = reg.GetCounter("serving_shard_ops_total", labels);
    shard->errors = reg.GetCounter("serving_shard_errors_total", labels);
    shard->infs = reg.GetCounter("serving_shard_infs_total", labels);
    shard->busy_s = reg.GetGauge("serving_shard_busy_seconds", labels);
    router->shards_.push_back(std::move(shard));
  }
  router->generation_ = 1;
  return router;
}

int ShardRouter::AcquireShard() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    int best = -1;
    for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
      Shard& shard = *shards_[static_cast<size_t>(s)];
      if (shard.draining) continue;
      if (best < 0 ||
          shard.outstanding < shards_[static_cast<size_t>(best)]->outstanding) {
        best = s;
      }
    }
    if (best >= 0) {
      ++shards_[static_cast<size_t>(best)]->outstanding;
      return best;
    }
    // Every shard draining: only reachable with a single shard mid-reload
    // (reloads drain one shard at a time). Wait it out rather than fail —
    // the reload is bounded by a dataset load.
    shard_state_.wait(lock);
  }
}

core::CellResult ShardRouter::RunOnShard(int s, core::QueryId query,
                                         core::DatasetSize size,
                                         const core::DriverOptions& options,
                                         ExecContext* ctx,
                                         uint64_t* data_epoch) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  // Stable for the whole run: the shard was acquired non-draining, and
  // ReloadShards waits for outstanding == 0 before swapping its dataset.
  // The engine's own epoch counter is the runtime tripwire for that
  // invariant — it moves on *any* load/unload, so if it changes across
  // this run the dataset was swapped under the op and the result must not
  // be cached under any generation.
  const uint64_t engine_epoch_before = shard.engine->dataset_epoch();
  if (data_epoch != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    *data_epoch = shard.generation;
  }
  const core::CellResult cell =
      core::RunCellWithContext(shard.engine.get(), query, size, options, ctx);
  if (data_epoch != nullptr &&
      shard.engine->dataset_epoch() != engine_epoch_before) {
    *data_epoch = ~uint64_t{0};  // Poisoned: matches no cache-key epoch.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --shard.outstanding;
    shard.ops->Inc();
    shard.busy_s->Add(cell.total_s);
    if (cell.infinite) {
      shard.infs->Inc();
    } else if (!cell.supported || !cell.status.ok()) {
      shard.errors->Inc();
    }
  }
  // A drainer may be waiting for this shard to go idle.
  shard_state_.notify_all();
  return cell;
}

genbase::Status ShardRouter::ReloadShards(const core::GenBaseData& data) {
  // The generation the roll is moving the fleet to. generation_ only
  // advances when the whole roll succeeds, so a retry after a mid-roll
  // failure targets the same generation again — already-reloaded shards
  // simply re-ingest and the fleet converges instead of drifting.
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = generation_ + 1;
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      shard.draining = true;
      shard_state_.wait(lock, [&shard] { return shard.outstanding == 0; });
    }
    // Load outside the router lock: sibling shards keep serving while this
    // one ingests. No op can land here — AcquireShard skips draining shards.
    const genbase::Status status = shard.engine->LoadDataset(data);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (status.ok()) shard.generation = target;
      shard.draining = false;
    }
    shard_state_.notify_all();
    // A failed load stops the roll: this shard answers errors until a later
    // successful reload, and the caller must know rather than discover a
    // half-reloaded fleet through mismatched results.
    GENBASE_RETURN_NOT_OK(status);
  }
  std::lock_guard<std::mutex> lock(mu_);
  generation_ = target;
  return genbase::Status::OK();
}

uint64_t ShardRouter::dataset_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min_generation = shards_[0]->generation;
  for (const auto& shard : shards_) {
    min_generation = std::min(min_generation, shard->generation);
  }
  return min_generation;
}

std::vector<ShardStats> ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.ops = shard->ops->Value();
    s.errors = shard->errors->Value();
    s.infs = shard->infs->Value();
    s.busy_s = shard->busy_s->Value();
    out.push_back(s);
  }
  return out;
}

}  // namespace genbase::serving
