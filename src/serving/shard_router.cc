#include "serving/shard_router.h"

#include <algorithm>
#include <utility>

namespace genbase::serving {

genbase::Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    int shards, const EngineFactory& factory, const core::GenBaseData& data) {
  if (shards < 1) {
    return genbase::Status::InvalidArgument(
        "shard router: shard count must be >= 1");
  }
  // lint:allow(raw-new-delete): make_unique cannot reach the private ctor; owned immediately
  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->shards_.reserve(static_cast<size_t>(shards));
  auto& reg = obs::MetricsRegistry::Global();
  const std::string instance = obs::MetricsRegistry::NextInstanceId("router");
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = factory();
    if (shard->engine == nullptr) {
      return genbase::Status::InvalidArgument(
          "shard router: engine factory returned null");
    }
    GENBASE_RETURN_NOT_OK(shard->engine->LoadDataset(data));
    shard->generation = 1;
    const obs::Labels labels{{"instance", instance},
                             {"shard", std::to_string(s)}};
    shard->ops = reg.GetCounter("serving_shard_ops_total", labels);
    shard->errors = reg.GetCounter("serving_shard_errors_total", labels);
    shard->infs = reg.GetCounter("serving_shard_infs_total", labels);
    shard->busy_s = reg.GetGauge("serving_shard_busy_seconds", labels);
    shard->breaker_opens =
        reg.GetCounter("serving_shard_breaker_opens_total", labels);
    shard->health_gauge = reg.GetGauge("serving_shard_health", labels);
    router->shards_.push_back(std::move(shard));
  }
  router->generation_ = 1;
  return router;
}

ShardHealth ShardRouter::EffectiveHealthLocked(int s) const {
  const ShardHealth organic = shards_[static_cast<size_t>(s)]->health;
  if (faults_ != nullptr && faults_->enabled()) {
    if (faults_->ShardCrashed(s)) return ShardHealth::kDown;
    // A shard inside an injected latency-spike window is the slow-shard
    // brown-out: still correct, so never down, but degraded for routing and
    // for the capacity fraction the admission brown-out keys off.
    if (organic == ShardHealth::kHealthy &&
        faults_->ShardLatencySeconds(s) > 0.0) {
      return ShardHealth::kDegraded;
    }
  }
  return organic;
}

void ShardRouter::RecomputeCapacityLocked() {
  double weight = 0.0;
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    const ShardHealth health = EffectiveHealthLocked(s);
    shards_[static_cast<size_t>(s)]->health_gauge->Set(
        static_cast<double>(static_cast<int>(health)));
    if (health == ShardHealth::kHealthy) {
      weight += 1.0;
    } else if (health == ShardHealth::kDegraded) {
      weight += 0.5;
    }
  }
  capacity_fraction_.store(weight / static_cast<double>(shards_.size()),
                           std::memory_order_relaxed);
}

int ShardRouter::AcquireShard(int exclude) {
  std::unique_lock<std::mutex> lock(mu_);
  ++acquire_seq_;
  for (;;) {
    // Half-open transition: a breaker past its cooldown lets traffic probe
    // the shard again at degraded priority.
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      if (shard.health == ShardHealth::kDown && !shard.reload_failed &&
          shard.breaker_open_until != 0 &&
          acquire_seq_ >= shard.breaker_open_until) {
        shard.health = ShardHealth::kDegraded;
        shard.breaker_open_until = 0;
      }
    }
    RecomputeCapacityLocked();
    // Selection: failure-aware JSQ over serving shards first (degraded
    // shards compete with a doubled-queue penalty so they get a trickle,
    // not their share), then — only if every shard is down — plain JSQ over
    // the down ones so the op fails fast in RunOnShard instead of hanging.
    const auto select = [&](bool honor_exclude) {
      int best = -1;
      int64_t best_key = 0;
      int fallback = -1;
      for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
        Shard& shard = *shards_[static_cast<size_t>(s)];
        if (shard.draining) continue;
        if (honor_exclude && s == exclude) continue;
        const ShardHealth health = EffectiveHealthLocked(s);
        if (health == ShardHealth::kDown) {
          if (fallback < 0 ||
              shard.outstanding <
                  shards_[static_cast<size_t>(fallback)]->outstanding) {
            fallback = s;
          }
          continue;
        }
        const int64_t key =
            health == ShardHealth::kDegraded
                ? 2 * static_cast<int64_t>(shard.outstanding) + 1
                : static_cast<int64_t>(shard.outstanding);
        if (best < 0 || key < best_key) {
          best = s;
          best_key = key;
        }
      }
      return best >= 0 ? best : fallback;
    };
    int chosen = select(/*honor_exclude=*/exclude >= 0);
    if (chosen < 0 && exclude >= 0) chosen = select(/*honor_exclude=*/false);
    if (chosen >= 0) {
      ++shards_[static_cast<size_t>(chosen)]->outstanding;
      return chosen;
    }
    // Every shard draining: only reachable with a single shard mid-reload
    // (reloads drain one shard at a time). Wait it out rather than fail —
    // the reload is bounded by a dataset load.
    shard_state_.wait(lock);
  }
}

void ShardRouter::NoteResultLocked(int s, bool error) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  if (error) {
    if (++shard.consecutive_errors >= kBreakerErrorThreshold &&
        shard.health != ShardHealth::kDown) {
      shard.health = ShardHealth::kDown;
      shard.breaker_open_until = acquire_seq_ + kBreakerCooldownOps;
      shard.breaker_opens->Inc();
    }
    return;
  }
  shard.consecutive_errors = 0;
  // A success on a degraded (half-open) or breaker-down shard closes the
  // breaker. Reload-failed shards only heal through a successful reload.
  if (!shard.reload_failed && shard.health != ShardHealth::kHealthy) {
    shard.health = ShardHealth::kHealthy;
    shard.breaker_open_until = 0;
  }
}

core::CellResult ShardRouter::RunOnShard(int s, core::QueryId query,
                                         core::DatasetSize size,
                                         const core::DriverOptions& options,
                                         ExecContext* ctx,
                                         uint64_t* data_epoch,
                                         uint64_t fault_op, int attempt) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  // Fail fast without touching the engine when the shard cannot serve: a
  // crashed shard (injected) models a dead process, a reload-failed shard
  // holds data we cannot trust. The Internal status is retryable, so the
  // stack's retry layer moves the op to a replica.
  genbase::Status injected = genbase::Status::OK();
  if (faults_ != nullptr && faults_->enabled()) {
    if (faults_->ShardCrashed(s)) {
      injected = genbase::Status::Internal("shard " + std::to_string(s) +
                                           " down (injected crash)");
    } else if (faults_->DrawTransientError(s, fault_op, attempt)) {
      injected = genbase::Status::Internal("injected transient error on shard " +
                                           std::to_string(s));
    }
  }
  if (injected.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (shard.reload_failed) {
      injected = genbase::Status::Internal("shard " + std::to_string(s) +
                                           " down (failed reload)");
    }
  }
  if (!injected.ok()) {
    core::CellResult cell;
    cell.engine = shard.engine->name();
    cell.query = query;
    cell.size = size;
    cell.status = std::move(injected);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (data_epoch != nullptr) *data_epoch = shard.generation;
      --shard.outstanding;
      shard.ops->Inc();
      shard.errors->Inc();
      NoteResultLocked(s, /*error=*/true);
      RecomputeCapacityLocked();
    }
    shard_state_.notify_all();
    return cell;
  }
  // Stable for the whole run: the shard was acquired non-draining, and
  // ReloadShards waits for outstanding == 0 before swapping its dataset.
  // The engine's own epoch counter is the runtime tripwire for that
  // invariant — it moves on *any* load/unload, so if it changes across
  // this run the dataset was swapped under the op and the result must not
  // be cached under any generation.
  const uint64_t engine_epoch_before = shard.engine->dataset_epoch();
  if (data_epoch != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    *data_epoch = shard.generation;
  }
  const core::CellResult cell =
      core::RunCellWithContext(shard.engine.get(), query, size, options, ctx);
  if (data_epoch != nullptr &&
      shard.engine->dataset_epoch() != engine_epoch_before) {
    *data_epoch = ~uint64_t{0};  // Poisoned: matches no cache-key epoch.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --shard.outstanding;
    shard.ops->Inc();
    shard.busy_s->Add(cell.total_s);
    if (cell.infinite) {
      shard.infs->Inc();
      // Timeouts measure load, not shard damage — they feed neither the
      // error counter nor the breaker.
    } else if (!cell.supported || !cell.status.ok()) {
      shard.errors->Inc();
      NoteResultLocked(s, /*error=*/true);
    } else {
      NoteResultLocked(s, /*error=*/false);
    }
    RecomputeCapacityLocked();
  }
  // A drainer may be waiting for this shard to go idle.
  shard_state_.notify_all();
  return cell;
}

genbase::Status ShardRouter::ReloadShards(const core::GenBaseData& data) {
  // The generation the roll is moving the fleet to. generation_ only
  // advances when the whole roll succeeds, so a retry after a mid-roll
  // failure targets the same generation again — already-reloaded shards
  // simply re-ingest and the fleet converges instead of drifting.
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = generation_ + 1;
  }
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    Shard& shard = *shards_[static_cast<size_t>(s)];
    {
      std::unique_lock<std::mutex> lock(mu_);
      shard.draining = true;
      shard_state_.wait(lock, [&shard] { return shard.outstanding == 0; });
    }
    // Load outside the router lock: sibling shards keep serving while this
    // one ingests. No op can land here — AcquireShard skips draining shards.
    genbase::Status status = genbase::Status::OK();
    bool injected_failure = false;
    if (faults_ != nullptr && faults_->enabled()) {
      injected_failure = faults_->ConsumeReloadFailure(s);
    }
    if (injected_failure) {
      status = genbase::Status::Internal("injected reload failure on shard " +
                                         std::to_string(s));
    } else {
      status = shard.engine->LoadDataset(data);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (status.ok()) {
        shard.generation = target;
        // A successful load is the strongest health signal there is: it
        // clears a failed-reload quarantine and any breaker state.
        shard.reload_failed = false;
        shard.consecutive_errors = 0;
        shard.breaker_open_until = 0;
        shard.health = ShardHealth::kHealthy;
      } else {
        // The shard's data can no longer be trusted (the load may have
        // partially applied). Mark it down so routing moves its traffic to
        // the replicas; the next successful ReloadShards heals it.
        shard.reload_failed = true;
        shard.health = ShardHealth::kDown;
        shard.breaker_open_until = 0;
      }
      shard.draining = false;
      RecomputeCapacityLocked();
    }
    shard_state_.notify_all();
    // A failed load stops the roll: the failed shard is quarantined (down,
    // routed around) rather than left answering errors, and the caller must
    // know rather than discover a half-reloaded fleet through mismatched
    // results.
    GENBASE_RETURN_NOT_OK(status);
  }
  std::lock_guard<std::mutex> lock(mu_);
  generation_ = target;
  return genbase::Status::OK();
}

uint64_t ShardRouter::dataset_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  bool have_serving = false;
  uint64_t min_serving = 0;
  uint64_t min_all = shards_[0]->generation;
  for (const auto& shard : shards_) {
    min_all = std::min(min_all, shard->generation);
    if (shard->reload_failed) continue;
    min_serving = have_serving ? std::min(min_serving, shard->generation)
                               : shard->generation;
    have_serving = true;
  }
  return have_serving ? min_serving : min_all;
}

std::vector<ShardStats> ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    const Shard& shard = *shards_[static_cast<size_t>(s)];
    ShardStats stats;
    stats.ops = shard.ops->Value();
    stats.errors = shard.errors->Value();
    stats.infs = shard.infs->Value();
    stats.busy_s = shard.busy_s->Value();
    stats.breaker_opens = shard.breaker_opens->Value();
    stats.health = EffectiveHealthLocked(s);
    out.push_back(stats);
  }
  return out;
}

}  // namespace genbase::serving
