#include "serving/shard_router.h"

#include <utility>

namespace genbase::serving {

genbase::Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    int shards, const EngineFactory& factory, const core::GenBaseData& data) {
  if (shards < 1) {
    return genbase::Status::InvalidArgument(
        "shard router: shard count must be >= 1");
  }
  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->shards_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = factory();
    if (shard->engine == nullptr) {
      return genbase::Status::InvalidArgument(
          "shard router: engine factory returned null");
    }
    GENBASE_RETURN_NOT_OK(shard->engine->LoadDataset(data));
    router->shards_.push_back(std::move(shard));
  }
  return router;
}

int ShardRouter::AcquireShard() {
  std::lock_guard<std::mutex> lock(mu_);
  int best = 0;
  for (int s = 1; s < static_cast<int>(shards_.size()); ++s) {
    if (shards_[static_cast<size_t>(s)]->outstanding <
        shards_[static_cast<size_t>(best)]->outstanding) {
      best = s;
    }
  }
  ++shards_[static_cast<size_t>(best)]->outstanding;
  return best;
}

core::CellResult ShardRouter::RunOnShard(int s, core::QueryId query,
                                         core::DatasetSize size,
                                         const core::DriverOptions& options,
                                         ExecContext* ctx) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  const core::CellResult cell =
      core::RunCellWithContext(shard.engine.get(), query, size, options, ctx);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --shard.outstanding;
    shard.stats.ops += 1;
    shard.stats.busy_s += cell.total_s;
    shard.stats.infs += cell.infinite ? 1 : 0;
    shard.stats.errors +=
        (!cell.infinite && (!cell.supported || !cell.status.ok())) ? 1 : 0;
  }
  return cell;
}

std::vector<ShardStats> ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats);
  return out;
}

}  // namespace genbase::serving
