#include "serving/counters.h"

#include <cstddef>
#include <initializer_list>

namespace genbase::serving {

namespace {

/// Subtracts `since` from `now` for each listed cumulative member. One list
/// per struct, each field named exactly once — the per-field arithmetic that
/// used to be copy-pasted (and was easy to leave a field out of) now cannot
/// drift from the member lists below.
template <typename T>
void SubtractEach(T* now, const T& since,
                  std::initializer_list<int64_t T::*> members) {
  for (auto member : members) now->*member -= since.*member;
}

}  // namespace

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kDown:
      return "down";
    default:
      return "unknown";
  }
}

ServingCounters CountersDelta(const ServingCounters& now,
                              const ServingCounters& since) {
  ServingCounters d = now;
  SubtractEach(&d.cache, since.cache,
               {&CacheStats::hits, &CacheStats::misses,
                &CacheStats::insertions, &CacheStats::evictions,
                &CacheStats::invalidated, &CacheStats::rejected_oversize});
  SubtractEach(&d.admission, since.admission,
               {&AdmissionStats::admitted, &AdmissionStats::shed_queue_full,
                &AdmissionStats::shed_timeout,
                &AdmissionStats::shed_brownout});
  for (const auto& [class_id, shed] : since.admission.shed_by_class) {
    d.admission.shed_by_class[class_id] -= shed;
  }
  SubtractEach(&d.flight, since.flight,
               {&SingleFlightStats::leaders, &SingleFlightStats::coalesced,
                &SingleFlightStats::coalesced_served,
                &SingleFlightStats::follower_fallbacks,
                &SingleFlightStats::shed_wait_timeout});
  d.stale_hits -= since.stale_hits;
  d.reloads -= since.reloads;
  SubtractEach(&d.retry, since.retry,
               {&RetryStats::retries, &RetryStats::retry_successes,
                &RetryStats::retry_deadline_giveups, &RetryStats::hedges,
                &RetryStats::hedge_wins});
  SubtractEach(&d.faults, since.faults,
               {&FaultStats::crashes, &FaultStats::recoveries,
                &FaultStats::latency_spikes, &FaultStats::transient_errors,
                &FaultStats::reload_failures});
  for (size_t s = 0; s < d.shards.size() && s < since.shards.size(); ++s) {
    SubtractEach(&d.shards[s], since.shards[s],
                 {&ShardStats::ops, &ShardStats::errors, &ShardStats::infs,
                  &ShardStats::breaker_opens});
    d.shards[s].busy_s -= since.shards[s].busy_s;
    // health is a gauge: keep the `now` value.
  }
  return d;
}

}  // namespace genbase::serving
