#include "serving/admission.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"

namespace genbase::serving {

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kShedQueueFull:
      return "shed/queue-full";
    case AdmissionOutcome::kShedTimeout:
      return "shed/timeout";
  }
  return "?";
}

int AdaptiveNextLimit(const AdmissionOptions& options, int current_limit,
                      double mean_service_s, double queue_len_ewma,
                      int64_t shed_pressure) {
  const int lo = std::max(1, options.min_inflight);
  const int hi = std::max(lo, options.max_inflight_cap);
  if (mean_service_s <= 0) return std::clamp(current_limit, lo, hi);
  // Little's law target: enough slots that the observed backlog drains
  // within the target delay.
  const double needed = queue_len_ewma * mean_service_s /
                        std::max(options.target_queue_delay_s, 1e-9);
  const int wanted = static_cast<int>(std::ceil(needed));
  // Move at most a quarter of the current limit per step: the inputs are
  // EWMAs of a bursty process, and chasing them at full stride oscillates.
  const int step = std::max(1, current_limit / 4);
  int next = current_limit;
  if (wanted > current_limit) {
    next = current_limit + std::min(step, wanted - current_limit);
  } else if (wanted < current_limit) {
    next = current_limit - std::min(step, current_limit - wanted);
  }
  // Arrivals shed queue-full mean demand beyond what the limit-scaled
  // queue can even show the delay term: do not shrink into known
  // shedding, probe up instead.
  if (shed_pressure > 0) next = std::max(next, current_limit + 1);
  return std::clamp(next, lo, hi);
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      instance_(obs::MetricsRegistry::NextInstanceId("admission")),
      // Adaptive mode starts low and probes up: under-admitting briefly at
      // startup only queues work, while over-admitting puts every service
      // time past target before the first adjustment can react.
      limit_(options.adaptive ? std::max(1, options.min_inflight)
                              : options.max_inflight) {
  auto& reg = obs::MetricsRegistry::Global();
  const obs::Labels labels{{"instance", instance_}};
  admitted_ = reg.GetCounter("serving_admission_admitted_total", labels);
  shed_queue_full_ =
      reg.GetCounter("serving_admission_shed_queue_full_total", labels);
  shed_timeout_ =
      reg.GetCounter("serving_admission_shed_timeout_total", labels);
  shed_brownout_ =
      reg.GetCounter("serving_admission_shed_brownout_total", labels);
  peak_queue_gauge_ = reg.GetGauge("serving_admission_peak_queue", labels);
  limit_gauge_ = reg.GetGauge("serving_admission_limit", labels);
  limit_gauge_->Set(limit_);
}

obs::Counter* AdmissionController::ShedCounterLocked(int class_id) {
  auto it = shed_by_class_.find(class_id);
  if (it == shed_by_class_.end()) {
    it = shed_by_class_
             .emplace(class_id,
                      obs::MetricsRegistry::Global().GetCounter(
                          "serving_admission_shed_total",
                          {{"instance", instance_},
                           {"class", std::to_string(class_id)}}))
             .first;
  }
  return it->second;
}

bool AdmissionController::IsHeavyLocked(int class_id) const {
  if (!options_.adaptive) return false;
  // The classification is the *streak*, not the instantaneous ratio: a
  // class acts heavy only after `heavy_streak` consecutive completions
  // above the threshold (hysteresis — see AdmissionOptions). The streak is
  // maintained in Release, where the EWMAs update.
  auto it = classes_.find(class_id);
  return it != classes_.end() &&
         it->second.heavy_streak >= std::max(1, options_.heavy_streak);
}

bool AdmissionController::SampleRatioHeavyLocked(int class_id,
                                                 double sample_s) const {
  // Judges one fresh (winsorized) sample against the cheapest peer's EWMA.
  // The streak deliberately consumes samples, not the class's own EWMA: an
  // EWMA inflated by a stall burst stays above the threshold for several
  // completions while it decays, which would feed the streak exactly the
  // consecutive hits the hysteresis exists to demand. A normal-speed
  // sample resets the streak instantly; only genuinely sustained slowness
  // keeps it growing.
  //
  // The ratio needs evidence: the class itself and a cheapest peer must
  // both have settled EWMAs, otherwise everything is (optimistically)
  // cheap and the first runs teach the model.
  constexpr int64_t kMinCompletions = 3;
  auto it = classes_.find(class_id);
  if (it == classes_.end() || it->second.completions < kMinCompletions) {
    return false;
  }
  double min_ewma = 0.0;
  bool have_min = false;
  for (const auto& [id, stat] : classes_) {
    if (id == class_id || stat.completions < kMinCompletions) continue;
    if (!have_min || stat.service_ewma_s < min_ewma) {
      min_ewma = stat.service_ewma_s;
      have_min = true;
    }
  }
  return have_min && min_ewma > 0 &&
         sample_s > options_.heavy_service_factor * min_ewma;
}

int AdmissionController::HeavyCapLocked() const {
  const double factor = capacity_factor_.load(std::memory_order_relaxed);
  const int cap = static_cast<int>(limit_ * options_.heavy_share *
                                   std::clamp(factor, 0.0, 1.0));
  // Above the brown-out threshold heavy classes always keep one slot (mild
  // degradation shrinks the cap proportionally at most); in a brown-out
  // the cap may shrink to zero — heavy arrivals are then shed on arrival
  // (see Admit) so cheap traffic inherits the surviving capacity.
  return factor >= options_.brownout_shed_factor ? std::max(1, cap)
                                                 : std::max(0, cap);
}

int AdmissionController::MaxQueueLocked() const {
  if (options_.max_queue > 0) return options_.max_queue;
  return options_.adaptive ? 2 * limit_ : 0;
}

bool AdmissionController::CanStartLocked(bool heavy) const {
  if (inflight_ >= limit_) return false;
  return !heavy || heavy_inflight_ < HeavyCapLocked();
}

AdmissionOutcome AdmissionController::Admit(
    std::optional<std::chrono::steady_clock::time_point> start_deadline,
    double* waited_s, int class_id, bool* admitted_heavy) {
  if (waited_s != nullptr) *waited_s = 0.0;
  if (admitted_heavy != nullptr) *admitted_heavy = false;
  if (!enabled()) return AdmissionOutcome::kAdmitted;

  const auto expired = [&start_deadline] {
    return start_deadline.has_value() &&
           std::chrono::steady_clock::now() >= *start_deadline;
  };

  WallTimer timer;
  std::unique_lock<std::mutex> lock(mu_);
  // Backlog sample for the target-delay controller: the queue depth this
  // arrival finds ahead of it.
  queue_ewma_ += options_.ewma_alpha * (waiting_ - queue_ewma_);
  // A stale arrival is shed outright — free slot or not. The deadline
  // models the instant the op's client gave up; executing past it would be
  // wasted work counted as goodput.
  if (expired()) {
    shed_timeout_->Inc();
    ShedCounterLocked(class_id)->Inc();
    return AdmissionOutcome::kShedTimeout;
  }
  // Heaviness is decided on arrival and kept for this op's whole admission
  // (slot accounting must be symmetric with Release even if the class is
  // reclassified mid-wait).
  const bool heavy = IsHeavyLocked(class_id);
  if (!CanStartLocked(heavy)) {
    // Brown-out: with the fleet meaningfully degraded (factor below the
    // engagement threshold — the same bar that may zero the heavy cap), a
    // heavy arrival that cannot start is shed immediately rather than
    // queued — queueing it would make it compete with cheap ops for the
    // shrunken capacity, which is exactly the priority inversion graceful
    // degradation exists to prevent. Milder degradation keeps the normal
    // queueing path: the cap shrinks proportionally, nothing cliffs.
    if (heavy && capacity_factor_.load(std::memory_order_relaxed) <
                     options_.brownout_shed_factor) {
      shed_queue_full_->Inc();
      shed_brownout_->Inc();
      ShedCounterLocked(class_id)->Inc();
      ++sheds_since_adjust_;
      return AdmissionOutcome::kShedQueueFull;
    }
    if (waiting_ >= MaxQueueLocked()) {
      shed_queue_full_->Inc();
      ShedCounterLocked(class_id)->Inc();
      ++sheds_since_adjust_;
      return AdmissionOutcome::kShedQueueFull;
    }
    ++waiting_;
    peak_queue_gauge_->SetMax(waiting_);
    while (!CanStartLocked(heavy) && !expired()) {
      if (start_deadline.has_value()) {
        slot_free_.wait_until(lock, *start_deadline);
      } else {
        slot_free_.wait(lock);
      }
    }
    --waiting_;
    if (waited_s != nullptr) *waited_s = timer.Seconds();
    // Shed if the start deadline passed in queue — even when a slot freed
    // in the same instant, the client is already gone.
    if (!CanStartLocked(heavy) || expired()) {
      shed_timeout_->Inc();
      ShedCounterLocked(class_id)->Inc();
      // If this waiter consumed a Release() wakeup and then shed on its own
      // deadline, capacity may still be free — pass the wakeup along so
      // another waiter is not left sleeping next to idle capacity.
      const bool capacity_free = inflight_ < limit_;
      lock.unlock();
      if (capacity_free) slot_free_.notify_all();
      return AdmissionOutcome::kShedTimeout;
    }
  }
  ++inflight_;
  if (heavy) ++heavy_inflight_;
  if (admitted_heavy != nullptr) *admitted_heavy = heavy;
  admitted_->Inc();
  return AdmissionOutcome::kAdmitted;
}

void AdmissionController::Release(int class_id, double service_s,
                                  bool was_heavy) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    if (was_heavy) --heavy_inflight_;
    if (service_s >= 0) {
      // Winsorized updates: a sample contributes at most
      // service_outlier_cap x the current estimate, so one scheduler-stall
      // outlier cannot reclassify a class or collapse the adaptive limit;
      // sustained slowness still compounds through the cap.
      const double cap = options_.service_outlier_cap;
      ClassStat& stat = classes_[class_id];
      double sample = service_s;
      if (cap > 1.0 && stat.completions > 0 && stat.service_ewma_s > 0) {
        sample = std::min(sample, cap * stat.service_ewma_s);
      }
      stat.service_ewma_s = stat.completions == 0
                                ? sample
                                : stat.service_ewma_s +
                                      options_.ewma_alpha *
                                          (sample - stat.service_ewma_s);
      ++stat.completions;
      double global_sample = service_s;
      if (cap > 1.0 && service_samples_ > 0 && service_ewma_s_ > 0) {
        global_sample = std::min(global_sample, cap * service_ewma_s_);
      }
      service_ewma_s_ = service_samples_ == 0
                            ? global_sample
                            : service_ewma_s_ +
                                  options_.ewma_alpha *
                                      (global_sample - service_ewma_s_);
      ++service_samples_;
      // Hysteresis input: consecutive above-threshold samples.
      stat.heavy_streak =
          SampleRatioHeavyLocked(class_id, sample) ? stat.heavy_streak + 1
                                                   : 0;
    }
    if (options_.adaptive &&
        ++completions_since_adjust_ >= std::max(1, options_.adjust_interval)) {
      completions_since_adjust_ = 0;
      limit_ = AdaptiveNextLimit(options_, limit_, service_ewma_s_,
                                 queue_ewma_, sheds_since_adjust_);
      sheds_since_adjust_ = 0;
      limit_gauge_->Set(limit_);
    }
  }
  // notify_all, not notify_one: with per-class slot shares, the runnable
  // waiter is not necessarily the one a single wakeup lands on (a heavy
  // waiter may still be capped while a cheap one could start).
  slot_free_.notify_all();
}

void AdmissionController::SetCapacityFactor(double factor) {
  factor = std::clamp(factor, 0.0, 1.0);
  const double prev = capacity_factor_.exchange(factor,
                                                std::memory_order_relaxed);
  // Recovering capacity can unblock heavy waiters whose cap just grew back.
  if (factor > prev) slot_free_.notify_all();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.admitted = admitted_->Value();
  s.shed_queue_full = shed_queue_full_->Value();
  s.shed_timeout = shed_timeout_->Value();
  s.shed_brownout = shed_brownout_->Value();
  s.peak_queue = static_cast<int64_t>(peak_queue_gauge_->Value());
  s.current_limit = limit_;
  for (const auto& [class_id, counter] : shed_by_class_) {
    s.shed_by_class[class_id] = counter->Value();
  }
  return s;
}

int AdmissionController::current_limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_;
}

bool AdmissionController::IsHeavyClass(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return IsHeavyLocked(class_id);
}

double AdmissionController::ClassServiceEwma(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(class_id);
  return it == classes_.end() ? 0.0 : it->second.service_ewma_s;
}

}  // namespace genbase::serving
