#include "serving/admission.h"

#include <algorithm>

#include "common/timer.h"

namespace genbase::serving {

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kShedQueueFull:
      return "shed/queue-full";
    case AdmissionOutcome::kShedTimeout:
      return "shed/timeout";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

AdmissionOutcome AdmissionController::Admit(
    std::optional<std::chrono::steady_clock::time_point> start_deadline,
    double* waited_s) {
  if (waited_s != nullptr) *waited_s = 0.0;
  if (!enabled()) return AdmissionOutcome::kAdmitted;

  const auto expired = [&start_deadline] {
    return start_deadline.has_value() &&
           std::chrono::steady_clock::now() >= *start_deadline;
  };

  WallTimer timer;
  std::unique_lock<std::mutex> lock(mu_);
  // A stale arrival is shed outright — free slot or not. The deadline
  // models the instant the op's client gave up; executing past it would be
  // wasted work counted as goodput.
  if (expired()) {
    ++counters_.shed_timeout;
    return AdmissionOutcome::kShedTimeout;
  }
  if (inflight_ >= options_.max_inflight) {
    if (waiting_ >= options_.max_queue) {
      ++counters_.shed_queue_full;
      return AdmissionOutcome::kShedQueueFull;
    }
    ++waiting_;
    counters_.peak_queue = std::max<int64_t>(counters_.peak_queue, waiting_);
    while (inflight_ >= options_.max_inflight && !expired()) {
      if (start_deadline.has_value()) {
        slot_free_.wait_until(lock, *start_deadline);
      } else {
        slot_free_.wait(lock);
      }
    }
    --waiting_;
    if (waited_s != nullptr) *waited_s = timer.Seconds();
    // Shed if the start deadline passed in queue — even when a slot freed
    // in the same instant, the client is already gone.
    if (inflight_ >= options_.max_inflight || expired()) {
      ++counters_.shed_timeout;
      // If this waiter consumed a Release() wakeup and then shed on its own
      // deadline, the slot is still free — pass the wakeup along so another
      // waiter is not left sleeping next to idle capacity.
      const bool slot_free = inflight_ < options_.max_inflight;
      lock.unlock();
      if (slot_free) slot_free_.notify_one();
      return AdmissionOutcome::kShedTimeout;
    }
  }
  ++inflight_;
  ++counters_.admitted;
  return AdmissionOutcome::kAdmitted;
}

void AdmissionController::Release() {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  slot_free_.notify_one();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace genbase::serving
