#ifndef GENBASE_SERVING_ADMISSION_H_
#define GENBASE_SERVING_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>

#include "serving/counters.h"

namespace genbase::serving {

/// \brief Bounded-queue admission policy. Defaults leave admission disabled
/// (everything admitted instantly), so a stack can be configured as a pure
/// cache/router.
struct AdmissionOptions {
  /// Operations allowed to execute concurrently. <= 0 disables admission
  /// control entirely.
  int max_inflight = 0;
  /// Operations allowed to wait for an execution slot. An arrival finding
  /// the queue full is shed immediately (load shedding, not queueing).
  int max_queue = 0;
  /// Deadline-based shedding: an operation that cannot *start* executing
  /// within this many seconds of its scheduled arrival is shed, because by
  /// then its client has given up. <= 0 means wait indefinitely.
  double max_queue_delay_s = 0.0;
};

enum class AdmissionOutcome {
  kAdmitted,
  kShedQueueFull,  ///< Rejected on arrival: queue at capacity.
  kShedTimeout,    ///< Gave up waiting: start deadline passed in queue.
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

/// \brief Bounded admission queue in front of the shard engines: at most
/// `max_inflight` operations execute at once, at most `max_queue` wait, and
/// waiters give up at their start deadline. Shedding on arrival (queue full)
/// and in queue (deadline) are counted separately so a report can say *why*
/// goodput fell short of offered load.
///
/// Mutex + condvar rather than atomics: admissions happen at operation
/// granularity (milliseconds+), never in a hot loop.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Blocks until an execution slot is granted, the queue rejects the
  /// arrival, or `start_deadline` passes. `waited_s` (optional) receives the
  /// time spent queued. Callers must Release() after kAdmitted only.
  AdmissionOutcome Admit(
      std::optional<std::chrono::steady_clock::time_point> start_deadline,
      double* waited_s = nullptr);

  /// Returns an execution slot and wakes one waiter.
  void Release();

  bool enabled() const { return options_.max_inflight > 0; }
  const AdmissionOptions& options() const { return options_; }
  AdmissionStats stats() const;

 private:
  const AdmissionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  int inflight_ = 0;
  int waiting_ = 0;
  AdmissionStats counters_;
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_ADMISSION_H_
