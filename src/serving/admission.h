#ifndef GENBASE_SERVING_ADMISSION_H_
#define GENBASE_SERVING_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "serving/counters.h"

namespace genbase::serving {

/// \brief Admission policy. Defaults leave admission disabled (everything
/// admitted instantly), so a stack can be configured as a pure cache/router.
///
/// Two modes:
///  * Static: `max_inflight` > 0 fixes the concurrency limit.
///  * Adaptive (`adaptive` = true): the limit is derived at runtime from
///    observed service times by a target-delay controller — it tracks the
///    slot count at which the measured backlog drains within
///    `target_queue_delay_s` (see AdaptiveNextLimit) — and per-query-class
///    service-time EWMAs classify operations as cheap or heavy. Heavy classes (observed mean
///    service > `heavy_service_factor` x the cheapest class) may hold at
///    most `heavy_share` of the execution slots, so a burst of biclustering
///    runs can saturate its share while cheap lookups still find a slot
///    instead of being shed behind it.
struct AdmissionOptions {
  /// Static mode: operations allowed to execute concurrently. <= 0 disables
  /// admission control unless `adaptive` is set.
  int max_inflight = 0;
  /// Operations allowed to wait for an execution slot. An arrival finding
  /// the queue full is shed immediately (load shedding, not queueing). In
  /// adaptive mode, <= 0 means "2x the current limit" so queue depth scales
  /// with the controller instead of needing its own tuning.
  int max_queue = 0;
  /// Deadline-based shedding: an operation that cannot *start* executing
  /// within this many seconds of its scheduled arrival is shed, because by
  /// then its client has given up. <= 0 means wait indefinitely.
  double max_queue_delay_s = 0.0;

  /// --- adaptive target-delay controller ----------------------------------
  bool adaptive = false;
  /// Expected slot-wait the controller steers toward: the limit tracks
  /// ceil(observed backlog x observed mean service / this target), so
  /// concurrency is derived from measured service times instead of being
  /// hand-tuned per engine.
  double target_queue_delay_s = 0.05;
  int min_inflight = 1;
  int max_inflight_cap = 64;
  /// Completed operations between limit adjustments.
  int adjust_interval = 16;
  /// A class is heavy when its service EWMA exceeds this factor times the
  /// cheapest observed class's EWMA.
  double heavy_service_factor = 4.0;
  /// Share of the current limit heavy-class ops may occupy (floor 1 slot).
  double heavy_share = 0.5;
  /// EWMA smoothing for service times and queue waits.
  double ewma_alpha = 0.2;
  /// Winsorized service-EWMA update: one completion may contribute a
  /// sample of at most this factor x the current estimate. A scheduler
  /// stall on an oversubscribed host yields a wall-clock service sample
  /// tens of times the true mean; unclamped, a single such outlier moves
  /// a cheap class's EWMA across the heavy_service_factor threshold
  /// (alpha 0.2 against a 4x bar) and a brown-out then sheds traffic that
  /// was never heavy. Persistent slowness still crosses the cap in a few
  /// completions (the estimate compounds by up to this factor each
  /// update). <= 1 disables the clamp.
  double service_outlier_cap = 4.0;
  /// Brown-out engagement threshold: graceful degradation turns on only
  /// when the published capacity factor (see SetCapacityFactor) drops
  /// below this fraction — the heavy-class slot cap then loses its
  /// one-slot floor and heavy arrivals that cannot start immediately are
  /// shed instead of queued. Mild degradation above the threshold (one
  /// slow shard in a large fleet, 31.5/32 = 0.984) only shrinks the cap
  /// proportionally; heavy traffic still queues normally, so there is no
  /// shed-on-arrival cliff the moment the factor dips under 1.0. The
  /// default engages once the fleet has lost >= 10% serving capacity.
  double brownout_shed_factor = 0.9;
  /// Classification hysteresis: a class is treated as heavy only after
  /// this many consecutive *samples* observed above the
  /// heavy_service_factor threshold. The streak judges fresh samples,
  /// not the class EWMA: an EWMA inflated by one stall burst stays above
  /// the threshold for several completions while it decays, which would
  /// hand the streak exactly the consecutive hits hysteresis exists to
  /// demand. With samples, the first normal-speed completion resets the
  /// streak; a genuinely heavy class accumulates it within its first few
  /// completions.
  int heavy_streak = 3;
};

enum class AdmissionOutcome {
  kAdmitted,
  kShedQueueFull,  ///< Rejected on arrival: queue at capacity.
  kShedTimeout,    ///< Gave up waiting: start deadline passed in queue.
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

/// Pure adjustment step of the adaptive controller, exposed so its
/// convergence can be tested without timing. Little's law: a backlog of
/// `queue_len_ewma` ops with mean service `mean_service_s` drains through c
/// slots in ~queue * service / c seconds, so the limit that holds the
/// expected slot-wait at the target is ceil(queue * service / target). The
/// step moves at most a quarter of the current limit toward that point
/// (smoothing against EWMA noise) and clamps to [min_inflight,
/// max_inflight_cap].
///
/// `shed_pressure` — queue-full sheds observed since the last adjustment —
/// is the demand signal the delay math cannot see: the adaptive queue
/// bound scales with the limit (2x), so the observable backlog is capped
/// at 2 * limit and, for services much faster than the target delay, the
/// Little's-law term alone would pin a small limit forever while arrivals
/// are shed. Shed pressure vetoes shrinking and probes the limit up by
/// one instead; when the delay term itself calls for growth, growth
/// proceeds as usual.
int AdaptiveNextLimit(const AdmissionOptions& options, int current_limit,
                      double mean_service_s, double queue_len_ewma,
                      int64_t shed_pressure = 0);

/// \brief Bounded admission queue in front of the shard engines: at most
/// `limit` operations execute at once (fixed or adaptive, see
/// AdmissionOptions), at most the queue bound wait, and waiters give up at
/// their start deadline. Shedding on arrival (queue full) and in queue
/// (deadline) are counted separately so a report can say *why* goodput fell
/// short of offered load.
///
/// Mutex + condvar rather than atomics: admissions happen at operation
/// granularity (milliseconds+), never in a hot loop.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Blocks until an execution slot is granted, the queue rejects the
  /// arrival, or `start_deadline` passes. `waited_s` (optional) receives
  /// the time spent queued. `class_id` groups operations for the adaptive
  /// service-time model (the serving stack passes the query id); callers of
  /// the static mode can ignore it. `admitted_heavy` (optional) reports
  /// whether the op was counted against the heavy-class slot share — pass
  /// it back to Release so the share is credited correctly even if the
  /// class's classification changes while the op runs. Callers must
  /// Release() after kAdmitted only.
  AdmissionOutcome Admit(
      std::optional<std::chrono::steady_clock::time_point> start_deadline,
      double* waited_s = nullptr, int class_id = 0,
      bool* admitted_heavy = nullptr);

  /// Returns an execution slot and wakes waiters. `service_s` (>= 0) feeds
  /// the class's service-time EWMA; pass a negative value when the op did
  /// not really execute. `was_heavy` must echo Admit's `admitted_heavy`.
  void Release(int class_id = 0, double service_s = -1.0,
               bool was_heavy = false);

  bool enabled() const {
    return options_.max_inflight > 0 || options_.adaptive;
  }
  const AdmissionOptions& options() const { return options_; }
  AdmissionStats stats() const;

  /// Brown-out wiring: the serving stack pushes the router's serving
  /// capacity fraction (healthy=1, degraded=0.5, down=0 per shard, averaged)
  /// here. Below 1.0 the heavy-class slot cap shrinks proportionally;
  /// below `brownout_shed_factor` the cap additionally loses its one-slot
  /// floor and heavy arrivals that cannot start are shed immediately
  /// instead of queueing — heavy classes pay for the lost capacity first,
  /// so cheap Q1 traffic keeps its SLO through the brown-out. 1.0 (the
  /// default) is byte-for-byte the pre-fault behavior. Clamped to [0, 1];
  /// cheap (a relaxed atomic exchange) so the stack may call it every
  /// serve.
  void SetCapacityFactor(double factor);
  double capacity_factor() const {
    return capacity_factor_.load(std::memory_order_relaxed);
  }

  /// Current concurrency limit (fixed in static mode; the controller's live
  /// value in adaptive mode).
  int current_limit() const;
  /// Whether `class_id` currently classifies as heavy.
  bool IsHeavyClass(int class_id) const;
  /// Observed service-time EWMA for `class_id` (0 if never completed).
  double ClassServiceEwma(int class_id) const;

 private:
  struct ClassStat {
    double service_ewma_s = 0.0;
    int64_t completions = 0;
    /// Consecutive winsorized samples above the heavy threshold (see
    /// AdmissionOptions::heavy_streak).
    int heavy_streak = 0;
  };

  bool IsHeavyLocked(int class_id) const;
  /// One fresh sample judged against the cheapest other class's EWMA —
  /// the streak's input, not the classification itself.
  bool SampleRatioHeavyLocked(int class_id, double sample_s) const;
  bool CanStartLocked(bool heavy) const;
  int HeavyCapLocked() const;
  int MaxQueueLocked() const;
  /// Registry shed counter for `class_id` (serving_admission_shed_total with
  /// a class label), resolved lazily on first shed of that class.
  obs::Counter* ShedCounterLocked(int class_id);

  const AdmissionOptions options_;
  const std::string instance_;  ///< Registry instance label value.

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  int limit_;
  int inflight_ = 0;
  int heavy_inflight_ = 0;
  int waiting_ = 0;
  double service_ewma_s_ = 0.0;  ///< Mean service across classes.
  int64_t service_samples_ = 0;
  double queue_ewma_ = 0.0;      ///< Mean queue depth seen by arrivals.
  int completions_since_adjust_ = 0;
  int64_t sheds_since_adjust_ = 0;  ///< Queue-full sheds (demand signal).
  std::map<int, ClassStat> classes_;
  /// Serving-capacity fraction from the router (see SetCapacityFactor).
  /// Atomic so the stack can publish it without taking mu_; readers under
  /// mu_ see a value at most one serve stale, which only shifts *when* a
  /// brown-out engages by one op.
  std::atomic<double> capacity_factor_{1.0};

  /// Live counters are registry instruments (serving_admission_* with this
  /// instance's label), incremented under mu_ so stats() snapshots stay
  /// exact and mutually consistent.
  obs::Counter* admitted_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_timeout_;
  obs::Counter* shed_brownout_;
  obs::Gauge* peak_queue_gauge_;
  obs::Gauge* limit_gauge_;
  std::map<int, obs::Counter*> shed_by_class_;
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_ADMISSION_H_
