#include "serving/single_flight.h"

namespace genbase::serving {

SingleFlightTable::Role SingleFlightTable::Join(
    const CacheKey& key, std::shared_ptr<Flight>* flight) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it != flights_.end()) {
    *flight = it->second;
    return Role::kFollower;
  }
  *flight = std::make_shared<Flight>();
  flights_.emplace(key, *flight);
  return Role::kLeader;
}

void SingleFlightTable::Publish(const CacheKey& key,
                                const std::shared_ptr<Flight>& flight,
                                bool ok, const core::QueryResult& result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    // Erase only our own flight: a failed leader's followers may have
    // already re-opened the key with a new flight.
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->ok = ok;
    if (ok) flight->result = result;
  }
  flight->cv.notify_all();
}

SingleFlightTable::WaitResult SingleFlightTable::Wait(
    Flight* flight,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    core::QueryResult* out) {
  std::unique_lock<std::mutex> lock(flight->mu);
  if (deadline.has_value()) {
    if (!flight->cv.wait_until(lock, *deadline,
                               [flight] { return flight->done; })) {
      return WaitResult::kTimeout;
    }
  } else {
    flight->cv.wait(lock, [flight] { return flight->done; });
  }
  if (!flight->ok) return WaitResult::kLeaderFailed;
  if (out != nullptr) *out = flight->result;
  return WaitResult::kServed;
}

int64_t SingleFlightTable::open_flights() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(flights_.size());
}

}  // namespace genbase::serving
