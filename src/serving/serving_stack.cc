#include "serving/serving_stack.h"

#include <utility>

#include "common/timer.h"
#include "core/config.h"

namespace genbase::serving {

namespace {

/// Modeled wire size of one request: query id + parameter struct + framing.
constexpr int64_t kRequestBytes = 256;

/// Folds modeled network seconds into a cell the same way the engines fold
/// their own virtual costs: glue time, reported inside DM totals, counted
/// against the op's budget.
void ChargeModeledGlue(core::CellResult* cell, double seconds,
                       double timeout_seconds) {
  cell->glue_s += seconds;
  cell->dm_s += seconds;
  cell->modeled_s += seconds;
  cell->total_s += seconds;
  if (!cell->infinite && cell->status.ok() &&
      cell->total_s > timeout_seconds) {
    cell->infinite = true;
    cell->status = genbase::Status::DeadlineExceeded(
        "modeled total exceeds time budget");
  }
}

}  // namespace

ServingCounters CountersDelta(const ServingCounters& now,
                              const ServingCounters& since) {
  ServingCounters d = now;
  d.cache.hits -= since.cache.hits;
  d.cache.misses -= since.cache.misses;
  d.cache.insertions -= since.cache.insertions;
  d.cache.evictions -= since.cache.evictions;
  d.admission.admitted -= since.admission.admitted;
  d.admission.shed_queue_full -= since.admission.shed_queue_full;
  d.admission.shed_timeout -= since.admission.shed_timeout;
  for (size_t s = 0; s < d.shards.size() && s < since.shards.size(); ++s) {
    d.shards[s].ops -= since.shards[s].ops;
    d.shards[s].errors -= since.shards[s].errors;
    d.shards[s].infs -= since.shards[s].infs;
    d.shards[s].busy_s -= since.shards[s].busy_s;
  }
  return d;
}

ServingStack::ServingStack(const ServingOptions& options,
                           std::unique_ptr<ShardRouter> router)
    : options_(options),
      cache_(options.cache_max_entries, options.cache_max_bytes),
      admission_(options.admission),
      router_(std::move(router)) {
  const auto& c = core::SimConfig::Get();
  net_ = cluster::NetworkModel{c.net_bandwidth_bytes_per_s, c.net_latency_s};
}

genbase::Result<std::unique_ptr<ServingStack>> ServingStack::Create(
    const ServingOptions& options, const ShardRouter::EngineFactory& factory,
    const core::GenBaseData& data) {
  GENBASE_ASSIGN_OR_RETURN(std::unique_ptr<ShardRouter> router,
                           ShardRouter::Create(options.shards, factory, data));
  return std::unique_ptr<ServingStack>(
      new ServingStack(options, std::move(router)));
}

ServeResult ServingStack::Serve(
    core::QueryId query, core::DatasetSize size,
    const core::DriverOptions& options, ExecContext* ctx,
    std::optional<std::chrono::steady_clock::time_point> scheduled_arrival) {
  ServeResult result;
  const CacheKey key{query, FingerprintParams(options.params), size};

  if (options_.cache_enabled) {
    WallTimer lookup_timer;
    core::QueryResult cached;
    if (cache_.Lookup(key, &cached)) {
      // Hit: answered at the serving tier. The op costs the lookup (real)
      // plus the modeled request/response round trip — no engine work.
      result.cache_hit = true;
      core::CellResult& cell = result.cell;
      cell.engine = router_->engine_name();
      cell.query = query;
      cell.size = size;
      cell.result = std::move(cached);
      cell.total_s = lookup_timer.Seconds();
      cell.dm_s = cell.total_s;
      if (options_.model_network) {
        ChargeModeledGlue(&cell,
                          net_.TransferSeconds(kRequestBytes) +
                              net_.TransferSeconds(
                                  ApproxResultBytes(cell.result)),
                          options.timeout_seconds);
      }
      return result;
    }
  }

  std::optional<std::chrono::steady_clock::time_point> start_deadline;
  if (admission_.enabled() && admission_.options().max_queue_delay_s > 0) {
    const auto budget =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                admission_.options().max_queue_delay_s));
    start_deadline =
        scheduled_arrival.value_or(std::chrono::steady_clock::now()) + budget;
  }
  result.admission = admission_.Admit(start_deadline, &result.admission_wait_s);
  if (result.admission != AdmissionOutcome::kAdmitted) {
    result.shed = true;
    core::CellResult& cell = result.cell;
    cell.engine = router_->engine_name();
    cell.query = query;
    cell.size = size;
    cell.status = genbase::Status::Cancelled(
        std::string("shed by admission control (") +
        AdmissionOutcomeName(result.admission) + ")");
    return result;
  }

  result.shard = router_->AcquireShard();
  result.cell = router_->RunOnShard(result.shard, query, size, options, ctx);
  admission_.Release();

  if (options_.model_network) {
    const int64_t reply_bytes = result.cell.status.ok()
                                    ? ApproxResultBytes(result.cell.result)
                                    : kRequestBytes;
    ChargeModeledGlue(&result.cell,
                      net_.TransferSeconds(kRequestBytes) +
                          net_.TransferSeconds(reply_bytes),
                      options.timeout_seconds);
  }
  if (options_.cache_enabled && result.cell.supported &&
      result.cell.status.ok() && !result.cell.infinite) {
    cache_.Insert(key, result.cell.result);
  }
  return result;
}

ServingCounters ServingStack::counters() const {
  ServingCounters c;
  c.cache = cache_.stats();
  c.admission = admission_.stats();
  c.shards = router_->stats();
  return c;
}

}  // namespace genbase::serving
