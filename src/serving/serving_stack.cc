#include "serving/serving_stack.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "core/config.h"
#include "obs/profiler.h"

namespace genbase::serving {

namespace {

/// Modeled wire size of one request: query id + parameter struct + framing.
constexpr int64_t kRequestBytes = 256;

/// Folds modeled network seconds into a cell the same way the engines fold
/// their own virtual costs: glue time, reported inside DM totals, counted
/// against the op's budget.
void ChargeModeledGlue(core::CellResult* cell, double seconds,
                       double timeout_seconds) {
  cell->glue_s += seconds;
  cell->dm_s += seconds;
  cell->modeled_s += seconds;
  cell->total_s += seconds;
  if (!cell->infinite && cell->status.ok() &&
      cell->total_s > timeout_seconds) {
    cell->infinite = true;
    cell->status = genbase::Status::DeadlineExceeded(
        "modeled total exceeds time budget");
  }
}

}  // namespace

ServingStack::ServingStack(const ServingOptions& options,
                           std::unique_ptr<ShardRouter> router)
    : options_(options),
      cache_(options.cache_max_entries, options.cache_max_bytes),
      admission_(options.admission),
      router_(std::move(router)),
      epoch_(router_->dataset_epoch()) {
  const auto& c = core::SimConfig::Get();
  net_ = cluster::NetworkModel{c.net_bandwidth_bytes_per_s, c.net_latency_s};
  auto& reg = obs::MetricsRegistry::Global();
  const obs::Labels labels{
      {"instance", obs::MetricsRegistry::NextInstanceId("stack")}};
  stale_hits_ = reg.GetCounter("serving_stack_stale_hits_total", labels);
  reloads_ = reg.GetCounter("serving_stack_reloads_total", labels);
  flight_leaders_ = reg.GetCounter("serving_flight_leaders_total", labels);
  flight_coalesced_ = reg.GetCounter("serving_flight_coalesced_total", labels);
  flight_coalesced_served_ =
      reg.GetCounter("serving_flight_coalesced_served_total", labels);
  flight_follower_fallbacks_ =
      reg.GetCounter("serving_flight_follower_fallbacks_total", labels);
  flight_shed_wait_timeout_ =
      reg.GetCounter("serving_flight_shed_wait_timeout_total", labels);
  retries_ = reg.GetCounter("serving_retries_total", labels);
  retry_successes_ = reg.GetCounter("serving_retry_successes_total", labels);
  retry_deadline_giveups_ =
      reg.GetCounter("serving_retry_deadline_giveups_total", labels);
  hedges_ = reg.GetCounter("serving_hedges_total", labels);
  hedge_wins_ = reg.GetCounter("serving_hedge_wins_total", labels);
}

genbase::Result<std::unique_ptr<ServingStack>> ServingStack::Create(
    const ServingOptions& options, const ShardRouter::EngineFactory& factory,
    const core::GenBaseData& data) {
  GENBASE_ASSIGN_OR_RETURN(std::unique_ptr<ShardRouter> router,
                           ShardRouter::Create(options.shards, factory, data));
  if (options.fault_injector != nullptr) {
    router->SetFaultInjector(options.fault_injector);
  }
  return std::unique_ptr<ServingStack>(
      // lint:allow(raw-new-delete): make_unique cannot reach the private ctor; owned immediately
      new ServingStack(options, std::move(router)));
}

genbase::Status ServingStack::ReloadDataset(const core::GenBaseData& data) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  GENBASE_RETURN_NOT_OK(router_->ReloadShards(data));
  // Publish the new generation only once every shard serves it: lookups
  // keyed with the new epoch must never land on a shard still holding the
  // old data. Ops that read the old epoch before this store stay keyed old
  // — their results are unreachable after the invalidation below at worst,
  // never wrongly served.
  const uint64_t epoch = router_->dataset_epoch();
  epoch_.store(epoch, std::memory_order_release);
  reloads_->Inc();
  cache_.InvalidateEpochsBelow(epoch);
  return genbase::Status::OK();
}

std::optional<std::chrono::steady_clock::time_point>
ServingStack::StartDeadline(
    std::optional<std::chrono::steady_clock::time_point> scheduled_arrival)
    const {
  if (!admission_.enabled() || admission_.options().max_queue_delay_s <= 0) {
    return std::nullopt;
  }
  const auto budget =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              admission_.options().max_queue_delay_s));
  return scheduled_arrival.value_or(std::chrono::steady_clock::now()) + budget;
}

ServeResult ServingStack::ServedFromTier(core::QueryId query,
                                         core::DatasetSize size,
                                         core::QueryResult result,
                                         double spent_s,
                                         const core::DriverOptions& options,
                                         bool coalesced) {
  ServeResult served;
  served.cache_hit = true;
  served.coalesced = coalesced;
  core::CellResult& cell = served.cell;
  cell.engine = router_->engine_name();
  cell.query = query;
  cell.size = size;
  cell.result = std::move(result);
  cell.total_s = spent_s;
  cell.dm_s = cell.total_s;
  if (options_.model_network) {
    ChargeModeledGlue(&cell,
                      net_.TransferSeconds(kRequestBytes) +
                          net_.TransferSeconds(ApproxResultBytes(cell.result)),
                      options.timeout_seconds);
  }
  // Stage accounting: the real lookup time is the cache stage, the modeled
  // round trip is the dispatch stage — together they are the whole cell.
  served.stages[obs::RequestStage::kCache] = spent_s;
  served.stages[obs::RequestStage::kDispatch] = cell.total_s - spent_s;
  return served;
}

ServeResult ServingStack::Shed(core::QueryId query, core::DatasetSize size,
                               AdmissionOutcome outcome,
                               const std::string& detail, double waited_s) {
  ServeResult result;
  result.shed = true;
  result.admission = outcome;
  result.admission_wait_s = waited_s;
  core::CellResult& cell = result.cell;
  cell.engine = router_->engine_name();
  cell.query = query;
  cell.size = size;
  cell.status = genbase::Status::Cancelled("shed " + detail + " (" +
                                           AdmissionOutcomeName(outcome) +
                                           ")");
  return result;
}

ServeResult ServingStack::Serve(
    core::QueryId query, core::DatasetSize size,
    const core::DriverOptions& options, ExecContext* ctx,
    std::optional<std::chrono::steady_clock::time_point> scheduled_arrival) {
  // Op sequence number: the injector's tick when a fault script is attached
  // (its schedules and deterministic draws are keyed to it), the stack's own
  // counter otherwise (retry jitter stays per-op deterministic either way).
  uint64_t op_id = op_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  FaultInjector* const faults = options_.fault_injector;
  if (faults != nullptr && faults->enabled()) {
    op_id = faults->OnServe();
  }
  // Brown-out wiring: publish the router's serving-capacity fraction to
  // admission so a degraded fleet sheds heavy classes first. A relaxed
  // atomic read + exchange; no-ops at full health.
  if (admission_.enabled()) {
    admission_.SetCapacityFactor(router_->capacity_fraction());
  }
  const CacheKey key{query, FingerprintParams(options.params), size,
                     epoch_.load(std::memory_order_acquire)};
  // One budget per op, anchored at its (scheduled) arrival: a follower
  // that outlives a failed flight keeps the same deadline through its own
  // admission attempt instead of starting a fresh one.
  const std::optional<std::chrono::steady_clock::time_point> start_deadline =
      StartDeadline(scheduled_arrival);

  bool stale_tripwire = false;
  if (options_.cache_enabled) {
    obs::ScopedSpan cache_span("cache");
    const double cache_cpu_begin = obs::Profiler::CpuBegin();
    WallTimer lookup_timer;
    core::QueryResult cached;
    uint64_t entry_epoch = 0;
    if (cache_.Lookup(key, &cached, &entry_epoch)) {
      // Stale-hit tripwire: the entry's insert-time epoch (carried apart
      // from the map key) must match the epoch this op entered with. Epoch
      // keying makes a mismatch impossible unless the machinery breaks;
      // fig8 gates its exit code on the counter staying zero. If it ever
      // trips, count it AND fall through to the miss path — the invariant
      // is that a stale result is never served, so the detector must heal
      // (one recompute) rather than hand out old-generation data.
      if (entry_epoch == key.epoch) {
        // Hit: answered at the serving tier. The op costs the lookup
        // (real) plus the modeled request/response round trip — no engine
        // work.
        cache_span.SetDetail("hit");
        ServeResult served = ServedFromTier(query, size, std::move(cached),
                                            lookup_timer.Seconds(), options,
                                            /*coalesced=*/false);
        served.stages.Cpu(obs::RequestStage::kCache) =
            obs::Profiler::CpuDelta(cache_cpu_begin);
        return served;
      }
      stale_hits_->Inc();
      stale_tripwire = true;
      cache_span.SetDetail("stale-tripwire");
    }
  }

  // Flight wait a follower carries into a solo fallback (leader failed):
  // real queueing this op experienced, folded into its admission_wait_s and
  // flight stage below rather than dropped.
  double fallback_wait_s = 0.0;
  double fallback_cpu_s = 0.0;
  if (options_.cache_enabled && options_.single_flight) {
    std::shared_ptr<SingleFlightTable::Flight> flight;
    if (flights_.Join(key, &flight) == SingleFlightTable::Role::kLeader) {
      flight_leaders_->Inc();
      // Double-check before executing: a previous flight on this key may
      // have published between this op's miss and its join, in which case
      // the work is already cached and re-running it would be exactly the
      // stampede this layer exists to prevent. Peek (uncounted) so the op
      // is not double-counted in the hit-ratio stats.
      core::QueryResult cached;
      if (cache_.Peek(key, &cached)) {
        flights_.Publish(key, flight, /*ok=*/true, cached);
        ServeResult result = ServedFromTier(query, size, std::move(cached),
                                            0.0, options,
                                            /*coalesced=*/false);
        result.stale_tripwire = stale_tripwire;
        return result;
      }
      ServeResult result = ExecuteMiss(key, query, size, options, ctx,
                                       start_deadline, flight, op_id);
      result.stale_tripwire = stale_tripwire;
      return result;
    }
    // Follower: the identical computation is already running — wait for its
    // result instead of stampeding the engines. Bounded by the same start
    // deadline admission would apply: past it, the op's client is gone.
    flight_coalesced_->Inc();
    obs::ScopedSpan flight_span("flight");
    const double flight_cpu_begin = obs::Profiler::CpuBegin();
    WallTimer wait_timer;
    core::QueryResult flown;
    const SingleFlightTable::WaitResult wait =
        SingleFlightTable::Wait(flight.get(), start_deadline, &flown);
    const double flight_cpu_s = obs::Profiler::CpuDelta(flight_cpu_begin);
    switch (wait) {
      case SingleFlightTable::WaitResult::kServed: {
        flight_coalesced_served_->Inc();
        // The flight wait is queueing, reported in admission_wait_s like an
        // admission-queue wait (the runner folds it into latency and the
        // queue-delay histogram) — not in the cell's own seconds, which
        // would double-count it.
        ServeResult result = ServedFromTier(query, size, std::move(flown),
                                            /*spent_s=*/0.0, options,
                                            /*coalesced=*/true);
        result.admission_wait_s = wait_timer.Seconds();
        result.stages[obs::RequestStage::kFlight] = result.admission_wait_s;
        result.stages.Cpu(obs::RequestStage::kFlight) = flight_cpu_s;
        result.stale_tripwire = stale_tripwire;
        return result;
      }
      case SingleFlightTable::WaitResult::kTimeout: {
        flight_shed_wait_timeout_->Inc();
        ServeResult result =
            Shed(query, size, AdmissionOutcome::kShedTimeout,
                 "waiting on coalesced flight", wait_timer.Seconds());
        result.stages[obs::RequestStage::kFlight] = result.admission_wait_s;
        result.stages.Cpu(obs::RequestStage::kFlight) = flight_cpu_s;
        result.stale_tripwire = stale_tripwire;
        return result;
      }
      case SingleFlightTable::WaitResult::kLeaderFailed:
        // The leader had nothing servable (error/INF/shed). Execute solo:
        // failures are op-specific (a timeout there does not mean one
        // here), and re-joining a flight could chain waits unboundedly.
        flight_follower_fallbacks_->Inc();
        fallback_wait_s = wait_timer.Seconds();
        fallback_cpu_s = flight_cpu_s;
        break;
    }
  }

  ServeResult result = ExecuteMiss(key, query, size, options, ctx,
                                   start_deadline, /*flight=*/nullptr, op_id);
  result.stale_tripwire = stale_tripwire;
  result.admission_wait_s += fallback_wait_s;
  result.stages[obs::RequestStage::kFlight] += fallback_wait_s;
  result.stages.Cpu(obs::RequestStage::kFlight) += fallback_cpu_s;
  return result;
}

ServeResult ServingStack::ExecuteMiss(
    const CacheKey& key, core::QueryId query, core::DatasetSize size,
    const core::DriverOptions& options, ExecContext* ctx,
    std::optional<std::chrono::steady_clock::time_point> start_deadline,
    const std::shared_ptr<SingleFlightTable::Flight>& flight,
    uint64_t op_id) {
  ServeResult result;
  bool admitted_heavy = false;
  double admission_wait_s = 0.0;
  double queue_cpu_s = 0.0;
  {
    obs::ScopedSpan queue_span("queue");
    const double queue_cpu_begin = obs::Profiler::CpuBegin();
    result.admission =
        admission_.Admit(start_deadline, &admission_wait_s,
                         static_cast<int>(query), &admitted_heavy);
    queue_cpu_s = obs::Profiler::CpuDelta(queue_cpu_begin);
  }
  if (result.admission != AdmissionOutcome::kAdmitted) {
    result = Shed(query, size, result.admission, "by admission control",
                  admission_wait_s);
    result.stages[obs::RequestStage::kQueue] = admission_wait_s;
    result.stages.Cpu(obs::RequestStage::kQueue) = queue_cpu_s;
    if (flight != nullptr) {
      flights_.Publish(key, flight, /*ok=*/false, core::QueryResult{});
    }
    return result;
  }
  result.admission_wait_s = admission_wait_s;
  result.stages[obs::RequestStage::kQueue] = admission_wait_s;
  result.stages.Cpu(obs::RequestStage::kQueue) = queue_cpu_s;

  FaultInjector* const faults = options_.fault_injector;
  const RetryPolicy& retry = options_.retry;
  const uint64_t jitter_seed = faults != nullptr ? faults->seed() : 0;
  // Seconds left on the op's single start-deadline budget — the same clock
  // the follower fallback and admission wait already spent from. +inf with
  // no deadline configured.
  const auto remaining_budget_s = [&start_deadline] {
    if (!start_deadline.has_value()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(*start_deadline -
                                         std::chrono::steady_clock::now())
        .count();
  };
  // Injected-spike snapshot for the most recent attempt, captured inside
  // run_attempt at execution time. The hedge decision reads this snapshot
  // rather than the injector's live state: a spike window that opens or
  // closes between the attempt and the hedge check must not change what
  // counts as a slow attempt, or hedge counters drift across replays of
  // the same fault seed.
  double attempt_spike_s = 0.0;
  // One execute attempt on one shard: dispatch span (acquire), execute span
  // (engine run + PhaseClock child spans), injected latency spike charged
  // as modeled glue. `exclude` routes the attempt away from a shard a
  // previous attempt failed on (or, for a hedge, the primary's shard).
  const auto run_attempt = [&](int exclude, int attempt, const char* label,
                               int* shard_out, uint64_t* epoch_out) {
    attempt_spike_s = 0.0;
    {
      obs::ScopedSpan dispatch_span("dispatch");
      const double dispatch_cpu_begin = obs::Profiler::CpuBegin();
      *shard_out = router_->AcquireShard(exclude);
      // The modeled network round trip added below is the dispatch stage's
      // wall time; the shard acquire is its only real CPU.
      result.stages.Cpu(obs::RequestStage::kDispatch) +=
          obs::Profiler::CpuDelta(dispatch_cpu_begin);
      if (dispatch_span.active()) {
        dispatch_span.SetDetail(std::string(label) + "shard " +
                                std::to_string(*shard_out));
      }
    }
    core::CellResult cell;
    {
      obs::ScopedSpan exec_span("execute");
      obs::ScopedExecutePerf exec_perf;
      const double exec_cpu_begin = obs::Profiler::CpuBegin();
      const double exec_start =
          exec_span.active() ? obs::Tracer::Global().NowSeconds() : 0.0;
      cell = router_->RunOnShard(*shard_out, query, size, options, ctx,
                                 epoch_out, op_id, attempt);
      result.stages.Cpu(obs::RequestStage::kExecute) +=
          obs::Profiler::CpuDelta(exec_cpu_begin);
      if (exec_span.active()) {
        // Bridge the PhaseClock breakdown as child spans: a sequential
        // data-management / analytics / glue layout under the execute span.
        // The clock records phase *sums*, not intervals, so the children are
        // an attribution view (their order is synthetic), but their widths
        // are the paper's Figure 2/4 split for exactly this op.
        double t = exec_start;
        const double dm = std::max(0.0, cell.dm_s - cell.glue_s);
        obs::EmitChildSpan("data_management", t, dm);
        t += dm;
        obs::EmitChildSpan("analytics", t, cell.analytics_s);
        t += cell.analytics_s;
        obs::EmitChildSpan("glue", t, cell.glue_s);
      }
    }
    if (faults != nullptr && faults->enabled()) {
      // Slow-shard brown-out: the injected spike is virtual time, folded in
      // exactly like the network model so totals and deadlines see it.
      attempt_spike_s = faults->ShardLatencySeconds(*shard_out);
      if (attempt_spike_s > 0.0 && cell.status.ok()) {
        ChargeModeledGlue(&cell, attempt_spike_s, options.timeout_seconds);
      }
    }
    return cell;
  };

  uint64_t data_epoch = 0;
  // Failed attempts' cell time, backoff sleeps, and losing hedge attempts:
  // real cost this op paid beyond its final answer, charged onto the final
  // cell as modeled glue so latency accounting never loses it.
  double overhead_s = 0.0;
  int attempt = 1;
  int previous_shard = -1;
  bool any_attempt_failed = false;
  for (;;) {
    data_epoch = 0;
    result.cell = run_attempt(previous_shard, attempt,
                              attempt == 1 ? "" : "retry ", &result.shard,
                              &data_epoch);
    // Retry transient failures only: unsupported queries fail identically
    // everywhere and INF (timeout/OOM) already consumed the op's budget.
    const bool retryable = result.cell.supported && !result.cell.infinite &&
                           !result.cell.status.ok();
    if (!retryable) break;
    double backoff_s = 0.0;
    if (!ScheduleRetry(retry, jitter_seed, op_id, attempt,
                       remaining_budget_s(), &backoff_s)) {
      // Attempts remained but the deadline budget was spent: give up rather
      // than retry past the client's patience.
      if (attempt < retry.max_attempts) retry_deadline_giveups_->Inc();
      break;
    }
    any_attempt_failed = true;
    overhead_s += result.cell.total_s;
    if (backoff_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      overhead_s += backoff_s;
    }
    retries_->Inc();
    ++result.retries;
    previous_shard = result.shard;
    ++attempt;
  }
  // Interim verdict only — retry_successes_ is counted below from the
  // final verdict, after the retry/hedge overhead and network charges have
  // had their chance to flip the cell to DeadlineExceeded.
  const bool interim_servable = result.cell.supported &&
                                result.cell.status.ok() &&
                                !result.cell.infinite;

  // Hedged request: cheap classes only, and only when the served attempt
  // came back slow — over the class's service EWMA threshold, or from a
  // shard inside an injected latency-spike window (over threshold by
  // construction). Sequential backup-request style: one extra attempt on a
  // different shard, faster cell wins, loser's time becomes overhead.
  if (retry.hedge_cheap && interim_servable && router_->shards() > 1 &&
      !admitted_heavy && admission_.enabled() &&
      remaining_budget_s() > 0.0) {
    const double class_ewma_s =
        admission_.ClassServiceEwma(static_cast<int>(query));
    const double real_s =
        std::max(0.0, result.cell.total_s - result.cell.modeled_s);
    const bool slow =
        attempt_spike_s > 0.0 ||
        (class_ewma_s > 0.0 &&
         real_s > retry.hedge_threshold_factor * class_ewma_s);
    if (slow) {
      hedges_->Inc();
      result.hedged = true;
      ++attempt;
      int hedge_shard = -1;
      uint64_t hedge_epoch = 0;
      const core::CellResult hedge_cell = run_attempt(
          result.shard, attempt, "hedge ", &hedge_shard, &hedge_epoch);
      const bool hedge_servable = hedge_cell.supported &&
                                  hedge_cell.status.ok() &&
                                  !hedge_cell.infinite;
      if (hedge_servable && hedge_cell.total_s < result.cell.total_s) {
        hedge_wins_->Inc();
        overhead_s += result.cell.total_s;
        result.cell = hedge_cell;
        result.shard = hedge_shard;
        data_epoch = hedge_epoch;
      } else {
        overhead_s += hedge_cell.total_s;
      }
    }
  }

  // Real slot-holding seconds feed the adaptive service-time model; the
  // modeled share never occupied an execution slot. (The retry/hedge
  // overhead is charged below, after this read, so it stays out of the
  // service EWMA — it is queueing-shaped cost, not service time.)
  admission_.Release(static_cast<int>(query),
                     std::max(0.0, result.cell.total_s -
                                       result.cell.modeled_s),
                     admitted_heavy);

  const double exec_stage_s = result.cell.total_s;
  if (overhead_s > 0.0) {
    ChargeModeledGlue(&result.cell, overhead_s, options.timeout_seconds);
  }
  if (options_.model_network) {
    const int64_t reply_bytes = result.cell.status.ok()
                                    ? ApproxResultBytes(result.cell.result)
                                    : kRequestBytes;
    ChargeModeledGlue(&result.cell,
                      net_.TransferSeconds(kRequestBytes) +
                          net_.TransferSeconds(reply_bytes),
                      options.timeout_seconds);
  }
  // Stage accounting: retry/hedge overhead plus the modeled round trip are
  // the dispatch stage; the served attempt's cell (engine work, real +
  // modeled) is the execute stage.
  result.stages[obs::RequestStage::kDispatch] =
      result.cell.total_s - exec_stage_s;
  result.stages[obs::RequestStage::kExecute] = exec_stage_s;
  const bool servable = result.cell.supported && result.cell.status.ok() &&
                        !result.cell.infinite;
  // A retry success is an op that failed at least once yet is ultimately
  // served — judged on the final cell, so an op the overhead charges pushed
  // past its deadline never counts as a success.
  if (any_attempt_failed && servable) retry_successes_->Inc();
  if (options_.cache_enabled && servable && data_epoch == key.epoch &&
      key.epoch == epoch_.load(std::memory_order_acquire)) {
    // Two epoch guards close the reload races. data_epoch == key.epoch: an
    // op keyed under the old generation that executed on an
    // already-reloaded shard (or vice versa mid-roll) must not publish its
    // result under a key other ops resolve. key.epoch == current: an op
    // that outlived a whole reload must not insert an already-invalidated
    // generation back into the cache — the entry would be unreachable, yet
    // squat at the MRU end evicting live entries under pressure. (A reload
    // landing between this check and the insert still leaves such an
    // entry; that window is microseconds and costs memory, not
    // correctness.)
    cache_.Insert(key, result.cell.result);
  }
  if (flight != nullptr) {
    // Followers may be served the result even when the epoch guard skipped
    // the cache insert: they joined the same key (same epoch view), so the
    // hand-off is exactly as correct as the leader's own answer.
    flights_.Publish(key, flight, servable, result.cell.result);
  }
  return result;
}

ServingCounters ServingStack::counters() const {
  ServingCounters c;
  c.cache = cache_.stats();
  c.admission = admission_.stats();
  c.shards = router_->stats();
  c.flight.leaders = flight_leaders_->Value();
  c.flight.coalesced = flight_coalesced_->Value();
  c.flight.coalesced_served = flight_coalesced_served_->Value();
  c.flight.follower_fallbacks = flight_follower_fallbacks_->Value();
  c.flight.shed_wait_timeout = flight_shed_wait_timeout_->Value();
  c.stale_hits = stale_hits_->Value();
  c.reloads = reloads_->Value();
  c.retry.retries = retries_->Value();
  c.retry.retry_successes = retry_successes_->Value();
  c.retry.retry_deadline_giveups = retry_deadline_giveups_->Value();
  c.retry.hedges = hedges_->Value();
  c.retry.hedge_wins = hedge_wins_->Value();
  if (options_.fault_injector != nullptr) {
    const FaultInjector& f = *options_.fault_injector;
    c.faults.crashes = f.injected(FaultKind::kCrash);
    c.faults.recoveries = f.injected(FaultKind::kRecover);
    c.faults.latency_spikes = f.injected(FaultKind::kLatencySpike);
    c.faults.transient_errors = f.injected(FaultKind::kTransientError);
    c.faults.reload_failures = f.injected(FaultKind::kReloadFailure);
  }
  return c;
}

}  // namespace genbase::serving
