#include "serving/result_cache.h"

#include <cstring>

#include "common/rng.h"

namespace genbase::serving {

namespace {

/// FNV-1a style accumulation through SplitMix64 so nearby values (quantile
/// 0.90 vs 0.95) land far apart.
uint64_t MixInto(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

uint64_t MixDouble(uint64_t h, double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return MixInto(h, bits);
}

}  // namespace

uint64_t FingerprintParams(const core::QueryParams& params) {
  uint64_t h = SeedFromTag("serving/params");
  h = MixInto(h, static_cast<uint64_t>(params.function_threshold));
  h = MixInto(h, static_cast<uint64_t>(params.disease_id));
  h = MixDouble(h, params.covariance_quantile);
  h = MixInto(h, static_cast<uint64_t>(params.max_age));
  h = MixInto(h, static_cast<uint64_t>(params.gender));
  h = MixDouble(h, params.bicluster_delta_fraction);
  h = MixInto(h, static_cast<uint64_t>(params.bicluster_count));
  h = MixInto(h, static_cast<uint64_t>(params.svd_rank));
  h = MixDouble(h, params.sample_fraction);
  h = MixDouble(h, params.significance);
  return h;
}

size_t CacheKeyHash::operator()(const CacheKey& k) const {
  uint64_t h = MixInto(k.params_fingerprint,
                       static_cast<uint64_t>(k.query) * 131 +
                           static_cast<uint64_t>(k.size));
  return static_cast<size_t>(h);
}

int64_t ApproxResultBytes(const core::QueryResult& result) {
  int64_t bytes = static_cast<int64_t>(sizeof(core::QueryResult));
  bytes += static_cast<int64_t>(result.regression.coef_head.capacity() *
                                sizeof(double));
  bytes += static_cast<int64_t>(result.svd.singular_values.capacity() *
                                sizeof(double));
  bytes += static_cast<int64_t>(
      result.bicluster.biclusters.capacity() *
      sizeof(core::BiclusterSummary::Entry));
  return bytes;
}

ResultCache::ResultCache(int64_t max_entries, int64_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {}

bool ResultCache::Lookup(const CacheKey& key, core::QueryResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (out != nullptr) *out = it->second->value;
  ++counters_.hits;
  return true;
}

void ResultCache::Insert(const CacheKey& key, const core::QueryResult& value) {
  const int64_t bytes = ApproxResultBytes(value);
  if (bytes > max_bytes_ || max_entries_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (identical keys imply identical results, but a
    // re-insert after Clear-free races is harmless).
    bytes_ += bytes - it->second->bytes;
    it->second->value = value;
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, value, bytes});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    ++counters_.insertions;
  }
  EvictWhileOverLocked();
}

void ResultCache::EvictWhileOverLocked() {
  while (!lru_.empty() && (static_cast<int64_t>(lru_.size()) > max_entries_ ||
                           bytes_ > max_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = counters_;
  s.entries = static_cast<int64_t>(lru_.size());
  s.bytes = bytes_;
  return s;
}

}  // namespace genbase::serving
