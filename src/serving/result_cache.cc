#include "serving/result_cache.h"

#include <cstring>

#include "common/rng.h"

namespace genbase::serving {

namespace {

/// FNV-1a style accumulation through SplitMix64 so nearby values (quantile
/// 0.90 vs 0.95) land far apart.
uint64_t MixInto(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

uint64_t MixDouble(uint64_t h, double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return MixInto(h, bits);
}

}  // namespace

// Tripwire: FingerprintParams must mix EVERY field of QueryParams — a field
// it misses would make two different parameter sets share a cache key and
// silently poison served results. sizeof cannot catch a same-size type swap,
// but any added/removed/resized field changes it, which is the drift that
// actually happens. If this fires, extend the mix list below, then update
// the expected size. (LP64: 6 x int64/double + 2 x int32 + 2 x double = 72.)
static_assert(sizeof(core::QueryParams) == 72,
              "QueryParams changed: update FingerprintParams' mix list and "
              "this tripwire together");

uint64_t FingerprintParams(const core::QueryParams& params) {
  uint64_t h = SeedFromTag("serving/params");
  h = MixInto(h, static_cast<uint64_t>(params.function_threshold));
  h = MixInto(h, static_cast<uint64_t>(params.disease_id));
  h = MixDouble(h, params.covariance_quantile);
  h = MixInto(h, static_cast<uint64_t>(params.max_age));
  h = MixInto(h, static_cast<uint64_t>(params.gender));
  h = MixDouble(h, params.bicluster_delta_fraction);
  h = MixInto(h, static_cast<uint64_t>(params.bicluster_count));
  h = MixInto(h, static_cast<uint64_t>(params.svd_rank));
  h = MixDouble(h, params.sample_fraction);
  h = MixDouble(h, params.significance);
  return h;
}

size_t CacheKeyHash::operator()(const CacheKey& k) const {
  uint64_t h = MixInto(k.params_fingerprint,
                       static_cast<uint64_t>(k.query) * 131 +
                           static_cast<uint64_t>(k.size));
  h = MixInto(h, k.epoch);
  return static_cast<size_t>(h);
}

// Tripwire: ApproxResultBytes must count every dynamically sized member of
// QueryResult, or max_bytes eviction and the modeled reply transfer both
// undercount. Audit of the five summaries as of this size:
//   regression: coef_head vector        -> counted below
//   covariance: flat (counts/checksums) -> inside sizeof(QueryResult)
//   bicluster:  biclusters vector       -> counted below
//   svd:        singular_values vector  -> counted below
//   stats:      flat (counts/z-sum)     -> inside sizeof(QueryResult)
// Any new member changes sizeof(QueryResult); if it fires, re-audit the
// list, add any new dynamic storage, then update the expected size.
static_assert(sizeof(core::QueryResult) == 248,
              "QueryResult changed: re-audit ApproxResultBytes' dynamic "
              "members and update this tripwire");

int64_t ApproxResultBytes(const core::QueryResult& result) {
  int64_t bytes = static_cast<int64_t>(sizeof(core::QueryResult));
  bytes += static_cast<int64_t>(result.regression.coef_head.capacity() *
                                sizeof(double));
  bytes += static_cast<int64_t>(result.svd.singular_values.capacity() *
                                sizeof(double));
  bytes += static_cast<int64_t>(
      result.bicluster.biclusters.capacity() *
      sizeof(core::BiclusterSummary::Entry));
  return bytes;
}

ResultCache::ResultCache(int64_t max_entries, int64_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {
  auto& reg = obs::MetricsRegistry::Global();
  const obs::Labels labels{
      {"instance", obs::MetricsRegistry::NextInstanceId("cache")}};
  hits_ = reg.GetCounter("serving_cache_hits_total", labels);
  misses_ = reg.GetCounter("serving_cache_misses_total", labels);
  insertions_ = reg.GetCounter("serving_cache_insertions_total", labels);
  evictions_ = reg.GetCounter("serving_cache_evictions_total", labels);
  invalidated_ = reg.GetCounter("serving_cache_invalidated_total", labels);
  rejected_oversize_ =
      reg.GetCounter("serving_cache_rejected_oversize_total", labels);
  entries_gauge_ = reg.GetGauge("serving_cache_entries", labels);
  bytes_gauge_ = reg.GetGauge("serving_cache_bytes", labels);
}

bool ResultCache::Lookup(const CacheKey& key, core::QueryResult* out,
                         uint64_t* entry_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_->Inc();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (out != nullptr) *out = it->second->value;
  if (entry_epoch != nullptr) *entry_epoch = it->second->epoch;
  hits_->Inc();
  return true;
}

bool ResultCache::Peek(const CacheKey& key, core::QueryResult* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (out != nullptr) *out = it->second->value;
  return true;
}

void ResultCache::Insert(const CacheKey& key, const core::QueryResult& value) {
  const int64_t bytes = ApproxResultBytes(value);
  std::lock_guard<std::mutex> lock(mu_);
  if (max_entries_ <= 0) return;  // Capacity-disabled cache, not oversize.
  if (bytes > max_bytes_) {
    // Not silently: an oversize result the cache can never hold is a
    // configuration signal (max_bytes too small for the workload's replies),
    // and without the counter insertions/evictions/entries still reconcile,
    // so the drop would be invisible in any report.
    rejected_oversize_->Inc();
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (identical keys imply identical results, but a
    // re-insert after Clear-free races is harmless).
    bytes_ += bytes - it->second->bytes;
    it->second->value = value;
    it->second->bytes = bytes;
    it->second->epoch = key.epoch;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, value, bytes, key.epoch});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    insertions_->Inc();
  }
  EvictWhileOverLocked();
  UpdateGaugesLocked();
}

void ResultCache::EvictWhileOverLocked() {
  while (!lru_.empty() && (static_cast<int64_t>(lru_.size()) > max_entries_ ||
                           bytes_ > max_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_->Inc();
  }
}

void ResultCache::UpdateGaugesLocked() {
  entries_gauge_->Set(static_cast<double>(lru_.size()));
  bytes_gauge_->Set(static_cast<double>(bytes_));
}

int64_t ResultCache::InvalidateEpochsBelow(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.epoch < epoch) {
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  invalidated_->Inc(removed);
  UpdateGaugesLocked();
  return removed;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidated_->Inc(static_cast<int64_t>(lru_.size()));
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  UpdateGaugesLocked();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s;
  s.hits = hits_->Value();
  s.misses = misses_->Value();
  s.insertions = insertions_->Value();
  s.evictions = evictions_->Value();
  s.invalidated = invalidated_->Value();
  s.rejected_oversize = rejected_oversize_->Value();
  s.entries = static_cast<int64_t>(lru_.size());
  s.bytes = bytes_;
  return s;
}

}  // namespace genbase::serving
