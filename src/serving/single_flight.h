#ifndef GENBASE_SERVING_SINGLE_FLIGHT_H_
#define GENBASE_SERVING_SINGLE_FLIGHT_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/queries.h"
#include "serving/result_cache.h"

namespace genbase::serving {

/// \brief Coalesces concurrent cache misses on one key into a single engine
/// execution — the classic cache-stampede defense. The first miss opens a
/// "flight" and becomes its leader (it executes and publishes); every
/// concurrent miss on the same key becomes a follower that blocks on the
/// flight instead of duplicating the work. Keys include the dataset epoch
/// (CacheKey), so a flight can never hand a follower a result from another
/// dataset generation.
///
/// The table only tracks membership and result hand-off; policy (what a
/// follower does on leader failure or deadline, how outcomes are counted)
/// lives in the ServingStack, which owns the counters.
class SingleFlightTable {
 public:
  /// One in-progress computation. Followers block on `cv` until the leader
  /// publishes. The struct outlives its table entry (shared_ptr): a leader
  /// publishes to followers that already joined even though the key has
  /// been re-opened for new arrivals.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;  ///< Leader produced a servable result.
    core::QueryResult result;
  };

  enum class Role { kLeader, kFollower };

  /// Outcome of a follower's wait.
  enum class WaitResult {
    kServed,        ///< Leader published a good result (in *out).
    kLeaderFailed,  ///< Leader finished without a servable result.
    kTimeout,       ///< Deadline passed before the leader finished.
  };

  /// Joins (or opens) the flight for `key`. Returns kLeader exactly once
  /// per open flight; the leader must eventually call Publish with the same
  /// flight or every follower blocks until its deadline.
  Role Join(const CacheKey& key, std::shared_ptr<Flight>* flight);

  /// Leader hand-off: closes the flight for new joiners and wakes all
  /// followers. `ok` is false when the leader has nothing servable (error,
  /// INF, shed) — followers then fend for themselves.
  void Publish(const CacheKey& key, const std::shared_ptr<Flight>& flight,
               bool ok, const core::QueryResult& result);

  /// Follower wait, bounded by `deadline` when set. On kServed the leader's
  /// result is copied into `out` (if non-null).
  static WaitResult Wait(
      Flight* flight,
      std::optional<std::chrono::steady_clock::time_point> deadline,
      core::QueryResult* out);

  /// Open flights right now (for tests / introspection).
  int64_t open_flights() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> flights_;
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_SINGLE_FLIGHT_H_
