#ifndef GENBASE_SERVING_COUNTERS_H_
#define GENBASE_SERVING_COUNTERS_H_

#include <cstdint>
#include <map>
#include <vector>

namespace genbase::serving {

/// Plain counter snapshots of the three serving layers. Kept in this light
/// header (no engine/cluster/cache machinery) so WorkloadReport can embed
/// them without the workload layer depending on the full serving stack.
///
/// These are *views*: since the observability PR the live counters are
/// obs::MetricsRegistry instruments (one time series per component instance,
/// exported via PrometheusText/ToJson), and each component's stats() method
/// materializes this struct from its instrument handles. The structs stay so
/// WorkloadReport and the figure gates keep a typed, snapshot-consistent API
/// instead of string-keyed registry lookups.

/// \brief Result-cache counters. hits/misses/insertions/evictions/
/// invalidated/rejected_oversize are cumulative; entries/bytes are current
/// gauges. Removal accounting is complete by construction: every entry that
/// ever entered the cache leaves through exactly one of evictions (LRU/byte
/// pressure) or invalidated (Clear / epoch invalidation), so
/// `entries == insertions - evictions - invalidated` always reconciles.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Entries removed by Clear() or epoch invalidation (dataset reload) —
  /// not capacity pressure, so counted apart from evictions.
  int64_t invalidated = 0;
  /// Insert calls dropped because the value alone exceeds max_bytes. These
  /// never became entries, so they are outside the reconciliation above.
  int64_t rejected_oversize = 0;
  int64_t entries = 0;
  int64_t bytes = 0;

  double hit_ratio() const {
    const int64_t probes = hits + misses;
    return probes == 0 ? 0.0 : static_cast<double>(hits) / probes;
  }
};

/// \brief Admission counters. peak_queue is a high-water gauge;
/// current_limit is the live max-inflight gauge (fixed for static
/// configurations, moving under the adaptive target-delay controller).
struct AdmissionStats {
  int64_t admitted = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_timeout = 0;
  /// Heavy-class arrivals shed because a brown-out shrank the heavy slot
  /// cap (graceful degradation: cheap classes keep flowing). A subset-style
  /// attribution counter — these sheds are also counted in shed_queue_full.
  int64_t shed_brownout = 0;
  int64_t peak_queue = 0;
  int64_t current_limit = 0;
  /// Sheds (queue-full + timeout) by admission class (the serving stack
  /// passes the query id), so an overload report can say *which* query
  /// class paid for the shortfall, not just how much was shed in total.
  std::map<int, int64_t> shed_by_class;

  int64_t shed() const { return shed_queue_full + shed_timeout; }
};

/// \brief Single-flight (miss-coalescing) counters. The first miss on a key
/// becomes the flight's leader and executes; concurrent misses on the same
/// key become followers that wait for the leader's result instead of
/// stampeding the engines.
struct SingleFlightStats {
  int64_t leaders = 0;            ///< Flights opened (first miss per key).
  int64_t coalesced = 0;          ///< Followers that joined an open flight.
  int64_t coalesced_served = 0;   ///< Followers served the leader's result.
  int64_t follower_fallbacks = 0; ///< Leader failed; follower executed solo.
  int64_t shed_wait_timeout = 0;  ///< Followers shed at their start deadline.
};

/// \brief Per-shard serving health, as routing sees it. Healthy shards get
/// plain join-shortest-queue traffic; degraded shards (latency-spike window
/// or a half-open circuit breaker) are deprioritized but still probed; down
/// shards (injected crash, failed reload, open breaker) are routed around
/// entirely while any alternative exists.
enum class ShardHealth {
  kHealthy = 0,
  kDegraded = 1,
  kDown = 2,
};

const char* ShardHealthName(ShardHealth health);

/// \brief Per-shard serving statistics, merged into the stack's counters
/// (and, through WorkloadReport, into figure/JSON output).
struct ShardStats {
  int64_t ops = 0;
  int64_t errors = 0;
  int64_t infs = 0;
  double busy_s = 0.0;  ///< Summed per-op total (measured + modeled) seconds.
  /// Times this shard's error-rate circuit breaker opened (cumulative).
  int64_t breaker_opens = 0;
  /// Current routing health (gauge, not cumulative).
  ShardHealth health = ShardHealth::kHealthy;
};

/// \brief Retry/hedging counters of the serving stack's miss path.
struct RetryStats {
  int64_t retries = 0;        ///< Extra execute attempts after a failure.
  int64_t retry_successes = 0;///< Ops that failed at least once then served.
  int64_t retry_deadline_giveups = 0;  ///< Retries skipped: no budget left.
  int64_t hedges = 0;         ///< Hedged (duplicate) attempts issued.
  int64_t hedge_wins = 0;     ///< Hedges that beat the primary attempt.
};

/// \brief Injected-fault counters mirrored from the FaultInjector (all zero
/// when no injector is attached).
struct FaultStats {
  int64_t crashes = 0;
  int64_t recoveries = 0;
  int64_t latency_spikes = 0;
  int64_t transient_errors = 0;
  int64_t reload_failures = 0;

  int64_t total() const {
    return crashes + recoveries + latency_spikes + transient_errors +
           reload_failures;
  }
};

/// \brief Merged counter snapshot of all three layers, embedded in
/// WorkloadReport for figure and JSON output.
struct ServingCounters {
  CacheStats cache;
  AdmissionStats admission;
  SingleFlightStats flight;
  std::vector<ShardStats> shards;
  /// Serves whose result came from a different dataset epoch than the one
  /// current when the op entered the stack. Epoch-keyed caching makes this
  /// impossible by construction, so the counter is a live tripwire: any
  /// nonzero value means the invalidation machinery is broken, and the churn
  /// figure (bench/fig8) gates its exit code on it staying zero.
  int64_t stale_hits = 0;
  /// Completed ServingStack::ReloadDataset calls (cumulative).
  int64_t reloads = 0;
  RetryStats retry;
  FaultStats faults;
};

/// Counter delta `now - since` (cumulative counters subtract; gauges —
/// cache entries/bytes, admission peak_queue — keep their `now` value). The
/// workload runner uses this so a report covers the measured phase only,
/// not warm-up.
ServingCounters CountersDelta(const ServingCounters& now,
                              const ServingCounters& since);

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_COUNTERS_H_
