#ifndef GENBASE_SERVING_COUNTERS_H_
#define GENBASE_SERVING_COUNTERS_H_

#include <cstdint>
#include <vector>

namespace genbase::serving {

/// Plain counter snapshots of the three serving layers. Kept in this light
/// header (no engine/cluster/cache machinery) so WorkloadReport can embed
/// them without the workload layer depending on the full serving stack.

/// \brief Result-cache counters. hits/misses/insertions/evictions are
/// cumulative; entries/bytes are current gauges.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t entries = 0;
  int64_t bytes = 0;

  double hit_ratio() const {
    const int64_t probes = hits + misses;
    return probes == 0 ? 0.0 : static_cast<double>(hits) / probes;
  }
};

/// \brief Admission counters. peak_queue is a high-water gauge.
struct AdmissionStats {
  int64_t admitted = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_timeout = 0;
  int64_t peak_queue = 0;

  int64_t shed() const { return shed_queue_full + shed_timeout; }
};

/// \brief Per-shard serving statistics, merged into the stack's counters
/// (and, through WorkloadReport, into figure/JSON output).
struct ShardStats {
  int64_t ops = 0;
  int64_t errors = 0;
  int64_t infs = 0;
  double busy_s = 0.0;  ///< Summed per-op total (measured + modeled) seconds.
};

/// \brief Merged counter snapshot of all three layers, embedded in
/// WorkloadReport for figure and JSON output.
struct ServingCounters {
  CacheStats cache;
  AdmissionStats admission;
  std::vector<ShardStats> shards;
};

/// Counter delta `now - since` (cumulative counters subtract; gauges —
/// cache entries/bytes, admission peak_queue — keep their `now` value). The
/// workload runner uses this so a report covers the measured phase only,
/// not warm-up.
ServingCounters CountersDelta(const ServingCounters& now,
                              const ServingCounters& since);

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_COUNTERS_H_
