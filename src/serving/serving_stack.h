#ifndef GENBASE_SERVING_SERVING_STACK_H_
#define GENBASE_SERVING_SERVING_STACK_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/sim_cluster.h"
#include "common/status.h"
#include "core/datasets.h"
#include "core/driver.h"
#include "serving/admission.h"
#include "serving/counters.h"
#include "serving/result_cache.h"
#include "serving/shard_router.h"

namespace genbase::serving {

/// \brief Configuration of one serving stack instance.
struct ServingOptions {
  int shards = 1;

  bool cache_enabled = true;
  int64_t cache_max_entries = 256;
  int64_t cache_max_bytes = 64LL << 20;

  /// Defaults keep admission disabled (nothing is shed).
  AdmissionOptions admission;

  /// Charge the cluster/ interconnect model (SimConfig GbE) for the
  /// client-to-server round trip: request dispatch plus result return. This
  /// is virtual time, folded into per-op totals the same way every other
  /// modeled cost is, and it gives cache hits a realistic network-bound
  /// floor instead of a free 0s.
  bool model_network = true;
};

/// \brief Outcome of one Serve() call. Exactly one of these holds: the op
/// was shed (cell carries the shed status, no result), or it was served
/// (from cache or a shard) and `cell` is a normal driver cell.
struct ServeResult {
  core::CellResult cell;
  AdmissionOutcome admission = AdmissionOutcome::kAdmitted;
  bool shed = false;
  bool cache_hit = false;
  int shard = -1;               ///< Executing shard; -1 for hits and sheds.
  double admission_wait_s = 0;  ///< Time spent queued before executing.
};

/// \brief The serving layer: result cache, then admission control, then the
/// shard router, in front of one or more loaded engines. Serve() is shaped
/// like core::RunCellWithContext — the workload runner drives either path
/// interchangeably.
///
/// Layer order is the production one: cache hits are answered before
/// admission (a hit costs microseconds plus the modeled network round trip,
/// so shedding it would throw away nearly free goodput), and only cache
/// misses compete for the bounded execution slots.
class ServingStack {
 public:
  /// Builds and loads `options.shards` engine instances. The stack owns its
  /// shards; `data` is only borrowed for loading.
  static genbase::Result<std::unique_ptr<ServingStack>> Create(
      const ServingOptions& options, const ShardRouter::EngineFactory& factory,
      const core::GenBaseData& data);

  const ServingOptions& options() const { return options_; }
  std::string engine_name() const { return router_->engine_name(); }
  int shards() const { return router_->shards(); }

  /// Serves one operation. `scheduled_arrival`, when set (open-loop
  /// workloads), anchors deadline-based shedding: the op must *start*
  /// executing within admission.max_queue_delay_s of its scheduled arrival,
  /// not of whenever a dispatch thread got around to issuing it.
  ServeResult Serve(core::QueryId query, core::DatasetSize size,
                    const core::DriverOptions& options, ExecContext* ctx,
                    std::optional<std::chrono::steady_clock::time_point>
                        scheduled_arrival = std::nullopt);

  ServingCounters counters() const;

 private:
  ServingStack(const ServingOptions& options,
               std::unique_ptr<ShardRouter> router);

  ServingOptions options_;
  ResultCache cache_;
  AdmissionController admission_;
  std::unique_ptr<ShardRouter> router_;
  cluster::NetworkModel net_;
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_SERVING_STACK_H_
