#ifndef GENBASE_SERVING_SERVING_STACK_H_
#define GENBASE_SERVING_SERVING_STACK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/sim_cluster.h"
#include "common/status.h"
#include "core/datasets.h"
#include "core/driver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/admission.h"
#include "serving/counters.h"
#include "serving/faults.h"
#include "serving/result_cache.h"
#include "serving/shard_router.h"
#include "serving/single_flight.h"

namespace genbase::serving {

/// \brief Configuration of one serving stack instance.
struct ServingOptions {
  int shards = 1;

  bool cache_enabled = true;
  int64_t cache_max_entries = 256;
  int64_t cache_max_bytes = 64LL << 20;

  /// Coalesce concurrent cache misses on one key into a single engine
  /// execution (stampede control). Only meaningful with the cache enabled —
  /// followers are served through the leader's published result exactly as
  /// a hit would be.
  bool single_flight = true;

  /// Defaults keep admission disabled (nothing is shed).
  AdmissionOptions admission;

  /// Charge the cluster/ interconnect model (SimConfig GbE) for the
  /// client-to-server round trip: request dispatch plus result return. This
  /// is virtual time, folded into per-op totals the same way every other
  /// modeled cost is, and it gives cache hits a realistic network-bound
  /// floor instead of a free 0s.
  bool model_network = true;

  /// Bounded retries (exponential backoff, deterministic jitter) and
  /// optional cheap-class hedging on the miss path. Defaults disable both.
  /// The retry budget is the op's single start deadline — computed once per
  /// Serve and shared with the single-flight fallback path, so retries,
  /// hedges, and follower fallbacks all drain one clock.
  RetryPolicy retry;

  /// Fault injector replayed against this stack (non-owning; must outlive
  /// it). Null — the default — keeps every injection hook unreachable.
  FaultInjector* fault_injector = nullptr;
};

/// \brief Outcome of one Serve() call. Exactly one of these holds: the op
/// was shed (cell carries the shed status, no result), or it was served
/// (from cache, a coalesced flight, or a shard) and `cell` is a normal
/// driver cell.
struct ServeResult {
  core::CellResult cell;
  AdmissionOutcome admission = AdmissionOutcome::kAdmitted;
  bool shed = false;
  bool cache_hit = false;
  /// Served from another op's in-flight computation (single-flight
  /// follower). Reported with cache_hit set: it is a serving-tier answer.
  bool coalesced = false;
  int shard = -1;               ///< Executing shard; -1 for hits and sheds.
  double admission_wait_s = 0;  ///< Time queued (admission or flight wait).
  /// Seconds by request stage, filled for every op (sampled or not).
  /// Invariants: queue + flight == admission_wait_s, and cache + dispatch +
  /// execute == cell.total_s (verify is added by the workload runner), so
  /// per-stage histograms always sum consistently with end-to-end latency.
  obs::StageSeconds stages;
  /// The stale-hit tripwire fired on this op's lookup (it was healed by a
  /// recompute — see Serve — but the runner tail-keeps the trace).
  bool stale_tripwire = false;
  /// Extra execute attempts this op needed after failures (0 = first try
  /// served). The runner tail-keeps any op that retried or hedged.
  int retries = 0;
  /// A hedged (duplicate) attempt was issued for this op.
  bool hedged = false;
};

/// \brief The serving layer: result cache, then single-flight coalescing,
/// then admission control, then the shard router, in front of one or more
/// loaded engines. Serve() is shaped like core::RunCellWithContext — the
/// workload runner drives either path interchangeably.
///
/// Layer order is the production one: cache hits are answered before
/// admission (a hit costs microseconds plus the modeled network round trip,
/// so shedding it would throw away nearly free goodput), concurrent misses
/// on one key collapse into a single execution, and only the leaders of
/// those flights compete for the bounded execution slots.
///
/// Dataset churn: every cache key carries the dataset epoch
/// (core::Engine::dataset_epoch), so ReloadDataset — a rolling, drain-based
/// shard reload — invalidates the previous generation by construction
/// instead of racing a Clear() against in-flight inserts.
class ServingStack {
 public:
  /// Builds and loads `options.shards` engine instances. The stack owns its
  /// shards; `data` is only borrowed for loading.
  static genbase::Result<std::unique_ptr<ServingStack>> Create(
      const ServingOptions& options, const ShardRouter::EngineFactory& factory,
      const core::GenBaseData& data);

  const ServingOptions& options() const { return options_; }
  std::string engine_name() const { return router_->engine_name(); }
  int shards() const { return router_->shards(); }

  /// Serves one operation. `scheduled_arrival`, when set (open-loop
  /// workloads), anchors deadline-based shedding: the op must *start*
  /// executing within admission.max_queue_delay_s of its scheduled arrival,
  /// not of whenever a dispatch thread got around to issuing it. The same
  /// deadline bounds a single-flight follower's wait.
  ServeResult Serve(core::QueryId query, core::DatasetSize size,
                    const core::DriverOptions& options, ExecContext* ctx,
                    std::optional<std::chrono::steady_clock::time_point>
                        scheduled_arrival = std::nullopt);

  /// Swaps every shard to `data` (rolling drain-and-reload; serving
  /// continues on the other shards throughout) and advances the stack's
  /// epoch so all previous-generation cache entries become unreachable,
  /// then reclaims them. Safe to call while Serve() runs concurrently;
  /// concurrent ReloadDataset calls serialize.
  genbase::Status ReloadDataset(const core::GenBaseData& data);

  /// The dataset generation new serves are keyed under.
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  ServingCounters counters() const;

 private:
  ServingStack(const ServingOptions& options,
               std::unique_ptr<ShardRouter> router);

  /// The miss path: admission, shard execution (with bounded retries and
  /// optional hedging), network model, cache insert, and — when `flight` is
  /// set — the leader's publish. `start_deadline` is computed once per op
  /// in Serve: a follower that falls back here after a failed flight must
  /// not get a fresh budget, and the retry loop spends the same budget (see
  /// tests/serving_test FollowerFallbackKeepsDeadline). `op_id` is the op's
  /// sequence number — the injector's when one is attached, the stack's own
  /// otherwise — seeding deterministic fault draws and backoff jitter.
  ServeResult ExecuteMiss(const CacheKey& key, core::QueryId query,
                          core::DatasetSize size,
                          const core::DriverOptions& options, ExecContext* ctx,
                          std::optional<std::chrono::steady_clock::time_point>
                              start_deadline,
                          const std::shared_ptr<SingleFlightTable::Flight>&
                              flight,
                          uint64_t op_id);

  std::optional<std::chrono::steady_clock::time_point> StartDeadline(
      std::optional<std::chrono::steady_clock::time_point> scheduled_arrival)
      const;

  /// Builds the cell for an op answered at the serving tier (cache hit or
  /// coalesced flight result): `spent_s` real seconds plus the modeled
  /// network round trip, no engine work.
  ServeResult ServedFromTier(core::QueryId query, core::DatasetSize size,
                             core::QueryResult result, double spent_s,
                             const core::DriverOptions& options,
                             bool coalesced);

  /// Builds the cell for a shed op (admission or flight-wait deadline).
  ServeResult Shed(core::QueryId query, core::DatasetSize size,
                   AdmissionOutcome outcome, const std::string& detail,
                   double waited_s);

  ServingOptions options_;
  ResultCache cache_;
  SingleFlightTable flights_;
  AdmissionController admission_;
  std::unique_ptr<ShardRouter> router_;
  cluster::NetworkModel net_;

  std::atomic<uint64_t> epoch_;
  std::mutex reload_mu_;  ///< Serializes ReloadDataset calls.
  /// Per-Serve sequence for retry jitter when no injector supplies op ids.
  std::atomic<uint64_t> op_seq_{0};

  /// Registry instruments (serving_flight_* / serving_stack_* with this
  /// instance's label); Inc is atomic, so unlike the mutex-guarded layers
  /// these are plain concurrent counters — exactly what the atomics they
  /// replaced were.
  obs::Counter* stale_hits_;
  obs::Counter* reloads_;
  obs::Counter* flight_leaders_;
  obs::Counter* flight_coalesced_;
  obs::Counter* flight_coalesced_served_;
  obs::Counter* flight_follower_fallbacks_;
  obs::Counter* flight_shed_wait_timeout_;
  obs::Counter* retries_;
  obs::Counter* retry_successes_;
  obs::Counter* retry_deadline_giveups_;
  obs::Counter* hedges_;
  obs::Counter* hedge_wins_;
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_SERVING_STACK_H_
