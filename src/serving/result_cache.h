#ifndef GENBASE_SERVING_RESULT_CACHE_H_
#define GENBASE_SERVING_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/datasets.h"
#include "core/queries.h"
#include "obs/metrics.h"
#include "serving/counters.h"

namespace genbase::serving {

/// \brief Order-insensitive 64-bit fingerprint of a full QueryParams value.
/// Two parameter sets collide only if every field is bit-identical (modulo
/// hash collisions); the serving cache uses it so "same query, same knobs"
/// is decided without storing the parameter struct per entry.
uint64_t FingerprintParams(const core::QueryParams& params);

/// \brief Identity of a cacheable operation: what was asked (query), with
/// which knobs (params fingerprint), of which dataset (size, epoch).
/// Engines are deterministic given these, so equal keys imply equal
/// results. The epoch is the fleet's dataset generation
/// (ShardRouter::dataset_epoch — successful loads only, underpinned by
/// core::Engine::dataset_epoch as the per-engine change signal): a reload
/// advances it, so pre-reload entries can never answer post-reload lookups
/// — staleness is impossible by key construction, not by a cleanup races
/// might miss.
struct CacheKey {
  core::QueryId query = core::QueryId::kRegression;
  uint64_t params_fingerprint = 0;
  core::DatasetSize size = core::DatasetSize::kSmall;
  uint64_t epoch = 0;

  bool operator==(const CacheKey& o) const {
    return query == o.query && params_fingerprint == o.params_fingerprint &&
           size == o.size && epoch == o.epoch;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const;
};

/// Approximate heap footprint of one cached result (the summary structs are
/// small; only their vectors matter).
int64_t ApproxResultBytes(const core::QueryResult& result);

/// \brief Thread-safe memoizing LRU cache over query results — the serving
/// layer's answer to identical operations in a mix recomputing from scratch.
/// Bounded by entry count and by approximate bytes; inserting past either
/// bound evicts from the cold end. A single mutex guards the structure:
/// operations behind it are O(1) and the cached work itself is milliseconds
/// to seconds, so lock contention is never the bottleneck.
class ResultCache {
 public:
  ResultCache(int64_t max_entries, int64_t max_bytes);

  /// On hit, copies the cached result into `out` (if non-null), refreshes
  /// recency, and counts a hit; on miss counts a miss. `entry_epoch` (if
  /// non-null) receives the entry's insert-time epoch — a deliberately
  /// redundant copy kept apart from the key so callers can cross-check that
  /// epoch keying actually held (the serving stack's stale-hit tripwire).
  bool Lookup(const CacheKey& key, core::QueryResult* out,
              uint64_t* entry_epoch = nullptr);

  /// Lookup without side effects: no hit/miss counting, no recency refresh.
  /// The serving stack's single-flight leader uses it to double-check the
  /// cache after winning a flight — a previous leader may have published
  /// between this op's (counted) miss and its flight join, and re-probing
  /// through Lookup would double-count the op in the hit-ratio stats.
  bool Peek(const CacheKey& key, core::QueryResult* out) const;

  /// Inserts (or refreshes) `key`, then evicts least-recently-used entries
  /// until both bounds hold again. An entry larger than max_bytes on its own
  /// is not cached (counted as rejected_oversize).
  void Insert(const CacheKey& key, const core::QueryResult& value);

  /// Removes every entry whose key epoch is below `epoch` (counted as
  /// invalidated, not evicted) and returns how many were removed. The
  /// serving stack calls this after a dataset reload: old-epoch entries are
  /// already unreachable — lookups carry the new epoch — so this is memory
  /// reclamation plus accounting, not a correctness gate.
  int64_t InvalidateEpochsBelow(uint64_t epoch);

  /// Drops all entries, counting them as invalidated so the removal
  /// accounting (insertions - evictions - invalidated == entries) holds.
  void Clear();

  CacheStats stats() const;

 private:
  struct Entry {
    CacheKey key;
    core::QueryResult value;
    int64_t bytes = 0;
    /// Insert-time epoch, duplicated from key.epoch on purpose: Lookup
    /// hands it back through a path independent of map-key equality, so the
    /// stale-hit tripwire above the cache tests the keying rather than
    /// restating it.
    uint64_t epoch = 0;
  };

  void EvictWhileOverLocked();
  void UpdateGaugesLocked();

  const int64_t max_entries_;
  const int64_t max_bytes_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index_;
  int64_t bytes_ = 0;

  /// Live counters are registry instruments (serving_cache_* with this
  /// instance's label) so every export path sees them; they are only
  /// incremented under mu_, so stats() — also under mu_ — reads an exact,
  /// mutually consistent snapshot despite the relaxed atomics underneath.
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* insertions_;
  obs::Counter* evictions_;
  obs::Counter* invalidated_;
  obs::Counter* rejected_oversize_;
  obs::Gauge* entries_gauge_;
  obs::Gauge* bytes_gauge_;
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_RESULT_CACHE_H_
