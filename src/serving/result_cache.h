#ifndef GENBASE_SERVING_RESULT_CACHE_H_
#define GENBASE_SERVING_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/datasets.h"
#include "core/queries.h"
#include "serving/counters.h"

namespace genbase::serving {

/// \brief Order-insensitive 64-bit fingerprint of a full QueryParams value.
/// Two parameter sets collide only if every field is bit-identical (modulo
/// hash collisions); the serving cache uses it so "same query, same knobs"
/// is decided without storing the parameter struct per entry.
uint64_t FingerprintParams(const core::QueryParams& params);

/// \brief Identity of a cacheable operation: what was asked (query), with
/// which knobs (params fingerprint), of which dataset (size). Engines are
/// deterministic given these three, so equal keys imply equal results.
struct CacheKey {
  core::QueryId query = core::QueryId::kRegression;
  uint64_t params_fingerprint = 0;
  core::DatasetSize size = core::DatasetSize::kSmall;

  bool operator==(const CacheKey& o) const {
    return query == o.query && params_fingerprint == o.params_fingerprint &&
           size == o.size;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const;
};

/// Approximate heap footprint of one cached result (the summary structs are
/// small; only their vectors matter).
int64_t ApproxResultBytes(const core::QueryResult& result);

/// \brief Thread-safe memoizing LRU cache over query results — the serving
/// layer's answer to identical operations in a mix recomputing from scratch.
/// Bounded by entry count and by approximate bytes; inserting past either
/// bound evicts from the cold end. A single mutex guards the structure:
/// operations behind it are O(1) and the cached work itself is milliseconds
/// to seconds, so lock contention is never the bottleneck.
class ResultCache {
 public:
  ResultCache(int64_t max_entries, int64_t max_bytes);

  /// On hit, copies the cached result into `out` (if non-null), refreshes
  /// recency, and counts a hit; on miss counts a miss.
  bool Lookup(const CacheKey& key, core::QueryResult* out);

  /// Inserts (or refreshes) `key`, then evicts least-recently-used entries
  /// until both bounds hold again. An entry larger than max_bytes on its own
  /// is not cached.
  void Insert(const CacheKey& key, const core::QueryResult& value);

  void Clear();

  CacheStats stats() const;

 private:
  struct Entry {
    CacheKey key;
    core::QueryResult value;
    int64_t bytes = 0;
  };

  void EvictWhileOverLocked();

  const int64_t max_entries_;
  const int64_t max_bytes_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index_;
  int64_t bytes_ = 0;
  CacheStats counters_;
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_RESULT_CACHE_H_
