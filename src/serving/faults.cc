#include "serving/faults.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

namespace genbase::serving {

namespace {

/// Distinct mixing salts so (op, attempt, shard) perturb independent bit
/// ranges of the draw seed.
constexpr uint64_t kOpSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kAttemptSalt = 0xd1b54a32d192ed03ULL;
constexpr uint64_t kShardSalt = 0x94d049bb133111ebULL;

double UnitDraw(uint64_t seed) {
  return (SplitMix64(seed) >> 11) * 0x1.0p-53;
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  try {
    size_t pos = 0;
    const double v = std::stod(std::string(s), &pos);
    if (pos != s.size() || !std::isfinite(v)) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

/// Parses "@N" or "@N..M" into [at, until) (until = 0 for points).
bool ParseAt(std::string_view s, uint64_t* at, uint64_t* until) {
  if (s.empty() || s[0] != '@') return false;
  s.remove_prefix(1);
  const size_t dots = s.find("..");
  if (dots == std::string_view::npos) {
    *until = 0;
    return ParseU64(s, at);
  }
  return ParseU64(s.substr(0, dots), at) &&
         ParseU64(s.substr(dots + 2), until) && *until > *at;
}

bool ParseShard(std::string_view s, int* shard) {
  if (s == "*") {
    *shard = -1;
    return true;
  }
  uint64_t v = 0;
  if (!ParseU64(s, &v) || v > 1024) return false;
  *shard = static_cast<int>(v);
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kLatencySpike:
      return "latency";
    case FaultKind::kTransientError:
      return "error";
    case FaultKind::kReloadFailure:
      return "reload-fail";
    default:
      return "unknown";
  }
}

genbase::Result<FaultScript> FaultScript::Parse(std::string_view text) {
  FaultScript script;
  FaultPhase current;
  current.name = "main";
  // Every named phase is kept, even when empty — an action-free phase is a
  // deliberate fault-free run (e.g. a pre-fault baseline). Only the
  // implicit "main" preamble is dropped when the script opens with a
  // phase directive before any action.
  bool named_phase = false;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::vector<std::string_view> tok = SplitTokens(line);
    if (tok.empty()) continue;
    const auto fail = [&](const char* why) {
      return genbase::Status::InvalidArgument(
          "fault script line " + std::to_string(line_no) + ": " + why);
    };
    if (tok[0] == "seed") {
      if (tok.size() != 2 || !ParseU64(tok[1], &script.seed)) {
        return fail("expected 'seed <u64>'");
      }
      continue;
    }
    if (tok[0] == "phase") {
      if (tok.size() != 2) return fail("expected 'phase <name>'");
      if (named_phase || !current.actions.empty()) {
        script.phases.push_back(std::move(current));
      }
      named_phase = true;
      current = FaultPhase{};
      current.name = std::string(tok[1]);
      continue;
    }
    FaultAction action;
    if (tok.size() < 2 || !ParseAt(tok[0], &action.at_op, &action.until_op)) {
      return fail("expected '@<op>[..<op>] <kind> ...'");
    }
    const std::string_view kind = tok[1];
    if (kind == "crash" || kind == "recover" || kind == "reload-fail") {
      action.kind = kind == "crash"     ? FaultKind::kCrash
                    : kind == "recover" ? FaultKind::kRecover
                                        : FaultKind::kReloadFailure;
      if (action.until_op != 0) return fail("point action takes '@<op>'");
      if (tok.size() != 3 || !ParseShard(tok[2], &action.shard) ||
          action.shard < 0) {
        return fail("expected a shard index");
      }
    } else if (kind == "latency" || kind == "error") {
      action.kind = kind == "latency" ? FaultKind::kLatencySpike
                                      : FaultKind::kTransientError;
      if (action.until_op == 0) return fail("window action takes '@a..b'");
      if (tok.size() != 4 || !ParseShard(tok[2], &action.shard)) {
        return fail("expected '<shard|*> <value>'");
      }
      if (action.kind == FaultKind::kLatencySpike && action.shard < 0) {
        return fail("latency windows need a concrete shard");
      }
      if (!ParseDouble(tok[3], &action.param) || action.param < 0.0 ||
          (action.kind == FaultKind::kTransientError && action.param > 1.0)) {
        return fail("bad value (latency seconds >= 0 / probability in [0,1])");
      }
    } else {
      return fail("unknown fault kind");
    }
    current.actions.push_back(action);
  }
  // EOF closes the last phase unconditionally — a trailing empty named
  // phase is kept, and an entirely empty script keeps its empty "main" so
  // callers always see >= 1 phase.
  script.phases.push_back(std::move(current));
  return script;
}

double RetryBackoffSeconds(const RetryPolicy& policy, uint64_t seed,
                           uint64_t op, int attempt) {
  if (attempt < 1) attempt = 1;
  double base = policy.initial_backoff_s;
  // Multiply stepwise with an early cap so huge attempt numbers cannot
  // overflow to inf before the clamp.
  for (int i = 1; i < attempt && base < policy.max_backoff_s; ++i) {
    base *= policy.backoff_multiplier;
  }
  base = std::min(base, policy.max_backoff_s);
  const double jitter = 0.5 + 0.5 * UnitDraw(seed ^ (op * kOpSalt) ^
                                             (static_cast<uint64_t>(attempt) *
                                              kAttemptSalt));
  return base * jitter;
}

bool ScheduleRetry(const RetryPolicy& policy, uint64_t seed, uint64_t op,
                   int attempt, double remaining_s, double* backoff_s) {
  if (attempt + 1 > policy.max_attempts) return false;
  const double backoff = RetryBackoffSeconds(policy, seed, op, attempt);
  if (backoff > remaining_s) return false;
  *backoff_s = backoff;
  return true;
}

FaultInjector::FaultInjector(FaultScript script)
    : script_(std::move(script)),
      enabled_([this] {
        for (const FaultPhase& p : script_.phases) {
          if (!p.actions.empty()) return true;
        }
        return false;
      }()) {
  int max_shard = 0;
  for (const FaultPhase& p : script_.phases) {
    for (const FaultAction& a : p.actions) {
      max_shard = std::max(max_shard, a.shard);
    }
  }
  shard_state_.reserve(static_cast<size_t>(max_shard) + 1);
  for (int s = 0; s <= max_shard; ++s) {
    shard_state_.push_back(std::make_unique<ShardState>());
  }
  reload_armed_.assign(shard_state_.size(), false);
  auto& reg = obs::MetricsRegistry::Global();
  const std::string instance = obs::MetricsRegistry::NextInstanceId("faults");
  for (int k = 0; k < static_cast<int>(FaultKind::kNumFaultKinds); ++k) {
    injected_by_kind_[k] = reg.GetCounter(
        "serving_fault_injected_total",
        {{"instance", instance},
         {"kind", FaultKindName(static_cast<FaultKind>(k))}});
  }
}

genbase::Result<std::unique_ptr<FaultInjector>> FaultInjector::Create(
    const FaultScript& script) {
  for (const FaultPhase& p : script.phases) {
    for (const FaultAction& a : p.actions) {
      const bool window = a.kind == FaultKind::kLatencySpike ||
                          a.kind == FaultKind::kTransientError;
      if (window != (a.until_op > a.at_op)) {
        return genbase::Status::InvalidArgument(
            "fault script: window/point mismatch for " +
            std::string(FaultKindName(a.kind)));
      }
    }
  }
  // lint:allow(raw-new-delete): make_unique cannot reach the private ctor; owned immediately
  auto injector = std::unique_ptr<FaultInjector>(new FaultInjector(script));
  {
    std::lock_guard<std::mutex> lock(injector->mu_);
    injector->CompilePhaseLocked(0);
  }
  return injector;
}

void FaultInjector::CompilePhaseLocked(size_t phase_index) {
  phase_index_ = phase_index;
  events_.clear();
  next_event_ = 0;
  if (phase_index >= script_.phases.size()) {
    next_event_at_.store(~uint64_t{0}, std::memory_order_relaxed);
    return;
  }
  const FaultPhase& phase = script_.phases[phase_index];
  for (const FaultAction& a : phase.actions) {
    Event start;
    start.at_op = a.at_op;
    start.kind = a.kind;
    start.shard = a.shard;
    start.param = a.param;
    events_.push_back(start);
    if (a.until_op > a.at_op) {
      Event end = start;
      end.at_op = a.until_op;
      end.window_end = true;
      events_.push_back(end);
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& x, const Event& y) {
                     return x.at_op < y.at_op;
                   });
  LogLocked("phase " + phase.name);
  next_event_at_.store(events_.empty() ? ~uint64_t{0} : events_[0].at_op,
                       std::memory_order_relaxed);
}

void FaultInjector::LogLocked(std::string line) {
  log_.push_back(std::move(line));
}

void FaultInjector::ApplyDueLocked(uint64_t op) {
  while (next_event_ < events_.size() && events_[next_event_].at_op <= op) {
    const Event& e = events_[next_event_++];
    ShardState* state = e.shard >= 0 &&
                                e.shard < static_cast<int>(shard_state_.size())
                            ? shard_state_[static_cast<size_t>(e.shard)].get()
                            : nullptr;
    std::ostringstream line;
    line << "@" << e.at_op << " " << FaultKindName(e.kind);
    if (e.window_end) line << "-end";
    line << " shard=" << e.shard;
    switch (e.kind) {
      case FaultKind::kCrash:
        if (state != nullptr) state->crashed.store(true,
                                                   std::memory_order_relaxed);
        injected_by_kind_[static_cast<int>(FaultKind::kCrash)]->Inc();
        break;
      case FaultKind::kRecover:
        if (state != nullptr) state->crashed.store(false,
                                                   std::memory_order_relaxed);
        injected_by_kind_[static_cast<int>(FaultKind::kRecover)]->Inc();
        break;
      case FaultKind::kLatencySpike:
        if (state != nullptr) {
          state->latency_s.store(e.window_end ? 0.0 : e.param,
                                 std::memory_order_relaxed);
        }
        if (!e.window_end) {
          injected_by_kind_[static_cast<int>(FaultKind::kLatencySpike)]->Inc();
        }
        break;
      case FaultKind::kTransientError: {
        const double p = e.window_end ? 0.0 : e.param;
        if (e.shard < 0) {
          any_shard_error_p_.store(p, std::memory_order_relaxed);
        } else if (state != nullptr) {
          state->error_p.store(p, std::memory_order_relaxed);
        }
        break;
      }
      case FaultKind::kReloadFailure:
        if (e.shard >= 0 &&
            e.shard < static_cast<int>(reload_armed_.size())) {
          reload_armed_[static_cast<size_t>(e.shard)] = true;
        }
        break;
      default:
        break;
    }
    LogLocked(line.str());
  }
  next_event_at_.store(next_event_ < events_.size()
                           ? events_[next_event_].at_op
                           : ~uint64_t{0},
                       std::memory_order_relaxed);
}

uint64_t FaultInjector::OnServe() {
  const uint64_t op = op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (op >= next_event_at_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mu_);
    ApplyDueLocked(op);
  }
  return op;
}

bool FaultInjector::AdvancePhase() {
  std::lock_guard<std::mutex> lock(mu_);
  // Window state does not outlive its phase; crash state does (a crash is a
  // condition, not a window).
  for (auto& state : shard_state_) {
    state->latency_s.store(0.0, std::memory_order_relaxed);
    state->error_p.store(0.0, std::memory_order_relaxed);
  }
  any_shard_error_p_.store(0.0, std::memory_order_relaxed);
  op_counter_.store(0, std::memory_order_relaxed);
  if (phase_index_ + 1 >= script_.phases.size()) {
    events_.clear();
    next_event_ = 0;
    next_event_at_.store(~uint64_t{0}, std::memory_order_relaxed);
    return false;
  }
  CompilePhaseLocked(phase_index_ + 1);
  // Actions scheduled at op 0 apply before the phase's first serve.
  ApplyDueLocked(0);
  return true;
}

bool FaultInjector::ShardCrashed(int shard) const {
  if (shard < 0 || shard >= static_cast<int>(shard_state_.size())) {
    return false;
  }
  return shard_state_[static_cast<size_t>(shard)]->crashed.load(
      std::memory_order_relaxed);
}

double FaultInjector::ShardLatencySeconds(int shard) const {
  if (shard < 0 || shard >= static_cast<int>(shard_state_.size())) {
    return 0.0;
  }
  return shard_state_[static_cast<size_t>(shard)]->latency_s.load(
      std::memory_order_relaxed);
}

bool FaultInjector::DrawTransientError(int shard, uint64_t op, int attempt) {
  double p = any_shard_error_p_.load(std::memory_order_relaxed);
  if (shard >= 0 && shard < static_cast<int>(shard_state_.size())) {
    p = std::max(p, shard_state_[static_cast<size_t>(shard)]->error_p.load(
                        std::memory_order_relaxed));
  }
  if (p <= 0.0) return false;
  const double u =
      UnitDraw(script_.seed ^ (op * kOpSalt) ^
               (static_cast<uint64_t>(attempt) * kAttemptSalt) ^
               (static_cast<uint64_t>(shard + 1) * kShardSalt));
  if (u >= p) return false;
  injected_by_kind_[static_cast<int>(FaultKind::kTransientError)]->Inc();
  std::ostringstream line;
  line << "@" << op << " error shard=" << shard << " attempt=" << attempt;
  std::lock_guard<std::mutex> lock(mu_);
  LogLocked(line.str());
  return true;
}

bool FaultInjector::ConsumeReloadFailure(int shard) {
  if (shard < 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= static_cast<int>(reload_armed_.size()) ||
      !reload_armed_[static_cast<size_t>(shard)]) {
    return false;
  }
  reload_armed_[static_cast<size_t>(shard)] = false;
  injected_by_kind_[static_cast<int>(FaultKind::kReloadFailure)]->Inc();
  LogLocked("reload-fail shard=" + std::to_string(shard));
  return true;
}

std::string FaultInjector::EventLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& line : log_) {
    out += line;
    out += '\n';
  }
  return out;
}

int64_t FaultInjector::injected(FaultKind kind) const {
  return injected_by_kind_[static_cast<int>(kind)]->Value();
}

int64_t FaultInjector::injected_total() const {
  int64_t total = 0;
  for (const auto* counter : injected_by_kind_) total += counter->Value();
  return total;
}

}  // namespace genbase::serving
