#ifndef GENBASE_SERVING_SHARD_ROUTER_H_
#define GENBASE_SERVING_SHARD_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/datasets.h"
#include "core/driver.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "serving/counters.h"

namespace genbase::serving {

/// \brief Fans operations across N data-parallel engine shards.
///
/// Each shard is an independent engine instance with its own loaded copy of
/// the dataset and its own thread pool — the process-per-shard layout of a
/// scaled-out analytics service, so ops proceed in parallel with no shared
/// mutable state between shards. Routing is join-shortest-queue: an op goes
/// to the shard with the fewest outstanding ops (ties to the lowest id,
/// which keeps a 1-shard router byte-identical to the direct engine path).
///
/// Because every shard holds the full dataset, any shard's answer equals the
/// single-instance answer — the router's merge step combines per-shard
/// *statistics*, never partial results, and per-op verification against
/// core/reference stays exact. Row-partitioned placement, where a query
/// fans out over data slices (core/datasets dims partitioned via
/// cluster::PartitionRows) and partial results merge through distributed
/// kernels, is what cluster::ClusterEngine models; pairing it with this
/// serving path is named in ROADMAP as the next scaling step.
class ShardRouter {
 public:
  using EngineFactory = std::function<std::unique_ptr<core::Engine>()>;

  /// Builds `shards` engine instances via `factory` and loads `data` into
  /// each. Fails if any shard fails to load.
  static genbase::Result<std::unique_ptr<ShardRouter>> Create(
      int shards, const EngineFactory& factory, const core::GenBaseData& data);

  int shards() const { return static_cast<int>(shards_.size()); }
  std::string engine_name() const { return shards_[0]->engine->name(); }

  /// Claims the least-loaded shard for one op (increments its outstanding
  /// count); the matching RunOnShard releases it. Shards mid-reload are
  /// skipped; if every shard is draining (only possible with one shard),
  /// blocks until one is serveable again.
  int AcquireShard();

  /// Executes one operation on shard `s` through core::RunCellWithContext
  /// (the timed, timeout-enforcing path), updates that shard's stats, and
  /// releases it. `data_epoch` (optional) receives the generation of the
  /// dataset this shard holds (see dataset_epoch) — stable across the run,
  /// because reloads drain a shard before touching its data.
  core::CellResult RunOnShard(int s, core::QueryId query,
                              core::DatasetSize size,
                              const core::DriverOptions& options,
                              ExecContext* ctx, uint64_t* data_epoch = nullptr);

  /// Rolling reload: one shard at a time is marked draining (AcquireShard
  /// routes around it), waited idle, and reloaded with `data` — the rest of
  /// the fleet keeps serving. An op therefore never observes a dataset swap
  /// mid-query; during the reload window different shards may serve
  /// different generations, which is inherent to rolling reloads and is
  /// what the serving stack's epoch-keyed cache exists to keep honest.
  /// Serialized against itself by the caller (ServingStack).
  genbase::Status ReloadShards(const core::GenBaseData& data);

  /// The fleet's dataset generation: the minimum *successfully loaded*
  /// generation across shards, i.e. the one every shard is guaranteed to
  /// have reached. Deliberately not the raw core::Engine::dataset_epoch —
  /// that counter advances on failed loads too, so comparing it across
  /// shards after a mid-roll failure would leave the fleet permanently
  /// desynchronized; per-shard generations only advance on success, so a
  /// failed roll heals on the next successful ReloadShards.
  uint64_t dataset_epoch() const;

  std::vector<ShardStats> stats() const;

 private:
  struct Shard {
    std::unique_ptr<core::Engine> engine;
    int outstanding = 0;       ///< Guarded by router mu_.
    bool draining = false;     ///< Guarded by router mu_.
    uint64_t generation = 0;   ///< Successfully loaded gen; guarded by mu_.
    /// Registry instruments (serving_shard_* with instance + shard labels),
    /// incremented under router mu_ so stats() snapshots stay exact.
    obs::Counter* ops = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* infs = nullptr;
    obs::Gauge* busy_s = nullptr;
  };

  ShardRouter() = default;

  mutable std::mutex mu_;
  std::condition_variable shard_state_;  ///< Drain-idle + undrain wakeups.
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t generation_ = 0;  ///< Last fleet-wide successful gen; mu_.
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_SHARD_ROUTER_H_
