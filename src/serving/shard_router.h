#ifndef GENBASE_SERVING_SHARD_ROUTER_H_
#define GENBASE_SERVING_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/datasets.h"
#include "core/driver.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "serving/counters.h"
#include "serving/faults.h"

namespace genbase::serving {

/// \brief Fans operations across N data-parallel engine shards.
///
/// Each shard is an independent engine instance with its own loaded copy of
/// the dataset and its own thread pool — the process-per-shard layout of a
/// scaled-out analytics service, so ops proceed in parallel with no shared
/// mutable state between shards. Routing is join-shortest-queue: an op goes
/// to the shard with the fewest outstanding ops (ties to the lowest id,
/// which keeps a 1-shard router byte-identical to the direct engine path).
///
/// Because every shard holds the full dataset, any shard's answer equals the
/// single-instance answer — the router's merge step combines per-shard
/// *statistics*, never partial results, and per-op verification against
/// core/reference stays exact. Row-partitioned placement, where a query
/// fans out over data slices (core/datasets dims partitioned via
/// cluster::PartitionRows) and partial results merge through distributed
/// kernels, is what cluster::ClusterEngine models; pairing it with this
/// serving path is named in ROADMAP as the next scaling step.
class ShardRouter {
 public:
  using EngineFactory = std::function<std::unique_ptr<core::Engine>()>;

  /// Builds `shards` engine instances via `factory` and loads `data` into
  /// each. Fails if any shard fails to load.
  static genbase::Result<std::unique_ptr<ShardRouter>> Create(
      int shards, const EngineFactory& factory, const core::GenBaseData& data);

  int shards() const { return static_cast<int>(shards_.size()); }
  std::string engine_name() const { return shards_[0]->engine->name(); }

  /// Attaches a fault injector (non-owning; must outlive the router and be
  /// set before serving starts). Null (the default) keeps every injection
  /// hook unreachable — the zero-cost no-op configuration.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  /// Claims a shard for one op (increments its outstanding count); the
  /// matching RunOnShard releases it. Because every shard holds a full copy
  /// of the dataset, the fleet is a replica group and routing is
  /// failure-aware join-shortest-queue: down shards (crashed / failed
  /// reload / open breaker) are skipped while any alternative serves,
  /// degraded shards (latency spike, half-open breaker) are deprioritized
  /// but still probed, and ties go to the lowest id (a 1-shard healthy
  /// router stays byte-identical to the direct engine path). `exclude`
  /// (>= 0) asks for a different shard than a failed or hedged attempt
  /// used, honored whenever any other shard is available. If every shard is
  /// down, the least-loaded one is returned anyway — RunOnShard then fails
  /// fast instead of this call deadlocking. Only when every shard is
  /// draining (single-shard mid-reload) does this block.
  int AcquireShard(int exclude = -1);

  /// Executes one operation on shard `s` through core::RunCellWithContext
  /// (the timed, timeout-enforcing path), updates that shard's stats and
  /// breaker state, and releases it. `data_epoch` (optional) receives the
  /// generation of the dataset this shard holds (see dataset_epoch) —
  /// stable across the run, because reloads drain a shard before touching
  /// its data. `fault_op`/`attempt` feed the injector's deterministic
  /// transient-error draw (ignored with no injector attached). A crashed
  /// shard or one whose last reload failed answers an Internal error
  /// without touching the engine — failing fast is what lets the retry
  /// layer move the op to a replica.
  core::CellResult RunOnShard(int s, core::QueryId query,
                              core::DatasetSize size,
                              const core::DriverOptions& options,
                              ExecContext* ctx, uint64_t* data_epoch = nullptr,
                              uint64_t fault_op = 0, int attempt = 1);

  /// Rolling reload: one shard at a time is marked draining (AcquireShard
  /// routes around it), waited idle, and reloaded with `data` — the rest of
  /// the fleet keeps serving. An op therefore never observes a dataset swap
  /// mid-query; during the reload window different shards may serve
  /// different generations, which is inherent to rolling reloads and is
  /// what the serving stack's epoch-keyed cache exists to keep honest.
  /// Serialized against itself by the caller (ServingStack).
  genbase::Status ReloadShards(const core::GenBaseData& data);

  /// The fleet's dataset generation: the minimum *successfully loaded*
  /// generation across serving shards, i.e. the one every routable shard is
  /// guaranteed to have reached. Deliberately not the raw
  /// core::Engine::dataset_epoch — that counter advances on failed loads
  /// too, so comparing it across shards after a mid-roll failure would
  /// leave the fleet permanently desynchronized; per-shard generations only
  /// advance on success, so a failed roll heals on the next successful
  /// ReloadShards. Shards marked down by a failed reload are excluded from
  /// the minimum (they are routed around, so their stale generation must
  /// not pin the fleet's epoch) until a successful reload restores them.
  uint64_t dataset_epoch() const;

  /// Serving-capacity fraction for brown-out wiring: mean over shards of
  /// healthy=1, degraded=0.5, down=0, refreshed on every acquire and on
  /// health transitions. Relaxed read, safe from any thread.
  double capacity_fraction() const {
    return capacity_fraction_.load(std::memory_order_relaxed);
  }

  std::vector<ShardStats> stats() const;

  /// Error-rate circuit breaker: this many consecutive non-timeout errors
  /// open a shard's breaker (health -> down); after kBreakerCooldownOps
  /// acquires fleet-wide the breaker goes half-open (health -> degraded)
  /// and the next result on that shard closes it (success) or re-opens it
  /// (error). Values chosen so the breaker reacts within one stampede burst
  /// but a single flaky op never benches a shard.
  static constexpr int kBreakerErrorThreshold = 3;
  static constexpr uint64_t kBreakerCooldownOps = 64;

 private:
  struct Shard {
    std::unique_ptr<core::Engine> engine;
    int outstanding = 0;       ///< Guarded by router mu_.
    bool draining = false;     ///< Guarded by router mu_.
    uint64_t generation = 0;   ///< Successfully loaded gen; guarded by mu_.
    /// Organic routing health (breaker / reload state; the injector's crash
    /// state overlays this at read time). Guarded by mu_.
    ShardHealth health = ShardHealth::kHealthy;
    bool reload_failed = false;      ///< Last reload failed; guarded by mu_.
    int consecutive_errors = 0;      ///< Breaker input; guarded by mu_.
    uint64_t breaker_open_until = 0; ///< acquire_seq_ tick; 0 = not open.
    /// Registry instruments (serving_shard_* with instance + shard labels),
    /// incremented under router mu_ so stats() snapshots stay exact.
    obs::Counter* ops = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* infs = nullptr;
    obs::Gauge* busy_s = nullptr;
    obs::Counter* breaker_opens = nullptr;
    obs::Gauge* health_gauge = nullptr;
  };

  ShardRouter() = default;

  /// Effective health: the organic state overlaid with the injector's crash
  /// flag. Requires mu_.
  ShardHealth EffectiveHealthLocked(int s) const;
  /// Breaker bookkeeping for one completed attempt on shard s. Requires mu_.
  void NoteResultLocked(int s, bool error);
  /// Recomputes capacity_fraction_ and health gauges. Requires mu_.
  void RecomputeCapacityLocked();

  mutable std::mutex mu_;
  std::condition_variable shard_state_;  ///< Drain-idle + undrain wakeups.
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t generation_ = 0;    ///< Last fleet-wide successful gen; mu_.
  uint64_t acquire_seq_ = 0;   ///< Breaker cooldown clock; guarded by mu_.
  std::atomic<double> capacity_fraction_{1.0};
  FaultInjector* faults_ = nullptr;  ///< Non-owning; set before serving.
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_SHARD_ROUTER_H_
