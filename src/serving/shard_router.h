#ifndef GENBASE_SERVING_SHARD_ROUTER_H_
#define GENBASE_SERVING_SHARD_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/datasets.h"
#include "core/driver.h"
#include "core/engine.h"
#include "serving/counters.h"

namespace genbase::serving {

/// \brief Fans operations across N data-parallel engine shards.
///
/// Each shard is an independent engine instance with its own loaded copy of
/// the dataset and its own thread pool — the process-per-shard layout of a
/// scaled-out analytics service, so ops proceed in parallel with no shared
/// mutable state between shards. Routing is join-shortest-queue: an op goes
/// to the shard with the fewest outstanding ops (ties to the lowest id,
/// which keeps a 1-shard router byte-identical to the direct engine path).
///
/// Because every shard holds the full dataset, any shard's answer equals the
/// single-instance answer — the router's merge step combines per-shard
/// *statistics*, never partial results, and per-op verification against
/// core/reference stays exact. Row-partitioned placement, where a query
/// fans out over data slices (core/datasets dims partitioned via
/// cluster::PartitionRows) and partial results merge through distributed
/// kernels, is what cluster::ClusterEngine models; pairing it with this
/// serving path is named in ROADMAP as the next scaling step.
class ShardRouter {
 public:
  using EngineFactory = std::function<std::unique_ptr<core::Engine>()>;

  /// Builds `shards` engine instances via `factory` and loads `data` into
  /// each. Fails if any shard fails to load.
  static genbase::Result<std::unique_ptr<ShardRouter>> Create(
      int shards, const EngineFactory& factory, const core::GenBaseData& data);

  int shards() const { return static_cast<int>(shards_.size()); }
  std::string engine_name() const { return shards_[0]->engine->name(); }

  /// Claims the least-loaded shard for one op (increments its outstanding
  /// count); the matching RunOnShard releases it.
  int AcquireShard();

  /// Executes one operation on shard `s` through core::RunCellWithContext
  /// (the timed, timeout-enforcing path), updates that shard's stats, and
  /// releases it.
  core::CellResult RunOnShard(int s, core::QueryId query,
                              core::DatasetSize size,
                              const core::DriverOptions& options,
                              ExecContext* ctx);

  std::vector<ShardStats> stats() const;

 private:
  struct Shard {
    std::unique_ptr<core::Engine> engine;
    int outstanding = 0;      ///< Guarded by router mu_.
    ShardStats stats;         ///< Guarded by router mu_.
  };

  ShardRouter() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace genbase::serving

#endif  // GENBASE_SERVING_SHARD_ROUTER_H_
