#include "relational/row_ops.h"

namespace genbase::relational {

namespace {
constexpr int64_t kDeadlineCheckInterval = 8192;
}  // namespace

genbase::Status RowScan::Open(ExecContext* ctx) {
  ctx_ = ctx;
  pos_ = 0;
  return genbase::Status::OK();
}

genbase::Result<bool> RowScan::Next(std::vector<storage::Value>* out) {
  if (pos_ >= table_->num_rows()) return false;
  if (ctx_ != nullptr && (pos_ % kDeadlineCheckInterval) == 0) {
    GENBASE_RETURN_NOT_OK(ctx_->CheckBudgets());
  }
  const int n = table_->schema().num_fields();
  out->resize(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) (*out)[static_cast<size_t>(c)] =
      table_->Get(pos_, c);
  ++pos_;
  return true;
}

genbase::Result<bool> RowFilter::Next(std::vector<storage::Value>* out) {
  for (;;) {
    GENBASE_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (pred_(*out)) return true;
  }
}

RowProject::RowProject(std::unique_ptr<RowOperator> child,
                       std::vector<int> columns)
    : child_(std::move(child)), columns_(std::move(columns)) {
  std::vector<storage::Field> fields;
  fields.reserve(columns_.size());
  for (int c : columns_) fields.push_back(child_->schema().field(c));
  schema_ = storage::Schema(std::move(fields));
}

genbase::Result<bool> RowProject::Next(std::vector<storage::Value>* out) {
  GENBASE_ASSIGN_OR_RETURN(bool more, child_->Next(&buffer_));
  if (!more) return false;
  out->resize(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    (*out)[i] = buffer_[static_cast<size_t>(columns_[i])];
  }
  return true;
}

RowHashJoin::RowHashJoin(std::unique_ptr<RowOperator> build,
                         std::unique_ptr<RowOperator> probe, int build_key,
                         int probe_key)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_key_(build_key),
      probe_key_(probe_key) {
  std::vector<storage::Field> fields = build_->schema().fields();
  for (const auto& f : probe_->schema().fields()) fields.push_back(f);
  schema_ = storage::Schema(std::move(fields));
}

genbase::Status RowHashJoin::Open(ExecContext* ctx) {
  ctx_ = ctx;
  GENBASE_RETURN_NOT_OK(build_->Open(ctx));
  GENBASE_RETURN_NOT_OK(probe_->Open(ctx));
  std::vector<storage::Value> row;
  int64_t i = 0;
  for (;;) {
    auto more = build_->Next(&row);
    if (!more.ok()) return more.status();
    if (!*more) break;
    if (ctx != nullptr && (i % kDeadlineCheckInterval) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    const int64_t key = row[static_cast<size_t>(build_key_)].AsInt();
    hash_[key].push_back(static_cast<int64_t>(build_rows_.size()));
    build_rows_.push_back(row);
    ++i;
  }
  matches_ = nullptr;
  match_pos_ = 0;
  return genbase::Status::OK();
}

genbase::Result<bool> RowHashJoin::Next(std::vector<storage::Value>* out) {
  for (;;) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      const auto& brow =
          build_rows_[static_cast<size_t>((*matches_)[match_pos_])];
      ++match_pos_;
      out->clear();
      out->reserve(brow.size() + probe_row_.size());
      out->insert(out->end(), brow.begin(), brow.end());
      out->insert(out->end(), probe_row_.begin(), probe_row_.end());
      return true;
    }
    GENBASE_ASSIGN_OR_RETURN(bool more, probe_->Next(&probe_row_));
    if (!more) return false;
    if (ctx_ != nullptr && (++tuples_seen_ % kDeadlineCheckInterval) == 0) {
      GENBASE_RETURN_NOT_OK(ctx_->CheckBudgets());
    }
    const auto it =
        hash_.find(probe_row_[static_cast<size_t>(probe_key_)].AsInt());
    if (it == hash_.end()) {
      matches_ = nullptr;
      continue;
    }
    matches_ = &it->second;
    match_pos_ = 0;
  }
}

genbase::Result<storage::RowStore> MaterializeRows(RowOperator* op,
                                                   ExecContext* ctx,
                                                   MemoryTracker* tracker) {
  GENBASE_RETURN_NOT_OK(op->Open(ctx));
  storage::RowStore out(op->schema(), tracker);
  std::vector<storage::Value> row;
  for (;;) {
    GENBASE_ASSIGN_OR_RETURN(bool more, op->Next(&row));
    if (!more) break;
    GENBASE_RETURN_NOT_OK(out.Append(row.data()));
  }
  return out;
}

genbase::Result<int64_t> CountRows(RowOperator* op, ExecContext* ctx) {
  GENBASE_RETURN_NOT_OK(op->Open(ctx));
  std::vector<storage::Value> row;
  int64_t n = 0;
  for (;;) {
    GENBASE_ASSIGN_OR_RETURN(bool more, op->Next(&row));
    if (!more) break;
    ++n;
  }
  return n;
}

}  // namespace genbase::relational
