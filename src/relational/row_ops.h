#ifndef GENBASE_RELATIONAL_ROW_OPS_H_
#define GENBASE_RELATIONAL_ROW_OPS_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "storage/row_store.h"
#include "storage/types.h"

namespace genbase::relational {

/// \brief Volcano-style tuple-at-a-time operator tree: the Postgres-like
/// execution model. Every tuple passes through virtual Next() calls and
/// std::function predicates — per-tuple interpretation overhead is the point
/// (it is what the paper's row-store configurations pay).
class RowOperator {
 public:
  virtual ~RowOperator() = default;

  virtual const storage::Schema& schema() const = 0;

  /// Prepares the operator tree (builds hash tables etc.).
  virtual genbase::Status Open(ExecContext* ctx) = 0;

  /// Produces the next tuple into *out. Returns false at end of stream.
  virtual genbase::Result<bool> Next(std::vector<storage::Value>* out) = 0;
};

/// Sequential scan over a RowStore.
class RowScan : public RowOperator {
 public:
  explicit RowScan(const storage::RowStore* table) : table_(table) {}

  const storage::Schema& schema() const override { return table_->schema(); }
  genbase::Status Open(ExecContext* ctx) override;
  genbase::Result<bool> Next(std::vector<storage::Value>* out) override;

 private:
  const storage::RowStore* table_;
  ExecContext* ctx_ = nullptr;
  int64_t pos_ = 0;
};

using RowPredicate =
    std::function<bool(const std::vector<storage::Value>&)>;

/// Tuple filter with an interpreted predicate.
class RowFilter : public RowOperator {
 public:
  RowFilter(std::unique_ptr<RowOperator> child, RowPredicate pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  const storage::Schema& schema() const override { return child_->schema(); }
  genbase::Status Open(ExecContext* ctx) override {
    return child_->Open(ctx);
  }
  genbase::Result<bool> Next(std::vector<storage::Value>* out) override;

 private:
  std::unique_ptr<RowOperator> child_;
  RowPredicate pred_;
};

/// Column projection by index list.
class RowProject : public RowOperator {
 public:
  RowProject(std::unique_ptr<RowOperator> child, std::vector<int> columns);

  const storage::Schema& schema() const override { return schema_; }
  genbase::Status Open(ExecContext* ctx) override {
    return child_->Open(ctx);
  }
  genbase::Result<bool> Next(std::vector<storage::Value>* out) override;

 private:
  std::unique_ptr<RowOperator> child_;
  std::vector<int> columns_;
  storage::Schema schema_;
  std::vector<storage::Value> buffer_;
};

/// Classic hash join on int64 key columns: Open() drains and hashes the
/// build side, Next() streams the probe side. Output schema is build fields
/// followed by probe fields.
class RowHashJoin : public RowOperator {
 public:
  RowHashJoin(std::unique_ptr<RowOperator> build,
              std::unique_ptr<RowOperator> probe, int build_key,
              int probe_key);

  const storage::Schema& schema() const override { return schema_; }
  genbase::Status Open(ExecContext* ctx) override;
  genbase::Result<bool> Next(std::vector<storage::Value>* out) override;

 private:
  std::unique_ptr<RowOperator> build_;
  std::unique_ptr<RowOperator> probe_;
  int build_key_;
  int probe_key_;
  storage::Schema schema_;
  ExecContext* ctx_ = nullptr;

  // Build rows stored densely; hash maps key -> row indices.
  std::vector<std::vector<storage::Value>> build_rows_;
  std::unordered_map<int64_t, std::vector<int64_t>> hash_;
  std::vector<storage::Value> probe_row_;
  const std::vector<int64_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  int64_t tuples_seen_ = 0;
};

/// Drains an operator into a RowStore (charged to `tracker`).
genbase::Result<storage::RowStore> MaterializeRows(RowOperator* op,
                                                   ExecContext* ctx,
                                                   MemoryTracker* tracker);

/// Runs a count-only drain (used by tests and cardinality estimation).
genbase::Result<int64_t> CountRows(RowOperator* op, ExecContext* ctx);

}  // namespace genbase::relational

#endif  // GENBASE_RELATIONAL_ROW_OPS_H_
