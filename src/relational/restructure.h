#ifndef GENBASE_RELATIONAL_RESTRUCTURE_H_
#define GENBASE_RELATIONAL_RESTRUCTURE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::relational {

/// \brief Mapping from sparse entity ids (gene/patient ids) to dense matrix
/// indices — the "restructure the information as a matrix" step in the
/// paper's query workflows. Relational engines pay this cost explicitly;
/// the array engine does not (its data already lives in a matrix).
struct DenseMapping {
  std::vector<int64_t> ids;                     ///< index -> id (sorted).
  std::unordered_map<int64_t, int64_t> index;   ///< id -> index.

  int64_t size() const { return static_cast<int64_t>(ids.size()); }
};

/// Builds a mapping from (possibly unsorted, possibly duplicated) ids.
DenseMapping MakeDenseMapping(std::vector<int64_t> ids);

/// Scatters relational triples (row_id, col_id, value) into a dense matrix
/// using the given mappings. Triples whose ids are absent from a mapping are
/// skipped (they were filtered out upstream).
genbase::Result<linalg::Matrix> TriplesToMatrix(
    const int64_t* row_ids, const int64_t* col_ids, const double* values,
    int64_t count, const DenseMapping& row_map, const DenseMapping& col_map,
    ExecContext* ctx, MemoryTracker* tracker);

}  // namespace genbase::relational

#endif  // GENBASE_RELATIONAL_RESTRUCTURE_H_
