#include "relational/restructure.h"

#include <algorithm>

namespace genbase::relational {

DenseMapping MakeDenseMapping(std::vector<int64_t> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  DenseMapping m;
  m.index.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    m.index.emplace(ids[i], static_cast<int64_t>(i));
  }
  m.ids = std::move(ids);
  return m;
}

genbase::Result<linalg::Matrix> TriplesToMatrix(
    const int64_t* row_ids, const int64_t* col_ids, const double* values,
    int64_t count, const DenseMapping& row_map, const DenseMapping& col_map,
    ExecContext* ctx, MemoryTracker* tracker) {
  GENBASE_ASSIGN_OR_RETURN(
      linalg::Matrix m,
      linalg::Matrix::Create(row_map.size(), col_map.size(), tracker));
  for (int64_t i = 0; i < count; ++i) {
    if (ctx != nullptr && (i & 65535) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    const auto rit = row_map.index.find(row_ids[i]);
    if (rit == row_map.index.end()) continue;
    const auto cit = col_map.index.find(col_ids[i]);
    if (cit == col_map.index.end()) continue;
    m(rit->second, cit->second) = values[i];
  }
  return m;
}

}  // namespace genbase::relational
