#ifndef GENBASE_RELATIONAL_COL_OPS_H_
#define GENBASE_RELATIONAL_COL_OPS_H_

#include <cstdint>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "storage/column_store.h"

namespace genbase::relational {

/// \brief Comparison predicate against a single column — the unit of
/// vectorized filtering (a tight loop over one typed array, no per-tuple
/// function calls). Conjunctions apply several predicates to a shrinking
/// selection vector.
struct ColumnPredicate {
  enum class Op { kLt, kLe, kEq, kGe, kGt };
  int column = 0;
  Op op = Op::kLt;
  storage::Value operand;

  static ColumnPredicate Lt(int col, storage::Value v) {
    return {col, Op::kLt, v};
  }
  static ColumnPredicate Le(int col, storage::Value v) {
    return {col, Op::kLe, v};
  }
  static ColumnPredicate Eq(int col, storage::Value v) {
    return {col, Op::kEq, v};
  }
  static ColumnPredicate Ge(int col, storage::Value v) {
    return {col, Op::kGe, v};
  }
  static ColumnPredicate Gt(int col, storage::Value v) {
    return {col, Op::kGt, v};
  }
};

/// Row indices of `table` satisfying all predicates (ANDed), vectorized one
/// predicate at a time.
genbase::Result<std::vector<int64_t>> FilterColumns(
    const storage::ColumnTable& table,
    const std::vector<ColumnPredicate>& predicates, ExecContext* ctx);

/// Gathers `selection` rows of `table` into a new ColumnTable.
genbase::Result<storage::ColumnTable> GatherRows(
    const storage::ColumnTable& table, const std::vector<int64_t>& selection,
    ExecContext* ctx, MemoryTracker* tracker);

/// \brief Join match pair lists (parallel arrays of row indices).
struct JoinIndex {
  std::vector<int64_t> left;
  std::vector<int64_t> right;
};

/// Hash join on int64 key columns, producing the match index. The caller
/// assembles output columns with GatherRows-style gathers, which is how a
/// late-materializing column store executes joins.
genbase::Result<JoinIndex> HashJoinIndices(const storage::ColumnTable& left,
                                           int left_key,
                                           const storage::ColumnTable& right,
                                           int right_key, ExecContext* ctx,
                                           MemoryTracker* tracker);

/// As above but the left side is pre-filtered to `left_selection`.
genbase::Result<JoinIndex> HashJoinIndicesFiltered(
    const storage::ColumnTable& left, int left_key,
    const std::vector<int64_t>& left_selection,
    const storage::ColumnTable& right, int right_key, ExecContext* ctx,
    MemoryTracker* tracker);

}  // namespace genbase::relational

#endif  // GENBASE_RELATIONAL_COL_OPS_H_
