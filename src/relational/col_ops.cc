#include "relational/col_ops.h"

#include <unordered_map>

namespace genbase::relational {

namespace {

template <typename T, typename Cmp>
void FilterTyped(const std::vector<T>& col, const std::vector<int64_t>& in,
                 bool use_all, int64_t n, T operand, Cmp cmp,
                 std::vector<int64_t>* out) {
  out->clear();
  if (use_all) {
    for (int64_t i = 0; i < n; ++i) {
      if (cmp(col[static_cast<size_t>(i)], operand)) out->push_back(i);
    }
  } else {
    for (int64_t i : in) {
      if (cmp(col[static_cast<size_t>(i)], operand)) out->push_back(i);
    }
  }
}

template <typename T>
void DispatchOp(const std::vector<T>& col, const std::vector<int64_t>& in,
                bool use_all, int64_t n, T operand, ColumnPredicate::Op op,
                std::vector<int64_t>* out) {
  switch (op) {
    case ColumnPredicate::Op::kLt:
      FilterTyped(col, in, use_all, n, operand,
                  [](T a, T b) { return a < b; }, out);
      break;
    case ColumnPredicate::Op::kLe:
      FilterTyped(col, in, use_all, n, operand,
                  [](T a, T b) { return a <= b; }, out);
      break;
    case ColumnPredicate::Op::kEq:
      FilterTyped(col, in, use_all, n, operand,
                  [](T a, T b) { return a == b; }, out);
      break;
    case ColumnPredicate::Op::kGe:
      FilterTyped(col, in, use_all, n, operand,
                  [](T a, T b) { return a >= b; }, out);
      break;
    case ColumnPredicate::Op::kGt:
      FilterTyped(col, in, use_all, n, operand,
                  [](T a, T b) { return a > b; }, out);
      break;
  }
}

}  // namespace

genbase::Result<std::vector<int64_t>> FilterColumns(
    const storage::ColumnTable& table,
    const std::vector<ColumnPredicate>& predicates, ExecContext* ctx) {
  std::vector<int64_t> current;
  bool use_all = true;
  std::vector<int64_t> next;
  for (const auto& pred : predicates) {
    if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    const auto& field = table.schema().field(pred.column);
    if (field.type == storage::DataType::kInt64) {
      DispatchOp(table.IntColumn(pred.column), current, use_all,
                 table.num_rows(), pred.operand.AsInt(), pred.op, &next);
    } else {
      DispatchOp(table.DoubleColumn(pred.column), current, use_all,
                 table.num_rows(), pred.operand.AsDouble(), pred.op, &next);
    }
    current.swap(next);
    use_all = false;
  }
  if (use_all) {
    current.resize(static_cast<size_t>(table.num_rows()));
    for (int64_t i = 0; i < table.num_rows(); ++i) current[i] = i;
  }
  return current;
}

genbase::Result<storage::ColumnTable> GatherRows(
    const storage::ColumnTable& table, const std::vector<int64_t>& selection,
    ExecContext* ctx, MemoryTracker* tracker) {
  storage::ColumnTable out(table.schema(), tracker);
  GENBASE_RETURN_NOT_OK(
      out.Reserve(static_cast<int64_t>(selection.size())));
  for (int c = 0; c < table.schema().num_fields(); ++c) {
    if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    if (table.schema().field(c).type == storage::DataType::kInt64) {
      const auto& src = table.IntColumn(c);
      auto& dst = out.MutableIntColumn(c);
      dst.resize(selection.size());
      for (size_t i = 0; i < selection.size(); ++i) {
        dst[i] = src[static_cast<size_t>(selection[i])];
      }
    } else {
      const auto& src = table.DoubleColumn(c);
      auto& dst = out.MutableDoubleColumn(c);
      dst.resize(selection.size());
      for (size_t i = 0; i < selection.size(); ++i) {
        dst[i] = src[static_cast<size_t>(selection[i])];
      }
    }
  }
  GENBASE_RETURN_NOT_OK(out.FinishBulkLoad());
  return out;
}

genbase::Result<JoinIndex> HashJoinIndicesFiltered(
    const storage::ColumnTable& left, int left_key,
    const std::vector<int64_t>& left_selection,
    const storage::ColumnTable& right, int right_key, ExecContext* ctx,
    MemoryTracker* tracker) {
  // Reserve a rough working-set estimate for the hash table.
  const int64_t build_n = static_cast<int64_t>(left_selection.size());
  const int64_t hash_bytes = build_n * 32;
  GENBASE_ASSIGN_OR_RETURN(auto reservation,
                           ScopedReservation::Acquire(tracker, hash_bytes));

  std::unordered_map<int64_t, std::vector<int64_t>> hash;
  hash.reserve(static_cast<size_t>(build_n));
  const auto& lkeys = left.IntColumn(left_key);
  for (int64_t i : left_selection) {
    hash[lkeys[static_cast<size_t>(i)]].push_back(i);
  }
  if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());

  JoinIndex out;
  const auto& rkeys = right.IntColumn(right_key);
  const int64_t n = right.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    if (ctx != nullptr && (i & 65535) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    const auto it = hash.find(rkeys[static_cast<size_t>(i)]);
    if (it == hash.end()) continue;
    for (int64_t l : it->second) {
      out.left.push_back(l);
      out.right.push_back(i);
    }
  }
  return out;
}

genbase::Result<JoinIndex> HashJoinIndices(const storage::ColumnTable& left,
                                           int left_key,
                                           const storage::ColumnTable& right,
                                           int right_key, ExecContext* ctx,
                                           MemoryTracker* tracker) {
  std::vector<int64_t> all(static_cast<size_t>(left.num_rows()));
  for (int64_t i = 0; i < left.num_rows(); ++i) all[i] = i;
  return HashJoinIndicesFiltered(left, left_key, all, right, right_key, ctx,
                                 tracker);
}

}  // namespace genbase::relational
