#include "engine/engine_util.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/csv.h"
#include "core/config.h"
#include "core/reference.h"
#include "relational/col_ops.h"
#include "relational/restructure.h"

namespace genbase::engine {

genbase::Result<core::QueryResult> RunStandardAnalytics(
    core::QueryId query, QueryInputs inputs, const core::QueryParams& params,
    linalg::KernelQuality quality, ExecContext* ctx,
    std::function<genbase::Status()> bicluster_pass_hook) {
  core::QueryResult out;
  out.query = query;
  ScopedPhase an(ctx, Phase::kAnalytics);
  switch (query) {
    case core::QueryId::kRegression: {
      MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
      GENBASE_ASSIGN_OR_RETURN(
          linalg::Matrix design,
          linalg::Matrix::Create(inputs.x.rows(), inputs.x.cols() + 1,
                                 tracker));
      for (int64_t i = 0; i < inputs.x.rows(); ++i) {
        design(i, 0) = 1.0;
        std::copy(inputs.x.Row(i), inputs.x.Row(i) + inputs.x.cols(),
                  design.Row(i) + 1);
      }
      GENBASE_ASSIGN_OR_RETURN(
          out.regression,
          core::RegressionAnalytics(std::move(design), inputs.y, ctx));
      return out;
    }
    case core::QueryId::kCovariance: {
      GENBASE_ASSIGN_OR_RETURN(
          out.covariance,
          core::CovarianceAnalytics(linalg::MatrixView(inputs.x),
                                    inputs.col_ids, inputs.meta,
                                    params.covariance_quantile, quality,
                                    ctx));
      return out;
    }
    case core::QueryId::kBiclustering: {
      GENBASE_ASSIGN_OR_RETURN(
          out.bicluster,
          core::BiclusterAnalytics(linalg::MatrixView(inputs.x),
                                   params.bicluster_delta_fraction,
                                   params.bicluster_count, ctx,
                                   std::move(bicluster_pass_hook)));
      return out;
    }
    case core::QueryId::kSvd: {
      GENBASE_ASSIGN_OR_RETURN(
          out.svd, core::SvdAnalytics(linalg::MatrixView(inputs.x),
                                      params.svd_rank, quality, ctx));
      return out;
    }
    case core::QueryId::kStatistics: {
      GENBASE_ASSIGN_OR_RETURN(
          out.stats,
          core::StatsAnalytics(inputs.scores, inputs.memberships,
                               params.significance, ctx));
      out.stats.samples = inputs.sample_count;
      return out;
    }
  }
  return genbase::Status::InvalidArgument("unknown query");
}

genbase::Result<linalg::Matrix> CsvRoundTripMatrix(
    const linalg::MatrixView& m, ExecContext* ctx) {
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  // The CSV text transiently holds the whole result (~20 bytes/cell), which
  // is exactly why the paper calls this glue "costly". Charge it.
  GENBASE_ASSIGN_OR_RETURN(
      auto reservation,
      ScopedReservation::Acquire(tracker, m.rows * m.cols * 20));
  std::string text;
  if (m.stride == m.cols) {
    text = CsvCodec::WriteMatrix(m.data, m.rows, m.cols);
  } else {
    text.reserve(static_cast<size_t>(m.rows * m.cols * 20));
    for (int64_t i = 0; i < m.rows; ++i) {
      text += CsvCodec::WriteMatrix(m.data + i * m.stride, 1, m.cols);
    }
  }
  if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
  int64_t rows = 0, cols = 0;
  std::vector<double> parsed;
  GENBASE_RETURN_NOT_OK(CsvCodec::ParseMatrix(text, &rows, &cols, &parsed));
  if (rows != m.rows || cols != m.cols) {
    return genbase::Status::Internal("CSV round trip changed shape");
  }
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix out,
                           linalg::Matrix::Create(rows, cols, tracker));
  std::copy(parsed.begin(), parsed.end(), out.data());
  return out;
}

genbase::Result<std::vector<double>> CsvRoundTripVector(
    const std::vector<double>& v, ExecContext* ctx) {
  const std::string text = CsvCodec::WriteMatrix(
      v.data(), static_cast<int64_t>(v.size()), 1);
  if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
  int64_t rows = 0, cols = 0;
  std::vector<double> parsed;
  GENBASE_RETURN_NOT_OK(CsvCodec::ParseMatrix(text, &rows, &cols, &parsed));
  if (rows != static_cast<int64_t>(v.size()) || cols != 1) {
    return genbase::Status::Internal("CSV round trip changed shape");
  }
  return parsed;
}

genbase::Result<linalg::Matrix> UdfTransferMatrix(
    const linalg::MatrixView& m, ExecContext* ctx, int64_t chunk_rows) {
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix out,
                           linalg::Matrix::Create(m.rows, m.cols, tracker));
  const auto& config = core::SimConfig::Get();
  for (int64_t r0 = 0; r0 < m.rows; r0 += chunk_rows) {
    if (ctx != nullptr) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
      // One UDF invocation per chunk: interpreter entry + marshalling.
      ctx->clock().AddVirtual(Phase::kGlue,
                              config.udf_invocation_overhead_s);
    }
    const int64_t r1 = std::min(m.rows, r0 + chunk_rows);
    for (int64_t r = r0; r < r1; ++r) {
      std::copy(m.data + r * m.stride, m.data + r * m.stride + m.cols,
                out.Row(r));
    }
  }
  return out;
}

std::vector<std::vector<int64_t>> BuildMembershipsColumnar(
    const storage::ColumnTable& ontology, int64_t num_terms) {
  std::vector<std::vector<int64_t>> memberships(
      static_cast<size_t>(num_terms));
  const auto& gene = ontology.IntColumn(core::GoCols::kGeneId);
  const auto& term = ontology.IntColumn(core::GoCols::kGoId);
  const auto& belongs = ontology.IntColumn(core::GoCols::kBelongs);
  for (size_t i = 0; i < gene.size(); ++i) {
    if (belongs[i] == 0) continue;
    memberships[static_cast<size_t>(term[i])].push_back(gene[i]);
  }
  for (auto& m : memberships) {
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
  }
  return memberships;
}

core::GeneMetaLookup MakeColumnarMetaLookup(
    const storage::ColumnTable& genes) {
  auto index = std::make_shared<std::unordered_map<int64_t, int64_t>>();
  const auto& ids = genes.IntColumn(core::GeneCols::kGeneId);
  index->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    index->emplace(ids[i], static_cast<int64_t>(i));
  }
  const auto* func = &genes.IntColumn(core::GeneCols::kFunction);
  const auto* len = &genes.IntColumn(core::GeneCols::kLength);
  return [index, func, len](int64_t gene_id, int64_t* function,
                            int64_t* length) -> genbase::Status {
    const auto it = index->find(gene_id);
    if (it == index->end()) {
      return genbase::Status::NotFound("gene id " + std::to_string(gene_id));
    }
    *function = (*func)[static_cast<size_t>(it->second)];
    *length = (*len)[static_cast<size_t>(it->second)];
    return genbase::Status::OK();
  };
}

namespace {

genbase::Status CopyColumnTable(const storage::ColumnTable& src,
                                MemoryTracker* tracker,
                                storage::ColumnTable* dst) {
  *dst = storage::ColumnTable(src.schema(), tracker);
  GENBASE_RETURN_NOT_OK(dst->Reserve(src.num_rows()));
  for (int c = 0; c < src.schema().num_fields(); ++c) {
    if (src.schema().field(c).type == storage::DataType::kInt64) {
      dst->MutableIntColumn(c) = src.IntColumn(c);
    } else {
      dst->MutableDoubleColumn(c) = src.DoubleColumn(c);
    }
  }
  return dst->FinishBulkLoad();
}

}  // namespace

genbase::Status LoadColumnarTables(const core::GenBaseData& data,
                                   MemoryTracker* tracker,
                                   ColumnarTables* out) {
  out->dims = data.dims;
  GENBASE_RETURN_NOT_OK(
      CopyColumnTable(data.microarray, tracker, &out->microarray));
  GENBASE_RETURN_NOT_OK(
      CopyColumnTable(data.patients, tracker, &out->patients));
  GENBASE_RETURN_NOT_OK(CopyColumnTable(data.genes, tracker, &out->genes));
  GENBASE_RETURN_NOT_OK(
      CopyColumnTable(data.ontology, tracker, &out->ontology));
  return genbase::Status::OK();
}

namespace {

using core::GeneCols;
using core::GoCols;
using core::MicroarrayCols;
using core::PatientCols;
using relational::ColumnPredicate;
using relational::DenseMapping;
using relational::FilterColumns;
using relational::HashJoinIndicesFiltered;
using relational::JoinIndex;
using relational::MakeDenseMapping;

/// Restructures matched microarray triples (by join index) into a dense
/// matrix: the relational -> array conversion every non-array engine pays.
genbase::Result<linalg::Matrix> RestructureJoined(
    const storage::ColumnTable& microarray, const JoinIndex& join,
    const DenseMapping& row_map, const DenseMapping& col_map,
    ExecContext* ctx) {
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(
      linalg::Matrix m,
      linalg::Matrix::Create(row_map.size(), col_map.size(), tracker));
  const auto& pid = microarray.IntColumn(MicroarrayCols::kPatientId);
  const auto& gid = microarray.IntColumn(MicroarrayCols::kGeneId);
  const auto& expr = microarray.DoubleColumn(MicroarrayCols::kExpr);
  for (size_t k = 0; k < join.right.size(); ++k) {
    if (ctx != nullptr && (k & 262143) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    const int64_t row = join.right[k];
    const auto rit = row_map.index.find(pid[static_cast<size_t>(row)]);
    if (rit == row_map.index.end()) continue;
    const auto cit = col_map.index.find(gid[static_cast<size_t>(row)]);
    if (cit == col_map.index.end()) continue;
    m(rit->second, cit->second) = expr[static_cast<size_t>(row)];
  }
  return m;
}

std::vector<int64_t> GatherIds(const std::vector<int64_t>& ids,
                               const std::vector<int64_t>& selection) {
  std::vector<int64_t> out;
  out.reserve(selection.size());
  for (int64_t i : selection) out.push_back(ids[static_cast<size_t>(i)]);
  return out;
}

}  // namespace

genbase::Result<QueryInputs> PrepareInputsColumnar(
    const ColumnarTables& tables, core::QueryId query,
    const core::QueryParams& params, ExecContext* ctx) {
  using storage::Value;
  QueryInputs in;
  ScopedPhase dm(ctx, Phase::kDataManagement);
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;

  switch (query) {
    case core::QueryId::kRegression:
    case core::QueryId::kSvd: {
      // Filter genes by function, join with microarray, restructure.
      GENBASE_ASSIGN_OR_RETURN(
          std::vector<int64_t> gene_sel,
          FilterColumns(tables.genes,
                        {ColumnPredicate::Lt(
                            GeneCols::kFunction,
                            Value::Int(params.function_threshold))},
                        ctx));
      in.col_ids = GatherIds(tables.genes.IntColumn(GeneCols::kGeneId),
                             gene_sel);
      GENBASE_ASSIGN_OR_RETURN(
          JoinIndex join,
          HashJoinIndicesFiltered(tables.genes, GeneCols::kGeneId, gene_sel,
                                  tables.microarray, MicroarrayCols::kGeneId,
                                  ctx, tracker));
      in.row_ids = tables.patients.IntColumn(PatientCols::kPatientId);
      std::sort(in.row_ids.begin(), in.row_ids.end());
      const DenseMapping row_map = MakeDenseMapping(in.row_ids);
      const DenseMapping col_map = MakeDenseMapping(in.col_ids);
      in.col_ids = col_map.ids;
      GENBASE_ASSIGN_OR_RETURN(
          in.x, RestructureJoined(tables.microarray, join, row_map, col_map,
                                  ctx));
      if (query == core::QueryId::kRegression) {
        // Project the drug response aligned to the row mapping.
        in.y.assign(static_cast<size_t>(row_map.size()), 0.0);
        const auto& pid = tables.patients.IntColumn(PatientCols::kPatientId);
        const auto& resp =
            tables.patients.DoubleColumn(PatientCols::kDrugResponse);
        for (size_t i = 0; i < pid.size(); ++i) {
          const auto it = row_map.index.find(pid[i]);
          if (it != row_map.index.end()) {
            in.y[static_cast<size_t>(it->second)] = resp[i];
          }
        }
      }
      return in;
    }
    case core::QueryId::kCovariance:
    case core::QueryId::kBiclustering: {
      std::vector<ColumnPredicate> preds;
      if (query == core::QueryId::kCovariance) {
        preds = {ColumnPredicate::Eq(PatientCols::kDiseaseId,
                                     Value::Int(params.disease_id))};
      } else {
        preds = {
            ColumnPredicate::Eq(PatientCols::kGender,
                                Value::Int(params.gender)),
            ColumnPredicate::Lt(PatientCols::kAge,
                                Value::Int(params.max_age))};
      }
      GENBASE_ASSIGN_OR_RETURN(std::vector<int64_t> patient_sel,
                               FilterColumns(tables.patients, preds, ctx));
      in.row_ids = GatherIds(
          tables.patients.IntColumn(PatientCols::kPatientId), patient_sel);
      GENBASE_ASSIGN_OR_RETURN(
          JoinIndex join,
          HashJoinIndicesFiltered(tables.patients, PatientCols::kPatientId,
                                  patient_sel, tables.microarray,
                                  MicroarrayCols::kPatientId, ctx, tracker));
      in.col_ids = tables.genes.IntColumn(GeneCols::kGeneId);
      std::sort(in.col_ids.begin(), in.col_ids.end());
      const DenseMapping row_map = MakeDenseMapping(in.row_ids);
      const DenseMapping col_map = MakeDenseMapping(in.col_ids);
      in.row_ids = row_map.ids;
      GENBASE_ASSIGN_OR_RETURN(
          in.x, RestructureJoined(tables.microarray, join, row_map, col_map,
                                  ctx));
      if (query == core::QueryId::kCovariance) {
        in.meta = MakeColumnarMetaLookup(tables.genes);
      }
      return in;
    }
    case core::QueryId::kStatistics: {
      const int64_t k =
          core::SampleCount(tables.dims.patients, params.sample_fraction);
      GENBASE_ASSIGN_OR_RETURN(
          std::vector<int64_t> patient_sel,
          FilterColumns(tables.patients,
                        {ColumnPredicate::Lt(PatientCols::kPatientId,
                                             Value::Int(k))},
                        ctx));
      in.sample_count = static_cast<int64_t>(patient_sel.size());
      GENBASE_ASSIGN_OR_RETURN(
          JoinIndex join,
          HashJoinIndicesFiltered(tables.patients, PatientCols::kPatientId,
                                  patient_sel, tables.microarray,
                                  MicroarrayCols::kPatientId, ctx, tracker));
      // Mean expression per gene over the sample (vectorized aggregate).
      const DenseMapping gene_map = MakeDenseMapping(
          tables.genes.IntColumn(GeneCols::kGeneId));
      in.scores.assign(static_cast<size_t>(gene_map.size()), 0.0);
      const auto& gid = tables.microarray.IntColumn(MicroarrayCols::kGeneId);
      const auto& expr =
          tables.microarray.DoubleColumn(MicroarrayCols::kExpr);
      for (size_t idx = 0; idx < join.right.size(); ++idx) {
        if (ctx != nullptr && (idx & 262143) == 0) {
          GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
        }
        const int64_t row = join.right[idx];
        const auto it = gene_map.index.find(gid[static_cast<size_t>(row)]);
        if (it != gene_map.index.end()) {
          in.scores[static_cast<size_t>(it->second)] +=
              expr[static_cast<size_t>(row)];
        }
      }
      const double inv = in.sample_count > 0
                             ? 1.0 / static_cast<double>(in.sample_count)
                             : 0.0;
      for (auto& s : in.scores) s *= inv;
      in.memberships =
          BuildMembershipsColumnar(tables.ontology, tables.dims.go_terms);
      return in;
    }
  }
  return genbase::Status::InvalidArgument("unknown query");
}

}  // namespace genbase::engine
