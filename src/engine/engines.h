#ifndef GENBASE_ENGINE_ENGINES_H_
#define GENBASE_ENGINE_ENGINES_H_

#include <memory>
#include <vector>

#include "core/engine.h"

namespace genbase::engine {

/// \brief The paper's seven single-node configurations (Section 4.1), in
/// figure-legend order: Column store + R, Column store + UDFs, Hadoop,
/// Postgres + Madlib, Postgres + R, SciDB, Vanilla R.
std::vector<std::unique_ptr<core::Engine>> CreateSingleNodeEngines();

/// Individual factories (used by examples and focused benches).
std::unique_ptr<core::Engine> CreateVanillaR();
std::unique_ptr<core::Engine> CreatePostgresMadlib();
std::unique_ptr<core::Engine> CreatePostgresR();
std::unique_ptr<core::Engine> CreateColumnStoreR();
std::unique_ptr<core::Engine> CreateColumnStoreUdf();
std::unique_ptr<core::Engine> CreateSciDb();
std::unique_ptr<core::Engine> CreateHadoop();

}  // namespace genbase::engine

#endif  // GENBASE_ENGINE_ENGINES_H_
