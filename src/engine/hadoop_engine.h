#ifndef GENBASE_ENGINE_HADOOP_ENGINE_H_
#define GENBASE_ENGINE_HADOOP_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/spill.h"
#include "core/engine.h"
#include "engine/engine_util.h"

namespace genbase::engine {

/// \brief Configuration 7: Hadoop (Hive for data management, Mahout for
/// analytics).
///
/// Tables live as binary files on real disk ("HDFS"); every logical
/// MapReduce job pays a modeled startup latency (JVM spinup, scheduling) and
/// materializes its output back to disk — both stage boundaries and the
/// Hive -> Mahout handoff are genuine file writes followed by re-reads.
/// Analytics kernels are deliberately naive (no blocking, no
/// parallelism, no reorthogonalization shortcuts): "matrix operations are
/// not done through a high performance linear algebra package." Mahout's
/// Lanczos ran one MapReduce job per iteration, which the SVD cost model
/// charges. Only the Mahout-feasible subset runs: regression, covariance,
/// SVD ("with this configuration we can only run the portion of the
/// benchmark that is possible in Mahout").
class HadoopEngine : public core::Engine {
 public:
  HadoopEngine();

  std::string name() const override { return "Hadoop"; }

  bool SupportsQuery(core::QueryId query) const override {
    return query == core::QueryId::kRegression ||
           query == core::QueryId::kCovariance ||
           query == core::QueryId::kSvd;
  }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override;
  void DoUnloadDataset() override;

 public:
  void PrepareContext(ExecContext* ctx) override;

  genbase::Result<core::QueryResult> RunQuery(core::QueryId query,
                                              const core::QueryParams& params,
                                              ExecContext* ctx) override;

 private:
  struct Hdfs {
    SpillFile microarray;  ///< (patient_id, gene_id, expr) binary triples.
    SpillFile patients;    ///< 6 fields per row.
    SpillFile genes;       ///< 5 fields per row.
    int64_t microarray_rows = 0;
    int64_t patient_rows = 0;
    int64_t gene_rows = 0;
    core::DatasetDims dims;
  };

  /// Hive stage: filter + map-side join producing matched triples on disk.
  genbase::Result<SpillFile> HiveFilterJoin(
      core::QueryId query, const core::QueryParams& params,
      std::vector<int64_t>* row_ids, std::vector<int64_t>* col_ids,
      std::vector<double>* y, int64_t* matched_rows, ExecContext* ctx);

  MemoryTracker tracker_;
  std::unique_ptr<Hdfs> hdfs_;
};

}  // namespace genbase::engine

#endif  // GENBASE_ENGINE_HADOOP_ENGINE_H_
