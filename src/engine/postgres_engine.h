#ifndef GENBASE_ENGINE_POSTGRES_ENGINE_H_
#define GENBASE_ENGINE_POSTGRES_ENGINE_H_

#include <memory>
#include <string>

#include "core/engine.h"
#include "engine/engine_util.h"
#include "storage/row_store.h"

namespace genbase::engine {

/// \brief Analytics attachment for the row-store engine.
enum class PostgresAnalytics {
  /// Configuration 2: Madlib in-database analytics. Regression and
  /// covariance run as compiled C++ aggregates (fast); SVD and statistics go
  /// through the interpreted SQL+plpython path (slow, modeled by a per-cell
  /// VM surcharge); biclustering is unavailable — matching "this
  /// configuration executes four of the five tasks, but only two within the
  /// 2 hour window".
  kMadlib,
  /// Configuration 3: export to external R through the CSV glue, then
  /// single-threaded tuned (BLAS-backed) kernels.
  kExternalR,
};

/// \brief Configurations 2-3: Postgres — a conventional row-store RDBMS.
///
/// Tables live in slotted 64 KiB heap pages; queries execute as Volcano
/// tuple-at-a-time operator trees (scan -> filter -> hash join -> project)
/// with per-tuple interpretation, single threaded (Postgres 9.x had no
/// intra-query parallelism). The relational -> matrix restructure is paid
/// per tuple from the materialized join result.
class PostgresEngine : public core::Engine {
 public:
  explicit PostgresEngine(PostgresAnalytics analytics);

  std::string name() const override {
    return analytics_ == PostgresAnalytics::kMadlib ? "Postgres + Madlib"
                                                    : "Postgres + R";
  }

  bool SupportsQuery(core::QueryId query) const override {
    // Madlib has no biclustering implementation.
    return !(analytics_ == PostgresAnalytics::kMadlib &&
             query == core::QueryId::kBiclustering);
  }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override;
  void DoUnloadDataset() override;

 public:
  void PrepareContext(ExecContext* ctx) override;

  genbase::Result<core::QueryResult> RunQuery(core::QueryId query,
                                              const core::QueryParams& params,
                                              ExecContext* ctx) override;

 private:
  struct Tables {
    storage::RowStore microarray;
    storage::RowStore patients;
    storage::RowStore genes;
    storage::RowStore ontology;
    core::DatasetDims dims;

    explicit Tables(MemoryTracker* tracker)
        : microarray(core::MicroarraySchema(), tracker),
          patients(core::PatientMetaSchema(), tracker),
          genes(core::GeneMetaSchema(), tracker),
          ontology(core::GeneOntologySchema(), tracker) {}
  };

  genbase::Result<QueryInputs> PrepareInputs(core::QueryId query,
                                             const core::QueryParams& params,
                                             ExecContext* ctx);

  PostgresAnalytics analytics_;
  MemoryTracker tracker_;
  std::unique_ptr<Tables> tables_;
};

}  // namespace genbase::engine

#endif  // GENBASE_ENGINE_POSTGRES_ENGINE_H_
