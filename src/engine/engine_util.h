#ifndef GENBASE_ENGINE_ENGINE_UTIL_H_
#define GENBASE_ENGINE_ENGINE_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/datasets.h"
#include "core/queries.h"
#include "linalg/matrix.h"
#include "storage/column_store.h"

namespace genbase::engine {

/// \brief The outputs of a query's data-management phase, in the neutral
/// shape the shared analytics blocks consume. Every engine produces this
/// through its own storage and operators; what differs across engines is how
/// (and how fast) these inputs get built, never what they contain.
struct QueryInputs {
  linalg::Matrix x;                ///< Dense matrix (Q1..Q4; no intercept).
  std::vector<int64_t> row_ids;    ///< Patient ids backing x's rows.
  std::vector<int64_t> col_ids;    ///< Gene ids backing x's columns.
  std::vector<double> y;           ///< Q1 target (drug response).
  std::vector<double> scores;      ///< Q5 per-gene scores.
  std::vector<std::vector<int64_t>> memberships;  ///< Q5 GO memberships.
  core::GeneMetaLookup meta;       ///< Q2 metadata join access path.
  int64_t sample_count = 0;        ///< Q5 sampled patients.
};

/// \brief Runs the analytics phase of `query` on prepared inputs with the
/// given kernel quality, timing it into Phase::kAnalytics.
genbase::Result<core::QueryResult> RunStandardAnalytics(
    core::QueryId query, QueryInputs inputs, const core::QueryParams& params,
    linalg::KernelQuality quality, ExecContext* ctx,
    std::function<genbase::Status()> bicluster_pass_hook = nullptr);

/// \brief The "export to external R" glue: serializes a matrix to CSV text
/// and parses it back, exactly the copy/reformat round trip the paper's
/// Postgres+R and ColumnStore+R configurations pay. Returns the re-imported
/// matrix; the caller times the call inside Phase::kGlue.
genbase::Result<linalg::Matrix> CsvRoundTripMatrix(
    const linalg::MatrixView& m, ExecContext* ctx);

/// CSV round trip for a vector (Q1's response column, Q5's scores).
genbase::Result<std::vector<double>> CsvRoundTripVector(
    const std::vector<double>& v, ExecContext* ctx);

/// \brief The in-database UDF transfer: chunk-wise in-process copy plus a
/// modeled per-invocation interpreter-entry overhead (SimConfig
/// udf_invocation_overhead_s), charged as virtual glue time.
genbase::Result<linalg::Matrix> UdfTransferMatrix(
    const linalg::MatrixView& m, ExecContext* ctx, int64_t chunk_rows);

/// \brief Builds GO memberships (term -> sorted unique gene ids) from a
/// columnar ontology table by a vectorized pass.
std::vector<std::vector<int64_t>> BuildMembershipsColumnar(
    const storage::ColumnTable& ontology, int64_t num_terms);

/// \brief Gene-metadata lookup backed by a hash index over a columnar gene
/// table (built once per query; the Q2 join goes through it).
core::GeneMetaLookup MakeColumnarMetaLookup(
    const storage::ColumnTable& genes);

/// \brief A loaded dataset in columnar native storage (used by the R,
/// column-store and — for its 1-D metadata arrays — SciDB engines).
struct ColumnarTables {
  storage::ColumnTable microarray{core::MicroarraySchema()};
  storage::ColumnTable patients{core::PatientMetaSchema()};
  storage::ColumnTable genes{core::GeneMetaSchema()};
  storage::ColumnTable ontology{core::GeneOntologySchema()};
  core::DatasetDims dims;
};

/// Deep-copies the neutral data into `out`, charging `tracker`.
genbase::Status LoadColumnarTables(const core::GenBaseData& data,
                                   MemoryTracker* tracker,
                                   ColumnarTables* out);

/// \brief The full vectorized data-management pipeline for one query
/// (filter -> hash join -> gather -> restructure), timed into
/// Phase::kDataManagement. Used by the R and column-store engines; the row
/// store and array engines implement their own pipelines.
genbase::Result<QueryInputs> PrepareInputsColumnar(
    const ColumnarTables& tables, core::QueryId query,
    const core::QueryParams& params, ExecContext* ctx);

}  // namespace genbase::engine

#endif  // GENBASE_ENGINE_ENGINE_UTIL_H_
