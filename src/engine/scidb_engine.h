#ifndef GENBASE_ENGINE_SCIDB_ENGINE_H_
#define GENBASE_ENGINE_SCIDB_ENGINE_H_

#include <memory>
#include <string>

#include "core/engine.h"
#include "engine/engine_util.h"
#include "storage/array_store.h"

namespace genbase::engine {

/// \brief Configuration 6: SciDB, a native array DBMS.
///
/// The microarray lives as a chunked dense 2-D array (expression[patient,
/// gene]); metadata are 1-D attribute arrays indexed by the shared
/// dimensions. Selections on metadata produce dimension index lists and the
/// expression submatrix is gathered chunk-wise — there is no relational
/// join, no table-to-array restructure, and no export to an external stats
/// package. Analytics use tuned multithreaded kernels ("custom code ... more
/// involved than just calling pre-existing ScaLAPACK routines").
class SciDbEngine : public core::Engine {
 public:
  /// \brief Hook for coprocessor offload (accel module). When installed,
  /// the analytics phase is executed on the host to obtain the result and
  /// its host cost, then reported at the modeled device cost (transfer +
  /// accelerated compute) instead.
  class AnalyticsOffload {
   public:
    virtual ~AnalyticsOffload() = default;
    /// Returns the modeled device-seconds for an analytics phase that took
    /// `host_seconds` on the host over `input_bytes` of data.
    virtual double OffloadSeconds(core::QueryId query, int64_t input_bytes,
                                  double host_seconds) const = 0;
  };

  SciDbEngine();

  std::string name() const override { return "SciDB"; }

  void set_offload(const AnalyticsOffload* offload) { offload_ = offload; }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override;
  void DoUnloadDataset() override;

 public:
  void PrepareContext(ExecContext* ctx) override;

  genbase::Result<core::QueryResult> RunQuery(core::QueryId query,
                                              const core::QueryParams& params,
                                              ExecContext* ctx) override;

 private:
  genbase::Result<QueryInputs> PrepareInputs(core::QueryId query,
                                             const core::QueryParams& params,
                                             ExecContext* ctx);

  MemoryTracker tracker_;
  storage::ChunkedArray2D expression_;  ///< [patient, gene].
  std::unique_ptr<ColumnarTables> meta_;
  const AnalyticsOffload* offload_ = nullptr;
  bool loaded_ = false;
};

}  // namespace genbase::engine

#endif  // GENBASE_ENGINE_SCIDB_ENGINE_H_
