#include "engine/scidb_engine.h"

#include <algorithm>

#include "core/reference.h"
#include "relational/col_ops.h"

namespace genbase::engine {

namespace {
using core::GeneCols;
using core::MicroarrayCols;
using core::PatientCols;
using relational::ColumnPredicate;
using relational::FilterColumns;
using storage::Value;
}  // namespace

SciDbEngine::SciDbEngine() : tracker_(MemoryTracker::kUnlimited, "SciDB") {}

genbase::Status SciDbEngine::DoLoadDataset(const core::GenBaseData& data) {
  DoUnloadDataset();
  GENBASE_ASSIGN_OR_RETURN(
      expression_,
      storage::ChunkedArray2D::Create(data.dims.patients, data.dims.genes,
                                      &tracker_));
  const auto& ma = data.microarray;
  const auto& pid = ma.IntColumn(MicroarrayCols::kPatientId);
  const auto& gid = ma.IntColumn(MicroarrayCols::kGeneId);
  const auto& expr = ma.DoubleColumn(MicroarrayCols::kExpr);
  for (size_t i = 0; i < pid.size(); ++i) {
    expression_.Set(pid[i], gid[i], expr[i]);
  }
  auto meta = std::make_unique<ColumnarTables>();
  GENBASE_RETURN_NOT_OK(LoadColumnarTables(data, &tracker_, meta.get()));
  // The dense array replaces the relational microarray; drop the triples.
  meta->microarray = storage::ColumnTable(core::MicroarraySchema());
  meta_ = std::move(meta);
  loaded_ = true;
  return genbase::Status::OK();
}

void SciDbEngine::DoUnloadDataset() {
  expression_ = storage::ChunkedArray2D();
  meta_.reset();
  tracker_.Reset();
  loaded_ = false;
}

void SciDbEngine::PrepareContext(ExecContext* ctx) {
  ctx->set_memory(&tracker_);
  ctx->set_pool(DefaultPool());  // Multithreaded native execution.
}

genbase::Result<QueryInputs> SciDbEngine::PrepareInputs(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  QueryInputs in;
  ScopedPhase dm(ctx, Phase::kDataManagement);
  MemoryTracker* tracker = ctx->memory();

  switch (query) {
    case core::QueryId::kRegression:
    case core::QueryId::kSvd: {
      GENBASE_ASSIGN_OR_RETURN(
          std::vector<int64_t> gene_sel,
          FilterColumns(meta_->genes,
                        {ColumnPredicate::Lt(
                            GeneCols::kFunction,
                            Value::Int(params.function_threshold))},
                        ctx));
      // Dimension-aligned: selected positions ARE the array coordinates.
      in.col_ids.reserve(gene_sel.size());
      const auto& gids = meta_->genes.IntColumn(GeneCols::kGeneId);
      for (int64_t i : gene_sel) {
        in.col_ids.push_back(gids[static_cast<size_t>(i)]);
      }
      std::sort(in.col_ids.begin(), in.col_ids.end());
      in.row_ids.resize(static_cast<size_t>(expression_.rows()));
      for (int64_t p = 0; p < expression_.rows(); ++p) in.row_ids[p] = p;
      GENBASE_ASSIGN_OR_RETURN(
          in.x,
          expression_.GatherSubmatrix(in.row_ids, in.col_ids, tracker));
      if (query == core::QueryId::kRegression) {
        in.y = meta_->patients.DoubleColumn(PatientCols::kDrugResponse);
      }
      return in;
    }
    case core::QueryId::kCovariance:
    case core::QueryId::kBiclustering: {
      std::vector<ColumnPredicate> preds;
      if (query == core::QueryId::kCovariance) {
        preds = {ColumnPredicate::Eq(PatientCols::kDiseaseId,
                                     Value::Int(params.disease_id))};
      } else {
        preds = {ColumnPredicate::Eq(PatientCols::kGender,
                                     Value::Int(params.gender)),
                 ColumnPredicate::Lt(PatientCols::kAge,
                                     Value::Int(params.max_age))};
      }
      GENBASE_ASSIGN_OR_RETURN(std::vector<int64_t> patient_sel,
                               FilterColumns(meta_->patients, preds, ctx));
      const auto& pids = meta_->patients.IntColumn(PatientCols::kPatientId);
      in.row_ids.reserve(patient_sel.size());
      for (int64_t i : patient_sel) {
        in.row_ids.push_back(pids[static_cast<size_t>(i)]);
      }
      std::sort(in.row_ids.begin(), in.row_ids.end());
      in.col_ids.resize(static_cast<size_t>(expression_.cols()));
      for (int64_t g = 0; g < expression_.cols(); ++g) in.col_ids[g] = g;
      GENBASE_ASSIGN_OR_RETURN(
          in.x,
          expression_.GatherSubmatrix(in.row_ids, in.col_ids, tracker));
      if (query == core::QueryId::kCovariance) {
        in.meta = MakeColumnarMetaLookup(meta_->genes);
      }
      return in;
    }
    case core::QueryId::kStatistics: {
      const int64_t k =
          core::SampleCount(meta_->dims.patients, params.sample_fraction);
      in.sample_count = std::min<int64_t>(k, expression_.rows());
      // Array-native: mean over the first k array rows, gene-dimension
      // aligned; no join required.
      in.scores.assign(static_cast<size_t>(expression_.cols()), 0.0);
      for (int64_t p = 0; p < in.sample_count; ++p) {
        GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
        for (int64_t g = 0; g < expression_.cols(); ++g) {
          in.scores[static_cast<size_t>(g)] += expression_.Get(p, g);
        }
      }
      const double inv = in.sample_count > 0
                             ? 1.0 / static_cast<double>(in.sample_count)
                             : 0.0;
      for (auto& s : in.scores) s *= inv;
      in.memberships = BuildMembershipsColumnar(meta_->ontology,
                                                meta_->dims.go_terms);
      return in;
    }
  }
  return genbase::Status::InvalidArgument("unknown query");
}

genbase::Result<core::QueryResult> SciDbEngine::RunQuery(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  if (!loaded_) return genbase::Status::Internal("no dataset loaded");
  GENBASE_ASSIGN_OR_RETURN(QueryInputs inputs,
                           PrepareInputs(query, params, ctx));
  if (offload_ == nullptr) {
    return RunStandardAnalytics(query, std::move(inputs), params,
                                linalg::KernelQuality::kTuned, ctx);
  }
  // Coprocessor path: run analytics on the host (to get the answer and its
  // host cost) in a scratch clock, then report the modeled device time.
  const int64_t input_bytes =
      inputs.x.size() > 0
          ? inputs.x.bytes()
          : static_cast<int64_t>(inputs.scores.size()) * 8;
  ExecContext sub;
  sub.set_memory(ctx->memory());
  sub.set_pool(ctx->pool());
  GENBASE_ASSIGN_OR_RETURN(
      core::QueryResult result,
      RunStandardAnalytics(query, std::move(inputs), params,
                           linalg::KernelQuality::kTuned, &sub));
  const double host_seconds = sub.clock().total(Phase::kAnalytics);
  ctx->clock().AddVirtual(
      Phase::kAnalytics,
      offload_->OffloadSeconds(query, input_bytes, host_seconds));
  return result;
}

}  // namespace genbase::engine
