#include "engine/r_engine.h"

#include <cstring>

#include "core/config.h"

namespace genbase::engine {

namespace {

/// R's memory budget: calibrated as a multiple of the medium dataset's dense
/// size (see DESIGN.md). With the default factor, small and medium runs fit
/// and the large dataset exhausts the budget, matching the paper's Figure 1.
int64_t RBudgetBytes() {
  const auto& config = core::SimConfig::Get();
  const core::DatasetDims medium =
      core::DimsFor(core::DatasetSize::kMedium, config.scale);
  return static_cast<int64_t>(config.r_memory_budget_vs_medium *
                              static_cast<double>(medium.dense_bytes()));
}

}  // namespace

VanillaREngine::VanillaREngine() : tracker_(RBudgetBytes(), "R") {}

genbase::Status VanillaREngine::DoLoadDataset(const core::GenBaseData& data) {
  DoUnloadDataset();
  // R 3.0.x hard limit: no single vector may exceed 2^31 - 1 cells. The
  // microarray data frame holds one vector per column of `cells` length.
  const auto& config = core::SimConfig::Get();
  if (data.dims.cells() > config.r_max_cells) {
    return genbase::Status::OutOfMemory(
        "R: array exceeds 2^31-1 cell limit (" +
        std::to_string(data.dims.cells()) + " cells)");
  }
  auto tables = std::make_unique<ColumnarTables>();
  GENBASE_RETURN_NOT_OK(LoadColumnarTables(data, &tracker_, tables.get()));
  tables_ = std::move(tables);
  return genbase::Status::OK();
}

void VanillaREngine::DoUnloadDataset() {
  tables_.reset();
  tracker_.Reset();
}

void VanillaREngine::PrepareContext(ExecContext* ctx) {
  ctx->set_memory(&tracker_);
  ctx->set_pool(nullptr);  // Single threaded, like R.
}

genbase::Result<core::QueryResult> VanillaREngine::RunQuery(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  if (tables_ == nullptr) {
    return genbase::Status::OutOfMemory("R: dataset failed to load");
  }
  GENBASE_ASSIGN_OR_RETURN(QueryInputs inputs,
                           PrepareInputsColumnar(*tables_, query, params,
                                                 ctx));
  // R's copy-on-modify semantics: model.matrix / scale() duplicate the
  // analysis matrix before the fit. Make the copy for real so both the time
  // and the memory budget feel it.
  if (inputs.x.size() > 0) {
    ScopedPhase dm(ctx, Phase::kDataManagement);
    GENBASE_ASSIGN_OR_RETURN(
        linalg::Matrix duplicate,
        linalg::Matrix::Create(inputs.x.rows(), inputs.x.cols(),
                               ctx->memory()));
    std::memcpy(duplicate.data(), inputs.x.data(),
                static_cast<size_t>(inputs.x.bytes()));
    inputs.x = std::move(duplicate);
  }
  return RunStandardAnalytics(query, std::move(inputs), params,
                              linalg::KernelQuality::kTuned, ctx);
}

}  // namespace genbase::engine
